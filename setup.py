"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (offline machines, where PEP 517
editable builds cannot generate a wheel) can still ``pip install -e .`` via
the legacy setuptools code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
