"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
environments without the ``wheel`` package (offline machines, where PEP 517
editable builds cannot generate a wheel) can still ``pip install -e .`` via
the legacy setuptools code path.
"""

from setuptools import setup

# All metadata (name, version, dependencies, extras, package discovery)
# comes from pyproject.toml; keeping it out of this file prevents drift.
setup(package_dir={"": "src"})
