"""E14 — the k-dependence: why multiple right-hand sides change the game.

Section II-C3's observation: for a single right-hand side the
(communication-optimal!) Heath-Romine schedule is inherently serial —
Theta(n) message rounds — while for ``k > 1`` the matrix algorithms
amortize communication over columns.  This bench sweeps ``k`` and measures

* the per-column latency ``S/k`` of the iterative algorithm falling as k
  grows (amortization), versus
* Heath-Romine's S independent of how the columns are batched (k
  sequential solves cost k * Theta(n) rounds).
"""

import numpy as np

from repro.analysis import format_table
from repro.machine import CostParams, Machine
from repro.trsm import heath_romine_trsv, it_inv_trsm_global
from repro.util.checking import relative_residual
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def test_per_column_latency_amortizes(benchmark, emit):
    n, p = 64, 16

    def sweep():
        rows = []
        L = random_lower_triangular(n, seed=0)
        for k in (1, 4, 16, 64):
            B = random_dense(n, k, seed=k)
            m = Machine(p, params=UNIT)
            X = it_inv_trsm_global(m, L, B, p1=2, p2=4, n0=16, base_n=4)
            assert relative_residual(L, X.to_global(), B) < 1e-12
            s = m.critical_path().S
            rows.append([k, s, s / k])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E14_rhs_sweep",
        format_table(
            ["k", "S total", "S per column"],
            rows,
            title=f"It-Inv-TRSM latency amortization over columns (n={n}, p={p})",
        ),
    )
    per_col = [r[2] for r in rows]
    assert all(b <= a for a, b in zip(per_col, per_col[1:]))
    assert per_col[-1] < per_col[0] / 10


def test_heath_romine_cannot_amortize(benchmark, emit):
    """k sequential single-RHS solves pay k * Theta(n) rounds; the matrix
    algorithm handles the same k columns in one pass."""
    n, p, k = 64, 4, 8

    def run():
        L = random_lower_triangular(n, seed=1)
        B = random_dense(n, k, seed=2)

        m_hr = Machine(p, params=UNIT)
        for j in range(k):
            x = heath_romine_trsv(m_hr, L, B[:, j], check=(j == 0))
            assert np.allclose(L @ x, B[:, j], atol=1e-9)
        s_hr = m_hr.critical_path().S

        m_it = Machine(16, params=UNIT)
        it_inv_trsm_global(m_it, L, B, p1=2, p2=4, n0=16, base_n=4)
        s_it = m_it.critical_path().S
        return s_hr, s_it

    s_hr, s_it = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E14_hr_vs_matrix",
        format_table(
            ["method", "S"],
            [[f"Heath-Romine x {k} columns", s_hr], ["It-Inv-TRSM (batched)", s_it]],
            title=f"Single-RHS schedule vs batched TRSM (n={n}, k={k})",
        ),
    )
    assert s_hr > 3 * s_it
