"""E8 — the headline claim: latency improvement Theta((n/k)^{1/6} p^{2/3}).

Three views:

* model sweep in p — the standard/new latency ratio grows with exponent
  ~2/3 (log factors shave a little at finite p);
* model sweep in n/k — the ratio grows with exponent ~1/6 against the
  ratio at fixed p (weakest part of the claim, so tolerance is wide);
* simulator spot checks — measured S of It-Inv-TRSM vs Rec-TRSM on real
  runs orders the same way and the gap widens with p.
"""

from repro.analysis import fit_power_law, format_table, improvement_factors
from repro.machine import CostParams, Machine
from repro.trsm import it_inv_trsm_global, rec_trsm_global
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def test_ratio_grows_with_p_exponent_two_thirds(benchmark, emit):
    n, k = 1024, 256

    def sweep():
        ps = [2**e for e in range(8, 21, 2)]
        return [(p, improvement_factors(n, k, p).latency_ratio) for p in ps]

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E8_latency_improvement_vs_p",
        format_table(
            ["p", "S_std / S_new"],
            [[p, r] for p, r in pairs],
            title=f"3D latency improvement vs p (n={n}, k={k})",
        ),
    )
    exponent, _ = fit_power_law([float(p) for p, _ in pairs], [r for _, r in pairs])
    assert 0.55 < exponent < 0.8, exponent


def test_ratio_grows_with_shape_exponent_one_sixth(benchmark):
    p = 2**16
    k = 64

    def sweep():
        out = []
        for ratio_exp in range(0, 7):  # n/k in 1 .. 64, inside 3D regime
            n = k * (2**ratio_exp)
            out.append((n / k, improvement_factors(n, k, p).latency_ratio))
        return out

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law([x for x, _ in pairs], [r for _, r in pairs])
    # Theta((n/k)^{1/6}) asymptotically; at finite p the denominator of
    # S_std/S_new transitions from log^2 p-dominated (local slope 2/3) to
    # sqrt(n/k) log p-dominated (slope 1/6), so the fitted exponent sits
    # strictly between the two.  The sharp exponent test is the p-sweep.
    assert 1 / 6 - 0.05 < exponent < 2 / 3 + 0.02, exponent
    ratios = [r for _, r in pairs]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))  # monotone in n/k


def test_simulator_gap_widens_with_p(benchmark, emit):
    n, k = 128, 32

    def sweep():
        rows = []
        for p, shape, p1, p2, n0 in [
            (4, (2, 2), 2, 1, 64),
            (16, (4, 4), 2, 4, 32),
            (64, (8, 8), 4, 4, 32),
        ]:
            L = random_lower_triangular(n, seed=0)
            B = random_dense(n, k, seed=1)
            m_it = Machine(p, params=UNIT)
            it_inv_trsm_global(m_it, L, B, p1=p1, p2=p2, n0=n0)
            m_rec = Machine(p, params=UNIT)
            rec_trsm_global(m_rec, L, B, grid=m_rec.grid(*shape))
            rows.append(
                [p, m_it.critical_path().S, m_rec.critical_path().S,
                 m_rec.critical_path().S / m_it.critical_path().S]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E8_simulated_latency_gap",
        format_table(
            ["p", "S iterative", "S recursive", "ratio"],
            rows,
            title=f"Simulated latency: It-Inv-TRSM vs Rec-TRSM (n={n}, k={k})",
        ),
    )
    ratios = [r[3] for r in rows]
    assert ratios[-1] > ratios[0]  # the gap widens with p
    assert ratios[-1] > 1.0  # and the new method wins at p = 64
