"""E8 — exact redistribution routing vs the all-to-all bound.

PR 2 replaced the uniform all-to-all *bound* on every grid/layout
transition with the exact per-(sender, receiver) plan derived from the two
index maps, and fused the recursion call sites' extract -> redistribute
chains into single composed charges.  This bench regenerates the
comparison table and asserts the claims that the test suite property-tests
in the small:

* exact ``W`` never exceeds the bound (on unions of >= 3 ranks) and is
  zero exactly when the index maps coincide;
* the paper's three-step cyclic -> blocked -> cyclic transition costs two
  bound-charges stepwise but composes to the identity when fused;
* ``S`` drops from ``Theta(log p)`` rounds to the actual partner count —
  constant for the aligned transitions RecTriInv performs.

Run via ``make bench-smoke`` (tiny sweep, CI-gated) or directly with
pytest for the full table.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis import format_table
from repro.dist import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    End,
    RoutingPlan,
    fuse_transitions,
)
from repro.machine.topology import ProcessorGrid

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))


def _layouts(pr: int, pc: int):
    return {
        "cyclic": CyclicLayout(pr, pc),
        "blocked": BlockedLayout(pr, pc),
        "bc(2,2)": BlockCyclicLayout(pr, pc, br=2, bc=2),
        "bc(3,1)": BlockCyclicLayout(pr, pc, br=3, bc=1),
    }


def _pair_rows(side: int, sizes: list[int]):
    grid = ProcessorGrid.build((side, side))
    rows = []
    for m in sizes:
        shape = (m, m)
        lays = _layouts(side, side)
        for src_name, src in lays.items():
            for dst_name, dst in lays.items():
                plan = RoutingPlan(
                    End(grid, src, shape), End(grid, dst, shape), shape
                )
                exact = plan.cost()
                bound = plan.alltoall_bound()
                rows.append(
                    [
                        m,
                        f"{side}x{side}",
                        src_name,
                        dst_name,
                        exact.S,
                        exact.W,
                        bound.S,
                        bound.W,
                    ]
                )
    return rows


def test_exact_vs_bound_sweep(benchmark, emit):
    sides = [2] if SMOKE else [2, 4]
    sizes = [16] if SMOKE else [16, 48, 96]

    def sweep():
        rows = []
        for side in sides:
            rows.extend(_pair_rows(side, sizes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E8_redistribute_exact_vs_bound",
        format_table(
            ["m", "grid", "src", "dst", "S exact", "W exact", "S bound", "W bound"],
            rows,
            title="Redistribution: exact per-pair routing vs all-to-all bound",
        ),
    )
    for m, grid, src, dst, s_ex, w_ex, s_bd, w_bd in rows:
        # the bound is an envelope of the exact plan ...
        assert w_ex <= w_bd + 1e-9, (m, grid, src, dst)
        # ... and identity transitions are zero by construction
        if src == dst:
            assert s_ex == 0 and w_ex == 0, (m, grid, src)


def test_fused_transition_chains(emit):
    side = 2 if SMOKE else 4
    sizes = [16] if SMOKE else [16, 64, 128]
    grid = ProcessorGrid.build((side, side))
    cyc, blk = CyclicLayout(side, side), BlockedLayout(side, side)
    rows = []
    for m in sizes:
        shape = (m, m)
        chain = fuse_transitions(
            [
                End(grid, cyc, shape),
                End(grid, blk, shape),
                End(grid, cyc, shape),
            ],
            shape,
        )
        fused, step = chain.cost(), chain.stepwise_cost()
        rows.append([m, f"{side}x{side}", fused.S, fused.W, step.S, step.W])
    emit(
        "E8_fused_transition_chains",
        format_table(
            ["m", "grid", "S fused", "W fused", "S stepwise", "W stepwise"],
            rows,
            title="cyclic -> blocked -> cyclic: fused vs stepwise charges",
        ),
    )
    for m, _, s_f, w_f, s_s, w_s in rows:
        assert s_f == 0 and w_f == 0  # the three-step chain is the identity
        assert s_s > 0 and w_s > 0  # which the stepwise schedule pays anyway


def test_partner_counts_stay_constant(emit):
    """RecTriInv's cyclic(sp) -> cyclic(sp/2) halving: every destination
    rank has exactly 3 off-rank partners regardless of p, where the bound
    modeled Theta(log p) rounds."""
    rows = []
    sides = [2, 4] if SMOKE else [2, 4, 8]
    for side in sides:
        grid = ProcessorGrid.build((side, side))
        # the top-left quadrant, exactly as rec_tri_inv hands it to a child
        quadrant = grid.halves(0)[0].halves(1)[0]
        m = 8 * side
        shape = (m, m)
        plan = RoutingPlan(
            End(grid, CyclicLayout(side, side), shape),
            End(quadrant, CyclicLayout(side // 2, side // 2), shape),
            shape,
        )
        cost = plan.cost()
        bound = plan.alltoall_bound()
        rows.append([side * side, m, cost.S, bound.S, cost.W, bound.W])
    emit(
        "E8_halving_partner_counts",
        format_table(
            ["p", "m", "S exact", "S bound", "W exact", "W bound"],
            rows,
            title="Grid-halving redistribution: constant partners vs log p rounds",
        ),
    )
    ss = [r[2] for r in rows]
    assert all(s == ss[0] for s in ss)  # constant in p
    assert rows[-1][3] > rows[0][3]  # while the bound grows with p


def test_routing_is_numerically_faithful():
    """The plan that prices the transition is the plan that moves it."""
    from repro.dist import DistMatrix, redistribute
    from repro.machine import Machine

    machine = Machine(16)
    grid = machine.grid(4, 4)
    A = np.arange(32.0 * 24).reshape(32, 24)
    D = DistMatrix.from_global(machine, grid, CyclicLayout(4, 4), A)
    for layout in _layouts(4, 4).values():
        D = redistribute(D, grid, layout)
        assert np.array_equal(D.to_global(), A)
