"""E11 — serve-scale throughput: the vectorized routing + cache fast path.

PR 6 rebuilt the serve hot path for throughput: the per-pair ``np.nonzero``
scans in :mod:`repro.dist.routing` became one argsort/group-by shared by
``pairs``/``charge``/``apply``, routing plans are memoized in an LRU keyed
by layout fingerprints, and the scheduler prices repeat requests from a
:class:`~repro.sched.pricing.PricingMemo` instead of re-deriving every
candidate.  This bench is the acceptance artifact for that work:

* **scheduling** — a 10^4-request Poisson stream packed (not executed)
  through :func:`~repro.api.serve.schedule_stream` on p = 64, gated on a
  requests-per-second floor so CI fails when the fast path regresses;
* **parity + speedup** — the same stream scheduled twice: once on the
  fast path and once with reference-mode routing, the plan cache off and
  the pricing memo off (the pre-PR path, kept verbatim in
  :mod:`repro.dist.routing_reference`).  The two schedules must be
  bit-identical and the fast path at least 50x quicker (measured ~135x);
* **executed replay** — a grown (~100x the old smoke count) stream run to
  completion with shared operands, so the operand cache, plan cache and
  pricing memo all amortize across the stream.

Everything lands in ``benchmarks/results/BENCH_throughput.json`` (the CI
bench job uploads it next to ``BENCH_serve.json``).  Run via
``make bench-throughput``, or ``make bench-smoke`` for the tiny sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.api.serve import poisson_stream, replay, schedule_stream
from repro.dist import routing

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

#: scheduling-only stream (packs at ~2500 req/s on the dev box at p=64;
#: the floor leaves ~5x headroom for slower CI runners)
SCHED_P = 16 if SMOKE else 64
SCHED_COUNT = 300 if SMOKE else 10_000
RPS_FLOOR = 50.0 if SMOKE else 500.0

#: fast-vs-reference parity run (measured ~135x at count=300)
PARITY_COUNT = 40 if SMOKE else 300
SPEEDUP_FLOOR = 50.0

#: executed replay, ~100x the pre-PR smoke count (measured ~300 req/s)
REPLAY_COUNT = 30 if SMOKE else 600
REPLAY_RPS_FLOOR = 5.0 if SMOKE else 25.0

_REPORT: dict = {"smoke": SMOKE}


def _flatten(schedule) -> list[tuple]:
    """The bit-identity view of a schedule (what the parity gate compares)."""
    return [
        (a.index, a.size, a.start, a.finish, tuple(a.grid.ranks()))
        for a in schedule.assignments
    ]


def _slow_path_schedule(stream, p):
    """Schedule on the pre-PR path: reference routing, every cache off."""
    with routing.reference_mode(), routing.plan_cache_disabled():
        routing.clear_plan_cache()
        try:
            return schedule_stream(stream, p=p, pricing_cache=False)
        finally:
            routing.clear_plan_cache()


def test_scheduling_throughput_floor(emit, benchmark):
    """10^4 requests packed through the scheduler above the RPS floor."""
    stream = poisson_stream(
        count=SCHED_COUNT, rate=2e5, n_range=(32, 128), k_range=(4, 16), seed=7
    )
    routing.clear_plan_cache()
    start = time.perf_counter()
    sched = schedule_stream(stream, p=SCHED_P)
    seconds = time.perf_counter() - start
    rps = SCHED_COUNT / seconds
    stats = routing.plan_cache_stats()

    assert len(sched.assignments) == SCHED_COUNT
    assert rps >= RPS_FLOOR, (
        f"scheduling throughput regressed: {rps:.0f} req/s < floor {RPS_FLOOR:.0f}"
    )
    # the plan cache is doing the amortizing: repeat placements hit
    assert stats["hits"] > 0

    _REPORT["scheduling"] = {
        "p": SCHED_P,
        "requests": SCHED_COUNT,
        "seconds": seconds,
        "rps": rps,
        "rps_floor": RPS_FLOOR,
        "plan_cache": stats,
    }
    emit(
        "throughput_scheduling",
        f"scheduled {SCHED_COUNT} requests on p={SCHED_P} in {seconds:.3f}s "
        f"= {rps:.0f} req/s (floor {RPS_FLOOR:.0f})\n"
        f"plan cache: {stats['hits']} hits / {stats['misses']} misses",
    )
    benchmark(lambda: None)


def test_fast_path_parity_and_speedup(emit, benchmark):
    """Fast path bit-identical to the pre-PR path, and >= 50x quicker."""
    stream = poisson_stream(
        count=PARITY_COUNT, rate=2e5, n_range=(32, 128), k_range=(4, 16), seed=7
    )
    routing.clear_plan_cache()
    start = time.perf_counter()
    fast = schedule_stream(stream, p=SCHED_P)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    slow = _slow_path_schedule(stream, p=SCHED_P)
    slow_seconds = time.perf_counter() - start

    assert _flatten(fast) == _flatten(slow), (
        "the vectorized/cached path must reproduce the reference schedule "
        "bit for bit"
    )
    speedup = slow_seconds / fast_seconds
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"fast-path speedup collapsed: {speedup:.1f}x < {SPEEDUP_FLOOR:.0f}x"
        )

    _REPORT["parity_speedup"] = {
        "p": SCHED_P,
        "requests": PARITY_COUNT,
        "fast_seconds": fast_seconds,
        "slow_seconds": slow_seconds,
        "speedup": speedup,
        "speedup_floor": None if SMOKE else SPEEDUP_FLOOR,
        "identical": True,
    }
    emit(
        "throughput_parity",
        f"{PARITY_COUNT} requests on p={SCHED_P}: fast {fast_seconds:.3f}s, "
        f"reference {slow_seconds:.3f}s = {speedup:.1f}x "
        f"(floor {SPEEDUP_FLOOR:.0f}x, schedules bit-identical)",
    )
    benchmark(lambda: None)


def test_grown_replay_executes_end_to_end(emit, benchmark):
    """A ~100x-grown stream runs to completion with shared operands."""
    stream = poisson_stream(
        count=REPLAY_COUNT, rate=2e5, n_range=(32, 64), k_range=(4, 8), seed=11
    )
    start = time.perf_counter()
    outcome = replay(stream, p=16, verify=False, shared_operands=True)
    seconds = time.perf_counter() - start
    rps = REPLAY_COUNT / seconds

    assert len(outcome.records) == REPLAY_COUNT
    assert rps >= REPLAY_RPS_FLOOR, (
        f"executed replay regressed: {rps:.0f} req/s < floor {REPLAY_RPS_FLOOR:.0f}"
    )
    # shared operands make the staged-copy cache earn its keep
    assert outcome.staging_hits > 0

    _REPORT["executed_replay"] = {
        "p": 16,
        "requests": REPLAY_COUNT,
        "seconds": seconds,
        "rps": rps,
        "rps_floor": REPLAY_RPS_FLOOR,
        "staging_hit_rate": outcome.staging_hit_rate(),
    }
    emit(
        "throughput_replay",
        f"executed {REPLAY_COUNT} requests on p=16 in {seconds:.3f}s "
        f"= {rps:.0f} req/s (floor {REPLAY_RPS_FLOOR:.0f}), "
        f"staging hit rate {outcome.staging_hit_rate():.2f}",
    )
    benchmark(lambda: None)


def test_emit_bench_json(results_dir):
    """Write the machine-readable artifact the CI bench job uploads."""
    path = pathlib.Path(results_dir) / "BENCH_throughput.json"
    path.write_text(json.dumps(_REPORT, indent=2) + "\n")
    assert "scheduling" in _REPORT and "parity_speedup" in _REPORT
