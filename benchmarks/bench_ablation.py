"""E10 — ablations on the design choices DESIGN.md calls out.

Three knobs, each isolated on the simulator:

* **block size n0** — the paper's central dial between "pure TRSM"
  (n0 small: many cheap iterations, latency-bound) and "full inversion"
  (n0 = n: one giant inversion, bandwidth/flop-bound).  The tuned value
  must sit in the interior sweet spot on a latency-bound machine, and the
  simulated time curve must be U-shaped (or monotone toward the tuned
  endpoint in degenerate regimes);
* **grid split (p1, p2)** — 2D vs 3D processor layouts for the same p:
  bandwidth falls as p2 grows while memory rises (the replication
  tradeoff);
* **selective vs full inversion** — inverting only diagonal blocks must
  beat inverting all of L when k << n (the work-efficiency argument of
  Section I).
"""

from repro.analysis import format_table
from repro.machine import CostParams, HARDWARE_PRESETS, Machine
from repro.dist import CyclicLayout, DistMatrix
from repro.mm import mm3d
from repro.trsm.solver import trsm
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def test_n0_ablation(benchmark, emit):
    n, k, p = 128, 16, 16
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)
    params = HARDWARE_PRESETS["latency_bound"]

    def sweep():
        rows = []
        for n0 in (8, 16, 32, 64, 128):
            r = trsm(L, B, p=p, n0=n0, params=params)
            rows.append(
                [n0, r.time * 1e3, r.measured.S, r.measured.W, r.measured.F]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E10_ablation_n0",
        format_table(
            ["n0", "time ms", "S", "W", "F"],
            rows,
            title=f"Block-size ablation (n={n}, k={k}, p={p}, latency-bound)",
        ),
    )
    times = [r[1] for r in rows]
    ss = [r[2] for r in rows]
    # latency falls as blocks grow (fewer iterations; the trend is in the
    # endpoints — interior points wiggle with the inversion-subgrid shape)
    assert ss[-1] < 0.5 * ss[0]
    # ...while flops rise toward full inversion
    fs = [r[4] for r in rows]
    assert fs[-1] > fs[0]
    # and the best time is not at the smallest block size
    assert min(times) < times[0]


def test_grid_split_ablation(benchmark, emit):
    # k << n so the replicated left operand (not the X slabs) dominates
    # the working set — the regime where the memory tradeoff is visible
    n, k = 64, 8

    def sweep():
        rows = []
        for p1, sq in ((8, 1), (4, 2), (2, 4), (1, 8)):
            sp = p1 * sq
            machine = Machine(sp * sp, params=UNIT)
            grid = machine.grid(sp, sp)
            lay = CyclicLayout(sp, sp)
            A = random_dense(n, n, seed=0)
            X = random_dense(n, k, seed=1)
            dA = DistMatrix.from_global(machine, grid, lay, A)
            dX = DistMatrix.from_global(machine, grid, lay, X)
            mm3d(dA, dX, p1)
            cp = machine.critical_path()
            rows.append(
                [
                    f"({p1},{sq * sq})",
                    cp.S,
                    cp.W,
                    machine.memory.peak_words(),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E10_ablation_grid_split",
        format_table(
            ["(p1,p2)", "S", "W", "peak words/rank"],
            rows,
            title=f"MM grid-split ablation (n={n}, k={k}, p=64)",
        ),
    )
    # replication memory rises monotonically with p2
    mems = [r[3] for r in rows]
    assert all(b >= a for a, b in zip(mems, mems[1:]))
    assert mems[-1] > 4 * mems[0]


def test_selective_vs_full_inversion(benchmark, emit):
    """Work efficiency: with k << n, inverting only the diagonal blocks
    does asymptotically less arithmetic than inverting all of L."""
    n, k, p = 128, 8, 16
    L = random_lower_triangular(n, seed=2)
    B = random_dense(n, k, seed=3)

    def run():
        r_sel = trsm(L, B, p=p, n0=16, params=UNIT)  # selective
        r_full = trsm(L, B, p=p, n0=n, params=UNIT)  # full inversion
        return r_sel, r_full

    r_sel, r_full = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E10_selective_vs_full",
        format_table(
            ["variant", "S", "W", "F", "time ms", "residual"],
            [
                ["selective (n0=16)", r_sel.measured.S, r_sel.measured.W,
                 r_sel.measured.F, r_sel.time * 1e3, f"{r_sel.residual:.1e}"],
                ["full inversion (n0=n)", r_full.measured.S, r_full.measured.W,
                 r_full.measured.F, r_full.time * 1e3, f"{r_full.residual:.1e}"],
            ],
            title=f"Selective vs full inversion (n={n}, k={k}, p={p})",
        ),
    )
    assert r_sel.measured.F < r_full.measured.F
    assert r_sel.residual < 1e-12 and r_full.residual < 1e-12
