"""E15 — pivoting latency in distributed LU (added experiment).

Classical partial pivoting synchronizes once per column
(``Theta(n log p)`` rounds); CALU-style tournament pivoting selects each
panel's pivots with one log-depth reduction (``Theta((n/b) log p)``) —
the same message-count collapse the paper engineers for TRSM, appearing
in the other factorization its introduction names.
"""

import numpy as np

from repro.analysis import format_table
from repro.factor import lu_factor_distributed
from repro.machine import CostParams, HARDWARE_PRESETS, Machine

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def test_pivot_latency_contrast(benchmark, emit):
    n, sp, b = 64, 4, 8
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))

    def run():
        rows = []
        for pivoting in ("partial", "tournament"):
            machine = Machine(sp * sp, params=UNIT)
            grid = machine.grid(sp, sp)
            L, U, perm = lu_factor_distributed(
                machine, grid, A, block=b, pivoting=pivoting
            )
            err = np.linalg.norm(A[perm] - L.to_global() @ U.to_global())
            assert err < 1e-9 * np.linalg.norm(A)
            rows.append(
                [
                    pivoting,
                    machine.phase_cost("pivot_search").S,
                    machine.critical_path().S,
                    machine.critical_path().W,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E15_lu_pivoting",
        format_table(
            ["pivoting", "S pivot_search", "S total", "W total"],
            rows,
            title=f"LU pivoting latency (n={n}, b={b}, p={sp * sp})",
        ),
    )
    partial, tournament = rows
    assert partial[1] > 4 * tournament[1]
    assert tournament[2] < partial[2]


def test_total_time_on_latency_bound_machine(benchmark):
    n, sp, b = 64, 4, 8
    rng = np.random.default_rng(1)
    A = rng.standard_normal((n, n))
    params = HARDWARE_PRESETS["latency_bound"]

    def run():
        times = {}
        for pivoting in ("partial", "tournament"):
            machine = Machine(sp * sp, params=params)
            grid = machine.grid(sp, sp)
            lu_factor_distributed(machine, grid, A, block=b, pivoting=pivoting)
            times[pivoting] = machine.time()
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times["tournament"] < times["partial"]
