"""E11 — TRSM inside its consumer: distributed Cholesky factorization.

The paper motivates TRSM via LU/Cholesky.  This bench factors SPD systems
on the simulated machine and shows the paper's idea (selective inversion of
the small triangular blocks) paying off *inside* the factorization: the
panel-solve latency drops by ~the panel width, and the total factorization
time on a latency-bound machine follows.
"""

from repro.analysis import format_table
from repro.factor import cholesky_cost, cholesky_factor
from repro.machine import HARDWARE_PRESETS, Machine
from repro.util.randmat import random_spd


def test_panel_strategy_contrast(benchmark, emit):
    n, sp, block = 96, 2, 8
    params = HARDWARE_PRESETS["latency_bound"]
    A = random_spd(n, seed=0)

    def run():
        rows = []
        for panel in ("substitution", "inversion"):
            machine = Machine(sp * sp, params=params)
            grid = machine.grid(sp, sp)
            cholesky_factor(machine, grid, A, block=block, panel=panel)
            cp = machine.critical_path()
            rows.append(
                [
                    panel,
                    machine.phase_cost("panel_solve").S,
                    cp.S,
                    cp.W,
                    machine.time() * 1e3,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E11_cholesky_panels",
        format_table(
            ["panel strategy", "S panel_solve", "S total", "W total", "time ms"],
            rows,
            title=f"Cholesky panel solves: substitution vs inversion "
            f"(n={n}, b={block}, p={sp * sp}, latency-bound)",
        ),
    )
    sub, inv = rows[0], rows[1]
    assert inv[1] < sub[1] / 3  # panel latency collapses
    assert inv[4] < sub[4]  # and total simulated time follows


def test_model_sweep(benchmark, emit):
    def sweep():
        rows = []
        for p in (16, 256, 4096):
            for b in (16, 64):
                s_sub = cholesky_cost(4096, b, p, panel="substitution").S
                s_inv = cholesky_cost(4096, b, p, panel="inversion").S
                rows.append([p, b, s_sub, s_inv, s_sub / s_inv])
        return rows

    rows = benchmark(sweep)
    emit(
        "E11_cholesky_model",
        format_table(
            ["p", "b", "S substitution", "S inversion", "ratio"],
            rows,
            title="Cholesky latency model sweep (n=4096)",
        ),
    )
    # the advantage tracks the panel width
    by_b = {(r[0], r[1]): r[4] for r in rows}
    assert by_b[(256, 64)] > 2 * by_b[(256, 16)]


def test_factorization_correct_under_benchmark(benchmark):
    import numpy as np

    n, sp = 48, 2
    A = random_spd(n, seed=1)

    def run():
        machine = Machine(sp * sp)
        grid = machine.grid(sp, sp)
        return cholesky_factor(machine, grid, A, block=8).to_global()

    G = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.allclose(G @ G.T, A, atol=1e-8 * np.linalg.norm(A))
