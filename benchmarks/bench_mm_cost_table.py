"""E3 — Section III-A line-by-line MM cost table: model vs simulation.

The simulator charges every MM line with the paper's collective formulas
over real block sizes, so on divisible problem sizes the per-line measured
costs must match the analytic table *exactly*; on ragged sizes they must
match to a few percent.  Also verifies the a-priori split selection lands
on the model minimizer.
"""

import pytest

from repro.analysis import format_table, mm_line_table
from repro.mm.cost_model import mm3d_cost
from repro.mm.dispatch import choose_mm_split, valid_mm_splits
from repro.machine.cost import CostParams


CASES = [(32, 16, 2, 4), (16, 8, 4, 1), (32, 32, 1, 16), (64, 16, 2, 4)]


def test_mm_line_table_exact(benchmark, emit):
    def build():
        return {case: mm_line_table(*case) for case in CASES}

    tables = benchmark.pedantic(build, rounds=1, iterations=1)

    out = []
    for case, rows in tables.items():
        n, k, p1, p2 = case
        out.append(f"MM cost per line: n={n} k={k} p1={p1} p2={p2} (p={p1*p1*p2})")
        out.append(
            format_table(
                ["line", "S model", "S sim", "W model", "W sim", "F model", "F sim"],
                [
                    [line, m.S, s.S, m.W, s.W, m.F, s.F]
                    for line, m, s in rows
                ],
            )
        )
        out.append("")
        for line, model, sim in rows:
            assert sim.S == pytest.approx(model.S), (case, line)
            assert sim.W == pytest.approx(model.W), (case, line)
            assert sim.F == pytest.approx(model.F), (case, line)
    emit("E3_mm_line_costs", "\n".join(out))


def test_mm_ragged_sizes_close(benchmark):
    """Non-divisible sizes: measured within 25% of the real-valued model."""
    rows = benchmark.pedantic(
        lambda: mm_line_table(37, 13, 2, 4), rounds=1, iterations=1
    )
    for line, model, sim in rows:
        for comp in ("S", "W", "F"):
            a, b = getattr(sim, comp), getattr(model, comp)
            if a < 1 and b < 1:
                continue
            assert a <= 1.6 * b + 2 and b <= 1.6 * a + 2, (line, comp, a, b)


def test_apriori_split_minimizes_model(benchmark):
    params = CostParams()

    def best_split():
        return choose_mm_split(512, 128, 64, params=params)

    p1, p2 = benchmark(best_split)
    t_choice = mm3d_cost(512, 128, p1, p2).time(params)
    for a, b in valid_mm_splits(64):
        assert t_choice <= mm3d_cost(512, 128, a, b).time(params) + 1e-15
