"""E1 — Section IX conclusion table: standard vs new method, all regimes.

Regenerates the S/W/F comparison rows from the closed-form models across a
machine-size sweep (to p = 2^20, as only a cost table can), spot-checks the
models against the simulator at feasible sizes, and asserts the table's
qualitative content:

* 3D regime: identical W, 2x F, latency improvement growing ~ p^{2/3};
* 2D regime: log(p) bandwidth gain, latency gain at scale;
* 1D regime: identical W and F, the new method paying one extra log in S.
"""

import numpy as np
import pytest

from repro.analysis import fit_power_law, format_table
from repro.machine import CostParams, Machine
from repro.trsm import it_inv_trsm_global, rec_trsm_global
from repro.trsm.cost_model import conclusion_row
from repro.tuning.regimes import classify_trsm
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

PS = [2**e for e in (6, 10, 14, 18, 20)]


def _cases(p: int) -> dict[str, tuple[int, int]]:
    k = 64
    return {
        "1D": (k, 4 * k * p),
        "2D": (8 * k * int(p**0.5), k),
        "3D": (4 * k, k),
    }


def _build_table():
    rows = []
    for p in PS:
        for regime, (n, k) in _cases(p).items():
            assert classify_trsm(n, k, p).value == regime
            row = conclusion_row(n, k, p)
            std, new = row["standard"], row["new"]
            rows.append(
                [
                    regime,
                    n,
                    k,
                    p,
                    std.S,
                    new.S,
                    std.S / new.S,
                    std.W / new.W,
                    std.F / new.F,
                ]
            )
    return rows


def test_conclusion_table_regenerates(benchmark, emit):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    table = format_table(
        ["regime", "n", "k", "p", "S std", "S new", "S ratio", "W ratio", "F ratio"],
        rows,
        title="Section IX conclusion table (model sweep)",
    )
    emit("E1_conclusion_table", table)

    # Qualitative assertions per regime at the largest p.
    by_regime = {r[0]: r for r in rows if r[3] == PS[-1]}
    # 3D: same W, half F (new does 2x flops), big latency win
    assert by_regime["3D"][7] == pytest.approx(1.0)
    assert by_regime["3D"][8] == pytest.approx(0.5)
    assert by_regime["3D"][6] > 100
    # 2D: log(p) bandwidth gain, latency win at scale
    assert by_regime["2D"][7] == pytest.approx(np.log2(PS[-1]))
    assert by_regime["2D"][6] > 1
    # 1D: identical W/F, standard wins latency by ~log p
    assert by_regime["1D"][7] == pytest.approx(1.0)
    assert by_regime["1D"][8] == pytest.approx(1.0)
    assert by_regime["1D"][6] < 1


def test_3d_latency_ratio_grows_like_p_two_thirds(benchmark):
    n, k = 256, 64
    ps = [2**e for e in range(8, 21, 2)]

    def ratios():
        return [
            conclusion_row(n, k, p)["standard"].S / conclusion_row(n, k, p)["new"].S
            for p in ps
        ]

    values = benchmark(ratios)
    exponent, _ = fit_power_law([float(p) for p in ps], values)
    # Theta((n/k)^{1/6} p^{2/3}) modulo log factors
    assert 0.55 < exponent < 0.8, exponent


def test_measured_conclusion_table(benchmark, emit):
    """A fully *measured* analog of the Section IX table: both algorithms
    run on the simulator at machine-feasible sizes in each regime."""

    cases = [
        ("3D", 128, 32, 16, dict(p1=2, p2=4, n0=32), (4, 4)),
        ("3D", 64, 16, 64, dict(p1=4, p2=4, n0=16), (8, 8)),
        ("1D", 8, 512, 16, dict(p1=1, p2=16, n0=8), (1, 16)),
        ("2D", 96, 4, 16, dict(p1=4, p2=1, n0=24), (4, 4)),
    ]

    def run():
        rows = []
        for regime, n, k, p, it_kw, rec_shape in cases:
            L = random_lower_triangular(n, seed=0)
            B = random_dense(n, k, seed=1)
            m_it = Machine(p, params=UNIT)
            it_inv_trsm_global(m_it, L, B, **it_kw)
            m_rec = Machine(p, params=UNIT)
            rec_trsm_global(m_rec, L, B, grid=m_rec.grid(*rec_shape))
            a, b = m_it.critical_path(), m_rec.critical_path()
            rows.append(
                [regime, n, k, p, b.S, a.S, b.S / a.S, b.W / a.W, b.F / a.F]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.analysis import format_table

    emit(
        "E1_measured_table",
        format_table(
            [
                "regime", "n", "k", "p",
                "S rec", "S it", "S ratio", "W ratio", "F ratio",
            ],
            rows,
            title="Measured (simulated) standard-vs-new comparison",
        ),
    )
    # in the 3D rows the iterative method wins latency, more so at larger p
    r3 = [r for r in rows if r[0] == "3D"]
    assert all(r[6] > 1 for r in r3)
    assert r3[1][6] > r3[0][6]


def test_simulator_agrees_with_table_shape(benchmark):
    """At machine-feasible sizes the simulated S ordering matches the table."""
    n, k, p = 128, 32, 16
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)

    def run():
        m_it = Machine(p, params=UNIT)
        it_inv_trsm_global(m_it, L, B, p1=2, p2=4, n0=32)
        m_rec = Machine(p, params=UNIT)
        rec_trsm_global(m_rec, L, B, grid=m_rec.grid(4, 4), n0=8)
        return m_it.critical_path().S, m_rec.critical_path().S

    s_it, s_rec = benchmark.pedantic(run, rounds=1, iterations=1)
    row = conclusion_row(n, k, p)
    model_says_new_wins = row["new"].S < row["standard"].S
    assert model_says_new_wins and (s_it < s_rec)
