"""E9a — strong/weak scaling of the simulated algorithms (added experiment).

The arXiv text has no machine plots; this bench provides the scaling study
the IPDPS version reports on real hardware, on our simulated machine:

* strong scaling: fixed (n, k), growing p — simulated time must fall, then
  flatten for the recursive baseline much earlier than for the iterative
  algorithm on a latency-bound machine;
* weak scaling: fixed work per processor — the iterative algorithm's time
  grows polylogarithmically.
"""

from repro.analysis import format_table
from repro.machine import HARDWARE_PRESETS
from repro.trsm.solver import trsm
from repro.util.randmat import random_dense, random_lower_triangular


def test_strong_scaling(benchmark, emit):
    n, k = 128, 32
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)
    params = HARDWARE_PRESETS["latency_bound"]

    def sweep():
        rows = []
        for p in (1, 4, 16, 64):
            r_it = trsm(L, B, p=p, algorithm="iterative", params=params)
            r_rec = trsm(L, B, p=p, algorithm="recursive", params=params)
            rows.append(
                [p, r_it.time * 1e3, r_rec.time * 1e3, r_rec.time / r_it.time]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E9_strong_scaling",
        format_table(
            ["p", "iterative ms", "recursive ms", "rec/it"],
            rows,
            title=f"Strong scaling, latency-bound machine (n={n}, k={k})",
        ),
    )
    # the iterative advantage grows with p
    ratios = [r[3] for r in rows]
    assert ratios[-1] > ratios[1]
    # and the recursive baseline stops scaling (time grows again) while
    # the iterative time grows far slower
    rec_times = [r[2] for r in rows]
    it_times = [r[1] for r in rows]
    assert rec_times[-1] / rec_times[1] > it_times[-1] / it_times[1]


def test_weak_scaling(benchmark, emit):
    params = HARDWARE_PRESETS["default"]

    def sweep():
        rows = []
        # n^2 k / p held constant: n ~ p^{1/3} at fixed k/n ratio
        for p, n in [(1, 32), (8, 64), (64, 128)]:
            k = n // 4
            L = random_lower_triangular(n, seed=n)
            B = random_dense(n, k, seed=n + 1)
            r = trsm(L, B, p=p, algorithm="iterative", params=params)
            rows.append([p, n, k, r.time * 1e3, r.measured.F])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E9_weak_scaling",
        format_table(
            ["p", "n", "k", "time ms", "F per proc"],
            rows,
            title="Weak scaling of It-Inv-TRSM (n^2 k / p constant)",
        ),
    )
    # per-processor flops stay within a small band (work-efficient scaling)
    fs = [r[4] for r in rows]
    assert max(fs) <= 6 * min(fs)
