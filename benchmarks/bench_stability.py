"""E9b — numerical stability of selective inversion (added experiment).

The paper argues (citing Du Croz & Higham) that triangular inversion is
numerically stable, so replacing small solves by multiplications with
inverted diagonal blocks "maintains numerical stability".  This bench
measures it: residuals of It-Inv-TRSM vs the recursive substitution
baseline vs a naive full-inversion solve, on progressively worse
conditioned triangular matrices.

Expected shape: substitution and selective block inversion stay at O(eps)
backward error across the condition sweep; both are far better behaved
than explicitly forming inv(L) @ B at extreme conditioning (and never
worse).
"""

import numpy as np

from repro.analysis import format_table
from repro.inversion import invert_lower_triangular
from repro.trsm.solver import trsm
from repro.util.checking import relative_residual
from repro.util.randmat import ill_conditioned_lower_triangular, random_dense


def test_stability_under_conditioning(benchmark, emit):
    n, k, p = 64, 16, 16

    def sweep():
        rows = []
        for cond in (1e2, 1e6, 1e10, 1e14):
            L = ill_conditioned_lower_triangular(n, condition_target=cond, seed=0)
            B = random_dense(n, k, seed=1)
            r_it = trsm(L, B, p=p, algorithm="iterative", n0=16)
            r_rec = trsm(L, B, p=p, algorithm="recursive")
            X_inv = invert_lower_triangular(L) @ B
            rows.append(
                [
                    cond,
                    r_it.residual,
                    r_rec.residual,
                    relative_residual(L, X_inv, B),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E9_stability",
        format_table(
            ["cond(L)", "It-Inv-TRSM", "Rec-TRSM", "full inv(L) @ B"],
            rows,
            title="Backward residuals vs conditioning (n=64, k=16, p=16)",
        ),
    )
    for cond, r_it, r_rec, r_inv in rows:
        # selective inversion stays backward stable across the sweep
        assert r_it < 1e-10, (cond, r_it)
        assert r_rec < 1e-10, (cond, r_rec)
        # and is never meaningfully worse than the substitution baseline
        assert r_it <= 100 * max(r_rec, 1e-18), (cond, r_it, r_rec)


def test_well_conditioned_all_methods_equal(benchmark):
    from repro.util.randmat import random_lower_triangular

    n, k, p = 48, 12, 4
    L = random_lower_triangular(n, seed=2)
    B = random_dense(n, k, seed=3)

    def run():
        r_it = trsm(L, B, p=p, algorithm="iterative", n0=12)
        r_rec = trsm(L, B, p=p, algorithm="recursive")
        return r_it, r_rec

    r_it, r_rec = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.allclose(r_it.X, r_rec.X, atol=1e-9)
    assert r_it.residual < 1e-13 and r_rec.residual < 1e-13
