"""E12 — machine sensitivity: the alpha/beta crossover map.

Turns the paper's asymptotic comparison into a decision rule: for each
(n/k, p) cell, the latency/bandwidth ratio above which It-Inv-TRSM beats
Rec-TRSM in modeled time.  The expected shape — crossovers fall (the new
method wins on ever more bandwidth-friendly machines) as p grows, and the
1D regime never crosses — follows directly from the Section IX table.
"""

from repro.analysis import format_table
from repro.analysis.sensitivity import crossover_ratio, sweep_alpha_beta


def test_crossover_map(benchmark, emit):
    n_over_k = [1, 4, 16]
    ps = [64, 1024, 16384]
    k = 64

    def build():
        rows = []
        for r in n_over_k:
            row = [f"n/k={r}"]
            for p in ps:
                c = crossover_ratio(r * k, k, p)
                row.append("always" if c is None and _wins_everywhere(r * k, k, p) else
                           ("never" if c is None else f"{c:.3g}"))
            rows.append(row)
        return rows

    def _wins_everywhere(n, k_, p):
        return sweep_alpha_beta(n, k_, p, ratios=[1e-2])[0].speedup > 1

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "E12_crossover_map",
        format_table(
            ["shape"] + [f"p={p}" for p in ps],
            rows,
            title="alpha/beta ratio where It-Inv-TRSM starts winning (k=64)",
        ),
    )

    # crossovers shrink (or vanish into "always") left to right in p
    import math

    def parse(cell):
        if cell == "always":
            return 0.0
        if cell == "never":
            return math.inf
        return float(cell)

    for row in rows:
        vals = [parse(c) for c in row[1:]]
        assert vals == sorted(vals, reverse=True) or vals[0] == vals[-1]


def test_speedup_grows_with_latency_dominance(benchmark, emit):
    def build():
        pts = sweep_alpha_beta(256, 64, 1024)
        return [[pt.alpha_over_beta, pt.t_recursive * 1e3, pt.t_iterative * 1e3,
                 pt.speedup] for pt in pts]

    rows = benchmark(build)
    emit(
        "E12_alpha_beta_sweep",
        format_table(
            ["alpha/beta", "recursive ms", "iterative ms", "speedup"],
            rows,
            title="Modeled times vs machine balance (n=256, k=64, p=1024)",
        ),
    )
    speedups = [r[3] for r in rows]
    assert speedups[-1] > speedups[0]
