"""E6 — Section VII: per-part costs of It-Inv-TRSM (inversion/solve/update).

Runs the iterative solver with phase attribution and compares each phase's
measured critical-path (S, W, F) against the W_Inv / W_Solve / W_Upd /
F_* / S_* formulas.  Constants differ (the paper keeps collective-specific
factors of 2-4 that the simulator realizes exactly), so agreement is
asserted within a factor of 6 per nonzero component.
"""

from repro.analysis import format_table, iterative_parts_table

CASES = [
    (48, 24, 2, 2, 12),
    (64, 16, 2, 1, 16),
    (64, 32, 2, 2, 16),
    (32, 64, 1, 4, 8),
]


def test_parts_match_formulas(benchmark, emit):
    def build():
        return {case: iterative_parts_table(*case) for case in CASES}

    tables = benchmark.pedantic(build, rounds=1, iterations=1)
    out = []
    for case, rows in tables.items():
        n, k, p1, p2, n0 = case
        out.append(f"It-Inv-TRSM parts: n={n} k={k} p1={p1} p2={p2} n0={n0}")
        out.append(
            format_table(
                ["part", "S model", "S sim", "W model", "W sim", "F model", "F sim"],
                [[name, m.S, s.S, m.W, s.W, m.F, s.F] for name, m, s in rows],
            )
        )
        out.append("")
        for name, model, sim in rows:
            for comp in ("S", "W", "F"):
                a, b = getattr(sim, comp), getattr(model, comp)
                if a < 1e-9 and b < 1e-9:
                    continue
                assert a <= 6 * b + 2, (case, name, comp, a, b)
                assert b <= 6 * a + 2, (case, name, comp, a, b)
    emit("E6_iterative_parts", "\n".join(out))


def test_update_dominates_flops_when_many_blocks(benchmark):
    """With nb >> 1 the update phase carries most of the flops (the solve
    phase does n0 n k / p, the update ~ n^2 k / p)."""
    rows = benchmark.pedantic(
        lambda: iterative_parts_table(64, 16, 2, 1, 8), rounds=1, iterations=1
    )
    parts = {name: sim for name, _, sim in rows}
    assert parts["update"].F > parts["solve"].F


def test_inversion_latency_independent_of_block_count(benchmark):
    """All diagonal blocks invert concurrently: S_inv must not grow with
    the number of blocks (the paper's O(log^2 p), not (n/n0) log^2 p)."""

    def measure():
        t_few = iterative_parts_table(64, 16, 2, 2, 32)  # 2 blocks
        t_many = iterative_parts_table(64, 16, 2, 2, 8)  # 8 blocks
        s_few = [sim for name, _, sim in t_few if name == "inversion"][0].S
        s_many = [sim for name, _, sim in t_many if name == "inversion"][0].S
        return s_few, s_many

    s_few, s_many = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert s_many <= 2.0 * s_few + 10
