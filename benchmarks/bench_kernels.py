"""E13 — wall-clock micro-benchmarks of the local kernels.

Unlike the other benches (which measure *simulated* S/W/F), these measure
real Python/numpy wall time of the sequential kernels via pytest-benchmark
— the "is the base-case kernel BLAS-3 rich?" sanity check behind the
blocked formulations, plus a simulator-overhead measurement.
"""

import numpy as np
import pytest

from repro.inversion.sequential import invert_lower_triangular
from repro.machine import Machine
from repro.trsm.sequential import forward_substitution, trsm_lower_sequential
from repro.util.randmat import random_dense, random_lower_triangular

N = 192
K = 48


@pytest.fixture(scope="module")
def operands():
    return random_lower_triangular(N, seed=0), random_dense(N, K, seed=1)


def test_forward_substitution_wallclock(benchmark, operands):
    L, B = operands
    X = benchmark(lambda: forward_substitution(L, B))
    assert np.allclose(L @ X, B, atol=1e-9)


def test_blocked_trsm_wallclock(benchmark, operands):
    L, B = operands
    X = benchmark(lambda: trsm_lower_sequential(L, B, block=48, check=False))
    assert np.allclose(L @ X, B, atol=1e-9)


def test_blocked_beats_unblocked(benchmark):
    """The BLAS-3 blocked kernel must not be slower than row-by-row
    substitution at this size (it batches the updates into GEMMs)."""
    import time

    L = random_lower_triangular(N, seed=0)
    B = random_dense(N, K, seed=1)

    def clock(fn, reps=3):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def compare():
        t_unblocked = clock(lambda: forward_substitution(L, B))
        t_blocked = clock(
            lambda: trsm_lower_sequential(L, B, block=48, check=False)
        )
        return t_unblocked, t_blocked

    t_unblocked, t_blocked = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert t_blocked < t_unblocked * 1.2


def test_recursive_inversion_wallclock(benchmark, operands):
    L, _ = operands
    X = benchmark(lambda: invert_lower_triangular(L, base_size=32, check=False))
    assert np.allclose(L @ X, np.eye(N), atol=1e-8)


def test_simulated_solve_wallclock(benchmark):
    """End-to-end wall time of one simulated 16-rank solve — tracks the
    simulator's own overhead so regressions in the harness show up."""
    from repro import trsm

    L = random_lower_triangular(64, seed=2)
    B = random_dense(64, 16, seed=3)

    def run():
        return trsm(L, B, p=16, n0=16)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.residual < 1e-12


def test_machine_charge_overhead(benchmark):
    """Throughput of the charging hot path (vectorized numpy counters)."""
    from repro.machine.cost import Cost

    machine = Machine(64)
    group = list(range(64))
    cost = Cost(1, 100, 1000)

    def charge_many():
        for _ in range(100):
            machine.charge(group, cost)

    benchmark(charge_many)
    assert machine.critical_path().S > 0
