"""E5 — Section V-B: recursive triangular inversion costs.

Checks the paper's two headline properties of RecTriInv on the simulator:

* synchronization is polylogarithmic in p (O(log^2 p)) — in stark contrast
  to the p^{2/3}-type latency of recursive TRSM;
* bandwidth tracks the nu-formula ``nu (n^2/(8 p1^2) + n^2/(2 p1 p2))``
  within a constant factor, and the implementation recurrence within a
  tighter one.

The model sweep extends to p = 2^20.
"""

import math

from repro.analysis import format_table
from repro.inversion import rec_tri_inv_cost, rec_tri_inv_recurrence
from repro.inversion.rec_tri_inv import rec_tri_inv_global
from repro.machine import CostParams, Machine
from repro.util.checking import backward_error
from repro.util.randmat import random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def _invert(n, p, seed=0):
    sp = int(math.isqrt(p))
    machine = Machine(p, params=UNIT)
    grid = machine.grid(sp, sp)
    L = random_lower_triangular(n, seed=seed)
    inv = rec_tri_inv_global(machine, grid, L, base_n=4)
    assert backward_error(L, inv.to_global()) < 1e-11
    return machine.critical_path()


def test_inversion_costs_vs_models(benchmark, emit):
    def sweep():
        rows = []
        for n, p in [(32, 4), (64, 16), (64, 64), (128, 16)]:
            cp = _invert(n, p)
            sp = math.isqrt(p)
            closed = rec_tri_inv_cost(n, sp, 1)  # p1 = sqrt(p), p2 = 1 view
            recur = rec_tri_inv_recurrence(n, p)
            rows.append(
                [n, p, cp.S, cp.W, cp.F, closed.W, recur.W, recur.F]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E5_inversion_costs",
        format_table(
            ["n", "p", "S sim", "W sim", "F sim", "W closed", "W recur", "F recur"],
            rows,
            title="RecTriInv simulated vs Section V-B models",
        ),
    )
    for n, p, s, w, f, w_closed, w_recur, f_recur in rows:
        assert w <= 8 * w_closed + 1 and w_closed <= 8 * w + 1, (n, p)
        assert w <= 4 * w_recur + 1 and w_recur <= 4 * w + 1, (n, p)
        assert f <= 4 * f_recur + 1 and f_recur <= 4 * f + 1, (n, p)


def test_synchronization_polylog(benchmark):
    """S stays under a log^2 p envelope and its growth tracks log^2, i.e.
    S(p) / log2(p)^2 must not grow with p (at small p a pure power-law fit
    of log^2 data is misleading — a log^2 curve looks like p^0.8 between
    p = 4 and p = 64)."""

    def sweep():
        return [(p, _invert(64, p).S) for p in (4, 16, 64)]

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    normalized = [s / math.log2(p) ** 2 for p, s in pairs]
    assert max(normalized) <= 1.6 * normalized[0], normalized
    for p, s in pairs:
        assert s <= 40 * math.log2(p) ** 2


def test_model_sweep_contrast_with_trsm(benchmark, emit):
    """Model view of the paper's motivation: inversion syncs ~log^2 p while
    the recursive TRSM baseline syncs polynomially."""
    from repro.trsm.cost_model import recursive_cost_3d

    def sweep():
        rows = []
        for p in [2**e for e in range(4, 21, 4)]:
            inv = rec_tri_inv_cost(4096, math.isqrt(p), 1)
            rt = recursive_cost_3d(4096, 1024, p)
            rows.append([p, inv.S, rt.S, rt.S / max(inv.S, 1e-12)])
        return rows

    rows = benchmark(sweep)
    emit(
        "E5_inversion_vs_trsm_latency",
        format_table(
            ["p", "S RecTriInv", "S Rec-TRSM", "ratio"],
            rows,
            title="Synchronization: inversion (log^2 p) vs recursive TRSM",
        ),
    )
    ratios = [r[3] for r in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
