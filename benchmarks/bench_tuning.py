"""E7 — Section VIII parameter tables: closed forms vs discrete optimum.

For a grid of (n, k, p) spanning all three regimes, compares the paper's
closed-form parameters against the exhaustive model-search optimum and
asserts the paper's a-priori tuning claim: the closed forms land within a
small constant factor of optimal, with the prescribed grid shapes
(1D: p1 = 1, n0 = n; 2D: p2 = 1; 3D: p1 ~ (pn/4k)^{1/3}).
"""

import pytest

from repro.analysis import format_table
from repro.machine.cost import CostParams
from repro.trsm.cost_model import iterative_cost
from repro.tuning import TrsmRegime, optimize_parameters, tuned_parameters

CASES = [
    # (n, k, p) — 1D, 2D and 3D representatives at two machine sizes
    (16, 16 * 4 * 64, 64),
    (16, 16 * 4 * 1024, 1024),
    (4096, 16, 64),
    (2**15, 16, 1024),
    (256, 64, 64),
    (1024, 256, 1024),
]


def test_closed_forms_near_discrete_optimum(benchmark, emit):
    params = CostParams()

    def build():
        rows = []
        for n, k, p in CASES:
            closed = tuned_parameters(n, k, p)
            best = optimize_parameters(n, k, p, params=params)
            t_closed = iterative_cost(n, k, closed.n0, closed.p1, closed.p2).time(
                params
            )
            t_best = iterative_cost(n, k, best.n0, best.p1, best.p2).time(params)
            rows.append(
                [
                    closed.regime.value,
                    n,
                    k,
                    p,
                    f"({closed.p1},{closed.p2})",
                    closed.n0,
                    f"({best.p1},{best.p2})",
                    best.n0,
                    t_closed / t_best,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "E7_tuning_parameters",
        format_table(
            [
                "regime",
                "n",
                "k",
                "p",
                "closed (p1,p2)",
                "closed n0",
                "search (p1,p2)",
                "search n0",
                "t ratio",
            ],
            rows,
            title="Section VIII closed-form parameters vs discrete optimum",
        ),
    )
    for row in rows:
        assert row[-1] <= 4.0, row  # closed form within 4x of optimum


def test_prescribed_grid_shapes(benchmark):
    def shapes():
        one = tuned_parameters(16, 16 * 4 * 64, 64)
        two = tuned_parameters(2**15, 16, 1024)
        three = tuned_parameters(1024, 256, 1024)
        return one, two, three

    one, two, three = benchmark(shapes)
    # 1D: p1 = 1, full inversion (n0 = n)
    assert one.regime is TrsmRegime.ONE_LARGE
    assert one.p1 == 1 and one.n0 == 16
    # 2D: p2 = 1
    assert two.regime is TrsmRegime.TWO_LARGE
    assert two.p2 == 1 and two.p1 == 32
    # 3D: p1 between 1 and sqrt(p), tracking (pn/4k)^{1/3}
    assert three.regime is TrsmRegime.THREE_LARGE
    assert 1 < three.p1 < 32
    target = (1024 * 1024 / (4 * 256)) ** (1 / 3)
    assert target / 2 <= three.p1 <= target * 2


def test_r_parameters_follow_paper(benchmark):
    def values():
        return tuned_parameters(1024, 256, 1024)

    c = benchmark(values)
    # Section VIII 3D table: r1 = r2 = (min(p sqrt(nk)/n, p))^{1/3}
    expected = min(1024 * (1024 * 256) ** 0.5 / 1024, 1024) ** (1 / 3)
    assert c.r1 == pytest.approx(expected)
    assert c.r2 == pytest.approx(expected)
