"""E0 — Section II-C1 collective-cost table.

The paper's preliminaries tabulate the butterfly-collective costs that all
later analysis builds on.  This bench regenerates the table from the
simulator (real payloads, measured counters) and asserts each formula
exactly — the foundation every other experiment rests on.
"""

import math

import numpy as np
import pytest

from repro.analysis import format_table
from repro.machine import CostParams, Machine
from repro.machine.collectives import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    gather,
    reduce,
    reduce_scatter,
    scatter,
)

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def _measure(op, g, words):
    m = Machine(g, params=UNIT)
    group = list(range(g))
    if op == "allgather":
        allgather(m, group, {r: np.ones(words // g) for r in group})
    elif op == "scatter":
        scatter(m, group, 0, [np.ones(words // g) for _ in group])
    elif op == "gather":
        gather(m, group, 0, {r: np.ones(words // g) for r in group})
    elif op == "reduce_scatter":
        reduce_scatter(m, group, {r: np.ones(words) for r in group})
    elif op == "bcast":
        bcast(m, group, 0, np.ones(words))
    elif op == "reduce":
        reduce(m, group, 0, {r: np.ones(words) for r in group})
    elif op == "allreduce":
        allreduce(m, group, {r: np.ones(words) for r in group})
    elif op == "alltoall":
        blocks = {r: [np.ones(words // g) for _ in range(g)] for r in group}
        alltoall(m, group, blocks)
    else:  # pragma: no cover
        raise ValueError(op)
    return m.critical_path()


def _expected(op, g, words):
    lg = math.ceil(math.log2(g)) if g > 1 else 0
    one = 1 if g > 1 else 0
    if op in ("allgather", "scatter", "gather"):
        return lg, words * one, 0
    if op == "reduce_scatter":
        return lg, words * one, words * one
    if op == "bcast":
        return 2 * lg, 2 * words * one, 0
    if op in ("reduce", "allreduce"):
        return 2 * lg, 2 * words * one, words * one
    if op == "alltoall":
        return lg, words / 2 * lg, 0
    raise ValueError(op)


OPS = [
    "allgather",
    "scatter",
    "gather",
    "reduce_scatter",
    "bcast",
    "reduce",
    "allreduce",
    "alltoall",
]


def test_collective_cost_table(benchmark, emit):
    g, words = 8, 64

    def build():
        return {op: _measure(op, g, words) for op in OPS}

    measured = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for op in OPS:
        cp = measured[op]
        s, w, f = _expected(op, g, words)
        rows.append([op, s, cp.S, w, cp.W, f, cp.F])
        assert cp.S == pytest.approx(s), op
        assert cp.W == pytest.approx(w), op
        assert cp.F == pytest.approx(f), op
    emit(
        "E0_collective_costs",
        format_table(
            ["collective", "S paper", "S sim", "W paper", "W sim", "F paper", "F sim"],
            rows,
            title=f"Section II-C1 collective costs (p={g}, n={words} words)",
        ),
    )


def test_costs_scale_with_group_size(benchmark):
    """Latency grows one message round per doubling; words stay flat for
    the one-phase collectives (butterfly property)."""

    def sweep():
        return [(g, _measure("allgather", g, 64)) for g in (2, 4, 8, 16)]

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for g, cp in pairs:
        assert cp.S == math.log2(g)
        assert cp.W == 64


def test_singleton_groups_free(benchmark):
    def run():
        return [_measure(op, 1, 16) for op in ("allgather", "bcast", "allreduce")]

    cps = benchmark(run)
    for cp in cps:
        assert cp.S == 0 and cp.W == 0
