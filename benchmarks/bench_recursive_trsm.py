"""E4 — Section IV-A: recursive TRSM costs in the three regimes.

Simulates Rec-TRSM across machine sizes in each regime and checks the cost
shapes of T_RT1D / T_RT2D / T_RT3D: flops scale ~1/p, 1D bandwidth is flat
(~n^2), and 3D latency grows polynomially in p (the behaviour the iterative
algorithm removes).  The model curves extend the sweep to p = 2^20.
"""

import numpy as np

from repro.analysis import fit_power_law, format_table
from repro.machine import CostParams, Machine
from repro.trsm import rec_trsm_global
from repro.trsm.cost_model import (
    recursive_cost_1d,
    recursive_cost_2d,
    recursive_cost_3d,
)
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def _run(n, k, p, grid_shape, n0=None, seed=0):
    machine = Machine(p, params=UNIT)
    grid = machine.grid(*grid_shape)
    L = random_lower_triangular(n, seed=seed)
    B = random_dense(n, k, seed=seed + 1)
    X = rec_trsm_global(machine, L, B, grid=grid, n0=n0)
    from repro.util.checking import relative_residual

    assert relative_residual(L, X.to_global(), B) < 1e-12
    return machine.critical_path()


def test_recursive_regime_costs(benchmark, emit):
    def sweep():
        rows = []
        # 3D-ish square problems
        for p, shape in [(1, (1, 1)), (4, (2, 2)), (16, (4, 4))]:
            cp = _run(64, 16, p, shape)
            model = recursive_cost_3d(64, 16, p)
            rows.append(["3D", 64, 16, p, cp.S, cp.W, cp.F, model.F])
        # 1D: k >> n p
        for p, shape in [(2, (1, 2)), (4, (1, 4)), (8, (1, 8))]:
            cp = _run(16, 16 * 8 * p, p, shape)
            model = recursive_cost_1d(16, 16 * 8 * p, p)
            rows.append(["1D", 16, 16 * 8 * p, p, cp.S, cp.W, cp.F, model.F])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "E4_recursive_trsm",
        format_table(
            ["regime", "n", "k", "p", "S sim", "W sim", "F sim", "F model"],
            rows,
            title="Rec-TRSM simulated costs vs Section IV-A models",
        ),
    )

    # flops shrink with p within each regime, tracking the model
    r3 = [r for r in rows if r[0] == "3D"]
    assert r3[0][6] > r3[1][6] > r3[2][6]
    for r in r3:
        assert r[6] <= 4 * r[7] + 1  # measured F within 4x of n^2 k / p

    # 1D bandwidth is ~n^2, independent of p
    r1 = [r for r in rows if r[0] == "1D"]
    ws = [r[5] for r in r1]
    assert max(ws) <= 3 * min(ws)


def test_3d_latency_polynomial_in_p(benchmark):
    """The standard method's synchronization grows polynomially with p."""

    def sweep():
        out = []
        # default n0 shrinks with p (Section IV-A), which is what makes
        # the baseline's latency polynomial in p
        for p, shape in [(4, (2, 2)), (16, (4, 4)), (64, (8, 8))]:
            cp = _run(64, 16, p, shape)
            out.append((p, cp.S))
        return out

    pairs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent, _ = fit_power_law(
        [float(p) for p, _ in pairs], [s for _, s in pairs]
    )
    # clearly polynomial (the paper's (np/k)^{2/3} log p; log factors and
    # base-case effects flatten the fit slightly at these small p)
    assert exponent > 0.3, exponent
    # and the normalized S/log^2(p) curve must GROW (unlike RecTriInv's)
    norm = [s / (np.log2(p) ** 2) for p, s in pairs]
    assert norm[-1] > 1.5 * norm[0]


def test_model_sweep_to_huge_p(benchmark):
    def sweep():
        rows = []
        for p in [2**e for e in range(6, 21, 2)]:
            rows.append(
                (
                    p,
                    recursive_cost_3d(4 * 64, 64, p).S,
                    recursive_cost_2d(8 * 64 * int(p**0.5), 64, p).S,
                    recursive_cost_1d(64, 4 * 64 * p, p).S,
                )
            )
        return rows

    rows = benchmark(sweep)
    s3 = [r[1] for r in rows]
    assert all(b > a for a, b in zip(s3, s3[1:]))  # monotone in p
