"""Backend parity and the modeled-vs-measured gap, as a machine artifact.

The backend seam's whole promise is twofold: ``SimBackend`` is the old
simulator bit for bit, and ``MPIBackend`` executes the *same* routing
plans over a communicator while measuring wall-clock seconds.  This
bench drives one serve replay through both (the MPI path over the
in-process loopback communicator, so it runs everywhere) and records the
per-phase modeled-vs-measured relative errors to
``benchmarks/results/BENCH_backend.json``.

The gap itself is *recorded, not gated* — loopback wall-clock numbers on
a shared CI runner are weather, and the point of the artifact is to
track the model's calibration over time.  What is asserted is the shape:
sim measurements are self-consistent (relative error exactly zero),
loopback measurements are real (positive seconds), and both backends
produce bit-identical solutions.

Run via ``make bench-backend``, or under ``BENCH_SMOKE=1`` for the tiny
sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np

from repro.analysis import validation_report
from repro.api.serve import poisson_stream, replay
from repro.backend import SimBackend
from repro.backend.mpi import LoopbackComm, MPIBackend

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

P = 16
COUNT = 4 if SMOKE else 12
RATE = 2e3


def _stream():
    return poisson_stream(
        COUNT, rate=RATE, n_range=(32, 96), k_range=(8, 32), seed=3
    )


def _hashes(outcome) -> list[str]:
    return [
        hashlib.sha256(
            np.ascontiguousarray(r.value, dtype=np.float64).tobytes()
        ).hexdigest()[:16]
        for r in outcome.records
    ]


def _rows(report) -> dict:
    return {
        row.group: {
            "plans": row.plans,
            "words": row.words,
            "modeled_seconds": row.modeled_seconds,
            "measured_seconds": row.measured_seconds,
            "relative_error": row.relative_error,
        }
        for row in report.by_phase
    }


def test_backend_parity_and_validation_gap(emit, results_dir, benchmark):
    """Same plans, same bits; the sim/loopback gap lands in the artifact."""

    def run(backend):
        outcome = replay(_stream(), p=P, backend=backend)
        return outcome, validation_report(backend, outcome)

    sim_backend = SimBackend()
    mpi_backend = MPIBackend(comm=LoopbackComm())
    sim_outcome, sim_report = benchmark.pedantic(
        run, args=(sim_backend,), rounds=1, iterations=1
    )
    mpi_outcome, mpi_report = run(mpi_backend)

    # parity: the same routing plans produce the same solutions, bit for bit
    assert _hashes(sim_outcome) == _hashes(mpi_outcome)

    # sim is self-consistent by construction; loopback measures real time
    sim_total = sim_report.total()
    mpi_total = mpi_report.total()
    assert sim_total.relative_error == 0.0
    assert mpi_total.measured_seconds > 0.0
    assert mpi_total.plans == sim_total.plans

    payload = {
        "smoke": SMOKE,
        "p": P,
        "count": COUNT,
        "rate": RATE,
        "sim": {
            "world": sim_backend.world_size,
            "total_relative_error": sim_total.relative_error,
            "by_phase": _rows(sim_report),
        },
        "mpi_loopback": {
            "world": mpi_backend.world_size,
            "total_modeled_seconds": mpi_total.modeled_seconds,
            "total_measured_seconds": mpi_total.measured_seconds,
            "total_relative_error": mpi_total.relative_error,
            "by_phase": _rows(mpi_report),
        },
    }
    path = pathlib.Path(results_dir) / "BENCH_backend.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    emit(
        "backend_validation",
        f"backend parity: {COUNT} requests on p={P}, "
        f"{sim_total.plans} plans routed\n"
        + mpi_report.render(),
    )
