"""E2 — Figure 1: one-/two-/three-dimensional layout by relative sizes.

Regenerates the regime map over a logarithmic (n/k, p) grid and asserts its
structure: the 3D band sits between 1D (k >> n p) and 2D (n >> k sqrt(p)),
is monotone in the n/k ratio for fixed p, and widens as p grows.
"""

from repro.analysis import regime_map, render_regime_map
from repro.tuning.regimes import TrsmRegime


ORDER = {
    TrsmRegime.ONE_LARGE: 0,
    TrsmRegime.THREE_LARGE: 1,
    TrsmRegime.TWO_LARGE: 2,
}


def test_figure1_regime_map(benchmark, emit):
    rmap = benchmark.pedantic(
        lambda: regime_map((-8, 8), (4, 65536)), rounds=1, iterations=1
    )
    emit("E2_figure1_regime_map", render_regime_map(rmap))

    # all three regimes appear
    seen = {r for row in rmap.labels for r in row}
    assert seen == set(ORDER)

    # monotone 1D -> 3D -> 2D in the ratio for every machine size
    for j in range(len(rmap.ps)):
        col = [ORDER[rmap.labels[i][j]] for i in range(len(rmap.ratios))]
        assert col == sorted(col)

    # the 3D band widens with p (more rows classified 3D at larger p)
    width = [
        sum(1 for i in range(len(rmap.ratios)) if rmap.labels[i][j] is TrsmRegime.THREE_LARGE)
        for j in range(len(rmap.ps))
    ]
    assert width == sorted(width)
    assert width[-1] > width[0]


def test_regime_boundaries_match_thresholds(benchmark):
    """The map's transitions sit exactly at n = 4k/p and n = 4k sqrt(p)."""
    from repro.tuning.regimes import classify_trsm, regime_boundaries

    def check():
        for k in (16, 256):
            for p in (16, 1024):
                lo, hi = regime_boundaries(k, p)
                if lo > 2:  # a 1D point exists only when 4k/p > 1
                    assert (
                        classify_trsm(int(lo) - 1, k, p) is TrsmRegime.ONE_LARGE
                    )
                assert classify_trsm(int(lo) + 1, k, p) is TrsmRegime.THREE_LARGE
                assert classify_trsm(int(hi) - 1, k, p) is TrsmRegime.THREE_LARGE
                assert classify_trsm(int(hi) + 1, k, p) is TrsmRegime.TWO_LARGE
        return True

    assert benchmark(check)
