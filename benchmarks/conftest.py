"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one paper artifact (table or figure; see DESIGN.md
section 4 for the experiment index) and

* writes the regenerated artifact to ``benchmarks/results/<name>.txt``,
* asserts the *shape* of the paper's claim (who wins, growth exponents,
  crossovers) — not absolute constants, and
* exposes at least one timed callable through pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` produces timing output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Write (and echo) a named artifact file."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ({path}) ---")
        print(text)

    return _emit
