"""Shared infrastructure for the paper-reproduction benches.

Every bench regenerates one paper artifact (table or figure; see DESIGN.md
section 4 for the experiment index) and

* writes the regenerated artifact to ``benchmarks/results/<name>.txt``,
* asserts the *shape* of the paper's claim (who wins, growth exponents,
  crossovers) — not absolute constants, and
* exposes at least one timed callable through pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` produces timing output.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

if importlib.util.find_spec("pytest_benchmark") is None:

    class _FallbackBenchmark:
        """Minimal stand-in when pytest-benchmark is not installed.

        Runs the callable once and returns its result, so the benches
        still execute their sweeps and assertions (``make bench-smoke``
        in minimal CI environments) — just without timing statistics.
        """

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _FallbackBenchmark()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Write (and echo) a named artifact file."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n--- {name} ({path}) ---")
        print(text)

    return _emit
