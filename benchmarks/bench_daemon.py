"""Daemon sustained throughput: the online front-end under seeded load.

The :class:`~repro.api.online.daemon.ServeDaemon` load-test mode drives
the whole online pipeline — arrival process, admission gate, priority
queue, batch flushes onto fresh Clusters — with no wall clock in the
loop, so the run is exactly reproducible while the *cost* of running it
is real.  Two artifacts:

* **sustained throughput** — a seeded Poisson load test end to end
  (matrix generation, staging plans, solves, telemetry), gated on a
  wall-clock requests-per-second floor and emitted as machine-readable
  ``benchmarks/results/BENCH_daemon.json`` (the CI bench job uploads it
  next to ``BENCH_serve.json`` / ``BENCH_throughput.json``);
* **arrival shapes** — the same request mix under poisson / lognormal /
  diurnal arrivals: heavy tails should show up in the latency
  percentiles, not the completion count.

Run via ``make bench-daemon``, or ``make bench-smoke`` for the tiny
sweep.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.api.online import DaemonConfig, ServeDaemon

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

P = 16
COUNT = 24 if SMOKE else 200
RATE = 2e4
#: measured ~100 req/s (smoke) / ~130 req/s (full) on the dev box;
#: the floor leaves ~5x headroom for slower CI runners
WALL_RPS_FLOOR = 15.0 if SMOKE else 25.0


def _daemon(**kw) -> ServeDaemon:
    return ServeDaemon(
        DaemonConfig(p=P, batch=8, time_scale=1.0, verify=False, **kw)
    )


def test_daemon_sustained_throughput_floor(emit, results_dir, benchmark):
    """The load test completes everything offered, above the RPS floor."""

    def run():
        t0 = time.perf_counter()
        summary = _daemon().run_load_test(
            COUNT, rate=RATE, n_range=(64, 128), k_range=(8, 32), seed=0
        )
        return summary, time.perf_counter() - t0

    summary, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    wall_rps = summary["completed"] / elapsed

    assert summary["offered"] == COUNT
    assert summary["completed"] == COUNT  # no admission configured: all run
    assert summary["rejected"] == 0 and summary["deferred"] == 0
    assert wall_rps >= WALL_RPS_FLOOR, (
        f"daemon throughput regressed: {wall_rps:.0f} req/s "
        f"< floor {WALL_RPS_FLOOR:.0f}"
    )

    payload = {
        "smoke": SMOKE,
        "p": P,
        "count": COUNT,
        "rate": RATE,
        "wall_seconds": elapsed,
        "wall_rps": wall_rps,
        "wall_rps_floor": WALL_RPS_FLOOR,
        "sim_throughput_rps": summary["throughput_rps"],
        "occupancy": summary["occupancy"],
        "latency": summary["latency"],
        "admission": summary["admission"],
        "plan_cache": summary["plan_cache"],
        "pricing_memo": summary["pricing_memo"],
    }
    path = pathlib.Path(results_dir) / "BENCH_daemon.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    emit(
        "daemon_load",
        f"daemon load test: {COUNT} requests at rate {RATE:.0f}/s on p={P}\n"
        f"wall throughput   : {wall_rps:.1f} req/s "
        f"(floor {WALL_RPS_FLOOR:.0f})\n"
        f"sim throughput    : {summary['throughput_rps']:.1f} req/s\n"
        f"latency           : "
        + " / ".join(f"{k} {v * 1e6:.2f} us" for k, v in summary["latency"].items()),
    )


def test_arrival_shapes_move_the_tail_not_the_count(emit, benchmark):
    """Heavy-tailed and diurnal arrivals complete the same work; the
    difference lives in the latency percentiles."""
    count = 16 if SMOKE else 96

    def run(process):
        return _daemon().run_load_test(
            count,
            rate=RATE,
            process=process,
            n_range=(64, 128),
            k_range=(8, 32),
            seed=0,
        )

    rows = []
    summaries = {}
    for process in ("poisson", "lognormal", "diurnal"):
        # time one representative process; the sweep itself runs plain
        if process == "poisson":
            summary = benchmark.pedantic(run, args=(process,), rounds=1, iterations=1)
        else:
            summary = run(process)
        summaries[process] = summary
        assert summary["completed"] == count
        rows.append(
            f"{process:<10} p50 {summary['latency']['p50'] * 1e6:9.2f} us   "
            f"p99 {summary['latency']['p99'] * 1e6:9.2f} us"
        )
    # same seed, same mean rate: the tail index is the only knob turned
    assert all(s["completed"] == count for s in summaries.values())
    emit("daemon_arrivals", "\n".join(rows))
