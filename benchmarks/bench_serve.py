"""E9 — serve throughput: subgrid packing vs serial full-grid execution.

The Cluster front-end packs a queue of heterogeneous TRSM requests onto
disjoint subgrids (``repro.sched``), staging every operand with the exact
:mod:`repro.dist.routing` migration plan.  This bench regenerates the
acceptance artifact:

* **burst** — >= 8 mixed (n, k) requests arriving at t = 0 on p = 64.
  Asserts the modeled makespan is *strictly below* serial full-grid
  execution (the whole point of the redesign: small solves are
  latency-bound, so a fraction of the machine per solve plus concurrency
  beats the full grid run serially), and that every request verifies;
* **poisson** — the same mix replayed as a Poisson arrival stream,
  reporting makespan, occupancy and throughput per arrival rate;
* **prepared** — a PreparedSolve stream against *one hosted factor*: the
  staged-copy operand cache (PR 4) must pay the factor migration once per
  subgrid tenancy, with ``staging_saved_seconds > 0`` and a hit rate of
  at least 50 % on the repeat placements, bit-identically to a cache-off
  run.

Run via ``make bench-smoke`` (tiny sweep, CI-gated) or directly with
pytest for the full table.
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.analysis.serve import serve_report
from repro.api.serve import poisson_stream, replay, replay_prepared
from repro.machine.cost import HARDWARE_PRESETS
from repro.trsm.prepared import PreparedTrsm
from repro.util.randmat import random_lower_triangular

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

P = 16 if SMOKE else 64
COUNT = 6 if SMOKE else 12
N_RANGE = (32, 64) if SMOKE else (64, 256)
K_RANGE = (8, 16) if SMOKE else (8, 64)


def test_burst_beats_serial_full_grid(emit, benchmark):
    """Burst queue: packed makespan strictly below the serial baseline."""
    stream = poisson_stream(
        count=max(COUNT, 8) if not SMOKE else COUNT,
        rate=0.0,
        n_range=N_RANGE,
        k_range=K_RANGE,
        seed=0,
    )
    outcome = benchmark(lambda: replay(stream, p=P))
    emit("serve_burst", serve_report(outcome))

    assert len(outcome.records) == len(stream)
    # every operand migration came from an exact routing plan; a request
    # with a wrong answer would have residual > 1e-9 (or None only if
    # verification were skipped, which replay() does not do here)
    for rec in outcome.records:
        assert rec.residual is not None and rec.residual < 1e-9
    assert outcome.modeled_makespan < outcome.serial_seconds, (
        "packing must strictly beat serial full-grid execution"
    )
    assert 0.0 < outcome.occupancy <= 1.0


def test_poisson_stream_throughput(emit, benchmark):
    """Poisson replay across arrival rates and machine presets."""
    rows = []
    presets = ["default"] if SMOKE else ["default", "latency_bound"]
    rates = [0.0, 5e4] if SMOKE else [0.0, 2e4, 1e5]
    for preset in presets:
        params = HARDWARE_PRESETS[preset]
        for rate in rates:
            stream = poisson_stream(
                count=COUNT, rate=rate, n_range=N_RANGE, k_range=K_RANGE, seed=1
            )
            outcome = replay(stream, p=P, params=params)
            rows.append(
                [
                    preset,
                    f"{rate:.0f}" if rate else "burst",
                    len(outcome.records),
                    outcome.modeled_makespan * 1e6,
                    outcome.serial_seconds * 1e6,
                    outcome.speedup_vs_serial(),
                    outcome.occupancy,
                ]
            )
            assert len(outcome.records) == COUNT
            # arrivals only ever delay work; with all requests at t=0 the
            # packed makespan can never exceed running them one by one
            if rate == 0.0:
                assert outcome.modeled_makespan <= outcome.serial_seconds + 1e-12

    table = format_table(
        [
            "machine",
            "rate 1/s",
            "requests",
            "makespan us",
            "serial us",
            "speedup",
            "occupancy",
        ],
        rows,
        title=f"Poisson serve sweep (p={P}, n in {N_RANGE}, k in {K_RANGE})",
    )
    emit("serve_poisson", table)
    benchmark(lambda: None)


def test_prepared_stream_amortizes_factor_migration(emit, benchmark):
    """One hosted factor, >= 8 prepared solves: the operand cache pays the
    factor migration once per subgrid tenancy (region-accounted)."""
    n = 64 if SMOKE else 128
    count = 8 if SMOKE else 12
    size = P // 4
    solver = PreparedTrsm(random_lower_triangular(n, seed=0), p=P, k_hint=8)

    on = benchmark(
        lambda: replay_prepared(
            solver, count=count, p=P, k=8, seed=5, cache=True, size=size
        )
    )
    off = replay_prepared(solver, count=count, p=P, k=8, seed=5, cache=False, size=size)
    emit("serve_prepared", serve_report(on))

    assert len(on.records) == count
    # the reuse win is real and region-accounted: saved time is positive,
    # and the factor pair migrated exactly once per distinct subgrid
    assert on.staging_saved_seconds > 0.0
    blocks = {tuple(r.grid.ranks()) for r in on.records}
    assert on.staging_misses == 2 * len(blocks)
    # hit rate >= 50% across the repeat placements
    assert on.staging_hit_rate() >= 0.5
    repeats = count - len(blocks)
    assert on.staging_hits == 2 * repeats and repeats > 0
    # ...and bit-identical, cheaper-or-equal results vs the cache-off run
    for r in on.records:
        o = off.record(r.rid)
        assert r.value.tobytes() == o.value.tobytes()
        if r.staging_hit:
            assert r.measured.W < o.measured.W
        else:
            assert r.measured == o.measured
    assert on.measured_makespan < off.measured_makespan
    assert on.modeled_makespan <= off.modeled_makespan
