"""E9 — serve throughput: subgrid packing vs serial full-grid execution.

The Cluster front-end packs a queue of heterogeneous TRSM requests onto
disjoint subgrids (``repro.sched``), staging every operand with the exact
:mod:`repro.dist.routing` migration plan.  This bench regenerates the
acceptance artifact:

* **burst** — >= 8 mixed (n, k) requests arriving at t = 0 on p = 64.
  Asserts the modeled makespan is *strictly below* serial full-grid
  execution (the whole point of the redesign: small solves are
  latency-bound, so a fraction of the machine per solve plus concurrency
  beats the full grid run serially), and that every request verifies;
* **poisson** — the same mix replayed as a Poisson arrival stream,
  reporting makespan, occupancy and throughput per arrival rate;
* **prepared** — a PreparedSolve stream against *one hosted factor*: the
  staged-copy operand cache (PR 4) must pay the factor migration once per
  subgrid tenancy, with ``staging_saved_seconds > 0`` and a hit rate of
  at least 50 % on the repeat placements, bit-identically to a cache-off
  run;
* **policies** — the packing-policy sweep (PR 5, tightened by the
  rolling-horizon PR): every stream replayed under LPT, conservative
  backfilling and the rolling-horizon policy.  Gates: ``backfill <= LPT``
  on the representative streams (strict win on the mixed small/large
  pinned stream), ``horizon <= min(lpt, backfill)`` on *every* recorded
  stream — including the arrival-heavy counterexample where backfill
  loses to LPT — and ``horizon <= 1.1 x optimal`` on every small queue
  the exhaustive :class:`~repro.sched.OptimalPolicy` ground truth can
  price (including the tiny-burst stream where LPT sits ~67 % above the
  optimum).  The whole sweep — plus the opcache reuse gate — is emitted
  as machine-readable ``benchmarks/results/BENCH_serve.json`` so the CI
  bench job can upload it and track the trajectory across commits.

Run via ``make bench-smoke`` (tiny sweep, CI-gated) or directly with
pytest for the full table.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analysis import format_table
from repro.analysis.serve import policy_gap_data, serve_report
from repro.api.serve import poisson_stream, replay, replay_mixed, replay_prepared
from repro.machine.cost import HARDWARE_PRESETS
from repro.trsm.prepared import PreparedTrsm
from repro.util.randmat import random_lower_triangular

SMOKE = bool(int(os.environ.get("BENCH_SMOKE", "0")))

P = 16 if SMOKE else 64
COUNT = 6 if SMOKE else 12
N_RANGE = (32, 64) if SMOKE else (64, 256)
K_RANGE = (8, 16) if SMOKE else (8, 64)


def test_burst_beats_serial_full_grid(emit, benchmark):
    """Burst queue: packed makespan strictly below the serial baseline."""
    stream = poisson_stream(
        count=max(COUNT, 8) if not SMOKE else COUNT,
        rate=0.0,
        n_range=N_RANGE,
        k_range=K_RANGE,
        seed=0,
    )
    outcome = benchmark(lambda: replay(stream, p=P))
    emit("serve_burst", serve_report(outcome))

    assert len(outcome.records) == len(stream)
    # every operand migration came from an exact routing plan; a request
    # with a wrong answer would have residual > 1e-9 (or None only if
    # verification were skipped, which replay() does not do here)
    for rec in outcome.records:
        assert rec.residual is not None and rec.residual < 1e-9
    assert outcome.modeled_makespan < outcome.serial_seconds, (
        "packing must strictly beat serial full-grid execution"
    )
    assert 0.0 < outcome.occupancy <= 1.0


def test_poisson_stream_throughput(emit, benchmark):
    """Poisson replay across arrival rates and machine presets."""
    rows = []
    presets = ["default"] if SMOKE else ["default", "latency_bound"]
    rates = [0.0, 5e4] if SMOKE else [0.0, 2e4, 1e5]
    for preset in presets:
        params = HARDWARE_PRESETS[preset]
        for rate in rates:
            stream = poisson_stream(
                count=COUNT, rate=rate, n_range=N_RANGE, k_range=K_RANGE, seed=1
            )
            outcome = replay(stream, p=P, params=params)
            rows.append(
                [
                    preset,
                    f"{rate:.0f}" if rate else "burst",
                    len(outcome.records),
                    outcome.modeled_makespan * 1e6,
                    outcome.serial_seconds * 1e6,
                    outcome.speedup_vs_serial(),
                    outcome.occupancy,
                ]
            )
            assert len(outcome.records) == COUNT
            # arrivals only ever delay work; with all requests at t=0 the
            # packed makespan can never exceed running them one by one
            if rate == 0.0:
                assert outcome.modeled_makespan <= outcome.serial_seconds + 1e-12

    table = format_table(
        [
            "machine",
            "rate 1/s",
            "requests",
            "makespan us",
            "serial us",
            "speedup",
            "occupancy",
        ],
        rows,
        title=f"Poisson serve sweep (p={P}, n in {N_RANGE}, k in {K_RANGE})",
    )
    emit("serve_poisson", table)
    benchmark(lambda: None)


def test_prepared_stream_amortizes_factor_migration(emit, benchmark):
    """One hosted factor, >= 8 prepared solves: the operand cache pays the
    factor migration once per subgrid tenancy (region-accounted)."""
    n = 64 if SMOKE else 128
    count = 8 if SMOKE else 12
    size = P // 4
    solver = PreparedTrsm(random_lower_triangular(n, seed=0), p=P, k_hint=8)

    on = benchmark(
        lambda: replay_prepared(
            solver, count=count, p=P, k=8, seed=5, cache=True, size=size
        )
    )
    off = replay_prepared(solver, count=count, p=P, k=8, seed=5, cache=False, size=size)
    emit("serve_prepared", serve_report(on))

    assert len(on.records) == count
    # the reuse win is real and region-accounted: saved time is positive,
    # and the factor pair migrated exactly once per distinct subgrid
    assert on.staging_saved_seconds > 0.0
    blocks = {tuple(r.grid.ranks()) for r in on.records}
    assert on.staging_misses == 2 * len(blocks)
    # hit rate >= 50% across the repeat placements
    assert on.staging_hit_rate() >= 0.5
    repeats = count - len(blocks)
    assert on.staging_hits == 2 * repeats and repeats > 0
    # ...and bit-identical, cheaper-or-equal results vs the cache-off run
    for r in on.records:
        o = off.record(r.rid)
        assert r.value.tobytes() == o.value.tobytes()
        if r.staging_hit:
            assert r.measured.W < o.measured.W
        else:
            assert r.measured == o.measured
    assert on.measured_makespan < off.measured_makespan
    assert on.modeled_makespan <= off.modeled_makespan


def test_policy_sweep_emits_bench_json(emit, results_dir, benchmark):
    """E10 — packing policies: backfill never loses to LPT on the sweep
    streams (strict win on the mixed pinned stream), horizon never loses
    to *either* incumbent on any recorded stream (including the
    arrival-heavy counterexample where backfill loses to LPT), horizon
    stays within 1.1x of the exhaustive optimum on every small queue,
    and the whole comparison lands in ``BENCH_serve.json`` for the CI
    bench job."""
    report: dict = {"smoke": SMOKE, "p": P}

    def _gate_horizon(hor: float, lpt: float, bf: float, label: str) -> None:
        floor = min(lpt, bf)
        assert hor <= floor * (1 + 1e-9), (
            f"horizon must not lose to lpt/backfill ({label}): "
            f"{hor} > min({lpt}, {bf})"
        )

    # -- horizon vs backfill vs LPT on representative streams ------------
    sweep_rows = []
    sweep_json = []
    rates = (0.0, 5e4) if SMOKE else (0.0, 2e4, 1e5)
    seeds = (0, 1, 2) if SMOKE else (0, 1, 3)
    for seed in seeds:
        for rate in rates:
            stream = poisson_stream(
                count=COUNT, rate=rate, n_range=N_RANGE, k_range=K_RANGE, seed=seed
            )
            lpt = replay(stream, p=P, policy="lpt", cache=False, verify=False)
            bf = replay(stream, p=P, policy="backfill", cache=False, verify=False)
            hor = replay(stream, p=P, policy="horizon", cache=False, verify=False)
            assert bf.modeled_makespan <= lpt.modeled_makespan * (1 + 1e-9), (
                f"backfill must not lose to LPT (seed {seed}, rate {rate:.0f}): "
                f"{bf.modeled_makespan} > {lpt.modeled_makespan}"
            )
            _gate_horizon(
                hor.modeled_makespan,
                lpt.modeled_makespan,
                bf.modeled_makespan,
                f"seed {seed}, rate {rate:.0f}",
            )
            sweep_rows.append(
                [
                    seed,
                    f"{rate:.0f}" if rate else "burst",
                    lpt.modeled_makespan * 1e6,
                    bf.modeled_makespan * 1e6,
                    hor.modeled_makespan * 1e6,
                    min(lpt.modeled_makespan, bf.modeled_makespan)
                    / hor.modeled_makespan,
                ]
            )
            sweep_json.append(
                {
                    "seed": seed,
                    "rate": rate,
                    "requests": COUNT,
                    "lpt_makespan_seconds": lpt.modeled_makespan,
                    "backfill_makespan_seconds": bf.modeled_makespan,
                    "horizon_makespan_seconds": hor.modeled_makespan,
                }
            )
    report["backfill_vs_lpt"] = sweep_json
    # The backfill counterexample (tracked since PR 5): on this
    # arrival-heavy stream the reservation's conservatism costs backfill
    # ~6% vs LPT — still deliberately ungated for backfill.  Horizon IS
    # gated here: the windowed search dominates both incumbents on every
    # recorded stream, counterexample included.
    if not SMOKE:
        counter = poisson_stream(
            count=COUNT, rate=1e5, n_range=N_RANGE, k_range=K_RANGE, seed=2
        )
        c_lpt = replay(counter, p=P, policy="lpt", cache=False, verify=False)
        c_bf = replay(counter, p=P, policy="backfill", cache=False, verify=False)
        c_hor = replay(counter, p=P, policy="horizon", cache=False, verify=False)
        _gate_horizon(
            c_hor.modeled_makespan,
            c_lpt.modeled_makespan,
            c_bf.modeled_makespan,
            "counterexample seed 2, rate 1e5",
        )
        report["backfill_counterexample_ungated"] = {
            "seed": 2,
            "rate": 1e5,
            "requests": COUNT,
            "lpt_makespan_seconds": c_lpt.modeled_makespan,
            "backfill_makespan_seconds": c_bf.modeled_makespan,
            "horizon_makespan_seconds": c_hor.modeled_makespan,
        }

    # -- the mixed small/large pinned stream: the strict backfill win ----
    smalls = 8 if SMOKE else 10
    mixed_lpt = benchmark(
        lambda: replay_mixed(p=16, policy="lpt", smalls=smalls)
    )
    mixed_bf = replay_mixed(p=16, policy="backfill", smalls=smalls)
    mixed_hor = replay_mixed(p=16, policy="horizon", smalls=smalls)
    win = 1.0 - mixed_bf.modeled_makespan / mixed_lpt.modeled_makespan
    assert mixed_bf.modeled_makespan < mixed_lpt.modeled_makespan, (
        "backfilling must strictly beat greedy LPT on the mixed pinned stream"
    )
    assert win > 0.05, f"the backfill win collapsed to {win * 100.0:.2f}%"
    _gate_horizon(
        mixed_hor.modeled_makespan,
        mixed_lpt.modeled_makespan,
        mixed_bf.modeled_makespan,
        "mixed pinned stream",
    )
    report["mixed_stream_win"] = {
        "lpt_makespan_seconds": mixed_lpt.modeled_makespan,
        "backfill_makespan_seconds": mixed_bf.modeled_makespan,
        "horizon_makespan_seconds": mixed_hor.modeled_makespan,
        "win_fraction": win,
    }

    # -- small queues vs the exhaustive optimum --------------------------
    gap_specs = [(16, (64, 128), (8, 32), s, 0.0) for s in (0, 1, 2)]
    gap_specs += [(16, (64, 128), (8, 32), 0, 3e4)]
    if not SMOKE:
        gap_specs += [(64, (64, 256), (16, 64), s, 0.0) for s in (0, 1, 2)]
    gap_rows = []
    gap_json = []
    for p, nr, kr, seed, rate in gap_specs:
        stream = poisson_stream(count=6, rate=rate, n_range=nr, k_range=kr, seed=seed)
        data = policy_gap_data(stream, p=p)
        lpt_gap = data["gap_vs_optimal_pct"]["lpt"]
        bf_gap = data["gap_vs_optimal_pct"]["backfill"]
        hor_gap = data["gap_vs_optimal_pct"]["horizon"]
        assert hor_gap is not None and hor_gap <= 10.0, (
            f"horizon exceeded 1.1x the exhaustive optimum "
            f"(p={p}, seed={seed}, rate={rate:.0f}: +{hor_gap:.2f}%)"
        )
        assert hor_gap >= -1e-6  # optimal is a floor
        assert bf_gap is not None and bf_gap >= -1e-6
        assert lpt_gap is not None and lpt_gap >= -1e-6
        gap_rows.append(
            [p, seed, f"{rate:.0f}" if rate else "burst",
             f"+{lpt_gap:.2f}", f"+{bf_gap:.2f}", f"+{hor_gap:.2f}"]
        )
        gap_json.append(
            {"p": p, "seed": seed, "rate": rate, **data}
        )
    # adversarial tiny-burst stream: the ~67% LPT/backfill loss stays
    # tracked (ungated) in the JSON — but horizon is gated to close it
    adversarial = policy_gap_data(
        poisson_stream(count=6, rate=0.0, n_range=(32, 64), k_range=(8, 16), seed=0),
        p=16,
    )
    adv_hor = adversarial["gap_vs_optimal_pct"]["horizon"]
    assert adv_hor is not None and -1e-6 <= adv_hor <= 10.0, (
        f"horizon exceeded 1.1x the optimum on the adversarial tiny burst "
        f"(+{adv_hor:.2f}%)"
    )
    report["gap_vs_optimal"] = gap_json
    report["gap_adversarial_ungated"] = adversarial

    # -- the opcache reuse gate (CI fails when the saving regresses) -----
    solver = PreparedTrsm(random_lower_triangular(64, seed=0), p=16, k_hint=8)
    cached = replay_prepared(solver, count=8, p=16, k=8, seed=5, cache=True, size=4)
    assert cached.staging_saved_seconds > 0.0, "opcache stopped saving staging time"
    assert cached.staging_hit_rate() >= 0.5, "opcache hit rate regressed below 50%"
    report["opcache"] = {
        "staging_saved_seconds": cached.staging_saved_seconds,
        "hit_rate": cached.staging_hit_rate(),
        "hits": cached.staging_hits,
        "misses": cached.staging_misses,
    }

    path = pathlib.Path(results_dir) / "BENCH_serve.json"
    path.write_text(json.dumps(report, indent=2) + "\n")
    table = format_table(
        ["seed", "rate 1/s", "lpt us", "backfill us", "horizon us", "best/horizon"],
        sweep_rows,
        title=f"Policy sweep (p={P}, n in {N_RANGE}, k in {K_RANGE})",
    )
    gap_table = format_table(
        ["p", "seed", "rate 1/s", "lpt vs opt", "backfill vs opt", "horizon vs opt"],
        gap_rows,
        title="Small-queue gap vs exhaustive optimum (6 requests, cache off)",
    )
    emit(
        "serve_policies",
        table
        + "\n\n"
        + gap_table
        + f"\n\nmixed pinned stream: backfill wins {win * 100.0:.1f}%"
        + f"\nwrote {path}",
    )
