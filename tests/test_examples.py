"""Smoke tests: every example script runs end to end on small inputs."""

import os
import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, *args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py", "64", "16", "16")
    assert "residual" in out
    assert "critical path" in out


def test_cholesky_solver():
    out = run_example("cholesky_solver.py", "64", "16", "16")
    assert "relative error" in out
    assert "forward solve" in out and "backward solve" in out


def test_regime_explorer():
    out = run_example("regime_explorer.py", "256", "64", "64")
    assert "Figure 1" in out
    assert "closed form" in out


def test_machine_comparison():
    out = run_example("machine_comparison.py", "48", "12")
    assert "latency_bound" in out
    assert "Strong scaling" in out


def test_lu_solver():
    out = run_example("lu_solver.py", "48", "12", "16")
    assert "relative error" in out
    assert "U solve" in out


def test_repeated_solves():
    out = run_example("repeated_solves.py", "64", "16", "16", "10")
    assert "per application" in out
    assert "speedup" in out


def test_factorization_pipeline():
    out = run_example("factorization_pipeline.py", "64", "8", "16", "2")
    assert "factorization" in out
    assert "pipeline total" in out


def test_custom_algorithm():
    out = run_example("custom_algorithm.py", "64", "16", "8")
    assert "preconditioned Richardson" in out
    assert "per application" in out


def test_cluster_serve():
    out = run_example("cluster_serve.py", "16", "6")
    assert "modeled makespan" in out
    assert "packed 6 requests" in out
