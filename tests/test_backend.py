"""The execution backend seam: SimBackend goldens, MPI plan wiring, config.

Three layers of guarantees:

* **Bit-identical defaults** — the refactor that routed every
  ``RoutingPlan.apply`` through ``Backend.execute_plan`` must not move a
  single bit: solver outputs, simulated times and replay makespans are
  pinned against goldens captured on the pre-backend tree.
* **MPI wiring without MPI** — the Alltoallv plan compiler
  (:func:`plan_messages` / :func:`build_alltoallv_rounds` /
  :func:`round_buffers`) is pure and testable in-process, and
  :class:`MPIBackend` runs end-to-end over :class:`LoopbackComm`.
* **Real-MPI parity** — when ``mpi4py`` and ``mpirun`` exist, a 4-process
  run must produce the same solution the simulator does (skipped
  cleanly otherwise; CI provisions MPI in a dedicated job).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.api import Cluster, ClusterConfig
from repro.api.serve import poisson_stream, replay
from repro.backend import (
    BACKEND_NAMES,
    Backend,
    PlanMeasurement,
    SimBackend,
    make_backend,
)
from repro.backend.mpi import (
    LoopbackComm,
    MPIBackend,
    build_alltoallv_rounds,
    plan_messages,
    round_buffers,
    virtual_rank_map,
)
from repro.dist import CyclicLayout, DistMatrix, redistribute
from repro.dist import routing
from repro.dist.routing import End, routing_plan
from repro.machine import CostParams
from repro.machine.validate import ParameterError
from repro.trsm.solver import trsm

ROOT = Path(__file__).resolve().parent.parent

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def value_hash(a) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(a, dtype=np.float64).tobytes()
    ).hexdigest()[:16]


def golden_trsm_inputs():
    rng = np.random.default_rng(7)
    n, k = 64, 32
    L = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
    B = rng.standard_normal((n, k))
    return L, B


# ---------------------------------------------------------------------------
# bit-identical defaults (goldens captured on the pre-backend tree)
# ---------------------------------------------------------------------------


class TestSimBackendGoldens:
    def test_trsm_is_bit_identical_to_pre_backend_tree(self):
        L, B = golden_trsm_inputs()
        res = trsm(L, B, 16)
        assert value_hash(res.X) == "8f0e6ee605bcdaa8"
        assert res.time == pytest.approx(8.696213333333335e-05, rel=1e-12)

    def test_explicit_sim_backend_matches_default(self):
        L, B = golden_trsm_inputs()
        res = trsm(L, B, 16, backend=SimBackend())
        assert value_hash(res.X) == "8f0e6ee605bcdaa8"

    def test_replay_is_bit_identical_to_pre_backend_tree(self):
        stream = poisson_stream(6, rate=2000.0, n_range=(32, 64), k_range=(8, 32), seed=3)
        out = replay(stream, p=16)
        assert out.modeled_makespan == pytest.approx(0.0023809568255487466, rel=1e-12)
        assert out.measured_makespan == pytest.approx(0.0023914159745296168, rel=1e-12)
        assert [value_hash(np.asarray(r.value)) for r in out.records] == [
            "26f8f348d99487e1",
            "9b1b45266c97a627",
            "5b1d02e1d0976f80",
            "2bb60111ea5490a9",
            "2aeb7166e465882b",
            "fa52034e8dace754",
        ]

    def test_sim_measurements_have_zero_relative_error(self):
        backend = SimBackend()
        L, B = golden_trsm_inputs()
        trsm(L, B, 16, backend=backend)
        records = backend.measurements()
        assert records, "solver run must log plan executions"
        for rec in records:
            assert isinstance(rec, PlanMeasurement)
            assert rec.measured_seconds == rec.modeled_seconds
            assert rec.relative_error() == 0.0
            assert rec.words >= 0 and rec.phase


# ---------------------------------------------------------------------------
# backend resolution and ClusterConfig
# ---------------------------------------------------------------------------


class TestMakeBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("sim", "mpi")

    def test_default_and_sim_are_fresh_sim_backends(self):
        a, b = make_backend(None), make_backend("sim")
        assert isinstance(a, SimBackend) and isinstance(b, SimBackend)
        assert a is not b

    def test_instance_passes_through(self):
        backend = SimBackend()
        assert make_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            make_backend("cuda")

    def test_mpi_without_mpi4py_is_a_clean_error(self):
        if any("mpi4py" in m for m in sys.modules):
            pytest.skip("mpi4py importable here; covered by the mpirun test")
        with pytest.raises(ParameterError, match="mpi4py"):
            make_backend("mpi")


class TestClusterConfig:
    def test_defaults(self):
        cluster = Cluster(8)
        assert isinstance(cluster.config, ClusterConfig)
        assert isinstance(cluster.backend, SimBackend)
        assert cluster.machine.backend is cluster.backend

    def test_legacy_kwargs_fold_into_config(self):
        cluster = Cluster(8, trace=True, cache=False, pricing_cache=False)
        assert cluster.config.trace is True
        assert cluster.config.cache is False
        assert cluster.pricing_cache is False

    def test_config_object_is_honoured(self):
        backend = SimBackend()
        cluster = Cluster(8, config=ClusterConfig(trace=True, backend=backend))
        assert cluster.config.trace is True
        assert cluster.backend is backend

    def test_legacy_kwarg_conflicts_with_config(self):
        with pytest.raises(ParameterError, match="config="):
            Cluster(8, trace=True, config=ClusterConfig())

    def test_plan_cache_size_resizes_the_global_lru(self):
        before = routing.plan_cache_stats()["capacity"]
        try:
            Cluster(8, config=ClusterConfig(plan_cache_size=7))
            assert routing.plan_cache_stats()["capacity"] == 7
        finally:
            routing.set_plan_cache_capacity(before)

    def test_shrinking_capacity_evicts_lru_entries(self):
        before = routing.plan_cache_stats()["capacity"]
        routing.clear_plan_cache()
        try:
            backend = SimBackend()
            m = backend.make_machine(4, params=UNIT)
            g = m.grid(2, 2)
            layout = CyclicLayout(2, 2)
            for n in (4, 6, 8):
                end = End(g, layout, (n, n))
                routing_plan(end, end, (n, n))
            assert routing.plan_cache_stats()["entries"] == 3
            routing.set_plan_cache_capacity(1)
            assert routing.plan_cache_stats()["entries"] == 1
        finally:
            routing.set_plan_cache_capacity(before)
            routing.clear_plan_cache()

    def test_env_override_sets_initial_capacity(self):
        env = dict(os.environ)
        env["REPRO_PLAN_CACHE_SIZE"] = "77"
        env["PYTHONPATH"] = str(ROOT / "src")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.dist.routing import plan_cache_stats;"
                "print(plan_cache_stats()['capacity'])",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "77"

    def test_env_override_ignores_garbage(self):
        env = dict(os.environ)
        env["REPRO_PLAN_CACHE_SIZE"] = "not-a-number"
        env["PYTHONPATH"] = str(ROOT / "src")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.dist.routing import plan_cache_stats;"
                "print(plan_cache_stats()['capacity'])",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "1024"


# ---------------------------------------------------------------------------
# the Alltoallv plan compiler (pure, no MPI required)
# ---------------------------------------------------------------------------


def disjoint_grid_plan():
    """A 4x4 redistribute between disjoint 2x2 grids: 4 off-rank messages."""
    backend = SimBackend()
    m = backend.make_machine(8, params=UNIT)
    g1, g2 = m.grid(2, 2), m.grid(2, 2)
    layout = CyclicLayout(2, 2)
    src = End(g1, layout, (4, 4))
    dst = End(g2, layout, (4, 4))
    return routing.RoutingPlan(src, dst, (4, 4))


class TestPlanCompiler:
    def test_plan_messages_enumerates_off_vrank_traffic(self):
        plan = disjoint_grid_plan()
        messages = plan_messages(plan)
        assert len(messages) == 4
        for msg in messages:
            assert msg.src_vrank != msg.dst_vrank
            assert msg.words == 4

    def test_identity_plan_has_no_messages(self):
        backend = SimBackend()
        m = backend.make_machine(4, params=UNIT)
        g = m.grid(2, 2)
        end = End(g, CyclicLayout(2, 2), (4, 4))
        assert plan_messages(routing.RoutingPlan(end, end, (4, 4))) == []

    def test_virtual_rank_map_folds_round_robin(self):
        assert virtual_rank_map(8, 3).tolist() == [0, 1, 2, 0, 1, 2, 0, 1]
        with pytest.raises(ParameterError):
            virtual_rank_map(4, 0)

    @pytest.mark.parametrize("cap", [1, 3, 5, 2**31 - 1])
    def test_rounds_respect_per_process_budgets(self, cap):
        plan = disjoint_grid_plan()
        messages = plan_messages(plan)
        world = 2
        vmap = virtual_rank_map(8, world)
        rounds = build_alltoallv_rounds(messages, vmap, world, cap=cap)
        total = 0
        for segments in rounds:
            assert segments, "no empty rounds"
            send = np.zeros(world, dtype=np.int64)
            recv = np.zeros(world, dtype=np.int64)
            for seg in segments:
                assert 1 <= seg.words <= cap
                msg = messages[seg.message]
                send[int(vmap[msg.src_vrank])] += seg.words
                recv[int(vmap[msg.dst_vrank])] += seg.words
                total += seg.words
            assert send.max(initial=0) <= cap
            assert recv.max(initial=0) <= cap
        assert total == sum(m.words for m in messages)

    def test_segments_cover_each_message_in_order(self):
        plan = disjoint_grid_plan()
        messages = plan_messages(plan)
        vmap = virtual_rank_map(8, 2)
        rounds = build_alltoallv_rounds(messages, vmap, 2, cap=3)
        progress = {i: 0 for i in range(len(messages))}
        for segments in rounds:
            for seg in segments:
                assert seg.offset == progress[seg.message]
                progress[seg.message] += seg.words
        assert progress == {i: m.words for i, m in enumerate(messages)}

    def test_round_buffers_world_of_one_is_a_self_copy(self):
        plan = disjoint_grid_plan()
        messages = plan_messages(plan)
        vmap = virtual_rank_map(8, 1)
        blocks = {
            r: np.arange(4.0).reshape(2, 2) + 10 * r for r in range(8)
        }
        from repro.backend.mpi import message_payload

        payloads = {i: message_payload(plan, m, blocks) for i, m in enumerate(messages)}
        (rounds,) = [build_alltoallv_rounds(messages, vmap, 1, cap=2**31 - 1)][0]
        sendbuf, scounts, sdispls, rcounts, rdispls, expected = round_buffers(
            rounds, messages, payloads, vmap, 1, 0
        )
        assert scounts.dtype == np.int32 and sdispls.dtype == np.int32
        assert np.array_equal(scounts, rcounts)
        assert np.array_equal(sendbuf, expected)
        assert int(scounts.sum()) == sum(m.words for m in messages)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ParameterError):
            build_alltoallv_rounds([], virtual_rank_map(4, 2), 2, cap=0)


# ---------------------------------------------------------------------------
# MPIBackend over the loopback communicator
# ---------------------------------------------------------------------------


class TestLoopbackMPIBackend:
    def test_redistribute_matches_sim_bit_for_bit(self):
        A = np.arange(36.0).reshape(6, 6)

        def run(backend: Backend):
            m = backend.make_machine(8, params=UNIT)
            g1, g2 = m.grid(2, 2), m.grid(2, 2)
            D = DistMatrix.from_global(m, g1, CyclicLayout(2, 2), A)
            return redistribute(D, g2, CyclicLayout(2, 2)).to_global()

        sim = run(SimBackend())
        mpi = run(MPIBackend(comm=LoopbackComm(), chunk_limit=5))
        assert np.array_equal(sim, A)
        assert np.array_equal(mpi, A)

    def test_trsm_matches_sim_bit_for_bit(self):
        L, B = golden_trsm_inputs()
        backend = MPIBackend(comm=LoopbackComm(), chunk_limit=257)
        res = trsm(L, B, 16, backend=backend)
        assert value_hash(res.X) == "8f0e6ee605bcdaa8"

    def test_chunking_produces_multiple_rounds_and_wall_clock(self):
        backend = MPIBackend(comm=LoopbackComm(), chunk_limit=5)
        A = np.arange(36.0).reshape(6, 6)
        m = backend.make_machine(8, params=UNIT)
        g1, g2 = m.grid(2, 2), m.grid(2, 2)
        D = DistMatrix.from_global(m, g1, CyclicLayout(2, 2), A)
        redistribute(D, g2, CyclicLayout(2, 2))
        routed = [r for r in backend.measurements() if r.words > 0]
        assert routed, "the disjoint-grid redistribute moves words"
        rec = routed[-1]
        assert rec.rounds >= 2, "chunk_limit=5 must split 9-word blocks"
        # a world of one folds every vrank onto the same process: all the
        # plan's traffic is co-located, none of it crosses a wire
        assert rec.colocated_words == rec.words
        assert rec.measured_seconds > 0.0
        assert rec.modeled_seconds > 0.0

    def test_world_size_and_flags(self):
        backend = MPIBackend(comm=LoopbackComm())
        assert backend.name == "mpi"
        assert backend.is_real is True
        assert backend.world_size == 1
        assert backend.timer() > 0.0

    def test_compute_measurements_time_real_kernels(self):
        backend = MPIBackend(comm=LoopbackComm())
        seconds = backend.execute_compute("gemm", (32, 16, 8), flops=2.0 * 32 * 16 * 8)
        assert seconds >= 0.0
        (rec,) = backend.compute_measurements()
        assert rec.kind == "gemm"
        assert rec.measured_seconds == seconds
        backend.clear_measurements()
        assert backend.compute_measurements() == []


# ---------------------------------------------------------------------------
# the modeled-vs-measured report
# ---------------------------------------------------------------------------


class TestValidationReport:
    def test_sim_report_has_zero_error_sections(self):
        from repro.analysis import validation_report

        backend = SimBackend()
        stream = poisson_stream(4, rate=2000.0, n_range=(32, 64), k_range=(8, 32), seed=3)
        outcome = replay(stream, p=16, backend=backend)
        report = validation_report(backend, outcome)
        assert report.backend == "sim"
        assert report.is_real is False
        assert report.by_phase and report.by_label
        for row in report.by_phase + report.by_label:
            assert row.relative_error == 0.0
        total = report.total()
        assert total.plans == len(backend.measurements())
        text = report.render()
        assert "modeled vs measured" in text
        assert "self-consistent" in text

    def test_loopback_report_is_wall_clock(self):
        from repro.analysis import validation_report

        backend = MPIBackend(comm=LoopbackComm())
        L, B = golden_trsm_inputs()
        trsm(L, B, 16, backend=backend)
        report = validation_report(backend)
        assert report.is_real is True
        assert "wall-clock" in report.render()
        assert report.total().measured_seconds > 0.0


# ---------------------------------------------------------------------------
# real-MPI parity (skips cleanly when the toolchain is absent)
# ---------------------------------------------------------------------------


def have_mpi() -> bool:
    import importlib.util

    return (
        importlib.util.find_spec("mpi4py") is not None
        and shutil.which("mpirun") is not None
    )


@pytest.mark.skipif(not have_mpi(), reason="mpi4py and mpirun required")
class TestRealMPIParity:
    def test_mpirun_np4_matches_sim(self, tmp_path):
        script = tmp_path / "parity.py"
        script.write_text(
            textwrap.dedent(
                """
                import hashlib
                import numpy as np
                from mpi4py import MPI
                from repro.backend.mpi import MPIBackend
                from repro.trsm.solver import trsm

                rng = np.random.default_rng(7)
                n, k = 64, 32
                L = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
                B = rng.standard_normal((n, k))
                res = trsm(L, B, 16, backend=MPIBackend())
                digest = hashlib.sha256(
                    np.ascontiguousarray(res.X, dtype=np.float64).tobytes()
                ).hexdigest()[:16]
                if MPI.COMM_WORLD.Get_rank() == 0:
                    print(digest)
                """
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        out = subprocess.run(
            ["mpirun", "-np", "4", sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            cwd=ROOT,
            timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "8f0e6ee605bcdaa8"
