"""CLI tests (python -m repro)."""

import io
import json

import pytest

from repro.__main__ import build_parser, main


class TestSolve:
    def test_solve_default(self, capsys):
        assert main(["solve", "-n", "32", "-k", "8", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "algorithm : iterative" in out
        assert "residual" in out

    def test_solve_recursive(self, capsys):
        assert (
            main(["solve", "-n", "16", "-k", "4", "-p", "4", "--algorithm", "recursive"])
            == 0
        )
        assert "recursive" in capsys.readouterr().out

    def test_solve_search_tuning(self, capsys):
        assert (
            main(["solve", "-n", "32", "-k", "8", "-p", "4", "--tune", "search"]) == 0
        )
        assert "parameters" in capsys.readouterr().out

    def test_solve_machine_preset(self, capsys):
        assert (
            main(["solve", "-n", "16", "-k", "4", "-p", "4", "--machine", "latency_bound"])
            == 0
        )
        assert "latency_bound" in capsys.readouterr().out


    def test_solve_no_verify_prints_skipped(self, capsys):
        assert (
            main(["solve", "-n", "32", "-k", "8", "-p", "4", "--no-verify"]) == 0
        )
        out = capsys.readouterr().out
        assert "residual  : skipped" in out


class TestServe:
    def test_serve_burst_reports_speedup(self, capsys):
        assert (
            main(
                [
                    "serve", "-p", "16", "--requests", "4",
                    "--n-min", "32", "--n-max", "64",
                    "--k-min", "8", "--k-max", "16",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "modeled makespan" in out
        assert "serial full-grid" in out
        assert "pool occupancy" in out

    def test_serve_optimal_long_queue_exits_2_with_one_line(self, capsys):
        """Regression: this used to die with a raw ParameterError
        traceback; now it is a clean usage error on stderr."""
        code = main(
            [
                "serve", "--policy", "optimal", "--requests", "12", "-p", "16",
                "--n-min", "32", "--n-max", "32",
                "--k-min", "8", "--k-max", "8",
                "--no-verify",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        err_lines = [ln for ln in captured.err.splitlines() if ln]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error: ")
        assert "max_requests" in err_lines[0]
        assert "Traceback" not in captured.err

    def test_serve_horizon_serves_long_queue(self, capsys):
        """The fix proper: --policy horizon packs the queue optimal refuses."""
        code = main(
            [
                "serve", "--policy", "horizon", "--requests", "10", "-p", "16",
                "--n-min", "32", "--n-max", "64",
                "--k-min", "8", "--k-max", "8",
                "--no-verify",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "requests          : 10" in out
        assert "modeled makespan" in out

    def test_serve_poisson_no_resident(self, capsys):
        assert (
            main(
                [
                    "serve", "-p", "16", "--requests", "3", "--rate", "1e4",
                    "--n-min", "32", "--n-max", "32",
                    "--k-min", "8", "--k-max", "8",
                    "--no-resident", "--no-verify",
                ]
            )
            == 0
        )
        assert "requests          : 3" in capsys.readouterr().out

    def test_serve_profile_prints_hotspots(self, capsys):
        assert (
            main(
                [
                    "serve", "-p", "16", "--requests", "3",
                    "--n-min", "32", "--n-max", "32",
                    "--k-min", "8", "--k-max", "8",
                    "--no-verify", "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # the normal report still prints, followed by the pstats table
        assert "modeled makespan" in out
        assert "profile (top 25 by cumulative time):" in out
        assert "cumtime" in out
        # the cache-layer summary rides along with --profile
        assert "cache stats:" in out
        assert "routing-plan LRU" in out
        assert "pricing memo" in out


class TestServeDaemon:
    def test_daemon_stdin_round_trip(self, capsys, monkeypatch):
        lines = "\n".join(
            [
                json.dumps({"op": "trsm", "n": 32, "k": 8, "sla": 1e9}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines + "\n"))
        assert main(["serve", "-p", "16", "--daemon", "--no-verify"]) == 0
        out = [json.loads(x) for x in capsys.readouterr().out.splitlines()]
        assert out[0]["decision"] == "admitted"
        shutdown = next(o for o in out if o.get("op") == "shutdown")
        assert shutdown["final_flush"]["completed"] == 1
        assert shutdown["final_flush"]["results"][0]["sla_met"] is True

    def test_daemon_load_test(self, capsys):
        assert (
            main(
                [
                    "serve", "-p", "16", "--daemon", "--load", "4",
                    "--rate", "1e4", "--arrivals", "diurnal",
                    "--n-min", "32", "--n-max", "32",
                    "--k-min", "8", "--k-max", "8",
                    "--no-verify", "--batch", "2",
                ]
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out.splitlines()[-1])
        assert summary["offered"] == 4 and summary["completed"] == 4
        assert summary["flushes"] == 2


class TestOtherCommands:
    def test_tune(self, capsys):
        assert main(["tune", "-n", "128", "-k", "32", "-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "closed form" in out and "model search" in out and "recursive" in out

    def test_map(self, capsys):
        assert main(["map", "--ratio-min", "-2", "--ratio-max", "2", "--p-max", "64"]) == 0
        out = capsys.readouterr().out
        assert "one large dimension" in out

    def test_table(self, capsys):
        assert main(["table", "-n", "256", "-k", "64", "--p-max", "1024"]) == 0
        out = capsys.readouterr().out
        assert "S ratio" in out

    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "latency_bound" in out and "alpha" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
