"""Serve-scale fast-path parity: vectorized routing, plan cache, pricing memo.

PR 6's throughput work is only admissible because nothing observable
changed.  This suite pins that:

* **vectorized routing parity** — the argsort/group-by implementations of
  ``pairs``/``cost``/``charge_pointwise``/``apply`` are bit-identical to
  the pinned pre-refactor loops in :mod:`repro.dist.routing_reference`,
  property-tested across grids, layout families, shapes and transposed
  destinations;
* **plan cache** — :func:`repro.dist.routing.routing_plan` returns the
  *same object* for equal (src, dst, shape) fingerprints, falls back to
  fresh plans when disabled, evicts LRU-first, and cache-on/off schedules
  are identical;
* **overflow guard** — a plan whose per-pair word count cannot be held in
  an int32 is rejected at construction instead of silently wrapping;
* **pricing memo parity** — scheduling with the memo on and off yields
  flatten-identical schedules on the pinned golden streams (FakeRequest:
  the non-memoizable fallback path) and on real TRSM streams (the shared
  ``pricing_key`` path), and equal keys share memo rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cluster import Cluster
from repro.api.requests import TrsmRequest
from repro.api.serve import poisson_stream, schedule_stream
from repro.dist import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    DistMatrix,
    End,
    RoutingPlan,
)
from repro.dist import routing
from repro.dist.layout import Layout
from repro.dist.routing_reference import (
    reference_apply,
    reference_cost,
    reference_pairs,
    reference_pointwise_costs,
)
from repro.machine import CostParams, Machine
from repro.machine.validate import ShapeError
from repro.sched import Scheduler
from repro.sched.pricing import PricingMemo
from repro.util.randmat import random_dense, random_lower_triangular
from test_policies import FakeRequest, flatten, golden_stream, make_pool

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

GRIDS = [(2, 2), (1, 3), (3, 1), (2, 4), (4, 4), (3, 3)]


def make_layout(kind: str, pr: int, pc: int, br: int, bc: int) -> Layout:
    if kind == "cyclic":
        return CyclicLayout(pr, pc)
    if kind == "blocked":
        return BlockedLayout(pr, pc)
    return BlockCyclicLayout(pr, pc, br=br, bc=bc)


layout_kinds = st.sampled_from(["cyclic", "blocked", "blockcyclic"])


@st.composite
def transitions(draw):
    pr, pc = draw(st.sampled_from(GRIDS))
    m = draw(st.integers(1, 24))
    n = draw(st.integers(1, 24))
    mk = lambda: make_layout(  # noqa: E731 - local factory
        draw(layout_kinds), pr, pc, draw(st.integers(1, 4)), draw(st.integers(1, 4))
    )
    return (pr, pc), (m, n), mk(), mk()


class TestVectorizedRoutingParity:
    """The group-by fast path is the old nonzero loop, bit for bit."""

    @settings(max_examples=80, deadline=None)
    @given(t=transitions())
    def test_pairs_cost_and_pointwise_match_reference(self, t):
        (pr, pc), (m, n), la, lb = t
        machine = Machine(pr * pc, params=UNIT)
        grid = machine.grid(pr, pc)
        plan = RoutingPlan(End(grid, la, (m, n)), End(grid, lb, (m, n)), (m, n))
        assert plan.pairs() == reference_pairs(plan)
        assert plan.cost() == reference_cost(plan)
        assert plan._pointwise_costs() == reference_pointwise_costs(plan)

    @settings(max_examples=50, deadline=None)
    @given(t=transitions())
    def test_apply_routes_identical_blocks(self, t):
        (pr, pc), (m, n), la, lb = t
        machine = Machine(pr * pc, params=UNIT)
        grid = machine.grid(pr, pc)
        A = np.arange(float(m * n)).reshape(m, n)
        D = DistMatrix.from_global(machine, grid, la, A)
        plan = RoutingPlan(End(grid, la, (m, n)), End(grid, lb, (m, n)), (m, n))
        vec = plan.apply(D.blocks)
        ref = reference_apply(plan, D.blocks)
        assert set(vec) == set(ref)
        for rank in vec:
            assert vec[rank].shape == ref[rank].shape
            assert vec[rank].tobytes() == ref[rank].tobytes()

    def test_transposed_destination_apply_matches_reference(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(20.0).reshape(4, 5)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        plan = RoutingPlan(
            End.of(D), End(grid, BlockedLayout(2, 2), (5, 4), transpose=True), (4, 5)
        )
        vec = plan.apply(D.blocks)
        ref = reference_apply(plan, D.blocks)
        for rank in vec:
            assert vec[rank].tobytes() == ref[rank].tobytes()

    def test_window_offset_apply_matches_reference(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = DistMatrix.from_global(machine, grid, BlockedLayout(2, 2), A)
        plan = RoutingPlan(End.window_of(D, 3, 2), End.window_of(D, 0, 0), (4, 5))
        vec = plan.apply(D.blocks)
        ref = reference_apply(plan, D.blocks)
        for rank in vec:
            assert vec[rank].tobytes() == ref[rank].tobytes()

    def test_reference_mode_toggle_round_trips(self):
        """set_reference_mode returns the previous value and, while on,
        routes the public plan methods through the pinned loops."""
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        plan = RoutingPlan(
            End(grid, CyclicLayout(2, 2), (6, 6)),
            End(grid, BlockedLayout(2, 2), (6, 6)),
            (6, 6),
        )
        fast = (plan.pairs(), plan.cost())
        # replint: disable=toggle-hygiene -- this test pins the raw toggle's return-previous contract itself
        prev = routing.set_reference_mode(True)
        try:
            assert prev is False
            assert (plan.pairs(), plan.cost()) == fast
        finally:
            # replint: disable=toggle-hygiene -- restoring via the raw call is the contract under test
            assert routing.set_reference_mode(prev) is True

    def test_reference_mode_context_manager_restores_on_error(self):
        """The scoped helper restores the prior state even when the body
        raises — the leak the raw toggle was prone to."""
        assert routing._REFERENCE_MODE is False
        with pytest.raises(RuntimeError):
            with routing.reference_mode():
                assert routing._REFERENCE_MODE is True
                raise RuntimeError("boom")
        assert routing._REFERENCE_MODE is False
        with routing.reference_mode(False):
            assert routing._REFERENCE_MODE is False
        assert routing._REFERENCE_MODE is False


class TestPlanCache:
    def test_equal_ends_reuse_the_same_plan_object(self):
        routing.clear_plan_cache()
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        src = End(grid, CyclicLayout(2, 2), (8, 8))
        dst = End(grid, BlockedLayout(2, 2), (8, 8))
        p1 = routing.routing_plan(src, dst, (8, 8))
        # fresh, *equal* End objects: the fingerprint key must still hit
        p2 = routing.routing_plan(
            End(grid, CyclicLayout(2, 2), (8, 8)),
            End(grid, BlockedLayout(2, 2), (8, 8)),
            (8, 8),
        )
        assert p1 is p2
        stats = routing.plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1

    def test_disabled_cache_builds_fresh_plans(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        src = End(grid, CyclicLayout(2, 2), (8, 8))
        dst = End(grid, BlockedLayout(2, 2), (8, 8))
        with routing.plan_cache_disabled():
            p1 = routing.routing_plan(src, dst, (8, 8))
            p2 = routing.routing_plan(src, dst, (8, 8))
            assert p1 is not p2
            assert p1.cost() == p2.cost()

    def test_lru_evicts_the_oldest_entry(self, monkeypatch):
        routing.clear_plan_cache()
        monkeypatch.setattr(routing, "_PLAN_CACHE_MAX", 2)
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        mk = lambda m: routing.routing_plan(  # noqa: E731 - local factory
            End(grid, CyclicLayout(2, 2), (m, m)),
            End(grid, BlockedLayout(2, 2), (m, m)),
            (m, m),
        )
        a, b = mk(6), mk(8)
        assert mk(6) is a  # touch a: b is now least-recently-used
        c = mk(10)  # evicts b
        assert routing.plan_cache_stats()["entries"] == 2
        assert mk(10) is c and mk(6) is a
        assert mk(8) is not b
        routing.clear_plan_cache()

    def test_clear_resets_stats(self):
        routing.clear_plan_cache()
        stats = routing.plan_cache_stats()
        capacity = stats.pop("capacity")
        assert capacity >= 0  # clearing resets counters, not the capacity
        assert stats == {"hits": 0, "misses": 0, "entries": 0}

    def test_cache_on_off_schedules_identical(self):
        stream = poisson_stream(
            count=20, rate=2e5, n_range=(32, 64), k_range=(4, 8), seed=3
        )
        routing.clear_plan_cache()
        on = schedule_stream(stream, p=16)
        with routing.plan_cache_disabled():
            off = schedule_stream(stream, p=16)
        assert flatten(on) == flatten(off)


class TestOverflowGuard:
    def test_pair_word_count_above_int32_rejected(self):
        """65536x65536 between two single-rank grids would put 2^32 words in
        one pair — must be rejected, not silently wrapped."""
        machine = Machine(2, params=UNIT)
        g1 = machine.grid(1, 1)
        g2 = machine.grid(1, 1)
        m = 2**16
        with pytest.raises(ShapeError):
            RoutingPlan(
                End(g1, BlockedLayout(1, 1), (m, m)),
                End(g2, BlockedLayout(1, 1), (m, m)),
                (m, m),
            )

    def test_just_below_the_limit_still_constructs(self):
        machine = Machine(2, params=UNIT)
        g1 = machine.grid(1, 1)
        g2 = machine.grid(1, 1)
        m = 2**15
        plan = RoutingPlan(
            End(g1, BlockedLayout(1, 1), (m, m)),
            End(g2, BlockedLayout(1, 1), (m, m)),
            (m, m),
        )
        assert plan.cost().W == float(m) * m


class TestPricingMemoParity:
    @pytest.mark.parametrize("policy", ["lpt", "backfill"])
    @pytest.mark.parametrize(
        "key", [(0, 7, 0.0), (1, 9, 3.0), (2, 12, 8.0)]
    )
    def test_fake_streams_memo_on_off_identical(self, policy, key):
        """FakeRequest has no pricing_key and non-stock staging hooks: the
        memo's fallback paths must still reproduce the uncached schedule."""
        seed, count, max_arrival = key
        on = Scheduler(
            make_pool(16), UNIT, policy=policy, pricing_cache=True
        ).schedule(golden_stream(seed, count, max_arrival))
        off = Scheduler(
            make_pool(16), UNIT, policy=policy, pricing_cache=False
        ).schedule(golden_stream(seed, count, max_arrival))
        assert flatten(on) == flatten(off)

    @pytest.mark.parametrize("policy", ["lpt", "backfill"])
    def test_trsm_stream_memo_on_off_identical(self, policy):
        """Real TRSM streams (shared pricing keys, stock staging hooks):
        memoized staging replay must match the live breakdown exactly."""
        stream = poisson_stream(
            count=25, rate=2e5, n_range=(32, 64), k_range=(4, 8), seed=5
        )
        on = schedule_stream(stream, p=16, policy=policy, pricing_cache=True)
        off = schedule_stream(stream, p=16, policy=policy, pricing_cache=False)
        assert flatten(on) == flatten(off)

    def test_equal_pricing_keys_share_memo_rows(self):
        cluster = Cluster(16)
        L = cluster.host(random_lower_triangular(32, seed=0))
        B = cluster.host(random_dense(32, 8, seed=1))
        r1 = TrsmRequest(L=L, B=B, verify=False)
        r2 = TrsmRequest(L=L, B=B, verify=False)
        assert r1.pricing_key() is not None
        assert r1.pricing_key() == r2.pricing_key()
        memo = PricingMemo(cluster.params, capacity=16)
        assert memo.sizes(r1) == memo.sizes(r2)
        assert len(memo._sizes) == 1  # one shared row, not one per object

    def test_fake_requests_fall_back_to_per_object_rows(self):
        memo = PricingMemo(UNIT, capacity=16)
        r1 = FakeRequest({4: 1.0})
        r2 = FakeRequest({4: 1.0})
        assert memo.sizes(r1) == memo.sizes(r2) == [4]
        assert len(memo._sizes) == 2  # no pricing_key: rows stay private

    def test_incremental_rest_area_tracks_commits(self):
        memo = PricingMemo(UNIT, capacity=16)
        reqs = [FakeRequest({4: float(i + 1)}) for i in range(4)]
        items = list(enumerate(reqs))
        memo.seed(items)
        for i, req in items:
            expect = sum(
                memo.min_area(r) for j, r in items if j != i and j in memo._area_by_index
            )
            if i in memo._area_by_index:
                assert memo.rest_area(i) == pytest.approx(expect)
            memo.remove(i)
