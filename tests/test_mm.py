"""Matrix multiplication: correctness on all grid splits, cost vs model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import CyclicLayout, DistMatrix
from repro.machine import CostParams, Machine
from repro.machine.validate import GridError, ParameterError, ShapeError
from repro.mm import mm1d, mm3d
from repro.mm.cost_model import (
    mm1d_cost,
    mm3d_cost,
    mm3d_cost_lines,
    mm3d_leading_order,
    mm_bandwidth_lower_bound,
    validate_mm_split,
)
from repro.mm.dispatch import MMRegime, choose_mm_split, classify_mm, valid_mm_splits
from repro.util.randmat import random_dense

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def run_mm3d(m_, n_, k_, p1, sq, scale=1.0, seed=0):
    sp = p1 * sq
    machine = Machine(sp * sp, params=UNIT)
    grid = machine.grid(sp, sp)
    layout = CyclicLayout(sp, sp)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m_, n_))
    X = rng.standard_normal((n_, k_))
    dA = DistMatrix.from_global(machine, grid, layout, A)
    dX = DistMatrix.from_global(machine, grid, layout, X)
    dB = mm3d(dA, dX, p1, scale=scale)
    return machine, A, X, dB


class TestMM3DCorrectness:
    @pytest.mark.parametrize(
        "m_,n_,k_,p1,sq",
        [
            (8, 8, 8, 1, 1),  # single processor
            (8, 8, 4, 2, 1),  # 2D split
            (8, 8, 4, 1, 2),  # pure replication split
            (16, 16, 8, 2, 2),  # true 3D split
            (12, 10, 7, 2, 2),  # ragged, rectangular A
            (9, 7, 5, 4, 1),  # sizes smaller than grid side
            (5, 3, 2, 2, 2),  # tiny with empty local blocks
        ],
    )
    def test_matches_numpy(self, m_, n_, k_, p1, sq):
        machine, A, X, dB = run_mm3d(m_, n_, k_, p1, sq)
        assert np.allclose(dB.to_global(), A @ X)

    def test_scale_folded_into_product(self):
        machine, A, X, dB = run_mm3d(8, 8, 4, 2, 1, scale=-2.0)
        assert np.allclose(dB.to_global(), -2.0 * (A @ X))

    def test_result_layout_matches_x(self):
        machine, A, X, dB = run_mm3d(8, 8, 4, 2, 2)
        assert isinstance(dB.layout, CyclicLayout)
        assert dB.shape == (8, 4)

    def test_requires_same_grid(self):
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        dA = DistMatrix.from_global(machine, g1, CyclicLayout(2, 2), np.ones((4, 4)))
        dX = DistMatrix.from_global(machine, g2, CyclicLayout(2, 2), np.ones((4, 2)))
        with pytest.raises(GridError):
            mm3d(dA, dX, 2)

    def test_requires_square_grid(self):
        machine = Machine(8, params=UNIT)
        g = machine.grid(2, 4)
        dA = DistMatrix.from_global(machine, g, CyclicLayout(2, 4), np.ones((4, 4)))
        dX = DistMatrix.from_global(machine, g, CyclicLayout(2, 4), np.ones((4, 2)))
        with pytest.raises(GridError):
            mm3d(dA, dX, 2)

    def test_inner_dimension_mismatch(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(2, 2)
        dA = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((4, 4)))
        dX = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((3, 2)))
        with pytest.raises(ShapeError):
            mm3d(dA, dX, 2)

    def test_invalid_p1(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(2, 2)
        dA = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((4, 4)))
        dX = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((4, 2)))
        with pytest.raises(ParameterError):
            mm3d(dA, dX, 3)

    @settings(max_examples=25, deadline=None)
    @given(
        m_=st.integers(1, 14),
        n_=st.integers(1, 14),
        k_=st.integers(1, 14),
        split=st.sampled_from([(1, 1), (2, 1), (1, 2), (2, 2)]),
    )
    def test_property_random_shapes(self, m_, n_, k_, split):
        p1, sq = split
        machine, A, X, dB = run_mm3d(m_, n_, k_, p1, sq, seed=m_ * 100 + n_ * 10 + k_)
        assert np.allclose(dB.to_global(), A @ X)


class TestMM3DCost:
    def test_measured_matches_model_exactly_divisible(self):
        # Divisible sizes: the per-line model should match the simulation
        # exactly (same formulas, same integer block sizes).
        for (n_, k_, p1, sq) in [(16, 8, 2, 2), (8, 8, 2, 1), (16, 16, 1, 2)]:
            machine, A, X, dB = run_mm3d(n_, n_, k_, p1, sq)
            model = mm3d_cost(n_, k_, p1, sq * sq)
            cp = machine.critical_path()
            assert cp.S == pytest.approx(model.S), (n_, k_, p1, sq)
            assert cp.W == pytest.approx(model.W), (n_, k_, p1, sq)
            assert cp.F == pytest.approx(model.F), (n_, k_, p1, sq)

    def test_line_table_sums_to_total(self):
        lines = mm3d_cost_lines(32, 16, 2, 4)
        total = mm3d_cost(32, 16, 2, 4)
        assert total.W == pytest.approx(sum(c.W for c in lines.values()))
        assert total.S == pytest.approx(sum(c.S for c in lines.values()))

    def test_leading_order_dominated_by_exact(self):
        lead = mm3d_leading_order(256, 128, 4, 4)
        assert lead.F == pytest.approx(256 * 256 * 128 / 64)

    def test_validate_split(self):
        assert validate_mm_split(16, 2, 4) == 2
        with pytest.raises(ParameterError):
            validate_mm_split(16, 3, 2)
        with pytest.raises(ParameterError):
            validate_mm_split(16, 2, 5)  # wrong product

    def test_flops_dominated_by_local_multiply(self):
        for p1, p2 in [(1, 16), (2, 4), (4, 1)]:
            lines = mm3d_cost_lines(64, 32, p1, p2)
            assert lines["line6"].F == pytest.approx(64 * 64 * 32 / 16)
            total = mm3d_cost(64, 32, p1, p2)
            # line-7 reduction flops are a lower-order additive term
            assert total.F <= 1.15 * lines["line6"].F


class TestMM1D:
    def test_matches_numpy(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(1, 4)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((6, 6))
        X = rng.standard_normal((6, 20))
        dA = DistMatrix.from_global(machine, g, CyclicLayout(1, 4), A)
        dX = DistMatrix.from_global(machine, g, CyclicLayout(1, 4), X)
        dB = mm1d(dA, dX, scale=3.0)
        assert np.allclose(dB.to_global(), 3.0 * A @ X)

    def test_cost_is_allgather_plus_local(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(1, 4)
        A = random_dense(8, 8, seed=0)
        X = random_dense(8, 40, seed=1)
        dA = DistMatrix.from_global(machine, g, CyclicLayout(1, 4), A)
        dX = DistMatrix.from_global(machine, g, CyclicLayout(1, 4), X)
        mm1d(dA, dX)
        cp = machine.critical_path()
        model = mm1d_cost(8, 40, 4)
        assert cp.S == model.S
        assert cp.W == model.W
        assert cp.F == pytest.approx(model.F)

    def test_requires_row_vector_grid(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(2, 2)
        dA = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((4, 4)))
        dX = DistMatrix.from_global(machine, g, CyclicLayout(2, 2), np.ones((4, 2)))
        with pytest.raises(GridError):
            mm1d(dA, dX)


class TestDispatch:
    def test_classify_three_cases(self):
        assert classify_mm(1000, 10, 64) is MMRegime.TWO_LARGE
        assert classify_mm(10, 1000, 4) is MMRegime.ONE_LARGE
        assert classify_mm(100, 100, 64) is MMRegime.THREE_LARGE

    def test_classify_boundaries(self):
        # n exactly k*sqrt(p) is the 3D (middle) case
        assert classify_mm(80, 10, 64) is MMRegime.THREE_LARGE

    def test_valid_splits_cover_sqrt_p(self):
        splits = valid_mm_splits(64)
        assert (8, 1) in splits and (4, 4) in splits and (1, 64) in splits
        for p1, p2 in splits:
            assert p1 * p1 * p2 == 64
            assert math.isqrt(p2) ** 2 == p2

    def test_valid_splits_rejects_nonsquare_p(self):
        with pytest.raises(ParameterError):
            valid_mm_splits(32)

    def test_choose_split_one_large_dimension_prefers_1d(self):
        p1, p2 = choose_mm_split(16, 16 * 4096, 64)
        assert p1 == 1 and p2 == 64

    def test_choose_split_two_large_dimensions_prefers_2d(self):
        p1, p2 = choose_mm_split(4096, 4, 64)
        assert p2 == 1 and p1 == 8

    def test_choose_split_is_model_minimizer(self):
        params = CostParams()
        p1, p2 = choose_mm_split(512, 128, 64, params=params)
        best = min(
            mm3d_cost(512, 128, a, b).time(params) for a, b in valid_mm_splits(64)
        )
        assert mm3d_cost(512, 128, p1, p2).time(params) == pytest.approx(best)

    def test_bandwidth_lower_bound_cases(self):
        assert mm_bandwidth_lower_bound(1000, 10, 4) == pytest.approx(
            1000 * 10 / 2.0
        )
        assert mm_bandwidth_lower_bound(10, 1000, 64) == pytest.approx(100.0)
        mid = mm_bandwidth_lower_bound(100, 100, 64)
        assert mid == pytest.approx((100 * 100 * 100 / 64) ** (2 / 3))


class TestNoGlobalAssemblyOnHotPath:
    """The MM hot path must route blocks directly (no to_global scratch)."""

    @pytest.mark.parametrize("p1,sq", [(2, 1), (2, 2), (1, 2)])
    def test_mm3d_never_assembles_a_global_matrix(self, monkeypatch, p1, sq):
        sp = p1 * sq
        machine = Machine(sp * sp, params=UNIT)
        grid = machine.grid(sp, sp)
        layout = CyclicLayout(sp, sp)
        rng = np.random.default_rng(3)
        A = rng.standard_normal((24, 20))
        X = rng.standard_normal((20, 12))
        dA = DistMatrix.from_global(machine, grid, layout, A)
        dX = DistMatrix.from_global(machine, grid, layout, X)

        to_global_calls = []
        orig_to_global = DistMatrix.to_global

        def spy_to_global(self):
            to_global_calls.append(self.shape)
            return orig_to_global(self)

        from_global_calls = []
        orig_from_global = DistMatrix.from_global.__func__

        def spy_from_global(cls, machine_, grid_, layout_, arr):
            from_global_calls.append(np.asarray(arr).shape)
            return orig_from_global(cls, machine_, grid_, layout_, arr)

        monkeypatch.setattr(DistMatrix, "to_global", spy_to_global)
        monkeypatch.setattr(
            DistMatrix, "from_global", classmethod(spy_from_global)
        )
        dB = mm3d(dA, dX, p1)
        assert to_global_calls == [], "mm3d assembled a global matrix"
        assert from_global_calls == [], "mm3d distributed through a scratch"
        monkeypatch.undo()
        assert np.allclose(dB.to_global(), A @ X, atol=1e-10)
