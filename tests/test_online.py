"""Online serving subsystem: arrivals, admission, priorities, the daemon.

The property suite pins the contracts ISSUE 8 names:

* seeded arrival processes are exactly reproducible and hit their target
  mean rate within tolerance;
* admission invariants — strictly FIFO within a priority class, every
  admitted request drained exactly once (no starvation), and rejected
  requests never reach the scheduler;
* priority classes and SLA deadlines are honored by the policy layer
  (higher classes first, EDF within a class, backfill preempts *queued*
  reservations only) while a uniform priority shift stays bit-identical
  to the default schedule — the offline-parity guarantee;
* the daemon protocol round-trips in virtual time via an injected clock.
"""

import io
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cluster import latency_percentiles
from repro.api.online import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    DaemonConfig,
    Deferred,
    Rejected,
    ServeDaemon,
    TenantLimits,
    TokenBucket,
    make_arrivals,
    poisson_arrivals,
    synthetic_stream,
)
from repro.api.serve import poisson_stream, replay
from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError
from repro.sched import BackfillPolicy, Scheduler, SubgridAllocator

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def make_pool(p: int) -> SubgridAllocator:
    b = p.bit_length() - 1
    return SubgridAllocator(ProcessorGrid.build((2 ** ((b + 1) // 2), 2 ** (b // 2))))


# ---------------------------------------------------------------------------
# arrival processes


class TestArrivalProcesses:
    @given(
        seed=st.integers(0, 10**6),
        process=st.sampled_from(("poisson", "lognormal", "diurnal")),
    )
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_stream(self, seed, process):
        a = make_arrivals(process, 40, 500.0, seed=seed)
        b = make_arrivals(process, 40, 500.0, seed=seed)
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) >= 0.0) and a[-1] > 0.0

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_lognormal_hits_target_rate(self, seed):
        rate = 200.0
        arr = make_arrivals("lognormal", 2500, rate, seed=seed)
        empirical = 2500 / float(arr[-1])
        assert abs(empirical - rate) / rate < 0.25

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_diurnal_hits_target_rate(self, seed):
        rate = 200.0
        arr = make_arrivals("diurnal", 1200, rate, seed=seed, period=1.0, depth=0.8)
        empirical = 1200 / float(arr[-1])
        assert abs(empirical - rate) / rate < 0.25

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_poisson_hits_target_rate(self, seed):
        rate = 1000.0
        arr = poisson_arrivals(4000, rate, seed=seed)
        empirical = 4000 / float(arr[-1])
        assert abs(empirical - rate) / rate < 0.10

    def test_poisson_rate_zero_is_burst(self):
        np.testing.assert_array_equal(poisson_arrivals(5, 0.0), np.zeros(5))

    def test_unknown_process_rejected(self):
        with pytest.raises(ParameterError):
            make_arrivals("weibull", 10, 1.0)

    def test_lognormal_heavier_tail_than_poisson(self):
        """Same mean rate, but the sigma=1 gaps have a larger max/mean."""
        rate = 100.0
        pois = np.diff(poisson_arrivals(4000, rate, seed=0), prepend=0.0)
        logn = np.diff(
            make_arrivals("lognormal", 4000, rate, seed=0, sigma=1.0), prepend=0.0
        )
        assert np.std(logn) / np.mean(logn) > np.std(pois) / np.mean(pois)


class TestSyntheticStream:
    def test_defaults_match_poisson_stream(self):
        """The historical generator delegates here: bit-identical output."""
        old = poisson_stream(12, rate=5e4, seed=7)
        new = synthetic_stream(12, rate=5e4, seed=7)
        assert [(s.n, s.k, s.arrival, s.seed) for s in old] == [
            (s.n, s.k, s.arrival, s.seed) for s in new
        ]
        assert all(s.priority == 0 and s.deadline is None for s in new)

    def test_uniform_priority_does_not_disturb_draws(self):
        """A single non-zero class must not consume extra RNG draws."""
        base = synthetic_stream(10, rate=5e4, seed=3)
        shifted = synthetic_stream(10, rate=5e4, seed=3, priorities=(7,))
        assert [(s.n, s.k, s.arrival) for s in base] == [
            (s.n, s.k, s.arrival) for s in shifted
        ]
        assert all(s.priority == 7 for s in shifted)

    def test_tenants_priorities_and_deadlines(self):
        stream = synthetic_stream(
            9,
            rate=1e5,
            seed=0,
            tenants=("a", "b", "c"),
            priorities=(0, 1, 2),
            deadline_slack=3e-4,
        )
        assert [s.tenant for s in stream] == ["a", "b", "c"] * 3
        assert {s.priority for s in stream} <= {0, 1, 2}
        for s in stream:
            assert s.deadline == pytest.approx(s.arrival + 3e-4)


# ---------------------------------------------------------------------------
# admission control


class Req:
    __slots__ = ("priority", "tenant", "i")

    def __init__(self, priority: int, tenant: str, i: int):
        self.priority = priority
        self.tenant = tenant
        self.i = i


OFFERS = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(("a", "b", "c"))),
    min_size=1,
    max_size=40,
)


class TestTokenBucket:
    def test_starts_full_then_refills(self):
        b = TokenBucket(rate=2.0, burst=3.0)
        assert [b.try_take(0.0) for _ in range(4)] == [True, True, True, False]
        assert b.next_available(0.0) == pytest.approx(0.5)
        assert b.try_take(0.6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            TokenBucket(rate=0.0, burst=2.0)
        with pytest.raises(ParameterError):
            TokenBucket(rate=1.0, burst=0.5)

    @given(
        rate=st.floats(0.1, 100.0),
        burst=st.floats(1.0, 16.0),
        gaps=st.lists(st.floats(0.0, 5.0), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_token_count_stays_bounded(self, rate, burst, gaps):
        b = TokenBucket(rate=rate, burst=burst)
        t = 0.0
        for gap in gaps:
            t += gap
            b.try_take(t)
            assert 0.0 <= b.tokens <= burst
            assert b.next_available(t) >= t


class TestAdmissionInvariants:
    @given(items=OFFERS)
    @settings(max_examples=50, deadline=None)
    def test_drain_is_priority_then_fifo(self, items):
        """Higher classes first; strictly FIFO within a class."""
        ctrl = AdmissionController(AdmissionConfig(max_queue_depth=4096))
        reqs = [Req(p, t, i) for i, (p, t) in enumerate(items)]
        for r in reqs:
            assert isinstance(ctrl.offer(r, now=0.0), Admitted)
        drained = ctrl.drain()
        assert drained == sorted(reqs, key=lambda r: (-r.priority, r.i))
        assert ctrl.pending() == 0
        assert all(ctrl.tenant_depth(t) == 0 for t in ("a", "b", "c"))

    @given(items=OFFERS, split=st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_every_admitted_request_drains_exactly_once(self, items, split):
        """No starvation: interleaved drains hand over everything admitted."""
        ctrl = AdmissionController()
        reqs = [Req(p, t, i) for i, (p, t) in enumerate(items)]
        first, second = reqs[:split], reqs[split:]
        for r in first:
            ctrl.offer(r, now=0.0)
        drained = list(ctrl.drain())
        for r in second:
            ctrl.offer(r, now=1.0)
        drained += ctrl.drain()
        assert sorted(r.i for r in drained) == list(range(len(reqs)))
        assert ctrl.pending() == 0

    @given(items=OFFERS, depth=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_rejects_never_reach_the_scheduler(self, items, depth):
        ctrl = AdmissionController(AdmissionConfig(max_queue_depth=depth))
        reqs = [Req(p, t, i) for i, (p, t) in enumerate(items)]
        admitted, rejected = [], []
        for r in reqs:
            decision = ctrl.offer(r, now=0.0)
            (admitted if isinstance(decision, Admitted) else rejected).append(r)
        drained = ctrl.drain()
        assert set(r.i for r in drained) == set(r.i for r in admitted)
        assert not set(r.i for r in drained) & set(r.i for r in rejected)
        stats = ctrl.stats()
        assert stats["admitted"] == len(admitted)
        assert stats["rejected"] == len(rejected)
        if rejected:
            assert stats["reject_reasons"]["queue_full"] == len(rejected)

    def test_rate_limit_defers_then_readmits(self):
        ctrl = AdmissionController(AdmissionConfig(rate=1.0, burst=2.0))
        assert isinstance(ctrl.offer(Req(0, "a", 0), now=0.0), Admitted)
        assert isinstance(ctrl.offer(Req(0, "a", 1), now=0.0), Admitted)
        d = ctrl.offer(Req(0, "a", 2), now=0.0)
        assert isinstance(d, Deferred)
        assert d.retry_at == pytest.approx(1.0)
        assert isinstance(ctrl.offer(Req(0, "a", 3), now=d.retry_at), Admitted)

    def test_rate_limit_hard_reject_mode(self):
        ctrl = AdmissionController(
            AdmissionConfig(rate=1.0, burst=1.0, defer_on_rate=False)
        )
        ctrl.offer(Req(0, "a", 0), now=0.0)
        d = ctrl.offer(Req(0, "a", 1), now=0.0)
        assert isinstance(d, Rejected) and d.reason == "rate_limited"

    def test_tenant_caps_are_isolated(self):
        """One tenant's flood cannot take another tenant's queue space."""
        ctrl = AdmissionController(
            AdmissionConfig(tenants={"a": TenantLimits(max_queued=1)})
        )
        assert isinstance(ctrl.offer(Req(0, "a", 0), now=0.0), Admitted)
        d = ctrl.offer(Req(0, "a", 1), now=0.0)
        assert isinstance(d, Rejected) and d.reason == "tenant_queue_full"
        assert isinstance(ctrl.offer(Req(0, "b", 2), now=0.0), Admitted)

    def test_clock_must_be_monotone(self):
        ctrl = AdmissionController()
        ctrl.offer(Req(0, "a", 0), now=1.0)
        with pytest.raises(ParameterError):
            ctrl.offer(Req(0, "a", 1), now=0.5)


# ---------------------------------------------------------------------------
# priority classes and SLA deadlines in the policy layer


class FakeReq:
    """Minimal SchedulableRequest with online fields."""

    def __init__(self, seconds, arrival=0.0, priority=0, deadline=None):
        self.seconds = dict(seconds)
        self.arrival = arrival
        self.priority = priority
        self.deadline = deadline

    def candidate_sizes(self, capacity):
        return [s for s in self.seconds if s <= capacity]

    def modeled_cost(self, size, params):
        return Cost(0.0, 0.0, self.seconds[size])

    def staging_cost(self, grid, params):
        return Cost.zero()


def start_order(schedule):
    return [a.index for a in sorted(schedule.assignments, key=lambda a: a.start)]


class TestPriorityScheduling:
    def test_higher_class_runs_first(self):
        """Full-pool requests serialize, so order is visible directly."""
        reqs = [FakeReq({16: 1.0}, priority=p) for p in (0, 2, 1)]
        schedule = Scheduler(make_pool(16), UNIT).schedule(reqs)
        assert start_order(schedule) == [1, 2, 0]

    def test_edf_within_a_class(self):
        """Same class: earliest deadline first, best-effort (None) last."""
        reqs = [
            FakeReq({16: 1.0}, priority=1, deadline=5.0),
            FakeReq({16: 1.0}, priority=1, deadline=2.0),
            FakeReq({16: 1.0}, priority=1, deadline=None),
        ]
        schedule = Scheduler(make_pool(16), UNIT).schedule(reqs)
        assert start_order(schedule) == [1, 0, 2]

    @pytest.mark.parametrize("policy", ["lpt", "backfill"])
    def test_uniform_priority_shift_is_parity_neutral(self, policy):
        """Offline parity: one class is one class, whatever its number."""

        def stream(priority):
            rng = np.random.default_rng(11)
            reqs = []
            for _ in range(10):
                ss = sorted(
                    rng.choice([1, 2, 4, 8, 16], size=rng.integers(1, 4), replace=False)
                )
                base = float(rng.uniform(0.5, 4.0))
                secs = {int(s): base * (16 / s) ** 0.5 for s in ss}
                reqs.append(
                    FakeReq(secs, arrival=float(rng.uniform(0, 4.0)), priority=priority)
                )
            return reqs

        a = Scheduler(make_pool(16), UNIT, policy=policy).schedule(stream(0))
        b = Scheduler(make_pool(16), UNIT, policy=policy).schedule(stream(9))
        assert [
            (x.index, x.size, x.start, x.finish) for x in a.assignments
        ] == [(x.index, x.size, x.start, x.finish) for x in b.assignments]

    def test_backfill_preempts_queued_reservation_only(self):
        """A late high-priority arrival takes the *reservation*, never the
        running request."""
        reqs = [
            FakeReq({16: 10.0}, arrival=0.0, priority=0),  # running head
            FakeReq({16: 10.0}, arrival=1.0, priority=0),  # reserved at t=10
            FakeReq({16: 1.0}, arrival=2.0, priority=5),  # preempts the queue
        ]
        policy = BackfillPolicy()
        schedule = Scheduler(make_pool(16), UNIT, policy=policy).schedule(reqs)
        by_index = {a.index: a for a in schedule.assignments}
        assert by_index[0].start == 0.0  # the running request was untouched
        assert by_index[2].start == pytest.approx(10.0)
        assert by_index[1].start == pytest.approx(11.0)
        assert len(policy.preemptions) == 1

    def test_backfill_reservation_sticky_without_priority(self):
        """Same stream, one class: the reservation holds (no starvation)."""
        reqs = [
            FakeReq({16: 10.0}, arrival=0.0),
            FakeReq({16: 10.0}, arrival=1.0),
            FakeReq({16: 1.0}, arrival=2.0),
        ]
        policy = BackfillPolicy()
        schedule = Scheduler(make_pool(16), UNIT, policy=policy).schedule(reqs)
        assert start_order(schedule) == [0, 1, 2]
        assert policy.preemptions == []


# ---------------------------------------------------------------------------
# latency percentiles and SLA accounting


class TestLatencyAndSla:
    def test_nearest_rank_percentiles(self):
        data = [float(i) for i in range(1, 101)]
        pct = latency_percentiles(data)
        assert pct == {50.0: 50.0, 95.0: 95.0, 99.0: 99.0}

    def test_empty_and_singleton(self):
        assert latency_percentiles([]) == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}
        assert latency_percentiles([3.0]) == {50.0: 3.0, 95.0: 3.0, 99.0: 3.0}

    @given(st.lists(st.floats(0.0, 1e3), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_order_statistics(self, data):
        pct = latency_percentiles(data)
        values = [pct[50.0], pct[95.0], pct[99.0]]
        assert all(v in data for v in values)
        assert values == sorted(values)

    def test_replay_sla_summary(self):
        generous = replay(
            synthetic_stream(6, rate=1e5, seed=2, deadline_slack=1e9), p=16
        )
        assert generous.sla_summary() == {"met": 6, "missed": 0, "best_effort": 0}
        hopeless = replay(
            synthetic_stream(6, rate=1e5, seed=2, deadline_slack=0.0), p=16
        )
        assert hopeless.sla_summary() == {"met": 0, "missed": 6, "best_effort": 0}
        default = replay(synthetic_stream(6, rate=1e5, seed=2), p=16)
        assert default.sla_summary() == {"met": 0, "missed": 0, "best_effort": 6}
        assert all(v >= 0.0 for v in default.latencies())


# ---------------------------------------------------------------------------
# the daemon, in virtual time


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def advance(self, dt: float) -> None:
        self.t += dt

    def __call__(self) -> float:
        return self.t


def daemon(batch=8, admission=None, **kw):
    config = DaemonConfig(
        p=16, batch=batch, time_scale=1.0, admission=admission, **kw
    )
    return ServeDaemon(config, clock=FakeClock())


class TestDaemon:
    def test_trsm_round_trip_and_auto_flush(self):
        d = daemon(batch=2)
        first = d.handle('{"op": "trsm", "n": 64, "k": 4, "sla": 1e9}')
        assert first["ok"] and first["decision"] == "admitted" and first["rid"] == 0
        assert "flushed" not in first
        second = d.handle('{"op": "trsm", "n": 64, "k": 4, "sla": 1e9}')
        flushed = second["flushed"]
        assert flushed["completed"] == 2
        assert {r["rid"] for r in flushed["results"]} == {0, 1}
        assert all(r["sla_met"] for r in flushed["results"])
        assert flushed["makespan_seconds"] > 0.0
        assert set(flushed["latency"]) == {"p50", "p95", "p99"}

    def test_sla_missed_is_reported(self):
        d = daemon(batch=1)
        out = d.handle('{"op": "trsm", "n": 64, "k": 4, "sla": 0.0}')
        assert out["flushed"]["results"][0]["sla_met"] is False

    def test_rejected_requests_never_run(self):
        d = daemon(batch=8, admission=AdmissionConfig(max_queue_depth=1))
        assert d.handle('{"op": "trsm", "n": 64}')["decision"] == "admitted"
        second = d.handle('{"op": "trsm", "n": 64}')
        assert second["decision"] == "rejected" and second["reason"] == "queue_full"
        flushed = d.handle('{"op": "flush"}')
        assert flushed["completed"] == 1
        stats = d.handle('{"op": "stats"}')
        assert stats["admission"]["rejected"] == 1
        assert stats["completed"] == 1

    def test_telemetry_snapshot_shape(self):
        d = daemon(batch=1)
        d.handle('{"op": "trsm", "n": 64, "k": 4}')
        t = d.handle('{"op": "stats"}')
        for key in (
            "sim_time",
            "completed",
            "flushes",
            "admission",
            "latency",
            "sla",
            "occupancy",
            "throughput_rps",
            "staging_cache",
            "pricing_memo",
            "plan_cache",
        ):
            assert key in t
        assert t["throughput_rps"] > 0.0
        assert t["plan_cache"]["hits"] + t["plan_cache"]["misses"] >= 0

    def test_virtual_clock_drives_sim_time(self):
        clock = FakeClock()
        d = ServeDaemon(DaemonConfig(p=16, time_scale=0.5), clock=clock)
        clock.advance(4.0)
        assert d.sim_now() == pytest.approx(2.0)
        clock.t = 1.0  # a coarse clock stepping backwards must not leak
        assert d.sim_now() == pytest.approx(2.0)

    def test_protocol_errors_are_typed(self):
        d = daemon()
        assert d.handle("not json")["ok"] is False
        assert d.handle('{"no_op": 1}')["ok"] is False
        assert d.handle('{"op": "warp"}')["ok"] is False
        bad = d.handle('{"op": "trsm"}')  # missing n
        assert bad["ok"] is False and "KeyError" in bad["error"]

    def test_shutdown_flushes_and_stops(self):
        d = daemon(batch=8)
        d.handle('{"op": "trsm", "n": 64}')
        out = d.handle('{"op": "shutdown"}')
        assert out["ok"] and out["final_flush"]["completed"] == 1
        assert d.stopped

    def test_run_stdin_line_protocol(self):
        lines = "\n".join(
            [
                json.dumps({"op": "trsm", "n": 64, "k": 4, "sla": 1e9}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        fout = io.StringIO()
        processed = daemon(batch=8).run_stdin(io.StringIO(lines + "\n"), fout)
        assert processed == 2
        out = [json.loads(x) for x in fout.getvalue().splitlines()]
        assert out[0]["decision"] == "admitted"
        shutdown = next(o for o in out if o.get("op") == "shutdown")
        assert shutdown["final_flush"]["completed"] == 1

    def test_run_stdin_eof_final_flush(self):
        fout = io.StringIO()
        line = json.dumps({"op": "trsm", "n": 64}) + "\n"
        daemon(batch=8).run_stdin(io.StringIO(line), fout)
        out = [json.loads(x) for x in fout.getvalue().splitlines()]
        flush = next(o for o in out if o.get("op") == "flush")
        assert flush["completed"] == 1
        assert out[-1]["op"] == "telemetry"

    def test_load_test_is_reproducible(self):
        def run():
            summary = daemon(batch=4).run_load_test(
                8, rate=2e4, process="lognormal", seed=5, deadline_slack=1e9
            )
            return (
                summary["offered"],
                summary["completed"],
                summary["latency"],
                summary["sla"],
            )

        first, second = run(), run()
        assert first == second
        assert first[0] == first[1] == 8
        assert first[3] == {"met": 8, "missed": 0}

    def test_load_test_respects_admission(self):
        summary = daemon(
            batch=4, admission=AdmissionConfig(rate=1e3, burst=1.0, defer_on_rate=False)
        ).run_load_test(12, rate=1e6, seed=0)
        assert summary["offered"] == 12
        assert summary["rejected"] > 0
        assert summary["completed"] == 12 - summary["rejected"]

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            DaemonConfig(batch=0)
        with pytest.raises(ParameterError):
            DaemonConfig(time_scale=0.0)
