"""Distributed blocked LU with pivoting strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factor import lu_factor_distributed
from repro.machine import CostParams, Machine
from repro.machine.validate import GridError, ParameterError, ShapeError

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def factor(n, sp, block=8, pivoting="tournament", seed=0, dominant=False):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    if dominant:
        A = A + n * np.eye(n)
    machine = Machine(sp * sp, params=UNIT)
    grid = machine.grid(sp, sp)
    L, U, perm = lu_factor_distributed(machine, grid, A, block=block, pivoting=pivoting)
    return machine, A, L, U, perm


class TestCorrectness:
    @pytest.mark.parametrize("pivoting", ["partial", "tournament"])
    @pytest.mark.parametrize("n,block", [(16, 4), (32, 8), (33, 7), (24, 24)])
    def test_reconstructs(self, pivoting, n, block):
        machine, A, L, U, perm = factor(n, 2, block, pivoting, seed=n)
        err = np.linalg.norm(A[perm] - L.to_global() @ U.to_global())
        assert err < 1e-9 * np.linalg.norm(A), (pivoting, n, block)

    def test_l_unit_lower_u_upper(self):
        machine, A, L, U, perm = factor(24, 2)
        Lg, Ug = L.to_global(), U.to_global()
        assert np.allclose(np.diag(Lg), 1.0)
        assert np.allclose(np.triu(Lg, 1), 0)
        assert np.allclose(np.tril(Ug, -1), 0)

    def test_partial_matches_scipy_pivots(self):
        import scipy.linalg as sla

        machine, A, L, U, perm = factor(20, 1, block=4, pivoting="partial", seed=3)
        P, Ls, Us = sla.lu(A)
        # same factorization up to the permutation convention
        assert np.allclose(A[perm], L.to_global() @ U.to_global(), atol=1e-10)
        assert np.allclose(np.abs(np.diag(U.to_global())), np.abs(np.diag(Us)), atol=1e-10)

    def test_none_pivoting_on_dominant(self):
        machine, A, L, U, perm = factor(16, 2, pivoting="none", dominant=True)
        assert np.array_equal(perm, np.arange(16))
        assert np.allclose(A, L.to_global() @ U.to_global(), atol=1e-9 * 16)

    def test_none_pivoting_rejects_zero_pivot(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.eye(8)
        A[0, 0] = 0.0
        with pytest.raises(ShapeError):
            lu_factor_distributed(machine, grid, A, pivoting="none")

    def test_growth_bounded_for_tournament(self):
        """CALU stability: the tournament factors' entries stay bounded."""
        machine, A, L, U, perm = factor(48, 2, block=8, pivoting="tournament", seed=5)
        growth = np.abs(U.to_global()).max() / np.abs(A).max()
        assert growth < 100  # far from pathological

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 32), block=st.integers(1, 10))
    def test_property_tournament(self, n, block):
        machine, A, L, U, perm = factor(n, 2, block, "tournament", seed=n)
        err = np.linalg.norm(A[perm] - L.to_global() @ U.to_global())
        assert err < 1e-8 * max(np.linalg.norm(A), 1.0)


class TestLatencyContrast:
    def test_tournament_cuts_pivot_latency(self):
        m_part, *_ = factor(64, 4, block=8, pivoting="partial", seed=6)
        m_tour, *_ = factor(64, 4, block=8, pivoting="tournament", seed=6)
        s_part = m_part.phase_cost("pivot_search").S
        s_tour = m_tour.phase_cost("pivot_search").S
        # Theta(n log p) vs Theta((n/b) log p): expect ~b-fold reduction
        assert s_part > 4 * s_tour

    def test_phases_recorded(self):
        machine, *_ = factor(32, 2)
        names = set(machine.phase_names())
        assert {"pivot_search", "panel_solve", "trailing_update"} <= names


class TestValidation:
    def test_bad_strategy(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        with pytest.raises(ParameterError):
            lu_factor_distributed(machine, grid, np.eye(8), pivoting="psychic")

    def test_nonsquare_grid(self):
        machine = Machine(8, params=UNIT)
        grid = machine.grid(2, 4)
        with pytest.raises(GridError):
            lu_factor_distributed(machine, grid, np.eye(8))

    def test_nonsquare_matrix(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        with pytest.raises(ShapeError):
            lu_factor_distributed(machine, grid, np.ones((4, 5)))
