"""Newton-Schulz inversion: the contrast that motivates exact inversion."""

import numpy as np
import pytest

from repro.inversion.newton import newton_schulz_inverse, predicted_iterations
from repro.machine.validate import ShapeError
from repro.util.checking import backward_error
from repro.util.randmat import (
    ill_conditioned_lower_triangular,
    random_lower_triangular,
)


class TestConvergence:
    @pytest.mark.parametrize("n", [1, 2, 8, 33])
    def test_converges_on_well_conditioned(self, n):
        L = random_lower_triangular(n, seed=n)
        X, iters = newton_schulz_inverse(L)
        assert backward_error(L, X) < 1e-11
        assert iters <= 60

    def test_result_lower_triangular(self):
        L = random_lower_triangular(16, seed=0)
        X, _ = newton_schulz_inverse(L)
        assert np.allclose(np.triu(X, 1), 0)

    def test_iterations_grow_with_conditioning(self):
        """The reason the paper inverts exactly: NS sweeps scale with
        log(cond), each sweep costing two full MMs."""
        L_good = random_lower_triangular(32, seed=1)
        L_bad = ill_conditioned_lower_triangular(32, condition_target=1e6, seed=1)
        _, it_good = newton_schulz_inverse(L_good)
        _, it_bad = newton_schulz_inverse(L_bad, max_iters=500)
        assert it_bad > 1.5 * it_good

    def test_nonconvergence_raises(self):
        L = ill_conditioned_lower_triangular(24, condition_target=1e8, seed=0)
        with pytest.raises(RuntimeError):
            newton_schulz_inverse(L, max_iters=3)

    def test_rejects_non_triangular(self):
        with pytest.raises(ShapeError):
            newton_schulz_inverse(np.ones((4, 4)))

    def test_rejects_singular(self):
        L = np.tril(np.ones((4, 4)))
        L[0, 0] = 0.0
        with pytest.raises(ShapeError):
            newton_schulz_inverse(L)


class TestIterationModel:
    def test_monotone_in_condition(self):
        assert predicted_iterations(1e6) > predicted_iterations(1e2)

    def test_invalid_condition(self):
        with pytest.raises(ValueError):
            predicted_iterations(0.5)

    def test_prediction_tracks_measurement(self):
        for target in (1e2, 1e4):
            L = ill_conditioned_lower_triangular(40, condition_target=target, seed=2)
            _, iters = newton_schulz_inverse(L, max_iters=500)
            predicted = predicted_iterations(np.linalg.cond(L))
            assert iters <= 2.5 * predicted + 8
