"""The built-in acceptance battery."""


from repro.analysis.selfcheck import CheckResult, SelfCheckReport, run_selfcheck


class TestBattery:
    def test_quick_battery_passes(self):
        report = run_selfcheck(quick=True)
        assert report.ok, report.render()
        assert len(report.results) == 8

    def test_render_contains_status(self):
        report = run_selfcheck(quick=True)
        text = report.render()
        assert "PASS" in text
        assert "8/8 checks passed" in text

    def test_failures_are_reported_not_raised(self):
        report = SelfCheckReport()
        report.results.append(CheckResult("broken", False, "boom"))
        assert not report.ok
        assert "FAIL" in report.render()

    def test_cli_exit_code(self, capsys):
        from repro.__main__ import main

        assert main(["selfcheck", "--quick"]) == 0
        assert "checks passed" in capsys.readouterr().out


def test_full_battery_passes():
    report = run_selfcheck(quick=False)
    assert report.ok, report.render()
