"""Error metrics and flop conventions."""

import numpy as np
import pytest

from repro.util.checking import (
    backward_error,
    flops_gemm,
    flops_tri_inv_seq,
    flops_trmm,
    flops_trsm_seq,
    forward_error,
    relative_residual,
)
from repro.util.randmat import random_dense, random_lower_triangular


class TestResidual:
    def test_exact_solution_zero(self):
        L = random_lower_triangular(10, seed=0)
        X = random_dense(10, 3, seed=1)
        B = L @ X
        assert relative_residual(L, X, B) < 1e-15

    def test_wrong_solution_large(self):
        L = random_lower_triangular(10, seed=0)
        X = random_dense(10, 3, seed=1)
        assert relative_residual(L, X + 1.0, L @ X) > 1e-3

    def test_zero_everything(self):
        z = np.zeros((3, 3))
        assert relative_residual(z, z, z) == 0.0


class TestForwardBackward:
    def test_forward_error_zero_for_identical(self):
        X = random_dense(5, 5, seed=0)
        assert forward_error(X, X) == 0.0

    def test_forward_error_relative_to_reference(self):
        X = np.eye(3)
        assert forward_error(2 * X, X) == pytest.approx(1.0)
        assert forward_error(3 * X, X) == pytest.approx(2.0)

    def test_forward_error_zero_reference(self):
        assert forward_error(np.ones((2, 2)), np.zeros((2, 2))) == 2.0

    def test_backward_error_of_true_inverse(self):
        L = random_lower_triangular(12, seed=0)
        assert backward_error(L, np.linalg.inv(L)) < 1e-14


class TestFlopConventions:
    def test_gemm(self):
        assert flops_gemm(2, 3, 4) == 24.0

    def test_trmm_half_of_gemm(self):
        assert flops_trmm(10, 4) == flops_gemm(10, 4, 10) / 2

    def test_trsm_seq(self):
        assert flops_trsm_seq(10, 2) == 100.0

    def test_tri_inv(self):
        assert flops_tri_inv_seq(6) == 36.0
