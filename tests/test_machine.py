"""Tests for the simulated machine: charging, syncing, phases."""

import pytest

from repro.machine import CostParams, Machine
from repro.machine.cost import Cost
from repro.machine.validate import GridError


UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestGridAllocation:
    def test_allocates_consecutive_ranks(self):
        m = Machine(8)
        g1 = m.grid(2, 2)
        g2 = m.grid(4)
        assert g1.ranks() == [0, 1, 2, 3]
        assert g2.ranks() == [4, 5, 6, 7]

    def test_over_allocation_rejected(self):
        m = Machine(4)
        m.grid(2, 2)
        with pytest.raises(GridError):
            m.grid(2)

    def test_zero_ranks_rejected(self):
        with pytest.raises(GridError):
            Machine(0)


class TestCharging:
    def test_charge_advances_clock(self):
        m = Machine(4, params=UNIT)
        m.charge([0, 1], Cost(1, 2, 3))
        assert m.time() == 6.0

    def test_charge_updates_counters(self):
        m = Machine(2, params=UNIT)
        m.charge([0], Cost(1, 2, 3))
        cp = m.critical_path()
        assert (cp.S, cp.W, cp.F) == (1, 2, 3)

    def test_disjoint_groups_run_concurrently(self):
        m = Machine(4, params=UNIT)
        m.charge([0, 1], Cost(5, 0, 0))
        m.charge([2, 3], Cost(7, 0, 0))
        # concurrent: total time is the max, not the sum
        assert m.time() == 7.0

    def test_group_sync_serializes_dependents(self):
        m = Machine(4, params=UNIT)
        m.charge([0, 1], Cost(5, 0, 0))
        m.charge([1, 2], Cost(1, 0, 0))  # rank 1 drags rank 2 forward
        assert m.time() == 6.0

    def test_sync_propagates_critical_path_counters(self):
        m = Machine(2, params=UNIT)
        m.charge([0], Cost(10, 0, 0), sync=False)
        m.charge([0, 1], Cost(1, 0, 0))  # sync: rank 1 inherits rank 0's path
        cp = m.critical_path()
        assert cp.S == 11

    def test_charge_empty_group_is_noop(self):
        m = Machine(2, params=UNIT)
        m.charge([], Cost(5, 5, 5))
        assert m.time() == 0.0

    def test_charge_local_per_rank(self):
        m = Machine(3, params=UNIT)
        m.charge_local({0: Cost(0, 0, 5), 1: Cost(0, 0, 9)})
        assert m.time() == 9.0
        assert m.critical_path().F == 9

    def test_charge_uniform_flops(self):
        m = Machine(4, params=UNIT)
        m.charge_uniform_flops([0, 1, 2, 3], 7.0)
        assert m.time() == 7.0
        assert m.max_counters().F == 7.0

    def test_barrier_aligns_clocks(self):
        m = Machine(2, params=UNIT)
        m.charge([0], Cost(9, 0, 0), sync=False)
        m.barrier()
        m.charge([1], Cost(1, 0, 0), sync=False)
        assert m.time() == 10.0

    def test_total_volume_counts_all_ranks(self):
        m = Machine(4, params=UNIT)
        m.charge([0, 1, 2, 3], Cost(1, 2, 0))
        tv = m.total_volume()
        assert (tv.S, tv.W) == (4, 8)

    def test_reset(self):
        m = Machine(2, params=UNIT)
        m.charge([0, 1], Cost(1, 1, 1))
        m.reset()
        assert m.time() == 0.0
        assert m.critical_path() == Cost.zero()


class TestPhases:
    def test_phase_attribution(self):
        m = Machine(2, params=UNIT)
        with m.phase("a"):
            m.charge([0, 1], Cost(1, 2, 3))
        m.charge([0, 1], Cost(10, 0, 0))  # outside any phase
        assert m.phase_cost("a") == Cost(1, 2, 3)

    def test_unknown_phase_is_zero(self):
        m = Machine(2)
        assert m.phase_cost("nope") == Cost.zero()

    def test_phase_reentry_accumulates(self):
        m = Machine(2, params=UNIT)
        for _ in range(3):
            with m.phase("loop"):
                m.charge([0, 1], Cost(1, 0, 0))
        assert m.phase_cost("loop").S == 3

    def test_concurrent_disjoint_charges_do_not_stack(self):
        m = Machine(4, params=UNIT)
        with m.phase("par"):
            m.charge([0, 1], Cost(0, 100, 0))
            m.charge([2, 3], Cost(0, 100, 0))
        # per-rank max, not the 200-word sum
        assert m.phase_cost("par").W == 100

    def test_nested_phases_attribute_to_innermost(self):
        m = Machine(2, params=UNIT)
        with m.phase("outer"):
            with m.phase("inner"):
                m.charge([0, 1], Cost(1, 0, 0))
            m.charge([0, 1], Cost(0, 1, 0))
        assert m.phase_cost("inner") == Cost(1, 0, 0)
        assert m.phase_cost("outer") == Cost(0, 1, 0)

    def test_phase_names(self):
        m = Machine(2, params=UNIT)
        with m.phase("x"):
            m.charge([0], Cost(1, 0, 0))
        assert m.phase_names() == ["x"]


class TestTrace:
    def test_trace_disabled_by_default(self):
        m = Machine(2)
        m.charge([0, 1], Cost(1, 0, 0), label="op")
        assert m.trace == []

    def test_trace_records_labels(self):
        m = Machine(2, trace=True)
        m.charge([0, 1], Cost(1, 0, 0), label="op")
        assert len(m.trace) == 1
        assert m.trace[0].label == "op"
        assert m.trace[0].group_size == 2
