"""Exact redistribution routing: plans, fusion, and the charging bugfixes.

Covers the PR-2 contract:

* exact ``W`` never exceeds the old all-to-all bound (property-tested
  across layout families) and is zero iff the index maps coincide;
* identity transitions charge zero *via the routing plan* (no special
  case) and allocate nothing once the index-map cache is warm;
* fused transition chains (the paper's three-step cyclic/blocked/cyclic)
  collapse to a single charge, and ``rec_tri_inv``'s trace shows exactly
  one fused charge per extract -> redistribute chain;
* the charging bugfixes: misaligned final assembly in ``rec_tri_inv`` is
  charged, empty-window extraction is free and valid, and the rectangular
  transpose on a square grid charges the larger direction of each pair.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    DistMatrix,
    End,
    RoutingPlan,
    extract_submatrix,
    fuse_transitions,
    gather_frame,
    redistribute,
    route_embed,
    route_submatrix,
    transpose_matrix,
)
from repro.dist.layout import Layout, axis_cache_size, clear_layout_caches
from repro.inversion.rec_tri_inv import rec_tri_inv_global
from repro.machine import CostParams, Machine
from repro.machine.topology import ProcessorGrid
from repro.util.randmat import random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

GRIDS = [(2, 2), (1, 3), (3, 1), (2, 4), (4, 4), (3, 3)]


def make_layout(kind: str, pr: int, pc: int, br: int, bc: int) -> Layout:
    if kind == "cyclic":
        return CyclicLayout(pr, pc)
    if kind == "blocked":
        return BlockedLayout(pr, pc)
    return BlockCyclicLayout(pr, pc, br=br, bc=bc)


layout_kinds = st.sampled_from(["cyclic", "blocked", "blockcyclic"])


@st.composite
def transitions(draw):
    pr, pc = draw(st.sampled_from(GRIDS))
    m = draw(st.integers(1, 24))
    n = draw(st.integers(1, 24))
    mk = lambda: make_layout(  # noqa: E731 - local factory
        draw(layout_kinds), pr, pc, draw(st.integers(1, 4)), draw(st.integers(1, 4))
    )
    return (pr, pc), (m, n), mk(), mk()


class TestExactVsBound:
    @settings(max_examples=120, deadline=None)
    @given(t=transitions())
    def test_w_below_alltoall_bound_and_zero_iff_identity(self, t):
        """Exact routing never charges more bandwidth than the old
        all-to-all bound (for any union of >= 3 ranks, where the Bruck
        formula is a genuine envelope), and charges exactly zero iff the
        two index maps coincide."""
        (pr, pc), (m, n), la, lb = t
        grid = ProcessorGrid.build((pr, pc))
        plan = RoutingPlan(End(grid, la, (m, n)), End(grid, lb, (m, n)), (m, n))
        cost = plan.cost()
        same = np.array_equal(
            la.row_owner_map(m)[0], lb.row_owner_map(m)[0]
        ) and np.array_equal(la.col_owner_map(n)[0], lb.col_owner_map(n)[0])
        assert (cost.W == 0 and cost.S == 0) == same
        if pr * pc >= 3:
            assert cost.W <= plan.alltoall_bound().W + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(t=transitions())
    def test_routed_data_matches_global_view(self, t):
        """apply() routes blocks rank-to-rank; the result must assemble to
        the same global matrix."""
        (pr, pc), (m, n), la, lb = t
        machine = Machine(pr * pc, params=UNIT)
        grid = machine.grid(pr, pc)
        A = np.arange(float(m * n)).reshape(m, n)
        D = DistMatrix.from_global(machine, grid, la, A)
        D2 = redistribute(D, grid, lb)
        assert np.array_equal(D2.to_global(), A)

    def test_two_rank_swap_exceeds_brucks_formula(self):
        """On two ranks the old 'bound' (n/2 words) cannot even express a
        full pairwise swap — the documented reason the property above is
        scoped to unions of >= 3 ranks."""
        grid = ProcessorGrid.build((1, 2))
        la = BlockCyclicLayout(1, 2, br=1, bc=2)
        lb = BlockCyclicLayout(1, 2, br=1, bc=3)
        plan = RoutingPlan(End(grid, la, (8, 8)), End(grid, lb, (8, 8)), (8, 8))
        assert plan.cost().W > plan.alltoall_bound().W


class TestIdentityIsFree:
    def test_identity_charges_zero_without_special_case(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), np.ones((6, 6)))
        # degenerate spelling of the same distribution: still zero pairs
        plan = RoutingPlan(
            End.of(D), End(grid, BlockCyclicLayout(2, 2, br=1, bc=1), D.shape), D.shape
        )
        assert plan.cost().S == 0 and plan.cost().W == 0
        assert plan.pairs() == []
        D2 = redistribute(D, grid, BlockCyclicLayout(2, 2, br=1, bc=1))
        assert machine.time() == 0.0
        # free, but the result carries the *requested* spelling so layout
        # type checks downstream (e.g. mm3d's cyclic requirement) behave
        assert isinstance(D2.layout, BlockCyclicLayout)
        assert np.array_equal(D2.to_global(), D.to_global())
        # the same spelling short-circuits to the same object
        assert redistribute(D, grid, D.layout) is D

    def test_repeated_identity_transitions_do_not_grow_caches(self):
        """The regression guard for the memoized index maps: after the
        first transition the caches are warm and repeats allocate no new
        index arrays."""
        clear_layout_caches()
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), np.ones((8, 8)))
        redistribute(D, grid, CyclicLayout(2, 2))
        warm = axis_cache_size()
        assert warm > 0
        for _ in range(50):
            assert redistribute(D, grid, CyclicLayout(2, 2)) is D
        assert axis_cache_size() == warm
        assert machine.time() == 0.0

    def test_cached_index_arrays_are_shared_and_readonly(self):
        lay = CyclicLayout(2, 2)
        a = lay.row_indices(1, 9)
        b = CyclicLayout(2, 2).row_indices(1, 9)  # equal spelling, same cache
        assert a is b
        assert not a.flags.writeable

    def test_cache_safe_for_subclass_without_key_override(self):
        """The cache fingerprints every attribute, so a subclass that adds
        a parameter but forgets _key() must still get its own maps."""

        class ShiftedCyclic(CyclicLayout):  # deliberately no _key override
            def __init__(self, pr, pc, shift):
                super().__init__(pr, pc)
                self.shift = shift

            def _rows(self, x, m):
                return np.sort(np.arange((x + self.shift) % self.pr, m, self.pr))

        a = ShiftedCyclic(2, 2, 0).row_indices(0, 8)
        b = ShiftedCyclic(2, 2, 1).row_indices(0, 8)
        assert not np.array_equal(a, b)


class TestFusedTransitions:
    def test_three_step_identity_chain_is_free_fused(self):
        """The paper's cyclic -> blocked -> cyclic transition: stepwise it
        pays twice, fused it composes to the identity and pays nothing."""
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        shape = (8, 8)
        chain = fuse_transitions(
            [
                End(grid, CyclicLayout(2, 2), shape),
                End(grid, BlockedLayout(2, 2), shape),
                End(grid, CyclicLayout(2, 2), shape),
            ],
            shape,
        )
        assert chain.cost().S == 0 and chain.cost().W == 0
        step = chain.stepwise_cost()
        assert step.S > 0 and step.W > 0

    def test_fused_cost_never_exceeds_stepwise(self):
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        shape = (9, 7)
        chain = fuse_transitions(
            [
                End(g1, CyclicLayout(2, 2), shape),
                End(g1, BlockedLayout(2, 2), shape),
                End(g2, CyclicLayout(2, 2), shape),
            ],
            shape,
        )
        fused, step = chain.cost(), chain.stepwise_cost()
        assert fused.S <= step.S and fused.W <= step.W

    def test_route_submatrix_matches_unfused_data(self):
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        A = np.arange(100.0).reshape(10, 10)
        D = DistMatrix.from_global(machine, g1, CyclicLayout(2, 2), A)
        sub = route_submatrix(D, 3, 9, 1, 8, g2, BlockedLayout(2, 2))
        assert sub.grid == g2 and isinstance(sub.layout, BlockedLayout)
        assert np.array_equal(sub.to_global(), A[3:9, 1:8])

    def test_route_embed_across_grids(self):
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        target = DistMatrix.zeros(machine, g1, CyclicLayout(2, 2), (8, 8))
        sub = DistMatrix.from_global(
            machine, g2, BlockedLayout(2, 2), np.ones((3, 5))
        )
        route_embed(sub, target, 2, 1)
        G = target.to_global()
        assert np.all(G[2:5, 1:6] == 1)
        G[2:5, 1:6] = 0
        assert np.all(G == 0)

    def test_route_embed_of_a_matrix_into_itself(self):
        """Source and destination share storage: apply() must snapshot the
        source so early writes don't corrupt later reads."""
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        route_embed(D, D, 0, 0)  # identity placement: must be a no-op
        assert np.array_equal(D.to_global(), A)
        # a genuinely overlapping move: shift a window of D within D's own
        # storage; lazy reads would observe partially-written blocks
        E = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        plan = RoutingPlan(End.window_of(E, 0, 0), End.window_of(E, 3, 3), (4, 4))
        plan.apply(E.blocks, out=E.blocks)
        G = E.to_global()
        assert np.array_equal(G[3:7, 3:7], A[0:4, 0:4])

    def test_overlapping_layout_rejected(self):
        from repro.machine.validate import ShapeError

        class Overlapping(CyclicLayout):
            def _rows(self, x, m):
                return np.arange(m)  # every coordinate claims every row

        try:
            Overlapping(2, 2).row_indices(0, 4)
        except ShapeError:
            pass
        else:  # pragma: no cover - defends the partition invariant
            raise AssertionError("non-partition layout must be rejected")

    def test_rec_tri_inv_trace_has_one_fused_charge_per_chain(self):
        """Each recursion level routes L11 and L22 down in exactly one
        fused charge per child (the old code paid extract + redistribute
        separately)."""
        machine = Machine(16, params=UNIT, trace=True)
        grid = machine.grid(4, 4)
        L = random_lower_triangular(16, seed=0)
        rec_tri_inv_global(machine, grid, L, base_n=4)
        down = [ev for ev in machine.trace if ev.label == "rectriinv.route_down"]
        back = [ev for ev in machine.trace if ev.label == "rectriinv.route_back"]
        # level 0 on the 4x4 grid: 2 children; level 1 on each 2x2
        # quadrant: 2 children each -> 2 + 4 fused charges in each direction
        assert len(down) == 6
        assert len(back) == 6
        stray = [
            ev
            for ev in machine.trace
            if ev.label.startswith("rectriinv.extract") and ev.label != "rectriinv.extract21"
        ]
        assert stray == []


class TestChargingBugfixes:
    def test_misaligned_final_assembly_is_charged(self):
        """h % sp != 0 places inv21/inv22 at rank-moving offsets; the old
        scratch-copy assembly moved those words for free."""
        machine = Machine(4, params=UNIT, trace=True)
        grid = machine.grid(2, 2)
        L = random_lower_triangular(10, seed=1)  # h = 5, sp = 2: misaligned
        inv = rec_tri_inv_global(machine, grid, L, base_n=4)
        from repro.util.checking import backward_error

        assert backward_error(L, inv.to_global()) < 1e-12
        embeds = [ev for ev in machine.trace if ev.label == "rectriinv.embed"]
        assert any(ev.cost.S > 0 and ev.cost.W > 0 for ev in embeds)

    def test_aligned_assembly_stays_free(self):
        machine = Machine(4, params=UNIT, trace=True)
        grid = machine.grid(2, 2)
        L = random_lower_triangular(16, seed=2)  # every level splits evenly
        rec_tri_inv_global(machine, grid, L, base_n=4)
        embeds = [ev for ev in machine.trace if ev.label == "rectriinv.embed"]
        assert embeds == []

    def test_empty_window_extraction_is_free_and_valid(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        for r0, r1, c0, c1 in [(3, 3, 0, 5), (0, 8, 6, 6), (2, 2, 2, 2)]:
            sub = extract_submatrix(D, r0, r1, c0, c1)
            assert machine.time() == 0.0
            assert sub.shape == (r1 - r0, c1 - c0)
            assert sub.to_global().shape == (r1 - r0, c1 - c0)
            assert set(sub.blocks) == set(grid.ranks())

    def test_rectangular_transpose_on_square_grid(self):
        """m != n pairs blocks of different shapes; the exchange must ship
        the larger payload and still land every element correctly."""
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(20.0).reshape(4, 5)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        DT = transpose_matrix(D)
        assert np.array_equal(DT.to_global(), A.T)
        cp = machine.critical_path()
        assert cp.S == 1  # pairwise exchange
        # pair (0,1)<->(1,0): 2x2 = 4 words vs 2x3 = 6 words -> charge 6
        assert cp.W == 6

    def test_mismatched_transposed_maps_fall_back(self):
        """A transposed() whose blocks match in *shape* but not in index
        sets must not take the pairwise path (which would scramble data);
        the owner-map pairing check sends it down the exact route."""

        class ShiftedCyclic(CyclicLayout):
            def _rows(self, x, m):
                return np.sort(np.arange((x + 1) % self.pr, m, self.pr))

            def transposed(self):
                return CyclicLayout(self.pc, self.pr)  # shapes pair, maps don't

        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = DistMatrix.from_global(machine, grid, ShiftedCyclic(2, 2), A)
        DT = transpose_matrix(D)
        assert np.array_equal(DT.to_global(), A.T)

    def test_unpairable_layout_falls_back_to_exact_route(self):
        class NoTransposeLayout(CyclicLayout):
            def transposed(self):
                raise NotImplementedError("test layout")

        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(30.0).reshape(5, 6)
        D = DistMatrix.from_global(machine, grid, NoTransposeLayout(2, 2), A)
        DT = transpose_matrix(D)
        assert np.array_equal(DT.to_global(), A.T)
        assert machine.critical_path().S >= 1


class TestGatherFrame:
    def test_matches_global_slicing(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(77.0).reshape(7, 11)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        rows = np.array([0, 2, 5, 6])
        cols = np.array([1, 3, 4, 9, 10])
        frame = gather_frame(End(grid, D.layout, D.shape, rows=rows, cols=cols), D.blocks)
        assert np.array_equal(frame, A[np.ix_(rows, cols)])
        assert machine.time() == 0.0  # plumbing, not a charge

    def test_window_offsets(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = DistMatrix.from_global(machine, grid, BlockedLayout(2, 2), A)
        frame = gather_frame(End.window_of(D, 3, 2), D.blocks, shape=(4, 5))
        assert np.array_equal(frame, A[3:7, 2:7])


class TestPlanGeometry:
    def test_pair_words_sum_to_moved_volume(self):
        """Total planned words must equal the number of elements that truly
        change ranks."""
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        m, n = 9, 7
        la, lb = CyclicLayout(2, 2), BlockedLayout(2, 2)
        plan = RoutingPlan(End(grid, la, (m, n)), End(grid, lb, (m, n)), (m, n))
        ro_a, _ = la.row_owner_map(m)
        co_a, _ = la.col_owner_map(n)
        ro_b, _ = lb.row_owner_map(m)
        co_b, _ = lb.col_owner_map(n)
        moved = sum(
            1
            for i in range(m)
            for j in range(n)
            if grid.rank((ro_a[i], co_a[j])) != grid.rank((ro_b[i], co_b[j]))
        )
        assert sum(w for _, _, w in plan.pairs()) == moved

    def test_window_selectors_use_interval_views(self):
        lay = CyclicLayout(2, 2)
        pos = lay.local_rows_in(1, 16, 4, 12)
        rows = lay.row_indices(1, 16)
        # same answer the old O(m) scan gave, from two binary searches
        assert np.array_equal(rows[pos], [5, 7, 9, 11])
        assert np.array_equal(
            pos, np.nonzero((rows >= 4) & (rows < 12))[0]
        )

    def test_transposed_destination_end_applies_correctly(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = np.arange(20.0).reshape(4, 5)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), A)
        # route A into the transposed view of a 5x4 blocked matrix: the
        # routed blocks must assemble to A.T
        dst_layout = BlockedLayout(2, 2)
        plan = RoutingPlan(
            End.of(D), End(grid, dst_layout, (5, 4), transpose=True), (4, 5)
        )
        blocks = plan.apply(D.blocks)
        DT = DistMatrix(machine, grid, dst_layout, (5, 4), blocks)
        assert np.array_equal(DT.to_global(), A.T)

    def test_selection_offset_exclusivity_enforced(self):
        from repro.machine.validate import ShapeError

        grid = ProcessorGrid.build((2, 2))
        lay = CyclicLayout(2, 2)
        try:
            End(grid, lay, (8, 8), offset=(2, 0), rows=np.arange(3))
        except ShapeError:
            pass
        else:  # pragma: no cover - defends the mutual-exclusion contract
            raise AssertionError("offset + explicit selection must be rejected")

    def test_s_matches_partner_count(self):
        """Disjoint-grid same-layout move: one partner per rank."""
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        plan = RoutingPlan(
            End(g1, CyclicLayout(2, 2), (6, 6)), End(g2, CyclicLayout(2, 2), (6, 6)), (6, 6)
        )
        cost = plan.cost()
        assert cost.S == 1
        assert len(plan.pairs()) == 4
