"""Redistribution, submatrix extraction/embedding, distributed transpose."""

import numpy as np
import pytest

from repro.dist import (
    BlockedLayout,
    CyclicLayout,
    DistMatrix,
    change_layout,
    redistribute,
    transpose_matrix,
)
from repro.dist.redistribute import embed_submatrix, extract_submatrix
from repro.machine import CostParams, Machine
from repro.machine.validate import GridError

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def dist(machine, grid, A, layout_cls=CyclicLayout):
    return DistMatrix.from_global(machine, grid, layout_cls(*grid.shape), A)


class TestRedistribute:
    def test_grid_to_grid_preserves_data(self):
        m = Machine(8, params=UNIT)
        g1 = m.grid(2, 2)
        g2 = m.grid(2, 2)
        A = np.arange(36.0).reshape(6, 6)
        D = dist(m, g1, A)
        D2 = redistribute(D, g2, CyclicLayout(2, 2))
        assert np.array_equal(D2.to_global(), A)
        assert set(D2.blocks) == set(g2.ranks())

    def test_identity_transition_free(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        D = dist(m, g, np.ones((4, 4)))
        D2 = redistribute(D, g, D.layout)
        assert m.time() == 0.0
        assert D2 is D

    def test_charges_exact_routing(self):
        m = Machine(8, params=UNIT)
        g1 = m.grid(2, 2)
        g2 = m.grid(2, 2)
        D = dist(m, g1, np.ones((4, 4)))
        redistribute(D, g2, CyclicLayout(2, 2))
        cp = m.critical_path()
        # same layout on a disjoint grid: every rank ships its whole block
        # to exactly one partner — one message of 4 words, not the
        # all-to-all bound the old implementation charged
        assert cp.S == 1
        assert cp.W == 4

    def test_layout_change_on_same_grid(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(16.0).reshape(4, 4)
        D = dist(m, g, A)
        D2 = change_layout(D, BlockedLayout(2, 2))
        assert np.array_equal(D2.to_global(), A)
        assert isinstance(D2.layout, BlockedLayout)


class TestTranspose:
    def test_square_grid_transpose(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(20.0).reshape(4, 5)
        D = dist(m, g, A)
        DT = transpose_matrix(D)
        assert np.array_equal(DT.to_global(), A.T)
        # pairwise exchange: one message per off-diagonal pair
        assert m.critical_path().S == 1

    def test_nonsquare_grid_transpose_falls_back(self):
        m = Machine(8, params=UNIT)
        g = m.grid(2, 4)
        A = np.arange(24.0).reshape(4, 6)
        D = dist(m, g, A)
        DT = transpose_matrix(D)
        assert np.array_equal(DT.to_global(), A.T)
        assert m.critical_path().S > 1  # all-to-all bound


class TestExtractSubmatrix:
    def test_aligned_extraction_is_free(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = dist(m, g, A)
        sub = extract_submatrix(D, 0, 4, 0, 6)
        assert m.time() == 0.0
        assert np.array_equal(sub.to_global(), A[:4, :6])

    def test_misaligned_extraction_charged(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = dist(m, g, A)
        sub = extract_submatrix(D, 3, 8, 0, 8)
        assert m.critical_path().S > 0
        assert np.array_equal(sub.to_global(), A[3:8, :])

    def test_extraction_is_standard_cyclic(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(64.0).reshape(8, 8)
        D = dist(m, g, A)
        sub = extract_submatrix(D, 4, 8, 4, 8)
        blk = sub.local((1, 0))
        assert np.array_equal(blk, A[4:8, 4:8][1::2, 0::2])


class TestEmbedSubmatrix:
    def test_aligned_embed_free(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        target = dist(m, g, np.zeros((8, 8)))
        sub = dist(m, g, np.ones((4, 8)))
        embed_submatrix(target, sub, 0, 0)
        assert m.time() == 0.0
        G = target.to_global()
        assert np.all(G[:4] == 1) and np.all(G[4:] == 0)

    def test_misaligned_embed_charged(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        target = dist(m, g, np.zeros((8, 8)))
        sub = dist(m, g, np.ones((3, 8)))
        embed_submatrix(target, sub, 5, 0)
        assert m.critical_path().S > 0
        G = target.to_global()
        assert np.all(G[5:] == 1) and np.all(G[:5] == 0)

    def test_grid_mismatch_rejected(self):
        m = Machine(8, params=UNIT)
        g1 = m.grid(2, 2)
        g2 = m.grid(2, 2)
        target = dist(m, g1, np.zeros((4, 4)))
        sub = dist(m, g2, np.ones((2, 4)))
        with pytest.raises(GridError):
            embed_submatrix(target, sub, 0, 0)

    def test_extract_then_embed_roundtrip(self):
        m = Machine(4, params=UNIT)
        g = m.grid(2, 2)
        A = np.arange(49.0).reshape(7, 7)
        D = dist(m, g, A)
        sub = extract_submatrix(D, 2, 6, 1, 5)
        target = dist(m, g, np.zeros((7, 7)))
        embed_submatrix(target, sub, 2, 1)
        G = target.to_global()
        assert np.array_equal(G[2:6, 1:5], A[2:6, 1:5])
        G[2:6, 1:5] = 0
        assert np.all(G == 0)
