"""Tests for processor grids (fibers, embeddings, subgrids)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError


class TestConstruction:
    def test_build_consecutive(self):
        g = ProcessorGrid.build((2, 3))
        assert g.shape == (2, 3)
        assert g.ranks() == [0, 1, 2, 3, 4, 5]

    def test_build_with_start(self):
        g = ProcessorGrid.build((2, 2), start=10)
        assert g.ranks() == [10, 11, 12, 13]

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(GridError):
            ProcessorGrid(np.array([[0, 1], [1, 2]]))

    def test_empty_rejected(self):
        with pytest.raises(GridError):
            ProcessorGrid(np.zeros((0, 2), dtype=int))

    def test_rank_and_coord_roundtrip(self):
        g = ProcessorGrid.build((3, 4, 2))
        for coord in g.coords():
            assert g.coord_of(g.rank(coord)) == coord

    def test_rank_out_of_bounds(self):
        g = ProcessorGrid.build((2, 2))
        with pytest.raises(GridError):
            g.rank((2, 0))
        with pytest.raises(GridError):
            g.rank((0,))

    def test_contains(self):
        g = ProcessorGrid.build((2, 2), start=4)
        assert 5 in g and 3 not in g

    def test_equality_and_hash(self):
        a = ProcessorGrid.build((2, 2))
        b = ProcessorGrid.build((2, 2))
        assert a == b and hash(a) == hash(b)
        assert a != ProcessorGrid.build((4,))


class TestViews:
    def test_reshape(self):
        g = ProcessorGrid.build((4, 4))
        r = g.reshape((2, 8))
        assert r.shape == (2, 8)
        assert r.ranks() == g.ranks()

    def test_reshape_size_mismatch(self):
        with pytest.raises(GridError):
            ProcessorGrid.build((2, 2)).reshape((3, 2))

    def test_transpose(self):
        g = ProcessorGrid.build((2, 3))
        t = g.transpose((1, 0))
        assert t.shape == (3, 2)
        assert t.rank((2, 1)) == g.rank((1, 2))

    def test_split_axis_index_math(self):
        # The paper's embedding: idx = inner + inner_size * outer.
        g = ProcessorGrid.build((8,))
        s = g.split_axis(0, 4)
        assert s.shape == (4, 2)
        for inner in range(4):
            for outer in range(2):
                assert s.rank((inner, outer)) == g.rank((inner + 4 * outer,))

    def test_split_axis_2d_to_4d(self):
        # Pi4D(x1, x2, y1, y2) = Pi2D(x1 + p1*x2, y1 + p1*y2), p1 = 2.
        g = ProcessorGrid.build((4, 4))
        g4 = g.split_axis(0, 2).split_axis(2, 2)
        assert g4.shape == (2, 2, 2, 2)
        for x1 in range(2):
            for x2 in range(2):
                for y1 in range(2):
                    for y2 in range(2):
                        assert g4.rank((x1, x2, y1, y2)) == g.rank(
                            (x1 + 2 * x2, y1 + 2 * y2)
                        )

    def test_merge_axes_inverts_split(self):
        g = ProcessorGrid.build((3, 8, 2))
        s = g.split_axis(1, 4)
        assert s.merge_axes(1) == g

    def test_split_invalid_factor(self):
        with pytest.raises(GridError):
            ProcessorGrid.build((6,)).split_axis(0, 4)


class TestFibersAndSubgrids:
    def test_fiber_varies_one_axis(self):
        g = ProcessorGrid.build((3, 4))
        fib = g.fiber(1, (2, 0))
        assert fib == [g.rank((2, y)) for y in range(4)]

    def test_fibers_partition_grid(self):
        g = ProcessorGrid.build((4, 4))
        seen = set()
        for x in range(4):
            fib = g.fiber(1, (x, 0))
            assert len(fib) == 4
            seen.update(fib)
        assert seen == set(g.ranks())

    def test_plane(self):
        g = ProcessorGrid.build((2, 3, 4))
        pl = g.plane(2, 1)
        assert pl.shape == (2, 3)
        assert pl.rank((1, 2)) == g.rank((1, 2, 1))

    def test_halves_disjoint_cover(self):
        g = ProcessorGrid.build((4, 4))
        a, b = g.halves(0)
        assert a.shape == (2, 4) and b.shape == (2, 4)
        assert set(a.ranks()) | set(b.ranks()) == set(g.ranks())
        assert set(a.ranks()).isdisjoint(b.ranks())

    def test_halves_odd_axis_rejected(self):
        with pytest.raises(GridError):
            ProcessorGrid.build((3, 2)).halves(0)

    def test_tiles(self):
        g = ProcessorGrid.build((2, 8))
        tiles = g.tiles(1, 4)
        assert [t.shape for t in tiles] == [(2, 2)] * 4
        union = set()
        for t in tiles:
            union.update(t.ranks())
        assert union == set(g.ranks())

    def test_tiles_invalid(self):
        with pytest.raises(GridError):
            ProcessorGrid.build((2, 6)).tiles(1, 4)

    def test_subgrid_slicing(self):
        g = ProcessorGrid.build((4, 4))
        s = g.subgrid(slice(1, 3), slice(0, 2))
        assert s.shape == (2, 2)
        assert s.rank((0, 0)) == g.rank((1, 0))

    def test_subgrid_integer_index_drops_axis(self):
        g = ProcessorGrid.build((4, 4))
        s = g.subgrid(2, slice(None))
        assert s.shape == (4,)


@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(1, 3),
)
def test_grid_size_invariants(a, b, c):
    g = ProcessorGrid.build((a, b, c))
    assert g.size == a * b * c
    assert len(set(g.ranks())) == g.size
    assert sorted(g.ranks()) == list(range(a * b * c))
