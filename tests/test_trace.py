"""Trace aggregation tests."""

import numpy as np
import pytest

from repro.analysis.trace import render_trace, summarize_trace
from repro.dist import CyclicLayout, DistMatrix
from repro.machine import CostParams, Machine
from repro.machine.cost import Cost
from repro.mm import mm3d
from repro.util.randmat import random_dense

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestSummarize:
    def test_requires_traced_machine(self):
        m = Machine(2)
        with pytest.raises(ValueError):
            summarize_trace(m)

    def test_aggregates_by_label(self):
        m = Machine(4, params=UNIT, trace=True)
        m.charge([0, 1], Cost(1, 10, 0), label="a")
        m.charge([2, 3], Cost(2, 20, 0), label="a")
        m.charge([0, 1, 2, 3], Cost(1, 5, 0), label="b")
        summary = {s.label: s for s in summarize_trace(m)}
        assert summary["a"].events == 2
        assert summary["a"].total.W == 30
        assert summary["a"].worst.W == 20
        assert summary["a"].max_group == 2
        assert summary["b"].max_group == 4

    def test_sorted_by_total_words(self):
        m = Machine(2, params=UNIT, trace=True)
        m.charge([0], Cost(0, 1, 0), label="small")
        m.charge([0], Cost(0, 100, 0), label="big")
        labels = [s.label for s in summarize_trace(m)]
        assert labels == ["big", "small"]

    def test_unlabelled_events_grouped(self):
        m = Machine(2, params=UNIT, trace=True)
        m.charge([0], Cost(1, 1, 1))
        summary = summarize_trace(m)
        assert summary[0].label == "<unlabelled>"

    def test_mean_words(self):
        m = Machine(2, params=UNIT, trace=True)
        m.charge([0], Cost(0, 10, 0), label="x")
        m.charge([0], Cost(0, 30, 0), label="x")
        s = summarize_trace(m)[0]
        assert s.mean_words == 20


class TestRealRun:
    def test_mm_trace_has_expected_labels(self):
        m = Machine(16, params=UNIT, trace=True)
        g = m.grid(4, 4)
        lay = CyclicLayout(4, 4)
        A = random_dense(16, 16, seed=0)
        X = random_dense(16, 8, seed=1)
        dA = DistMatrix.from_global(m, g, lay, A)
        dX = DistMatrix.from_global(m, g, lay, X)
        out = mm3d(dA, dX, 2)
        assert np.allclose(out.to_global(), A @ X)
        labels = {s.label for s in summarize_trace(m)}
        assert {"mm3d.line2", "mm3d.line5", "mm3d.line6", "mm3d.line7"} <= labels

    def test_render(self):
        m = Machine(4, params=UNIT, trace=True)
        m.charge([0, 1], Cost(1, 10, 0), label="op")
        text = render_trace(m)
        assert "op" in text and "events" in text
