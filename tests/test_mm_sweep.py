"""Exhaustive MM split sweep: every valid (p1, p2) on one problem.

Complements the targeted mm tests with a full cross of grid splits,
verifying numerics AND the invariants the dispatch logic relies on:
flops identical across splits, bandwidth trading off against the split,
and the chooser picking the modeled minimum.
"""

import math

import numpy as np
import pytest

from repro.dist import CyclicLayout, DistMatrix
from repro.machine import CostParams, Machine
from repro.mm import mm3d
from repro.mm.cost_model import mm3d_cost
from repro.mm.dispatch import valid_mm_splits
from repro.util.randmat import random_dense

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

P = 16
SPLITS = valid_mm_splits(P)  # (4,1), (2,4), (1,16)


def run(p1, p2, n=24, k=12, seed=0):
    sq = math.isqrt(p2)
    sp = p1 * sq
    machine = Machine(sp * sp, params=UNIT)
    grid = machine.grid(sp, sp)
    lay = CyclicLayout(sp, sp)
    A = random_dense(n, n, seed=seed)
    X = random_dense(n, k, seed=seed + 1)
    dA = DistMatrix.from_global(machine, grid, lay, A)
    dX = DistMatrix.from_global(machine, grid, lay, X)
    out = mm3d(dA, dX, p1)
    return machine, A, X, out


@pytest.mark.parametrize("p1,p2", SPLITS)
def test_every_split_correct(p1, p2):
    machine, A, X, out = run(p1, p2)
    assert np.allclose(out.to_global(), A @ X, atol=1e-10)


@pytest.mark.parametrize("p1,p2", SPLITS)
def test_every_split_matches_model(p1, p2):
    n, k = 32, 16  # divisible by every split's grid side
    machine, A, X, out = run(p1, p2, n=n, k=k)
    model = mm3d_cost(n, k, p1, p2)
    cp = machine.critical_path()
    assert cp.S == pytest.approx(model.S)
    assert cp.W == pytest.approx(model.W)
    assert cp.F == pytest.approx(model.F)


def test_local_multiply_flops_identical_across_splits():
    n, k = 32, 16
    fs = []
    for p1, p2 in SPLITS:
        machine, *_ = run(p1, p2, n=n, k=k)
        # line-6 flops are n^2 k / p for every split; line-7 reduction
        # flops differ, so compare within a narrow band
        fs.append(machine.critical_path().F)
    base = n * n * k / P
    for f in fs:
        assert base <= f <= 1.5 * base


def test_replication_reduces_right_operand_traffic():
    """More replication (larger p2) must reduce the per-rank X traffic
    (lines 5+7 words fall with 1/(p1 p2))."""
    n, k = 32, 32
    w_left = {}
    for p1, p2 in SPLITS:
        model = mm3d_cost(n, k, p1, p2)
        w_left[(p1, p2)] = model.W
    # the 2D split moves the most right-operand words per rank
    assert w_left[(4, 1)] >= w_left[(2, 4)] * 0.5  # shapes comparable
    # and the fully replicated split pays the n^2 allgather instead
    assert w_left[(1, 16)] >= n * n
