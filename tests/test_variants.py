"""BLAS-style solve variants (upper / transposed / unit diagonal / LU)."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.validate import ShapeError
from repro.trsm.variants import solve_lu, solve_triangular
from repro.util.randmat import random_dense, random_lower_triangular


def upper(n, seed=0):
    return random_lower_triangular(n, seed=seed).T


class TestLower:
    def test_plain_lower_matches_trsm(self):
        L = random_lower_triangular(24, seed=0)
        B = random_dense(24, 6, seed=1)
        res = solve_triangular(L, B, p=4, lower=True)
        assert np.allclose(res.X, sla.solve_triangular(L, B, lower=True), atol=1e-10)

    def test_lower_transposed(self):
        L = random_lower_triangular(24, seed=2)
        B = random_dense(24, 6, seed=3)
        res = solve_triangular(L, B, p=4, lower=True, trans=True)
        ref = sla.solve_triangular(L, B, lower=True, trans="T")
        assert np.allclose(res.X, ref, atol=1e-10)
        assert res.residual < 1e-12


class TestUpper:
    def test_upper_solve(self):
        U = upper(24, seed=4)
        B = random_dense(24, 6, seed=5)
        res = solve_triangular(U, B, p=4, lower=False)
        assert np.allclose(res.X, sla.solve_triangular(U, B, lower=False), atol=1e-10)

    def test_upper_transposed_is_lower(self):
        U = upper(24, seed=6)
        B = random_dense(24, 6, seed=7)
        res = solve_triangular(U, B, p=4, lower=False, trans=True)
        ref = sla.solve_triangular(U, B, lower=False, trans="T")
        assert np.allclose(res.X, ref, atol=1e-10)

    def test_upper_residual_recomputed_for_original_operands(self):
        U = upper(16, seed=8)
        B = random_dense(16, 4, seed=9)
        res = solve_triangular(U, B, p=4, lower=False)
        assert res.residual is not None and res.residual < 1e-13


class TestUnitDiagonal:
    def test_unit_lower(self):
        L = random_lower_triangular(20, seed=10)
        np.fill_diagonal(L, 1.0)
        B = random_dense(20, 5, seed=11)
        res = solve_triangular(L, B, p=4, unit_diagonal=True)
        ref = sla.solve_triangular(L, B, lower=True, unit_diagonal=True)
        assert np.allclose(res.X, ref, atol=1e-10)

    def test_unit_diagonal_ignores_stored_diagonal(self):
        L = random_lower_triangular(20, seed=12)
        np.fill_diagonal(L, 7.0)  # stored diagonal must be ignored
        B = random_dense(20, 5, seed=13)
        res = solve_triangular(L, B, p=4, unit_diagonal=True)
        L1 = L.copy()
        np.fill_diagonal(L1, 1.0)
        assert np.allclose(res.X, sla.solve_triangular(L1, B, lower=True), atol=1e-10)


class TestVectorAndValidation:
    def test_vector_rhs(self):
        L = random_lower_triangular(16, seed=14)
        b = random_dense(16, 1, seed=15)[:, 0]
        res = solve_triangular(L, b, p=4)
        assert res.X.shape == (16,)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            solve_triangular(np.eye(4), np.ones((3, 2)), p=4)

    def test_nonsquare(self):
        with pytest.raises(ShapeError):
            solve_triangular(np.ones((3, 4)), np.ones(3), p=4)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 24),
        k=st.integers(1, 5),
        lower=st.booleans(),
        trans=st.booleans(),
    )
    def test_all_variants_property(self, n, k, lower, trans):
        A = random_lower_triangular(n, seed=n * 3 + k)
        if not lower:
            A = A.T
        B = random_dense(n, k, seed=k)
        res = solve_triangular(A, B, p=4, lower=lower, trans=trans)
        ref = sla.solve_triangular(A, B, lower=lower, trans="T" if trans else "N")
        assert np.allclose(res.X, ref, atol=1e-9)


class TestLuSolve:
    def test_general_system(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((24, 24)) + 24 * np.eye(24)
        B = random_dense(24, 6, seed=1)
        X, fwd, bwd = solve_lu(A, B, p=4)
        assert np.allclose(A @ X, B, atol=1e-8)
        assert fwd.measured.F > 0 and bwd.measured.F > 0

    def test_with_pivoting_needed(self):
        # a matrix whose natural order requires row exchanges
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        X, _, _ = solve_lu(A + 1e-3 * np.eye(2), b, p=1)
        assert np.allclose((A + 1e-3 * np.eye(2)) @ X, b, atol=1e-10)

    def test_vector_rhs(self):
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 16)) + 16 * np.eye(16)
        b = rng.standard_normal(16)
        X, _, _ = solve_lu(A, b, p=4)
        assert X.shape == (16,)
        assert np.allclose(A @ X, b, atol=1e-9)
