"""Random matrix generators: shapes, conditioning, determinism."""

import numpy as np
import pytest

from repro.util.randmat import (
    ill_conditioned_lower_triangular,
    random_dense,
    random_lower_triangular,
    random_spd,
    random_unit_lower_triangular,
)


class TestRandomLowerTriangular:
    def test_is_lower_triangular(self):
        L = random_lower_triangular(20, seed=0)
        assert np.allclose(np.triu(L, 1), 0)

    def test_well_conditioned(self):
        L = random_lower_triangular(100, seed=0)
        assert np.linalg.cond(L) < 100

    def test_deterministic_with_seed(self):
        assert np.array_equal(
            random_lower_triangular(10, seed=7), random_lower_triangular(10, seed=7)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            random_lower_triangular(10, seed=1), random_lower_triangular(10, seed=2)
        )

    def test_generator_instance_accepted(self):
        g = np.random.default_rng(3)
        L = random_lower_triangular(5, seed=g)
        assert L.shape == (5, 5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_lower_triangular(0)

    def test_diag_dominance_knob(self):
        L = random_lower_triangular(10, seed=0, diag_dominance=5.0)
        assert np.allclose(np.abs(np.diag(L)), 5.0)


class TestUnitLowerTriangular:
    def test_unit_diagonal(self):
        L = random_unit_lower_triangular(15, seed=0)
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(np.triu(L, 1), 0)


class TestIllConditioned:
    def test_condition_target_reached(self):
        L = ill_conditioned_lower_triangular(50, condition_target=1e6, seed=0)
        assert np.linalg.cond(L) >= 1e6

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ill_conditioned_lower_triangular(1)


class TestDenseAndSpd:
    def test_dense_shape_and_range(self):
        B = random_dense(7, 9, seed=0)
        assert B.shape == (7, 9)
        assert np.all(np.abs(B) <= 1.0)

    def test_spd_is_spd(self):
        A = random_spd(20, seed=0)
        assert np.allclose(A, A.T)
        w = np.linalg.eigvalsh(A)
        assert w.min() > 0
