"""Triangular-structure helpers (dist.triangular) and report formatting."""

import numpy as np
import pytest

from repro.analysis.report import format_cost, format_table
from repro.dist.triangular import (
    block_diagonal_words,
    diagonal_block,
    is_lower_triangular,
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
    triangle_words,
)
from repro.machine.cost import Cost
from repro.machine.validate import ShapeError


class TestStructureChecks:
    def test_is_lower_triangular(self):
        assert is_lower_triangular(np.tril(np.ones((4, 4))))
        assert not is_lower_triangular(np.ones((4, 4)))

    def test_tolerance(self):
        A = np.tril(np.ones((4, 4)))
        A[0, 3] = 1e-12
        assert not is_lower_triangular(A)
        assert is_lower_triangular(A, tol=1e-10)

    def test_require_lower_raises(self):
        with pytest.raises(ShapeError):
            require_lower_triangular(np.triu(np.ones((3, 3))) + np.eye(3))

    def test_require_nonsingular(self):
        L = np.eye(4)
        require_nonsingular_triangular(L)
        L[2, 2] = 0.0
        with pytest.raises(ShapeError):
            require_nonsingular_triangular(L)

    def test_require_square(self):
        assert require_square(np.zeros((5, 5))) == 5
        with pytest.raises(ShapeError):
            require_square(np.zeros((5, 4)))

    def test_require_square_on_distmatrix_like(self):
        class Fake:
            shape = (3, 3)

        assert require_square(Fake()) == 3


class TestBlocks:
    def test_diagonal_block(self):
        A = np.arange(64.0).reshape(8, 8)
        blk = diagonal_block(A, 1, 4)
        assert np.array_equal(blk, A[4:8, 4:8])

    def test_diagonal_block_out_of_range(self):
        with pytest.raises(ShapeError):
            diagonal_block(np.zeros((8, 8)), 2, 4)

    def test_block_diagonal_words(self):
        assert block_diagonal_words(8, 2) == 4 * 4

    def test_block_diagonal_words_requires_divisibility(self):
        with pytest.raises(ShapeError):
            block_diagonal_words(8, 3)

    def test_triangle_words(self):
        assert triangle_words(4) == 10


class TestReportFormatting:
    def test_format_cost(self):
        s = format_cost(Cost(1, 2.5, 3e6))
        assert "S=1" in s and "W=2.5" in s

    def test_format_table_alignment(self):
        text = format_table(["col"], [[123456.0]])
        assert "1.235e+05" in text

    def test_format_table_title_underline(self):
        text = format_table(["a"], [[1]], title="Hello")
        lines = text.splitlines()
        assert lines[0] == "Hello"
        assert lines[1] == "=====".ljust(5, "=")

    def test_zero_float(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestRenderBars:
    def test_basic_bars(self):
        from repro.analysis.report import render_bars

        text = render_bars({"a": 10.0, "b": 5.0}, width=10, unit=" ms")
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert "ms" in lines[0]

    def test_title_and_empty(self):
        from repro.analysis.report import render_bars

        assert "T" in render_bars({"a": 1.0}, title="T")
        assert render_bars({}) == "(no data)"

    def test_negative_rejected(self):
        from repro.analysis.report import render_bars

        import pytest as _pytest

        with _pytest.raises(ValueError):
            render_bars({"a": -1.0})

    def test_zero_value_has_no_bar(self):
        from repro.analysis.report import render_bars

        text = render_bars({"a": 0.0, "b": 2.0})
        assert "a | " in text.splitlines()[0] + text
