"""Structured export (CSV/JSON) and the report command."""

import csv
import json


from repro.analysis.export import (
    conclusion_sweep_rows,
    cost_to_dict,
    regime_map_json,
    rows_to_csv,
    tuning_table_rows,
    write_report,
)
from repro.machine.cost import Cost


class TestPrimitives:
    def test_cost_to_dict(self):
        assert cost_to_dict(Cost(1, 2, 3)) == {"S": 1, "W": 2, "F": 3}

    def test_rows_to_csv_roundtrip(self):
        text = rows_to_csv(["a", "b"], [[1, "x,y"], [2, "z"]])
        rows = list(csv.reader(text.splitlines()))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "x,y"]  # quoting survived the comma


class TestSweeps:
    def test_conclusion_sweep_shape(self):
        headers, rows = conclusion_sweep_rows(256, 64, [16, 256])
        assert len(headers) == 10
        assert len(rows) == 2
        assert rows[0][3] == 16

    def test_regime_map_json_parses(self):
        data = json.loads(regime_map_json((-2, 2), (4, 64)))
        assert set(data) == {"log2_n_over_k", "p", "labels"}
        assert all(v in ("1D", "2D", "3D") for row in data["labels"] for v in row)

    def test_tuning_table(self):
        headers, rows = tuning_table_rows([(128, 32, 16)])
        assert rows[0][:3] == [128, 32, 16]
        assert rows[0][4] * rows[0][4] * rows[0][5] == 16  # p1^2 p2 = p


class TestReport:
    def test_write_report_creates_files(self, tmp_path):
        paths = write_report(tmp_path / "report", n=128, k=32, ps=[16, 64])
        names = {p.name for p in paths}
        assert names == {
            "conclusion_sweep.csv",
            "regime_map.json",
            "tuning_table.csv",
            "sensitivity.csv",
        }
        for p in paths:
            assert p.exists() and p.stat().st_size > 0

    def test_report_csv_parsable(self, tmp_path):
        paths = write_report(tmp_path, n=128, k=32, ps=[16, 64])
        for p in paths:
            if p.suffix == ".csv":
                rows = list(csv.reader(p.read_text().splitlines()))
                assert len(rows) >= 2

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["report", str(tmp_path / "out"), "-n", "128", "-k", "32"]) == 0
        out = capsys.readouterr().out
        assert "conclusion_sweep.csv" in out
