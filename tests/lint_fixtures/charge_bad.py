# replint-fixture-module: repro.dist.fixture_stage_bad
"""Bad: stage_matrix with the charge_pointwise pairing deleted."""


def stage(plan, blocks):
    return plan.apply(blocks)
