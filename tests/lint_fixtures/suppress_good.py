# replint-fixture-module: repro.api.fixture_suppress_ok
"""Good: a justified escape hatch suppresses the finding."""

import numpy as np


def jitter():
    # replint: disable=rng-discipline -- fixture demonstrating a justified suppression
    return np.random.rand(4)
