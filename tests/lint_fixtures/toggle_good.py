# replint-fixture-module: tests.fixture_toggle
"""Good: toggles flipped only inside a context-managed helper."""

import contextlib

from repro.dist import routing


@contextlib.contextmanager
def reference_routing():
    previous = routing.set_reference_mode(True)
    try:
        yield
    finally:
        routing.set_reference_mode(previous)
