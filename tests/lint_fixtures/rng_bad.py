# replint-fixture-module: repro.api.fixture_serve
"""Bad: a bare np.random.rand slipped into the serve layer."""

import numpy as np


def jitter():
    return np.random.rand(4)


def unseeded():
    return np.random.default_rng()
