# replint-fixture-module: repro.sched.fixture_gather_ok
"""Good: the scheduler prices movement through routed plans only."""

from repro.dist import staging_plan


def staging_words(D, grid, layout):
    return staging_plan(D, grid, layout).cost().W
