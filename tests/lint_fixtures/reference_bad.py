# replint-fixture-module: repro.api.fixture_ref
"""Bad: library code reaching for the parity-only reference loops."""

from repro.dist.routing_reference import reference_cost  # noqa: F401
