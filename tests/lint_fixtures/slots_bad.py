# replint-fixture-module: repro.sched.fixture_types_bad
"""Bad: slot-less dataclasses on the scheduler hot path."""

from dataclasses import dataclass


@dataclass
class Span:
    start: float
    stop: float


@dataclass(frozen=True)
class Window:
    lo: int
    hi: int
