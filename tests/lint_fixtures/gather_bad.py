# replint-fixture-module: repro.sched.fixture_gather
"""Bad: a scheduler helper assembling global frames on the hot path."""

import numpy as np

from repro.dist import gather_frame


def plan_area(X):
    frame = X.to_global()
    slab = gather_frame(X.layout, X.blocks)
    return float(np.asarray(frame).size + np.asarray(slab).size)
