# replint-fixture-module: repro.api.fixture_serve_ok
"""Good: all randomness through an explicitly seeded Generator."""

import numpy as np


def noise(seed: int):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(4)
