# replint-fixture-module: repro.dist.fixture_stage
"""Good: the stage_matrix shape — mutation paired with its charge."""


def stage(plan, machine, blocks, pointwise=True):
    if pointwise:
        plan.charge_pointwise(machine, label="stage")
    else:
        plan.charge(machine, label="stage")
    return plan.apply(blocks)
