# replint-fixture-module: repro.api.fixture_suppress
"""Bad: a disable without justification must not suppress."""

import numpy as np


def jitter():
    return np.random.rand(4)  # replint: disable=rng-discipline
