# replint-fixture-module: repro.sched.fixture_clock_bad
"""Bad: virtual-time scheduler code reading the host wall clock."""

import time
from time import monotonic, perf_counter  # noqa: F401


def stamp_now() -> float:
    return time.time()


def default_clock():
    return time.monotonic
