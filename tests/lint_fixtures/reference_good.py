# replint-fixture-module: benchmarks.fixture_ref
"""Good: benchmarks may exercise the pinned reference loops."""

from repro.dist.routing_reference import reference_cost  # noqa: F401
