# replint-fixture-module: repro.sched.fixture_clock_good
"""Good: virtual time comes from the event loop; a real clock is injected."""

import time
from typing import Callable


def wait_poll(seconds: float) -> None:
    time.sleep(seconds)  # sleeping is not a clock *read*


def finish_time(ctx, exec_seconds: float) -> float:
    return ctx.now + exec_seconds


def run(clock: Callable[[], float]) -> float:
    return clock()
