# replint-fixture-module: tests.fixture_toggle_bad
"""Bad: raw toggle calls leak across tests on failure."""

from repro.dist import routing


def test_reference_parity(plan, fast):
    routing.set_reference_mode(True)
    assert (plan.pairs(), plan.cost()) == fast
    routing.set_reference_mode(False)
