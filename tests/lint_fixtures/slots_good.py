# replint-fixture-module: repro.sched.fixture_types
"""Good: hot-path dataclasses declare slots."""

from dataclasses import dataclass


@dataclass(slots=True, frozen=True)
class Span:
    start: float
    stop: float
