# replint-fixture-module: repro.analysis.fixture_backend_bad
"""Bad: analysis code building a Machine behind the backend's back."""

import time
from time import perf_counter  # noqa: F401

from repro.machine.machine import Machine


def simulate(p: int) -> float:
    machine = Machine(p)
    t0 = time.perf_counter()
    machine.barrier()
    return time.perf_counter() - t0
