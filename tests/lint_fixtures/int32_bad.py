# replint-fixture-module: repro.dist.fixture_words
"""Bad: an int32-accumulating word count (the PR 6 overflow class)."""

import numpy as np


def total_words(counts):
    return int(np.sum(counts) + counts.prod())
