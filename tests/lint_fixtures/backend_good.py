# replint-fixture-module: repro.analysis.fixture_backend_good
"""Good: machines come from a backend; clocks are the backend's timer."""

from repro.backend.sim import SimBackend


def simulate(p: int) -> float:
    backend = SimBackend()
    machine = backend.make_machine(p)
    t0 = backend.timer()
    machine.barrier()
    return backend.timer() - t0
