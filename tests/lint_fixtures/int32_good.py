# replint-fixture-module: repro.dist.fixture_words_ok
"""Good: routing-adjacent reductions pin their accumulator width."""

import numpy as np


def total_words(counts):
    return int(counts.sum(dtype=np.int64))
