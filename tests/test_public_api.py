"""API-contract tests: the public surface stays importable and documented."""

import importlib
import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_public_callables_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"missing class docstrings: {undocumented}"


SUBPACKAGES = [
    "repro.machine",
    "repro.machine.collectives",
    "repro.machine.collective_models",
    "repro.machine.memory",
    "repro.dist",
    "repro.dist.triangular",
    "repro.mm",
    "repro.inversion",
    "repro.inversion.newton",
    "repro.trsm",
    "repro.trsm.variants",
    "repro.trsm.prepared",
    "repro.tuning",
    "repro.analysis",
    "repro.analysis.sensitivity",
    "repro.analysis.export",
    "repro.analysis.trace",
    "repro.factor",
    "repro.util",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_module_importable_and_documented(module_name):
    mod = importlib.import_module(module_name)
    assert (mod.__doc__ or "").strip(), f"{module_name} lacks a module docstring"


class TestErrorTypes:
    def test_all_errors_share_base(self):
        from repro import GridError, ParameterError, ReproError, ShapeError

        for exc in (GridError, ShapeError, ParameterError):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, Exception)

    def test_catching_base_catches_all(self):
        from repro import ReproError, trsm
        import numpy as np

        with pytest.raises(ReproError):
            trsm(np.ones((4, 4)), np.ones((4, 1)), p=4)  # not triangular
