"""TRSM cost models: Section IV-A / VII / VIII formulas and IX relations."""

import math

import pytest

from repro.machine.cost import Cost
from repro.trsm.cost_model import (
    IterativeParts,
    conclusion_row,
    inversion_part,
    iterative_cost,
    iterative_cost_1d,
    iterative_cost_2d,
    iterative_cost_3d,
    iterative_cost_tuned,
    iterative_parts,
    latency_improvement,
    recursive_cost,
    recursive_cost_1d,
    recursive_cost_2d,
    recursive_cost_3d,
    solve_part,
    update_part,
)
from repro.tuning.regimes import TrsmRegime, classify_trsm


class TestRecursiveCosts:
    def test_1d_formula(self):
        c = recursive_cost_1d(64, 64 * 1024, 16)
        assert c.S == 4 and c.W == 64 * 64
        assert c.F == pytest.approx(64 * 64 * 64 * 1024 / 16)

    def test_2d_latency_sqrt_p_log_p(self):
        c = recursive_cost_2d(4096, 16, 256)
        assert c.S == 16.0 * 8.0  # sqrt(p) * log2(p), the Section IX entry

    def test_3d_latency_polynomial(self):
        c = recursive_cost_3d(256, 64, 4096)
        assert c.S == pytest.approx((256 * 4096 / 64) ** (2 / 3) * 12)

    def test_dispatch_matches_regime(self):
        n, k, p = 64, 64 * 1024, 16  # 1D
        assert recursive_cost(n, k, p) == recursive_cost_1d(n, k, p)
        n, k, p = 2**20, 16, 64  # 2D
        assert recursive_cost(n, k, p) == recursive_cost_2d(n, k, p)
        n, k, p = 256, 256, 64  # 3D
        assert recursive_cost(n, k, p) == recursive_cost_3d(n, k, p)


class TestIterativeParts:
    def test_inversion_part_formulas(self):
        c = inversion_part(n=256, n0=64, p1=4, p2=4, r1=2.0, r2=8.0)
        from repro.inversion.cost_model import NU

        assert c.W == pytest.approx(NU * (64**2 / 32 + 64**2 / 32))
        assert c.F == pytest.approx(256 * 64**2 / (8 * 16 * 4))
        lg = math.log2(64)
        assert c.S == pytest.approx(2 * lg * lg)

    def test_solve_part_formulas(self):
        c = solve_part(n=256, k=64, n0=64, p1=4, p2=4)
        nb = 4
        # nb * log p iterations + one 2 log p2 replication round
        assert c.S == nb * math.log2(64) + 2 * math.log2(4)
        assert c.W == pytest.approx(nb * (64**2 / 16 + 4 * 64 * 64 / 16))
        assert c.F == pytest.approx(nb * 64**2 * 64 / (16 * 4))

    def test_update_part_zero_for_single_block(self):
        assert update_part(n=64, k=32, n0=64, p1=2, p2=2) == Cost.zero()

    def test_update_part_panel_sum(self):
        c = update_part(n=128, k=32, n0=64, p1=2, p2=2)
        # one update round: bcast W = 4*(128-64)*64/4, reduce W = 4*64*32/4
        assert c.W == pytest.approx(4 * 64 * 64 / 4 + 4 * 64 * 32 / 4)

    def test_parts_total(self):
        parts = iterative_parts(128, 64, 32, 2, 2)
        assert isinstance(parts, IterativeParts)
        t = parts.total
        assert t.W == pytest.approx(
            parts.inversion.W + parts.solve.W + parts.update.W
        )
        assert iterative_cost(128, 64, 32, 2, 2) == t

    def test_unit_steps_zero_degenerate_grids(self):
        # p1 = 1: no allreduce terms; p2 = 1: no bcast/allgather-z terms
        c = solve_part(n=64, k=32, n0=16, p1=1, p2=4)
        assert c.W == pytest.approx((64 / 16) * (16**2 / 1))
        c2 = solve_part(n=64, k=32, n0=16, p1=2, p2=1)
        assert c2.W == pytest.approx((64 / 16) * 4 * (16 * 32 / 2))


class TestTunedTotals:
    def test_1d_latency_log_squared(self):
        c = iterative_cost_1d(16, 16 * 4096, 256)
        lg = 8.0
        assert c.S == lg * lg + lg

    def test_2d_bandwidth_no_log_factor(self):
        n, k, p = 2**16, 16, 256
        it = iterative_cost_2d(n, k, p)
        rec = recursive_cost_2d(n, k, p)
        # the paper's log(p) bandwidth gain of the new method
        assert rec.W / it.W == pytest.approx(math.log2(p))

    def test_3d_flops_factor_two(self):
        c = iterative_cost_3d(256, 64, 64)
        assert c.F == pytest.approx(2 * 256 * 256 * 64 / 64)

    def test_tuned_dispatch(self):
        assert iterative_cost_tuned(16, 16 * 4096, 256) == iterative_cost_1d(
            16, 16 * 4096, 256
        )
        assert iterative_cost_tuned(2**16, 16, 256) == iterative_cost_2d(
            2**16, 16, 256
        )
        assert iterative_cost_tuned(256, 64, 64) == iterative_cost_3d(256, 64, 64)


class TestConclusionTable:
    def test_row_contains_both_methods(self):
        row = conclusion_row(256, 64, 64)
        assert set(row) == {"standard", "new"}

    def test_3d_latency_improvement_grows_like_p23(self):
        """The Section IX headline: S_std/S_new ~ (n/k)^{1/6} p^{2/3}."""
        n, k = 1024, 256
        ratios = [latency_improvement(n, k, p) for p in (2**10, 2**14, 2**18)]
        growth1 = ratios[1] / ratios[0]
        growth2 = ratios[2] / ratios[1]
        ideal = (2**4) ** (2 / 3)  # p grew by 2^4
        # within 2x of the ideal growth (log factors perturb constants)
        assert ideal / 2 < growth1 < ideal * 2
        assert ideal / 2 < growth2 < ideal * 2

    def test_2d_new_method_wins_at_scale(self):
        # Near the 2D regime boundary (n/k a small multiple of sqrt(p)) the
        # new method's polylog + (n/k)^{3/4} p^{-1/8} log p latency beats
        # the standard sqrt(p) log p — the paper's ">= p^{1/4}/log p" gain.
        p = 2**16
        k = 16
        n = 8 * k * int(p**0.5)  # n/k = 8 sqrt(p), inside the 2D regime
        row = conclusion_row(n, k, p)
        assert classify_trsm(n, k, p) is TrsmRegime.TWO_LARGE
        assert row["new"].S < row["standard"].S

    def test_1d_standard_wins_latency(self):
        # In 1D the paper concedes an extra log factor for the new method.
        row = conclusion_row(16, 16 * 4096 * 64, 64)
        assert row["new"].S > row["standard"].S
        # but bandwidth and flops match
        assert row["new"].W == pytest.approx(row["standard"].W)
        assert row["new"].F == pytest.approx(row["standard"].F)

    def test_bandwidth_identical_in_3d(self):
        row = conclusion_row(1024, 256, 4096)
        assert row["new"].W == pytest.approx(row["standard"].W)
