"""Iterative refinement for TRSM."""

import numpy as np
import pytest

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError
from repro.trsm.refine import refined_trsm
from repro.util.randmat import (
    ill_conditioned_lower_triangular,
    random_dense,
    random_lower_triangular,
)

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestRefinement:
    def test_already_accurate_takes_no_steps(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = refined_trsm(L, B, p=4, target=1e-10, params=UNIT, n0=8)
        assert res.steps == 0
        assert res.residual < 1e-10

    def test_refinement_reduces_residual(self):
        L = ill_conditioned_lower_triangular(48, condition_target=1e8, seed=0)
        B = random_dense(48, 4, seed=1)
        res = refined_trsm(L, B, p=4, target=1e-30, max_steps=3, params=UNIT, n0=12)
        # residuals non-increasing until convergence plateau
        assert res.residuals[-1] <= res.residuals[0] * 1.01
        assert np.allclose(L @ res.X.reshape(48, -1), B, atol=1e-6)

    def test_vector_rhs(self):
        L = random_lower_triangular(16, seed=2)
        b = random_dense(16, 1, seed=3)[:, 0]
        res = refined_trsm(L, b, p=4, params=UNIT, n0=4)
        assert res.X.shape == (16,)
        assert np.allclose(L @ res.X, b, atol=1e-10)

    def test_max_steps_respected(self):
        L = random_lower_triangular(24, seed=4)
        B = random_dense(24, 3, seed=5)
        res = refined_trsm(L, B, p=4, target=1e-300, max_steps=2, params=UNIT, n0=8)
        assert res.steps <= 2

    def test_costs_recorded(self):
        L = random_lower_triangular(32, seed=6)
        B = random_dense(32, 4, seed=7)
        res = refined_trsm(L, B, p=4, params=UNIT, n0=8)
        assert res.preparation_cost.F > 0
        assert res.solve_cost_total > 0

    def test_invalid_parameters(self):
        L = random_lower_triangular(8, seed=8)
        B = random_dense(8, 2, seed=9)
        with pytest.raises(ParameterError):
            refined_trsm(L, B, p=4, max_steps=-1)
        with pytest.raises(ParameterError):
            refined_trsm(L, B, p=4, target=0.0)
