"""It-Inv-TRSM (Section VI): correctness, phases, grid sweep, baselines."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.machine.validate import ParameterError, ShapeError
from repro.trsm import it_inv_trsm_global
from repro.trsm.diagonal_inverter import diagonal_inverter, inversion_subgrid_side
from repro.dist import CyclicLayout, DistMatrix
from repro.util.checking import relative_residual
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def solve(p1, p2, n, k, n0, seed=0, base_n=4):
    machine = Machine(p1 * p1 * p2, params=UNIT)
    L = random_lower_triangular(n, seed=seed)
    B = random_dense(n, k, seed=seed + 1)
    X = it_inv_trsm_global(machine, L, B, p1=p1, p2=p2, n0=n0, base_n=base_n)
    return machine, L, B, X


class TestDiagonalInverter:
    def test_inverts_blocks_only(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        L = random_lower_triangular(16, seed=0)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), L)
        inv = diagonal_inverter(D, n0=4)
        G = inv.to_global()
        for b in range(4):
            lo, hi = 4 * b, 4 * (b + 1)
            assert np.allclose(
                G[lo:hi, lo:hi] @ L[lo:hi, lo:hi], np.eye(4), atol=1e-10
            )
        # off-diagonal blocks untouched (zero)
        assert np.allclose(np.tril(G, -4 - 1)[8:, :4], 0)

    def test_full_inversion_when_n0_equals_n(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        L = random_lower_triangular(8, seed=1)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), L)
        inv = diagonal_inverter(D, n0=8)
        assert np.allclose(inv.to_global() @ L, np.eye(8), atol=1e-10)

    def test_n0_must_divide(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        D = DistMatrix.from_global(
            machine, grid, CyclicLayout(2, 2), random_lower_triangular(10, seed=0)
        )
        with pytest.raises(ParameterError):
            diagonal_inverter(D, n0=3)

    def test_subgrid_side_formula(self):
        assert inversion_subgrid_side(p=64, n=64, n0=16) == 4  # q=16 -> 4x4
        assert inversion_subgrid_side(p=64, n=64, n0=8) == 2  # q=8  -> 2x2
        assert inversion_subgrid_side(p=4, n=64, n0=4) == 1  # q<4  -> 1x1

    def test_blocks_concurrent_when_enough_processors(self):
        """nb blocks on nb disjoint subgrids: time ~ one block, not nb."""
        machine1 = Machine(16, params=UNIT)
        g1 = machine1.grid(4, 4)
        L = random_lower_triangular(32, seed=2)
        D1 = DistMatrix.from_global(machine1, g1, CyclicLayout(4, 4), L)
        diagonal_inverter(D1, n0=8, base_n=4)  # 4 blocks, 4 ranks each
        t_many = machine1.time()

        machine2 = Machine(16, params=UNIT)
        g2 = machine2.grid(4, 4)
        D2 = DistMatrix.from_global(machine2, g2, CyclicLayout(4, 4), L)
        diagonal_inverter(D2, n0=32, base_n=4)  # 1 block of 4x the size
        t_one = machine2.time()
        # many small concurrent inversions beat one big one in time
        assert t_many < t_one


class TestIterativeSolver:
    @pytest.mark.parametrize(
        "p1,p2,n,k,n0",
        [
            (1, 1, 16, 4, 4),  # single rank
            (2, 1, 32, 8, 8),  # 2D grid
            (1, 4, 16, 64, 16),  # 1D grid (n0 = n, pure inversion)
            (2, 2, 32, 16, 8),  # 3D grid
            (2, 4, 48, 24, 12),  # 3D, more RHS slabs
            (4, 1, 64, 16, 16),  # wide 2D
            (2, 2, 36, 10, 6),  # k not divisible by p2
        ],
    )
    def test_residual_small(self, p1, p2, n, k, n0):
        machine, L, B, X = solve(p1, p2, n, k, n0)
        assert relative_residual(L, X.to_global(), B) < 1e-12

    def test_matches_scipy(self):
        machine, L, B, X = solve(2, 2, 32, 8, 8)
        ref = sla.solve_triangular(L, B, lower=True)
        assert np.allclose(X.to_global(), ref, atol=1e-9)

    def test_output_layout_matches_b_plane(self):
        machine, L, B, X = solve(2, 2, 32, 16, 8)
        assert X.shape == (32, 16)
        assert X.grid.shape == (2, 2)  # the (x, z) plane

    @pytest.mark.parametrize("n0", [4, 8, 16, 32])
    def test_block_size_invariant(self, n0):
        machine, L, B, X = solve(2, 2, 32, 16, n0)
        assert relative_residual(L, X.to_global(), B) < 1e-12

    def test_phases_are_recorded(self):
        machine, L, B, X = solve(2, 2, 32, 16, 8)
        names = set(machine.phase_names())
        assert {"inversion", "setup", "solve", "update"} <= names

    def test_no_update_phase_for_single_block(self):
        machine, L, B, X = solve(2, 1, 16, 8, 16)  # nb = 1
        assert machine.phase_cost("update").F == 0

    def test_n0_must_divide_n(self):
        machine = Machine(4, params=UNIT)
        with pytest.raises(ParameterError):
            it_inv_trsm_global(
                machine,
                random_lower_triangular(10, seed=0),
                random_dense(10, 2, seed=1),
                p1=2,
                p2=1,
                n0=3,
            )

    def test_rejects_non_triangular(self):
        machine = Machine(4, params=UNIT)
        with pytest.raises(ShapeError):
            it_inv_trsm_global(
                machine,
                np.ones((8, 8)),
                random_dense(8, 2, seed=0),
                p1=2,
                p2=1,
                n0=4,
            )

    def test_rejects_singular(self):
        machine = Machine(4, params=UNIT)
        L = np.tril(np.ones((8, 8)))
        L[3, 3] = 0.0
        with pytest.raises(ShapeError):
            it_inv_trsm_global(
                machine, L, random_dense(8, 2, seed=0), p1=2, p2=1, n0=4
            )

    @settings(max_examples=12, deadline=None)
    @given(
        cfg=st.sampled_from([(1, 1), (2, 1), (1, 2), (2, 2)]),
        nb=st.integers(1, 4),
        n0=st.sampled_from([2, 4, 8]),
        k=st.integers(1, 12),
    )
    def test_property_grids_and_blocks(self, cfg, nb, n0, k):
        p1, p2 = cfg
        n = nb * n0
        machine, L, B, X = solve(p1, p2, n, k, n0, seed=n * 10 + k)
        assert relative_residual(L, X.to_global(), B) < 1e-11


class TestLatencyBehaviour:
    def test_solve_latency_linear_in_block_count(self):
        m1, *_ = solve(2, 1, 64, 8, 32)  # 2 blocks
        m2, *_ = solve(2, 1, 64, 8, 8)  # 8 blocks
        s1 = m1.phase_cost("solve").S + m1.phase_cost("update").S
        s2 = m2.phase_cost("solve").S + m2.phase_cost("update").S
        assert s2 > 2.5 * s1

    def test_inversion_latency_much_less_than_recursive_trsm(self):
        """The headline: inversion-based solve needs far fewer messages
        than the recursion when many small blocks would otherwise be
        solved sequentially."""
        from repro.trsm import rec_trsm_global

        n, k, p = 64, 8, 16
        m_it, L, B, _ = solve(4, 1, n, k, 16)
        m_rec = Machine(p, params=UNIT)
        rec_trsm_global(m_rec, L, B, grid=m_rec.grid(4, 4), n0=4)
        assert m_it.critical_path().S < m_rec.critical_path().S
