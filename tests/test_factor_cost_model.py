"""Cholesky cost model and latency-advantage formulas."""

import pytest

from repro.factor.cost_model import cholesky_cost, latency_advantage
from repro.machine.validate import ParameterError


class TestCholeskyCost:
    def test_nonnegative_components(self):
        c = cholesky_cost(256, 32, 16)
        assert c.S >= 0 and c.W >= 0 and c.F > 0

    def test_flops_scale_with_n_cubed(self):
        f1 = cholesky_cost(128, 16, 16).F
        f2 = cholesky_cost(256, 16, 16).F
        assert 6 < f2 / f1 < 10  # ~n^3 scaling

    def test_flops_scale_down_with_p(self):
        f1 = cholesky_cost(256, 32, 16).F
        f2 = cholesky_cost(256, 32, 64).F
        assert f2 < f1

    def test_substitution_latency_linear_in_n(self):
        s1 = cholesky_cost(256, 16, 16, panel="substitution").S
        s2 = cholesky_cost(512, 16, 16, panel="substitution").S
        assert 1.7 < s2 / s1 < 2.3

    def test_inversion_latency_linear_in_panel_count(self):
        s1 = cholesky_cost(256, 32, 16, panel="inversion").S
        s2 = cholesky_cost(256, 16, 16, panel="inversion").S
        assert s2 > 1.5 * s1  # twice the panels, about twice the rounds

    def test_single_processor_no_latency(self):
        c = cholesky_cost(64, 16, 1)
        assert c.S == 0

    def test_block_larger_than_n_clamped(self):
        c = cholesky_cost(16, 999, 4)
        assert c.F == pytest.approx(16**3 / 6.0)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            cholesky_cost(0, 1, 1)
        with pytest.raises(ParameterError):
            cholesky_cost(16, 4, 4, panel="psychic")


class TestLatencyAdvantage:
    def test_advantage_grows_with_block_width(self):
        a8 = latency_advantage(512, 8, 64)
        a32 = latency_advantage(512, 32, 64)
        assert a32 > a8

    def test_advantage_exceeds_one_for_many_panels(self):
        assert latency_advantage(1024, 32, 256) > 3

    def test_advantage_roughly_b_over_three(self):
        # substitution: ~(n/b)(b log p) + extras; inversion: ~(n/b)(5 log p)
        b = 64
        adv = latency_advantage(4096, b, 1024)
        assert b / 10 < adv < b
