"""Operand cache: staged-copy reuse proven correct by parity/properties.

The contract under test (ISSUE 4): caching staged operand copies per
(operand, subgrid, layout) changes *nothing* about results — cache-on and
cache-off Cluster runs produce bit-identical values and residuals — and
changes costs *only* by the saved staging charges: a request served from
the cache pays strictly less (verified via ``machine.region_cost``), one
that is not pays exactly what the uncached run pays, and a stream of
solves against one hosted factor pays the factor migration at most once
per subgrid tenancy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster, TrsmRequest
from repro.api.serve import replay_prepared
from repro.dist.layout import CyclicLayout
from repro.machine.cost import CostParams
from repro.machine.topology import ProcessorGrid
from repro.sched.allocator import SubgridAllocator
from repro.trsm.prepared import PreparedTrsm
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def _stage_target(cluster, size=4):
    """A concrete staging target: the would-be subgrid, reshaped 2D."""
    grid = cluster.pool.preview(size)
    side = int(np.sqrt(size))
    return grid.reshape((side, side)), CyclicLayout(side, side)


class TestCacheUnit:
    def test_miss_then_hit_is_bit_identical(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=0))
        grid, layout = _stage_target(cluster)
        first = cluster.stage_resident(L, grid, layout)
        words_after_first = cluster.machine.total_volume().W
        second = cluster.stage_resident(L, grid, layout)
        assert cluster.opcache.hits == 1 and cluster.opcache.misses == 1
        # the hit moved nothing and charged nothing
        assert cluster.machine.total_volume().W == words_after_first
        for rank in grid.ranks():
            assert second.blocks[rank].tobytes() == first.blocks[rank].tobytes()

    def test_hit_returns_a_private_copy(self):
        """A tenant scribbling on its operand cannot poison later tenants."""
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=1))
        grid, layout = _stage_target(cluster)
        first = cluster.stage_resident(L, grid, layout)
        first.set_local((0, 0), np.zeros_like(first.local((0, 0))))
        second = cluster.stage_resident(L, grid, layout)
        assert second is not first
        assert not np.array_equal(second.local((0, 0)), first.local((0, 0)))
        assert np.allclose(second.to_global(), L.to_global())

    def test_local_view_is_read_only(self):
        """In-place writes through ``local()`` would bypass the generation
        counter (and so the staleness guarantee): they are forbidden —
        mutation goes through ``set_local``."""
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=10))
        with pytest.raises(ValueError):
            L.local((0, 0))[0, 0] = 0.0

    def test_mutation_bumps_generation_and_is_never_served_stale(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=2))
        grid, layout = _stage_target(cluster)
        cluster.stage_resident(L, grid, layout)
        gen = L.generation
        L.set_local((0, 0), 2.0 * L.local((0, 0)))
        assert L.generation == gen + 1
        restaged = cluster.stage_resident(L, grid, layout)
        assert cluster.opcache.hits == 0 and cluster.opcache.misses == 2
        assert np.allclose(restaged.to_global(), L.to_global())

    def test_set_local_copies_the_block_in(self):
        """A caller-retained alias of a set_local block must not be able
        to mutate content behind the generation counter's back."""
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=11))
        blk = np.asarray(L.local((0, 0)), dtype=np.float64).copy()
        L.set_local((0, 0), blk)
        before = L.local((0, 0)).copy()
        blk[:] = -1.0  # scribble on the retained alias
        assert np.array_equal(L.local((0, 0)), before)

    def test_store_purges_superseded_generations(self):
        """Mutate-and-restage must not accumulate dead masters."""
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=12))
        grid, layout = _stage_target(cluster)
        for _ in range(3):
            cluster.stage_resident(L, grid, layout)
            L.set_local((0, 0), 2.0 * np.asarray(L.local((0, 0))))
        assert len(cluster.opcache) == 1  # only the live generation

    def test_route_embed_bumps_generation(self):
        from repro.dist.redistribute import route_embed

        cluster = Cluster(16, params=UNIT)
        target = cluster.host(random_dense(16, 16, seed=3))
        sub = cluster.host(random_dense(8, 8, seed=4))
        gen = target.generation
        route_embed(sub, target, 0, 0)
        assert target.generation == gen + 1

    def test_rehosting_mints_a_new_identity(self):
        cluster = Cluster(16, params=UNIT)
        A = random_lower_triangular(32, seed=5)
        L1, L2 = cluster.host(A), cluster.host(A)
        assert L1.uid != L2.uid
        grid, layout = _stage_target(cluster)
        cluster.stage_resident(L1, grid, layout)
        cluster.stage_resident(L2, grid, layout)  # same bytes, new identity
        assert cluster.opcache.hits == 0 and cluster.opcache.misses == 2

    def test_release_drops_copies(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=6))
        grid, layout = _stage_target(cluster)
        cluster.stage_resident(L, grid, layout)
        assert cluster.release(L) == 1
        cluster.stage_resident(L, grid, layout)
        assert cluster.opcache.hits == 0 and cluster.opcache.misses == 2

    def test_corrupted_master_is_dropped_not_served(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=7))
        grid, layout = _stage_target(cluster)
        cluster.stage_resident(L, grid, layout)
        (entry,) = cluster.opcache._entries.values()
        entry.matrix.set_local((0, 0), np.zeros_like(entry.matrix.local((0, 0))))
        assert not entry.pristine()
        restaged = cluster.stage_resident(L, grid, layout)
        assert cluster.opcache.hits == 0 and cluster.opcache.misses == 2
        assert np.allclose(restaged.to_global(), L.to_global())

    def test_evict_grid_by_rank_intersection(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(32, seed=8))
        grid, layout = _stage_target(cluster)
        cluster.stage_resident(L, grid, layout)
        disjoint = ProcessorGrid(
            np.array([r for r in range(16) if r not in grid.ranks()])
        )
        assert cluster.opcache.evict_grid(disjoint) == 0
        assert cluster.opcache.evict_grid(grid) == 1
        assert len(cluster.opcache) == 0


class TestAllocatorEviction:
    def test_coalesce_reports_destroyed_blocks(self):
        pool = SubgridAllocator(ProcessorGrid.build((4, 4)))
        events = []
        pool.on_destroy = events.append
        g = pool.allocate(4)
        split_events = list(events)  # splitting down destroys the ancestors
        assert any(set(g.ranks()) <= set(e.ranks()) for e in split_events)
        events.clear()
        pool.release(g)  # only lease: coalesces all the way to the root
        assert pool.drained()
        assert any(set(g.ranks()) <= set(e.ranks()) for e in events)

    def test_release_without_coalesce_keeps_the_block(self):
        pool = SubgridAllocator(ProcessorGrid.build((4, 4)))
        a = pool.allocate(8)
        b = pool.allocate(8)
        events = []
        pool.on_destroy = events.append
        pool.release(a)  # buddy b still leased: the block survives
        assert events == []
        pool.release(b)
        assert events != [] and pool.drained()

    def test_split_of_a_free_block_reports_it(self):
        pool = SubgridAllocator(ProcessorGrid.build((4, 4)))
        pool.allocate(8)
        events = []
        pool.on_destroy = events.append
        small = pool.allocate(2)  # splits the free 8-block down
        assert any(e.size == 8 and set(small.ranks()) <= set(e.ranks()) for e in events)

    def test_hooked_cache_survives_tenancy_handover(self):
        """Release without coalesce keeps the copy; coalesce evicts it."""
        cluster = Cluster(16, params=UNIT)
        cache = cluster.opcache
        pool = cluster.pool
        pool.on_destroy = cache.evict_grid
        L = cluster.host(random_lower_triangular(32, seed=9))
        grid, layout = _stage_target(cluster)
        a = pool.allocate(4)
        b = pool.allocate(4)
        assert set(a.ranks()) == set(grid.ranks())  # preview matched allocate
        cluster.stage_resident(L, grid, layout)
        pool.release(a)  # buddy leased: no coalesce, copy survives
        assert len(cache) == 1
        pool.release(b)  # coalesce to root: tenancy over, copy evicted
        assert len(cache) == 0
        pool.on_destroy = None


@pytest.fixture(scope="module")
def solver64():
    """One prepared factor for the p=64 serve-stream acceptance tests."""
    L = random_lower_triangular(128, seed=0)
    return PreparedTrsm(L, p=64, k_hint=8, params=UNIT, n0=16)


class TestServeStreamAcceptance:
    """>= 8 PreparedSolves against one hosted factor on p = 64 pay the
    factor migration at most once per subgrid tenancy, bit-identically."""

    def test_factor_migration_once_per_tenancy(self, solver64):
        on = replay_prepared(
            solver64, count=8, p=64, k=8, params=UNIT, seed=3, cache=True, size=16
        )
        off = replay_prepared(
            solver64, count=8, p=64, k=8, params=UNIT, seed=3, cache=False, size=16
        )
        assert len(on.records) == 8

        # bit-identical solves and residuals, request by request
        for r in on.records:
            o = off.record(r.rid)
            assert r.value.tobytes() == o.value.tobytes()
            assert r.residual == o.residual

        # the factor pair (L, Ltilde) migrated once per subgrid tenancy
        # chain: misses == 2 per distinct block, every repeat placement hit
        blocks = {tuple(r.grid.ranks()) for r in on.records}
        assert on.staging_misses == 2 * len(blocks)
        assert on.staging_hits == 2 * (len(on.records) - len(blocks))
        seen = set()
        for r in sorted(on.records, key=lambda r: (r.modeled_start, r.rid)):
            key = tuple(r.grid.ranks())
            assert r.staging_hit == (key in seen)
            seen.add(key)

        # exact cost parity via region accounting: a miss pays exactly the
        # uncached charge, a hit pays strictly less (the skipped migration)
        for r in on.records:
            o = off.record(r.rid)
            assert r.grid == o.grid
            if r.staging_hit:
                assert r.measured.W < o.measured.W
                assert r.staging_saved_seconds > 0.0
            else:
                assert r.measured == o.measured
                assert r.staging_saved_seconds == 0.0

        # and the saving is real, in the model and on the clocks
        assert on.staging_saved_seconds == pytest.approx(
            sum(r.staging_saved_seconds for r in on.records)
        )
        assert on.staging_saved_seconds > 0.0
        assert on.modeled_makespan < off.modeled_makespan
        assert on.measured_makespan < off.measured_makespan
        assert off.staging_hits == 0 and off.staging_saved_seconds == 0.0

    def test_scheduler_prefers_affinity_unpinned(self, solver64):
        """Without pinned sizes the cache-aware price still yields hits."""
        on = replay_prepared(
            solver64, count=8, p=64, k=8, params=UNIT, seed=4, cache=True
        )
        assert on.staging_hits > 0
        assert on.staging_saved_seconds > 0.0
        for r in on.records:
            assert r.residual is not None and r.residual < 1e-8

    def test_cache_is_drained_with_the_pool(self, solver64):
        """The end-of-run coalesce ends every tenancy: no stale copies
        survive into the next scheduling pass."""
        L = random_lower_triangular(64, seed=1)
        cluster = Cluster(16, params=UNIT)
        Lh = cluster.host(L)
        for i in range(6):  # 4 slots of size 4: two repeat tenancies
            cluster.submit(
                TrsmRequest(L=Lh, B=random_dense(64, 8, seed=10 + i), sizes=(4,))
            )
        outcome = cluster.run()
        assert outcome.staging_hits > 0
        assert len(cluster.opcache) == 0
        assert cluster.pool.drained()

    def test_manual_warmup_is_cold_for_the_next_run(self):
        """A copy lives as long as its allocator block, and a drained pool
        has no blocks: entries from stage_resident() warm-ups outside a
        run must be priced cold — not crash the plan/measurement parity
        check when the first allocation's splits would destroy them."""
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(64, seed=13))
        B = random_dense(64, 8, seed=14)
        req = TrsmRequest(L=L, B=B, sizes=(4,))
        grid = cluster.pool.preview(4)
        for D, tg, lay in req._staging_targets(grid, cluster.params):
            cluster.stage_resident(D, tg, lay)  # warm exactly the targets
        assert len(cluster.opcache) > 0
        rid = cluster.submit(req)
        outcome = cluster.run()  # must not raise
        assert outcome.staging_hits == 0
        assert outcome.record(rid).residual is not None
        assert outcome.record(rid).residual < 1e-9

    def test_single_request_never_hits(self):
        cluster = Cluster(16, params=UNIT)
        L = cluster.host(random_lower_triangular(64, seed=2))
        B = cluster.host(random_dense(64, 8, seed=3))
        cluster.submit(TrsmRequest(L=L, B=B))
        outcome = cluster.run()
        assert outcome.staging_hits == 0
        assert outcome.staging_saved_seconds == 0.0
        assert outcome.staging_hit_rate() == 0.0


@st.composite
def trsm_streams(draw):
    """A stream spec: shared factor, uniform pinned size, mixed hosting."""
    n = draw(st.sampled_from([32, 64]))
    k = draw(st.sampled_from([4, 8]))
    count = draw(st.integers(min_value=2, max_value=6))
    size = draw(st.sampled_from([4, 16]))
    host_b = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return n, k, count, size, host_b, seed


def _run_stream(n, k, count, size, host_b, seed, cache):
    cluster = Cluster(16, params=UNIT, cache=cache)
    Lh = cluster.host(random_lower_triangular(n, seed=seed))
    rids = []
    for i in range(count):
        B = random_dense(n, k, seed=seed + 7 * i + 1)
        rids.append(
            cluster.submit(
                TrsmRequest(
                    L=Lh,
                    B=cluster.host(B) if host_b else B,
                    sizes=(size,),
                )
            )
        )
    return cluster.run(), rids


class TestParityProperty:
    @given(trsm_streams())
    @settings(max_examples=15, deadline=None)
    def test_cache_changes_costs_only_never_results(self, spec):
        """For random request streams: bit-identical values/residuals, and
        ``measured_makespan(on) <= measured_makespan(off)`` with equality
        iff there were zero hits."""
        n, k, count, size, host_b, seed = spec
        on, rids = _run_stream(n, k, count, size, host_b, seed, cache=True)
        off, _ = _run_stream(n, k, count, size, host_b, seed, cache=False)

        for rid in rids:
            a, b = on.record(rid), off.record(rid)
            assert a.value.tobytes() == b.value.tobytes()
            assert a.residual == b.residual

        assert on.measured_makespan <= off.measured_makespan
        if on.staging_saved_seconds == 0.0:
            # zero savings (no hits, or hits on identity staging plans —
            # e.g. the full-machine plane is already the data plane):
            # the runs charge identically
            assert on.measured_makespan == off.measured_makespan
        else:
            assert on.measured_makespan < off.measured_makespan
        if on.staging_hits == 0:
            assert on.staging_saved_seconds == 0.0
        # hits happen exactly when the stream revisits a subgrid: with a
        # uniform pinned size that is count exceeding the slot count
        assert (on.staging_hits > 0) == (count > 16 // size)
        assert on.modeled_makespan <= off.modeled_makespan
