"""Butterfly vs ring collective models — why Section II-C1 picks butterfly."""

import numpy as np
import pytest

from repro.machine import CostParams, Machine
from repro.machine.collective_models import (
    COLLECTIVE_MODELS,
    ButterflyModel,
    RingModel,
)
from repro.machine.collectives import allgather, allreduce
from repro.machine.validate import GridError

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestModels:
    def test_registry(self):
        assert set(COLLECTIVE_MODELS) == {"butterfly", "ring"}

    def test_butterfly_log_latency(self):
        m = ButterflyModel()
        assert m.allgather(8, 64).S == 3
        assert m.bcast(8, 64).S == 6

    def test_ring_linear_latency(self):
        m = RingModel()
        assert m.allgather(8, 64).S == 7
        assert m.bcast(8, 64).S == 14

    def test_same_bandwidth_for_one_phase_ops(self):
        b, r = ButterflyModel(), RingModel()
        assert b.allgather(8, 64).W == r.allgather(8, 64).W
        assert b.reduce_scatter(8, 64).F == r.reduce_scatter(8, 64).F

    def test_singleton_groups_free_in_both(self):
        for m in COLLECTIVE_MODELS.values():
            assert m.allgather(1, 64).W == 0
            assert m.bcast(1, 64).S == 0

    def test_alltoall_volume(self):
        # ring all-to-all: direct exchanges, full per-rank volume
        assert RingModel().alltoall(8, 64) .W == 64
        # butterfly (Bruck): (n/2) log p
        assert ButterflyModel().alltoall(8, 64).W == 32 * 3


class TestMachineIntegration:
    def test_default_is_butterfly(self):
        m = Machine(4)
        assert m.coll.name == "butterfly"

    def test_unknown_model_rejected(self):
        with pytest.raises(GridError, match="unknown collective model"):
            Machine(4, collectives="telepathy")

    def test_ring_machine_charges_linear(self):
        m = Machine(8, params=UNIT, collectives="ring")
        group = list(range(8))
        allgather(m, group, {r: np.ones(8) for r in group})
        assert m.critical_path().S == 7

    def test_data_identical_across_models(self):
        results = {}
        for name in COLLECTIVE_MODELS:
            m = Machine(4, params=UNIT, collectives=name)
            group = list(range(4))
            out = allreduce(m, group, {r: np.full(3, float(r)) for r in group})
            results[name] = out[0]
        assert np.array_equal(results["butterfly"], results["ring"])


class TestAlgorithmLevelContrast:
    def test_trsm_latency_explodes_under_ring(self):
        """The paper's log-p latency claims require butterfly collectives:
        under ring collectives the same schedule costs Theta(p) rounds."""
        from repro.trsm import it_inv_trsm_global
        from repro.util.randmat import random_dense, random_lower_triangular

        # n0 = 4 keeps the iteration count high so the schedule is
        # dominated by real collectives (redistribution is now exact
        # point-to-point routing, identical under every collective model)
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 16, seed=1)
        ss = {}
        for name in ("butterfly", "ring"):
            m = Machine(32, params=UNIT, collectives=name)
            X = it_inv_trsm_global(m, L, B, p1=2, p2=8, n0=4, base_n=4)
            from repro.util.checking import relative_residual

            assert relative_residual(L, X.to_global(), B) < 1e-12
            ss[name] = m.critical_path().S
        assert ss["ring"] > 1.5 * ss["butterfly"]

    def test_bandwidth_unchanged_across_models_for_allgathers(self):
        from repro.mm import mm3d
        from repro.dist import CyclicLayout, DistMatrix
        from repro.util.randmat import random_dense

        ws = {}
        for name in ("butterfly", "ring"):
            m = Machine(16, params=UNIT, collectives=name)
            g = m.grid(4, 4)
            lay = CyclicLayout(4, 4)
            A = random_dense(16, 16, seed=0)
            X = random_dense(16, 8, seed=1)
            dA = DistMatrix.from_global(m, g, lay, A)
            dX = DistMatrix.from_global(m, g, lay, X)
            out = mm3d(dA, dX, 2)
            assert np.allclose(out.to_global(), A @ X)
            ws[name] = m.critical_path().W
        # one-phase collectives dominate W; models agree within 2x
        assert ws["ring"] <= 2 * ws["butterfly"]
