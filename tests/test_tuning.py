"""Section VIII tuning: regime boundaries, closed forms, discrete search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError
from repro.trsm.cost_model import iterative_cost
from repro.tuning import (
    TrsmRegime,
    classify_trsm,
    optimize_parameters,
    regime_boundaries,
    tuned_parameters,
)


class TestRegimes:
    def test_one_large(self):
        assert classify_trsm(4, 1024, 64) is TrsmRegime.ONE_LARGE

    def test_two_large(self):
        assert classify_trsm(2**16, 16, 64) is TrsmRegime.TWO_LARGE

    def test_three_large(self):
        assert classify_trsm(256, 64, 64) is TrsmRegime.THREE_LARGE

    def test_boundaries(self):
        lo, hi = regime_boundaries(64, 16)
        assert lo == 16.0  # 4k/p
        assert hi == 4 * 64 * 4  # 4k sqrt(p)

    def test_boundary_inclusive_3d(self):
        # exactly 4k/p and 4k sqrt(p) are 3D per the paper's <= / >=
        k, p = 64, 16
        assert classify_trsm(int(4 * k / p), k, p) is TrsmRegime.THREE_LARGE
        assert classify_trsm(int(4 * k * 4), k, p) is TrsmRegime.THREE_LARGE

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            classify_trsm(0, 1, 1)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 2**20),
        k=st.integers(1, 2**20),
        p=st.sampled_from([1, 4, 16, 64, 256, 1024]),
    )
    def test_classification_total(self, n, k, p):
        # every point lands in exactly one regime, consistently with bounds
        regime = classify_trsm(n, k, p)
        lo, hi = regime_boundaries(k, p)
        if regime is TrsmRegime.ONE_LARGE:
            assert n < lo
        elif regime is TrsmRegime.TWO_LARGE:
            assert n > hi
        else:
            assert lo <= n <= hi


class TestClosedFormParameters:
    def test_1d_choice(self):
        c = tuned_parameters(4, 4 * 4 * 1024, 64)
        assert c.regime is TrsmRegime.ONE_LARGE
        assert c.p1 == 1 and c.p2 == 64
        assert c.n0 == 4  # n0 = n: invert everything, no update phase

    def test_2d_choice(self):
        c = tuned_parameters(2**14, 16, 64)
        assert c.regime is TrsmRegime.TWO_LARGE
        assert c.p1 == 8 and c.p2 == 1

    def test_3d_choice_valid_grid(self):
        c = tuned_parameters(256, 64, 64)
        assert c.regime is TrsmRegime.THREE_LARGE
        assert c.p1 * c.p1 * c.p2 == 64
        assert 256 % c.n0 == 0

    def test_3d_p1_tracks_ratio(self):
        # p1 ~ (p n / 4k)^{1/3}: raising n/k must not lower p1
        c_small = tuned_parameters(256, 256, 4096)
        c_large = tuned_parameters(4096, 64, 4096)
        assert c_large.p1 >= c_small.p1

    def test_r2_equals_4r1_in_3d_interior(self):
        c = tuned_parameters(1024, 256, 256)
        # paper: r1 = r2 as printed in the Section VIII table
        assert c.r1 == pytest.approx(c.r2)

    def test_n0_divides_n_always(self):
        for n, k, p in [(48, 12, 16), (100, 7, 64), (256, 1024, 4)]:
            c = tuned_parameters(n, k, p)
            assert n % c.n0 == 0

    def test_non_power_of_two_p_rejected(self):
        with pytest.raises(ParameterError):
            tuned_parameters(64, 64, 48)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 512),
        k=st.integers(1, 512),
        p=st.sampled_from([1, 4, 16, 64, 256]),
    )
    def test_choice_always_realizable(self, n, k, p):
        c = tuned_parameters(n, k, p)
        assert c.p1 * c.p1 * c.p2 == p
        assert n % c.n0 == 0
        assert c.r1 >= 1.0 and c.r2 >= 1.0


class TestOptimizer:
    def test_optimum_at_least_as_good_as_closed_form(self):
        params = CostParams()
        for n, k, p in [(128, 32, 16), (64, 256, 16), (256, 16, 64)]:
            closed = tuned_parameters(n, k, p)
            best = optimize_parameters(n, k, p, params=params)
            t_closed = iterative_cost(n, k, closed.n0, closed.p1, closed.p2).time(
                params
            )
            t_best = iterative_cost(n, k, best.n0, best.p1, best.p2).time(params)
            assert t_best <= t_closed * (1 + 1e-12)

    def test_closed_form_within_small_factor_of_optimum(self):
        """Section VIII's asymptotic formulas should be near the discrete
        optimum — this validates the paper's a-priori tuning claim."""
        params = CostParams()
        for n, k, p in [(256, 64, 64), (128, 128, 16), (512, 32, 64)]:
            closed = tuned_parameters(n, k, p)
            best = optimize_parameters(n, k, p, params=params)
            t_closed = iterative_cost(n, k, closed.n0, closed.p1, closed.p2).time(
                params
            )
            t_best = iterative_cost(n, k, best.n0, best.p1, best.p2).time(params)
            assert t_closed <= 3.0 * t_best

    def test_latency_bound_machine_prefers_bigger_blocks(self):
        """On a latency-dominated machine the optimizer picks n0 at least
        as large as on a bandwidth-dominated one (fewer iterations)."""
        lat = optimize_parameters(
            256, 64, 16, params=CostParams(alpha=1e-2, beta=1e-9, gamma=1e-12)
        )
        bw = optimize_parameters(
            256, 64, 16, params=CostParams(alpha=1e-9, beta=1e-5, gamma=1e-12)
        )
        assert lat.n0 >= bw.n0

    def test_search_space_validity(self):
        best = optimize_parameters(100, 10, 16)
        assert best.p1 * best.p1 * best.p2 == 16
        assert 100 % best.n0 == 0

    def test_invalid_p(self):
        with pytest.raises(ParameterError):
            optimize_parameters(64, 64, 10)
