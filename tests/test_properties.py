"""Cross-cutting property tests (hypothesis) on the system's invariants.

These complement the per-module property tests by exercising *combinations*
of components the way the algorithms do: layout round trips under chains of
redistributions, algorithm equivalences, cost-model monotonicity, and the
conservation laws of the simulated machine.
"""

import numpy as np
import scipy.linalg as sla
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import CyclicLayout, BlockedLayout, DistMatrix, redistribute
from repro.machine import CostParams, Machine
from repro.trsm.cost_model import iterative_cost, recursive_cost
from repro.trsm.solver import trsm
from repro.tuning.parameters import tuned_parameters
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**SETTINGS)
@given(
    m=st.integers(1, 20),
    n=st.integers(1, 20),
    chain=st.lists(
        st.sampled_from(["cyclic22", "blocked22", "cyclic14", "blocked41"]),
        min_size=1,
        max_size=4,
    ),
)
def test_redistribution_chain_preserves_data(m, n, chain):
    """Any chain of layout/grid transitions is data-preserving."""
    machine = Machine(16, params=UNIT)
    grids = {
        "cyclic22": (machine.grid(2, 2), CyclicLayout(2, 2)),
        "blocked22": (machine.grid(2, 2), BlockedLayout(2, 2)),
        "cyclic14": (machine.grid(1, 4), CyclicLayout(1, 4)),
        "blocked41": (machine.grid(4, 1), BlockedLayout(4, 1)),
    }
    A = np.random.default_rng(m * 100 + n).standard_normal((m, n))
    D = DistMatrix.from_global(machine, *grids["cyclic22"], A)
    for step in chain:
        grid, layout = grids[step]
        D = redistribute(D, grid, layout)
    assert np.allclose(D.to_global(), A)


@settings(**SETTINGS)
@given(
    n=st.integers(4, 32),
    k=st.integers(1, 8),
    p=st.sampled_from([1, 4, 16]),
)
def test_algorithms_agree_with_scipy(n, k, p):
    """Both parallel algorithms solve every random system like LAPACK."""
    L = random_lower_triangular(n, seed=n * 17 + k)
    B = random_dense(n, k, seed=k + 3)
    ref = sla.solve_triangular(L, B, lower=True)
    r_it = trsm(L, B, p=p, algorithm="iterative")
    r_rec = trsm(L, B, p=p, algorithm="recursive")
    assert np.allclose(r_it.X, ref, atol=1e-8)
    assert np.allclose(r_rec.X, ref, atol=1e-8)


@settings(**SETTINGS)
@given(
    n=st.sampled_from([64, 256, 1024]),
    k=st.sampled_from([16, 64]),
    p=st.sampled_from([16, 256, 4096]),
)
def test_cost_models_nonnegative_and_monotone_in_work(n, k, p):
    """Models return nonnegative costs that grow with the problem size."""
    for model in (recursive_cost, lambda a, b, c: iterative_cost(a, b, min(a, 16), 2, c // 4)):
        c_small = model(n, k, p)
        c_big = model(2 * n, k, p)
        assert c_small.S >= 0 and c_small.W >= 0 and c_small.F >= 0
        assert c_big.F >= c_small.F
        assert c_big.W >= c_small.W


@settings(**SETTINGS)
@given(
    n=st.integers(8, 64),
    k=st.integers(1, 64),
    p=st.sampled_from([4, 16, 64, 256]),
)
def test_tuned_parameters_internally_consistent(n, k, p):
    c = tuned_parameters(n, k, p)
    assert c.p == p
    assert n % c.n0 == 0
    # 1D regime means full inversion (no update phase possible)
    if c.regime.value == "1D":
        assert c.n0 == n and c.p1 == 1


@settings(**SETTINGS)
@given(
    groups=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=12
    ),
    costs=st.lists(
        st.tuples(
            st.floats(0, 10, allow_nan=False),
            st.floats(0, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_machine_clock_monotone_and_bounded(groups, costs):
    """Conservation: the critical path never decreases, never exceeds the
    serialization of all charges, and is at least the largest charge."""
    from repro.machine.cost import Cost

    machine = Machine(8, params=UNIT)
    total_time = 0.0
    biggest = 0.0
    last = 0.0
    for (a, b), (s, w) in zip(groups, costs):
        cost = Cost(s, w, 0.0)
        machine.charge(sorted({a, b}), cost)
        t = machine.time()
        assert t >= last - 1e-12  # monotone
        last = t
        total_time += cost.time(UNIT)
        biggest = max(biggest, cost.time(UNIT))
    assert machine.time() <= total_time + 1e-9
    assert machine.time() >= biggest - 1e-9


@settings(**SETTINGS)
@given(
    n=st.integers(2, 24),
    seed=st.integers(0, 100),
)
def test_inversion_composes_with_solve(n, seed):
    """inv(L) applied by MM equals the TRSM solution (the identity the
    iterative algorithm exploits blockwise)."""
    from repro.inversion import invert_lower_triangular

    L = random_lower_triangular(n, seed=seed)
    B = random_dense(n, 3, seed=seed + 1)
    X_trsm = trsm(L, B, p=4, verify=False).X
    X_inv = invert_lower_triangular(L) @ B
    assert np.allclose(X_trsm, X_inv, atol=1e-9)


@settings(**SETTINGS)
@given(
    p1=st.sampled_from([1, 2]),
    sq=st.sampled_from([1, 2]),
    n=st.integers(1, 16),
    k=st.integers(1, 16),
    seed=st.integers(0, 50),
)
def test_mm_linear_in_second_argument(p1, sq, n, k, seed):
    """MM(A, X1 + X2) == MM(A, X1) + MM(A, X2) on the distributed data."""
    from repro.mm import mm3d

    sp = p1 * sq
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    X1 = rng.standard_normal((n, k))
    X2 = rng.standard_normal((n, k))

    def run(X):
        machine = Machine(sp * sp, params=UNIT)
        grid = machine.grid(sp, sp)
        lay = CyclicLayout(sp, sp)
        dA = DistMatrix.from_global(machine, grid, lay, A)
        dX = DistMatrix.from_global(machine, grid, lay, X)
        return mm3d(dA, dX, p1).to_global()

    assert np.allclose(run(X1 + X2), run(X1) + run(X2), atol=1e-9)
