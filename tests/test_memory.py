"""Memory high-water tracking (the replication cost of going 3D)."""

import numpy as np
import pytest

from repro.dist import CyclicLayout, DistMatrix
from repro.machine import CostParams, Machine
from repro.machine.memory import MemoryTracker
from repro.mm import mm3d
from repro.util.randmat import random_dense

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestTracker:
    def test_alloc_free_cycle(self):
        t = MemoryTracker(2)
        t.alloc(0, 100)
        t.alloc(0, 50)
        assert t.peak_words() == 150
        t.free(0, 120)
        assert t.current[0] == 30
        assert t.peak_words() == 150  # peak is sticky

    def test_free_floors_at_zero(self):
        t = MemoryTracker(1)
        t.alloc(0, 10)
        t.free(0, 100)
        assert t.current[0] == 0

    def test_observe_transient(self):
        t = MemoryTracker(1)
        t.alloc(0, 40)
        t.observe(0, 100)
        assert t.peak_words() == 140
        assert t.current[0] == 40  # observe does not allocate

    def test_observe_group(self):
        t = MemoryTracker(4)
        t.observe_group([1, 3], 25)
        assert list(t.peak) == [0, 25, 0, 25]

    def test_negative_rejected(self):
        t = MemoryTracker(1)
        with pytest.raises(ValueError):
            t.alloc(0, -1)
        with pytest.raises(ValueError):
            t.free(0, -1)
        with pytest.raises(ValueError):
            t.observe(0, -1)

    def test_reset(self):
        t = MemoryTracker(1)
        t.alloc(0, 5)
        t.reset()
        assert t.peak_words() == 0

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(0)


class TestIntegration:
    def test_distmatrix_observes_blocks(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        DistMatrix.from_global(
            machine, grid, CyclicLayout(2, 2), np.zeros((8, 8))
        )
        assert machine.memory.peak_words() == 16  # 8*8/4 per rank

    def test_machine_reset_clears_memory(self):
        machine = Machine(4, params=UNIT)
        machine.memory.alloc(0, 99)
        machine.reset()
        assert machine.memory.peak_words() == 0

    def _mm_peak(self, p1, sq, n=32, k=32):
        sp = p1 * sq
        machine = Machine(sp * sp, params=UNIT)
        grid = machine.grid(sp, sp)
        lay = CyclicLayout(sp, sp)
        A = random_dense(n, n, seed=0)
        X = random_dense(n, k, seed=1)
        dA = DistMatrix.from_global(machine, grid, lay, A)
        dX = DistMatrix.from_global(machine, grid, lay, X)
        mm3d(dA, dX, p1)
        return machine.memory.peak_words()

    def test_3d_split_uses_more_memory_than_2d(self):
        """The communication-memory tradeoff: on the same 16 processors,
        the replicated (p2 = 16) schedule needs a far larger per-rank
        working set than the 2D (p2 = 1) schedule."""
        peak_2d = self._mm_peak(p1=4, sq=1, k=8)
        peak_3d = self._mm_peak(p1=1, sq=4, k=8)
        assert peak_3d > 4 * peak_2d

    def test_replication_factor_matches_theory(self):
        """A' on the p2 fiber holds n^2/p1^2 words: p2-fold input replication."""
        n = 32
        peak = self._mm_peak(p1=2, sq=2, n=n, k=n)
        # A' block alone is (n/p1)^2 = 256 words on every rank
        assert peak >= (n / 2) ** 2
