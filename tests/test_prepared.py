"""PreparedTrsm: the invert-once / solve-many API."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, ShapeError
from repro.trsm.prepared import PreparedTrsm
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestCorrectness:
    def test_multiple_solves_correct(self):
        L = random_lower_triangular(32, seed=0)
        solver = PreparedTrsm(L, p=4, k_hint=8, params=UNIT, n0=8)
        for seed in (1, 2, 3):
            B = random_dense(32, 8, seed=seed)
            X = solver.solve(B)
            assert np.allclose(X, sla.solve_triangular(L, B, lower=True), atol=1e-9)
        assert solver.solves == 3

    def test_vector_rhs(self):
        L = random_lower_triangular(16, seed=1)
        solver = PreparedTrsm(L, p=4, params=UNIT, n0=4)
        b = random_dense(16, 1, seed=2)[:, 0]
        x = solver.solve(b)
        assert x.shape == (16,)
        assert np.allclose(L @ x, b, atol=1e-10)

    def test_varying_rhs_widths(self):
        L = random_lower_triangular(24, seed=3)
        solver = PreparedTrsm(L, p=4, params=UNIT, n0=8)
        for k in (1, 3, 12):
            B = random_dense(24, k, seed=k)
            X = solver.solve(B)
            assert np.allclose(L @ X, B, atol=1e-9)


class TestAmortization:
    def test_solve_has_no_inversion_phase_cost(self):
        """The per-application cost must exclude the Diagonal-Inverter."""
        L = random_lower_triangular(48, seed=4)
        solver = PreparedTrsm(L, p=4, k_hint=8, params=UNIT, n0=12)
        B = random_dense(48, 8, seed=5)
        solver.solve(B)
        assert solver.last_solve_cost is not None
        # a fresh one-shot solve pays inversion + application
        from repro import trsm

        one_shot = trsm(L, B, p=4, n0=12, params=UNIT)
        assert solver.last_solve_time < one_shot.time
        assert solver.last_solve_cost.F < one_shot.measured.F

    def test_preparation_cost_recorded(self):
        L = random_lower_triangular(32, seed=6)
        solver = PreparedTrsm(L, p=4, params=UNIT, n0=8)
        assert solver.preparation_cost.F > 0
        assert solver.preparation_time > 0

    def test_amortized_time_formula(self):
        L = random_lower_triangular(32, seed=7)
        solver = PreparedTrsm(L, p=4, params=UNIT, n0=8)
        solver.solve(random_dense(32, 4, seed=8))
        t10 = solver.amortized_time(10)
        t1 = solver.amortized_time(1)
        assert t10 == pytest.approx(
            solver.preparation_time + 10 * solver.last_solve_time
        )
        assert t10 > t1

    def test_amortized_requires_a_solve(self):
        L = random_lower_triangular(16, seed=9)
        solver = PreparedTrsm(L, p=4, params=UNIT, n0=4)
        with pytest.raises(ParameterError):
            solver.amortized_time(5)


class TestCacheParity:
    """The compatibility wrappers are single-request Clusters, and a
    single-request Cluster never hits the operand cache — so the staged-copy
    cache (PR 4) must leave them bit-identical and cost-identical."""

    def test_solve_matches_explicit_cache_off_cluster(self):
        from repro.api import Cluster, PreparedSolveRequest

        L = random_lower_triangular(32, seed=11)
        solver = PreparedTrsm(L, p=4, k_hint=8, params=UNIT, n0=8)
        B = random_dense(32, 8, seed=12)
        X = solver.solve(B)

        cluster = Cluster(4, params=UNIT, cache=False)
        rid = cluster.submit(PreparedSolveRequest(prepared=solver, B=B, sizes=(4,)))
        rec = cluster.run().record(rid)
        assert rec.value.tobytes() == X.tobytes()
        assert cluster.machine.critical_path() == solver.last_solve_cost
        assert cluster.machine.time() == solver.last_solve_time

    def test_single_request_cluster_cache_on_off_identical(self):
        from repro.api import Cluster, TrsmRequest

        L = random_lower_triangular(48, seed=13)
        B = random_dense(48, 8, seed=14)
        results = {}
        for cache in (True, False):
            cluster = Cluster(4, params=UNIT, cache=cache)
            rid = cluster.submit(
                TrsmRequest(L=cluster.host(L), B=cluster.host(B))
            )
            outcome = cluster.run()
            assert outcome.staging_saved_seconds == 0.0
            assert outcome.staging_hits == 0
            results[cache] = (
                outcome.record(rid).value.tobytes(),
                cluster.machine.critical_path(),
                cluster.machine.time(),
            )
        assert results[True] == results[False]

    def test_trsm_wrapper_unchanged_by_cache(self):
        from repro import trsm
        from repro.api import Cluster, TrsmRequest

        L = random_lower_triangular(32, seed=15)
        B = random_dense(32, 4, seed=16)
        res = trsm(L, B, p=4, params=UNIT)  # wrapper (default cache-on Cluster)
        cluster = Cluster(4, params=UNIT, cache=False)  # explicit PR-3 behavior
        rid = cluster.submit(TrsmRequest(L=L, B=B, sizes=(4,)))
        rec = cluster.run().record(rid)
        assert res.X.tobytes() == rec.value.tobytes()
        assert cluster.machine.critical_path() == res.measured
        assert cluster.machine.time() == res.time


class TestValidation:
    def test_bad_p(self):
        with pytest.raises(ParameterError):
            PreparedTrsm(random_lower_triangular(8, seed=0), p=3)

    def test_bad_n0(self):
        with pytest.raises(ParameterError):
            PreparedTrsm(random_lower_triangular(8, seed=0), p=4, n0=3)

    def test_wrong_rhs_rows(self):
        solver = PreparedTrsm(random_lower_triangular(8, seed=0), p=4, n0=4)
        with pytest.raises(ShapeError):
            solver.solve(np.ones((7, 2)))

    def test_nonsquare_l(self):
        with pytest.raises(ShapeError):
            PreparedTrsm(np.ones((4, 5)), p=4)
