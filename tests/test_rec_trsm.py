"""Rec-TRSM (Section IV): correctness in all regimes + cost behaviour."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.machine.validate import GridError, ShapeError
from repro.trsm import rec_trsm, rec_trsm_global
from repro.trsm.recursive import choose_recursive_grid, default_recursive_n0
from repro.dist import CyclicLayout, DistMatrix
from repro.util.checking import relative_residual
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def solve(p, grid_shape, n, k, n0=None, seed=0):
    machine = Machine(p, params=UNIT)
    grid = machine.grid(*grid_shape)
    L = random_lower_triangular(n, seed=seed)
    B = random_dense(n, k, seed=seed + 1)
    X = rec_trsm_global(machine, L, B, grid=grid, n0=n0)
    return machine, L, B, X


class TestCorrectness:
    @pytest.mark.parametrize(
        "p,grid_shape,n,k",
        [
            (1, (1, 1), 16, 4),  # sequential fallback
            (4, (2, 2), 32, 8),  # square grid, recursion
            (16, (4, 4), 64, 16),  # deeper recursion
            (16, (2, 8), 16, 256),  # column partitioning (k >> n)
            (4, (1, 4), 8, 64),  # 1D grid
            (16, (4, 4), 61, 13),  # ragged sizes
            (4, (2, 2), 7, 3),  # tiny
        ],
    )
    def test_residual_small(self, p, grid_shape, n, k):
        machine, L, B, X = solve(p, grid_shape, n, k)
        assert relative_residual(L, X.to_global(), B) < 1e-13

    def test_result_layout_matches_b(self):
        machine, L, B, X = solve(4, (2, 2), 16, 8)
        assert X.shape == (16, 8)
        assert isinstance(X.layout, CyclicLayout)

    @pytest.mark.parametrize("n0", [1, 4, 16, 64])
    def test_cutoff_invariant(self, n0):
        machine, L, B, X = solve(4, (2, 2), 32, 8, n0=n0)
        assert relative_residual(L, X.to_global(), B) < 1e-13

    def test_matches_scipy_exactly_enough(self):
        machine, L, B, X = solve(4, (2, 2), 24, 6)
        ref = sla.solve_triangular(L, B, lower=True)
        assert np.allclose(X.to_global(), ref, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(2, 40),
        k=st.integers(1, 20),
        shape=st.sampled_from([(1, 1), (2, 2), (1, 4), (2, 4)]),
    )
    def test_property_regimes(self, n, k, shape):
        p = shape[0] * shape[1]
        machine, L, B, X = solve(p, shape, n, k, seed=n * 100 + k)
        assert relative_residual(L, X.to_global(), B) < 1e-12


class TestValidation:
    def test_grid_mismatch(self):
        machine = Machine(8, params=UNIT)
        g1 = machine.grid(2, 2)
        g2 = machine.grid(2, 2)
        L = DistMatrix.from_global(
            machine, g1, CyclicLayout(2, 2), random_lower_triangular(8, seed=0)
        )
        B = DistMatrix.from_global(
            machine, g2, CyclicLayout(2, 2), random_dense(8, 4, seed=1)
        )
        with pytest.raises(GridError):
            rec_trsm(L, B)

    def test_row_count_mismatch(self):
        machine = Machine(4, params=UNIT)
        g = machine.grid(2, 2)
        L = DistMatrix.from_global(
            machine, g, CyclicLayout(2, 2), random_lower_triangular(8, seed=0)
        )
        B = DistMatrix.from_global(
            machine, g, CyclicLayout(2, 2), random_dense(6, 4, seed=1)
        )
        with pytest.raises(ShapeError):
            rec_trsm(L, B)

    def test_rejects_non_triangular(self):
        machine = Machine(4, params=UNIT)
        with pytest.raises(ShapeError):
            rec_trsm_global(
                machine, np.ones((8, 8)), random_dense(8, 2, seed=0)
            )

    def test_rejects_pr_not_dividing_pc(self):
        machine = Machine(6, params=UNIT)
        grid = machine.grid(2, 3)
        with pytest.raises(GridError):
            rec_trsm_global(
                machine,
                random_lower_triangular(8, seed=0),
                random_dense(8, 4, seed=1),
                grid=grid,
            )


class TestGridChoice:
    def test_square_for_square_problem(self):
        pr, pc = choose_recursive_grid(128, 128, 64)
        assert pr == pc == 8

    def test_rectangular_when_k_dominates(self):
        pr, pc = choose_recursive_grid(16, 16 * 1024, 64)
        assert pc > pr
        assert pr * pc == 64
        assert pc % pr == 0

    def test_wide_grid_when_n_dominates(self):
        pr, pc = choose_recursive_grid(4096, 16, 64)
        assert pr == pc == 8  # never wider than square in rows

    def test_default_n0_2d_regime(self):
        n0 = default_recursive_n0(4096, 4, 64)
        assert 1 <= n0 <= 4096

    def test_default_n0_single_proc(self):
        assert default_recursive_n0(64, 8, 1) == 64


class TestCostBehaviour:
    def test_latency_grows_with_recursion_depth(self):
        """S ~ (n/n0) log p: halving n0 roughly doubles message count."""
        _, _, _, _ = solve(4, (2, 2), 64, 16, n0=32)
        m1, *_ = solve(4, (2, 2), 64, 16, n0=32)
        m2, *_ = solve(4, (2, 2), 64, 16, n0=8)
        assert m2.critical_path().S > 1.5 * m1.critical_path().S

    def test_column_partitioning_subproblems_concurrent(self):
        """With q independent column groups, time must not scale with q."""
        m_one, *_ = solve(4, (2, 2), 16, 64)
        m_many, *_ = solve(16, (2, 8), 16, 256)
        # 4x the processors, 4x the RHS columns: concurrent subgrids keep
        # the critical path in the same ballpark rather than 4x larger.
        assert m_many.time() < 3.0 * m_one.time()

    def test_flops_scale_down_with_p(self):
        m1, *_ = solve(1, (1, 1), 32, 32)
        m4, *_ = solve(4, (2, 2), 32, 32)
        f1 = m1.critical_path().F
        f4 = m4.critical_path().F
        assert f4 < f1  # parallel run does less work per processor
