"""Layout index maps: cyclic, blocked, block-cyclic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.layout import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    expected_local_words,
)
from repro.machine.validate import ShapeError


class TestCyclicLayout:
    def test_row_indices_strided(self):
        lay = CyclicLayout(3, 2)
        assert np.array_equal(lay.row_indices(1, 10), [1, 4, 7])

    def test_matches_paper_definition(self):
        # L[x, y](i, j) = L(i*pr + x, j*pc + y)
        lay = CyclicLayout(2, 3)
        A = np.arange(36.0).reshape(6, 6)
        block = lay.extract(A, (1, 2))
        for i in range(block.shape[0]):
            for j in range(block.shape[1]):
                assert block[i, j] == A[i * 2 + 1, j * 3 + 2]

    def test_out_of_range_coord(self):
        lay = CyclicLayout(2, 2)
        with pytest.raises(ShapeError):
            lay.row_indices(2, 4)

    def test_local_rows_in_window(self):
        lay = CyclicLayout(4, 1)
        # rank 1 owns rows 1, 5, 9, 13; window [4, 12) catches 5 and 9
        pos = lay.local_rows_in(1, 16, 4, 12)
        rows = lay.row_indices(1, 16)[pos]
        assert np.array_equal(rows, [5, 9])


class TestBlockedLayout:
    def test_contiguous_tiles(self):
        lay = BlockedLayout(2, 2)
        assert np.array_equal(lay.row_indices(0, 5), [0, 1, 2])
        assert np.array_equal(lay.row_indices(1, 5), [3, 4])

    def test_front_loaded_raggedness(self):
        lay = BlockedLayout(3, 1)
        sizes = [len(lay.row_indices(x, 7)) for x in range(3)]
        assert sizes == [3, 2, 2]


class TestBlockCyclicLayout:
    def test_block_size_two(self):
        lay = BlockCyclicLayout(2, 1, br=2)
        assert np.array_equal(lay.row_indices(0, 8), [0, 1, 4, 5])
        assert np.array_equal(lay.row_indices(1, 8), [2, 3, 6, 7])

    def test_block_size_one_equals_cyclic(self):
        bc = BlockCyclicLayout(3, 2, br=1, bc=1)
        cy = CyclicLayout(3, 2)
        for x in range(3):
            assert np.array_equal(bc.row_indices(x, 11), cy.row_indices(x, 11))

    def test_invalid_params(self):
        with pytest.raises(ShapeError):
            BlockCyclicLayout(0, 1)
        with pytest.raises(ShapeError):
            BlockCyclicLayout(1, 1, br=0)

    def test_equality(self):
        assert BlockCyclicLayout(2, 2, 1, 1) == BlockCyclicLayout(2, 2, 1, 1)
        assert BlockCyclicLayout(2, 2, 2, 1) != BlockCyclicLayout(2, 2, 1, 1)


class TestExtractPlace:
    def test_roundtrip(self):
        lay = CyclicLayout(2, 3)
        A = np.arange(30.0).reshape(5, 6)
        out = np.zeros_like(A)
        for x in range(2):
            for y in range(3):
                lay.place(out, (x, y), lay.extract(A, (x, y)))
        assert np.array_equal(out, A)

    def test_place_shape_mismatch(self):
        lay = CyclicLayout(2, 2)
        A = np.zeros((4, 4))
        with pytest.raises(ShapeError):
            lay.place(A, (0, 0), np.zeros((3, 3)))

    def test_expected_local_words_is_max(self):
        lay = CyclicLayout(2, 2)
        assert expected_local_words(lay, (5, 5)) == 9  # ceil(5/2)^2


LAYOUTS = st.sampled_from(["cyclic", "blocked", "blockcyclic"])


def _make_layout(kind, pr, pc):
    if kind == "cyclic":
        return CyclicLayout(pr, pc)
    if kind == "blocked":
        return BlockedLayout(pr, pc)
    return BlockCyclicLayout(pr, pc, br=2, bc=3)


@settings(max_examples=60, deadline=None)
@given(
    kind=LAYOUTS,
    pr=st.integers(1, 4),
    pc=st.integers(1, 4),
    m=st.integers(1, 25),
    n=st.integers(1, 25),
)
def test_layout_partitions_index_space(kind, pr, pc, m, n):
    """Every layout must partition rows/cols exactly (no gaps, no overlap)."""
    lay = _make_layout(kind, pr, pc)
    rows = np.concatenate([lay.row_indices(x, m) for x in range(pr)])
    cols = np.concatenate([lay.col_indices(y, n) for y in range(pc)])
    assert sorted(rows.tolist()) == list(range(m))
    assert sorted(cols.tolist()) == list(range(n))
    for x in range(pr):
        r = lay.row_indices(x, m)
        assert np.all(np.diff(r) > 0)  # ascending
