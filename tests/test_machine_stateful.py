"""Stateful property testing of the simulated machine.

Hypothesis drives random sequences of charges, syncs, phases and memory
operations against a reference model, checking the invariants the whole
repository relies on:

* clocks are monotone and bounded by the serialization of all charges;
* the critical-path time equals alpha*S + beta*W + gamma*F of *some*
  consistent execution path (here: bounded by totals);
* group synchronization never decreases any clock;
* memory high-water is monotone and >= current.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.machine.cost import Cost

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")
N_RANKS = 6


class MachineModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.machine = Machine(N_RANKS, params=UNIT)
        self.total_serial_time = 0.0
        self.largest_charge = 0.0
        self.last_time = 0.0

    # -- operations -----------------------------------------------------------

    @rule(
        ranks=st.sets(st.integers(0, N_RANKS - 1), min_size=1, max_size=N_RANKS),
        s=st.floats(0, 50, allow_nan=False),
        w=st.floats(0, 500, allow_nan=False),
        f=st.floats(0, 5000, allow_nan=False),
        sync=st.booleans(),
    )
    def charge_group(self, ranks, s, w, f, sync):
        cost = Cost(s, w, f)
        self.machine.charge(sorted(ranks), cost, sync=sync)
        self.total_serial_time += cost.time(UNIT)
        self.largest_charge = max(self.largest_charge, cost.time(UNIT))

    @rule(
        rank=st.integers(0, N_RANKS - 1),
        f=st.floats(0, 1000, allow_nan=False),
    )
    def charge_local(self, rank, f):
        self.machine.charge_local({rank: Cost(0, 0, f)})
        self.total_serial_time += f
        self.largest_charge = max(self.largest_charge, f)

    @rule(
        ranks=st.sets(st.integers(0, N_RANKS - 1), min_size=1, max_size=N_RANKS)
    )
    def barrier(self, ranks):
        self.machine.barrier(sorted(ranks))

    @rule(
        name=st.sampled_from(["a", "b"]),
        s=st.floats(0, 10, allow_nan=False),
    )
    def charge_in_phase(self, name, s):
        with self.machine.phase(name):
            self.machine.charge([0, 1], Cost(s, 0, 0))
        self.total_serial_time += s
        self.largest_charge = max(self.largest_charge, s)

    @rule(
        rank=st.integers(0, N_RANKS - 1),
        words=st.floats(0, 100, allow_nan=False),
    )
    def touch_memory(self, rank, words):
        self.machine.memory.alloc(rank, words)
        self.machine.memory.observe(rank, words / 2)

    # -- invariants -------------------------------------------------------------

    @invariant()
    def clock_monotone(self):
        t = self.machine.time()
        assert t >= self.last_time - 1e-9
        self.last_time = t

    @invariant()
    def time_bounded_by_serialization(self):
        assert self.machine.time() <= self.total_serial_time + 1e-6

    @invariant()
    def time_at_least_largest_single_charge(self):
        assert self.machine.time() >= self.largest_charge - 1e-9

    @invariant()
    def critical_path_consistent_with_time(self):
        cp = self.machine.critical_path()
        # the max-clock rank's path cost can't exceed total time (unit params)
        assert cp.time(UNIT) <= self.machine.time() + 1e-6

    @invariant()
    def counters_nonnegative(self):
        c = self.machine.counters
        assert (c.S >= 0).all() and (c.W >= 0).all() and (c.F >= 0).all()
        assert (c.clock >= 0).all()

    @invariant()
    def memory_peak_dominates_current(self):
        m = self.machine.memory
        assert (m.peak >= m.current - 1e-9).all()

    @invariant()
    def phase_costs_bounded_by_totals(self):
        for name in self.machine.phase_names():
            pc = self.machine.phase_cost(name)
            tot = self.machine.total_volume()
            assert pc.S <= tot.S + 1e-9
            assert pc.W <= tot.W + 1e-9


TestMachineStateful = MachineModel.TestCase
TestMachineStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
