"""Unit and property tests for repro.util.mathutil."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.mathutil import (
    ceil_div,
    divisor_pairs,
    geometric_range,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    power_of_two_divisor_pairs,
    prev_power_of_two,
    round_to_power_of_two,
    split_indices,
    unit_step,
)


class TestUnitStep:
    def test_above_one(self):
        assert unit_step(2) == 1
        assert unit_step(1.5) == 1

    def test_at_or_below_one(self):
        assert unit_step(1) == 0
        assert unit_step(0) == 0
        assert unit_step(-3) == 0


class TestPowersOfTwo:
    def test_is_power_of_two_accepts(self):
        for e in range(20):
            assert is_power_of_two(1 << e)

    def test_is_power_of_two_rejects(self):
        for x in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(x)

    def test_ilog2_exact(self):
        for e in range(20):
            assert ilog2(1 << e) == e

    def test_ilog2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            ilog2(3)
        with pytest.raises(ValueError):
            ilog2(0)

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024

    def test_prev_power_of_two(self):
        assert prev_power_of_two(1) == 1
        assert prev_power_of_two(2) == 2
        assert prev_power_of_two(3) == 2
        assert prev_power_of_two(1000) == 512

    def test_prev_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            prev_power_of_two(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_prev_next_bracket(self, x):
        lo, hi = prev_power_of_two(x), next_power_of_two(x)
        assert lo <= x <= hi
        assert is_power_of_two(lo) and is_power_of_two(hi)
        assert hi <= 2 * lo or x == lo

    @given(st.floats(min_value=0.01, max_value=1e9, allow_nan=False))
    def test_round_to_power_of_two_is_geometric(self, x):
        r = round_to_power_of_two(x)
        assert is_power_of_two(r)
        if x >= 1:
            # geometrically closest: within sqrt(2) ratio
            ratio = max(r / x, x / r)
            assert ratio <= math.sqrt(2.0) + 1e-9

    def test_round_to_power_of_two_small(self):
        assert round_to_power_of_two(0.3) == 1
        assert round_to_power_of_two(1.0) == 1


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_remainder(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 4) == 0

    def test_invalid_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestDivisorPairs:
    def test_twelve(self):
        pairs = list(divisor_pairs(12))
        assert (3, 4) in pairs and (12, 1) in pairs and (1, 12) in pairs
        for a, b in pairs:
            assert a * b == 12

    def test_one(self):
        assert list(divisor_pairs(1)) == [(1, 1)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            list(divisor_pairs(0))

    def test_power_of_two_pairs(self):
        pairs = list(power_of_two_divisor_pairs(16))
        assert pairs == [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]

    def test_power_of_two_pairs_rejects(self):
        with pytest.raises(ValueError):
            list(power_of_two_divisor_pairs(12))


class TestSplitIndices:
    def test_even_split(self):
        assert split_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_ragged_split_front_loaded(self):
        assert split_indices(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_items(self):
        chunks = split_indices(2, 4)
        assert chunks == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            split_indices(4, 0)

    @given(st.integers(0, 1000), st.integers(1, 50))
    def test_partition_property(self, n, parts):
        chunks = split_indices(n, parts)
        assert len(chunks) == parts
        assert chunks[0][0] == 0 and chunks[-1][1] == n
        for (a0, a1), (b0, b1) in zip(chunks, chunks[1:]):
            assert a1 == b0
            assert a1 - a0 >= b1 - b0  # first chunks never smaller
        sizes = [hi - lo for lo, hi in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestGeometricRange:
    def test_default_factor(self):
        assert geometric_range(1, 16) == [1, 2, 4, 8, 16]

    def test_factor_four(self):
        assert geometric_range(4, 256, 4) == [4, 16, 64, 256]

    def test_hi_not_hit_exactly(self):
        assert geometric_range(1, 10) == [1, 2, 4, 8]

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_range(0, 4)
        with pytest.raises(ValueError):
            geometric_range(4, 2)
        with pytest.raises(ValueError):
            geometric_range(1, 4, 1)
