"""Sequential TRSM kernels and the Heath-Romine baseline."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.machine.validate import ShapeError
from repro.trsm import forward_substitution, heath_romine_trsv, trsm_lower_sequential
from repro.util.randmat import (
    ill_conditioned_lower_triangular,
    random_dense,
    random_lower_triangular,
)

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestForwardSubstitution:
    @pytest.mark.parametrize("n,k", [(1, 1), (5, 1), (10, 3), (33, 8)])
    def test_matches_scipy(self, n, k):
        L = random_lower_triangular(n, seed=n)
        B = random_dense(n, k, seed=k)
        X = forward_substitution(L, B)
        assert np.allclose(X, sla.solve_triangular(L, B, lower=True))

    def test_vector_rhs_keeps_shape(self):
        L = random_lower_triangular(8, seed=0)
        b = random_dense(8, 1, seed=1)[:, 0]
        x = forward_substitution(L, b)
        assert x.shape == (8,)
        assert np.allclose(L @ x, b)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            forward_substitution(np.eye(4), np.ones((3, 2)))

    def test_nonsquare_l(self):
        with pytest.raises(ShapeError):
            forward_substitution(np.ones((3, 4)), np.ones(3))


class TestBlockedTrsm:
    @pytest.mark.parametrize("block", [1, 2, 7, 64, 1000])
    def test_block_size_invariant(self, block):
        L = random_lower_triangular(30, seed=0)
        B = random_dense(30, 5, seed=1)
        X = trsm_lower_sequential(L, B, block=block)
        assert np.allclose(X, sla.solve_triangular(L, B, lower=True))

    def test_vector_rhs(self):
        L = random_lower_triangular(12, seed=0)
        b = random_dense(12, 1, seed=1)[:, 0]
        x = trsm_lower_sequential(L, b)
        assert x.shape == (12,)

    def test_rejects_upper_triangular(self):
        with pytest.raises(ShapeError):
            trsm_lower_sequential(np.triu(np.ones((4, 4))), np.ones((4, 1)))

    def test_rejects_singular(self):
        L = np.tril(np.ones((4, 4)))
        L[1, 1] = 0.0
        with pytest.raises(ShapeError):
            trsm_lower_sequential(L, np.ones((4, 1)))

    def test_check_false_skips_validation(self):
        # check=False lets callers pass pre-validated operands cheaply
        L = random_lower_triangular(8, seed=0)
        B = random_dense(8, 2, seed=1)
        X = trsm_lower_sequential(L, B, check=False)
        assert np.allclose(L @ X, B)

    def test_backward_stable_on_ill_conditioned(self):
        L = ill_conditioned_lower_triangular(40, condition_target=1e10, seed=0)
        B = random_dense(40, 3, seed=1)
        X = trsm_lower_sequential(L, B)
        from repro.util.checking import relative_residual

        assert relative_residual(L, X, B) < 1e-13

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 25), k=st.integers(1, 6), block=st.integers(1, 30))
    def test_solution_property(self, n, k, block):
        L = random_lower_triangular(n, seed=n * 31 + k)
        B = random_dense(n, k, seed=k)
        X = trsm_lower_sequential(L, B, block=block)
        assert np.allclose(L @ X, B, atol=1e-10)


class TestHeathRomine:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_matches_scipy(self, p):
        machine = Machine(p, params=UNIT)
        L = random_lower_triangular(20, seed=0)
        b = random_dense(20, 1, seed=1)[:, 0]
        x = heath_romine_trsv(machine, L, b)
        assert np.allclose(x, sla.solve_triangular(L, b, lower=True))

    def test_latency_is_theta_n(self):
        """The single-RHS schedule is inherently serial: S ~ n."""
        for n in (16, 32, 64):
            machine = Machine(4, params=UNIT)
            L = random_lower_triangular(n, seed=n)
            b = random_dense(n, 1, seed=1)[:, 0]
            heath_romine_trsv(machine, L, b)
            S = machine.critical_path().S
            assert n - 1 <= S <= 2 * n

    def test_single_processor_no_messages(self):
        machine = Machine(1, params=UNIT)
        L = random_lower_triangular(10, seed=0)
        b = random_dense(10, 1, seed=1)[:, 0]
        heath_romine_trsv(machine, L, b)
        assert machine.critical_path().S == 0

    def test_rejects_bad_shapes(self):
        machine = Machine(2, params=UNIT)
        with pytest.raises(ShapeError):
            heath_romine_trsv(machine, np.eye(4), np.ones(3))

    def test_rejects_non_triangular(self):
        machine = Machine(2, params=UNIT)
        with pytest.raises(ShapeError):
            heath_romine_trsv(machine, np.ones((4, 4)), np.ones(4))

    def test_flops_balanced_across_ranks(self):
        machine = Machine(4, params=UNIT)
        L = random_lower_triangular(64, seed=0)
        b = random_dense(64, 1, seed=1)[:, 0]
        heath_romine_trsv(machine, L, b)
        # update flops are dealt cyclically: no rank does more than ~2x share
        F = machine.counters.F
        assert F.max() <= 3.0 * max(F.min(), 1.0) + 64
