"""DistMatrix container tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import BlockedLayout, CyclicLayout, DistMatrix
from repro.machine import Machine
from repro.machine.validate import GridError, ShapeError


def setup(pr=2, pc=2, m=6, n=6, layout_cls=CyclicLayout):
    machine = Machine(pr * pc)
    grid = machine.grid(pr, pc)
    layout = layout_cls(pr, pc)
    A = np.arange(float(m * n)).reshape(m, n)
    D = DistMatrix.from_global(machine, grid, layout, A)
    return machine, grid, layout, A, D


class TestRoundtrip:
    def test_global_roundtrip_cyclic(self):
        _, _, _, A, D = setup()
        assert np.array_equal(D.to_global(), A)

    def test_global_roundtrip_blocked(self):
        _, _, _, A, D = setup(layout_cls=BlockedLayout)
        assert np.array_equal(D.to_global(), A)

    def test_ragged_shapes(self):
        _, _, _, A, D = setup(pr=2, pc=4, m=7, n=9)
        assert np.array_equal(D.to_global(), A)

    def test_distribution_is_free(self):
        machine, *_ = setup()
        assert machine.time() == 0.0


class TestAccess:
    def test_local_block_contents(self):
        _, grid, layout, A, D = setup()
        blk = D.local((1, 0))
        assert np.array_equal(blk, A[1::2, 0::2])

    def test_set_local_validates_shape(self):
        _, _, _, _, D = setup()
        with pytest.raises(ShapeError):
            D.set_local((0, 0), np.zeros((1, 1)))

    def test_set_local_roundtrip(self):
        _, _, _, A, D = setup()
        D.set_local((0, 0), np.zeros((3, 3)))
        G = D.to_global()
        assert np.all(G[0::2, 0::2] == 0)
        assert np.array_equal(G[1::2, :], A[1::2, :])

    def test_copy_is_deep(self):
        _, _, _, A, D = setup()
        C = D.copy()
        C.blocks[0][:] = -1
        assert np.array_equal(D.to_global(), A)

    def test_words_per_rank(self):
        _, _, _, _, D = setup(pr=2, pc=2, m=5, n=5)
        assert D.words_per_rank() == 9


class TestValidation:
    def test_requires_2d_grid(self):
        machine = Machine(4)
        grid = machine.grid(4)
        with pytest.raises(GridError):
            DistMatrix.from_global(machine, grid, CyclicLayout(1, 4), np.zeros((2, 2)))

    def test_layout_grid_mismatch(self):
        machine = Machine(4)
        grid = machine.grid(2, 2)
        with pytest.raises(GridError):
            DistMatrix.from_global(machine, grid, CyclicLayout(4, 1), np.zeros((2, 2)))

    def test_vector_input_rejected(self):
        machine = Machine(4)
        grid = machine.grid(2, 2)
        with pytest.raises(ShapeError):
            DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), np.zeros(4))

    def test_zeros_constructor(self):
        machine = Machine(4)
        grid = machine.grid(2, 2)
        D = DistMatrix.zeros(machine, grid, CyclicLayout(2, 2), (5, 3))
        assert np.all(D.to_global() == 0)
        assert D.shape == (5, 3)


@settings(max_examples=40, deadline=None)
@given(
    pr=st.integers(1, 3),
    pc=st.integers(1, 3),
    m=st.integers(1, 12),
    n=st.integers(1, 12),
)
def test_roundtrip_property(pr, pc, m, n):
    machine = Machine(pr * pc)
    grid = machine.grid(pr, pc)
    A = np.random.default_rng(0).standard_normal((m, n))
    D = DistMatrix.from_global(machine, grid, CyclicLayout(pr, pc), A)
    assert np.allclose(D.to_global(), A)
