"""Failure injection: every invalid input path raises a typed error.

A downstream user should never see a silent mis-partitioning or a numpy
broadcasting accident; they should see GridError / ShapeError /
ParameterError with an actionable message.
"""

import numpy as np
import pytest

from repro import (
    CyclicLayout,
    DistMatrix,
    GridError,
    Machine,
    ParameterError,
    ShapeError,
    trsm,
)
from repro.dist.layout import BlockCyclicLayout
from repro.inversion import invert_lower_triangular, rec_tri_inv
from repro.machine.validate import ReproError, require_divides, require_power_of_two
from repro.trsm import it_inv_trsm_global, rec_trsm_global
from repro.util.randmat import random_dense, random_lower_triangular


class TestValidationHelpers:
    def test_require_power_of_two(self):
        require_power_of_two(8, "p")
        with pytest.raises(GridError, match="power of two"):
            require_power_of_two(12, "p")

    def test_require_divides(self):
        require_divides(4, 12, "n0", "n")
        with pytest.raises(ShapeError, match="must divide"):
            require_divides(5, 12, "n0", "n")

    def test_error_hierarchy(self):
        assert issubclass(GridError, ReproError)
        assert issubclass(ShapeError, ReproError)
        assert issubclass(ParameterError, ReproError)


class TestSingularAndMalformedOperands:
    def test_zero_diagonal_rejected_everywhere(self):
        L = np.tril(np.ones((8, 8)))
        L[4, 4] = 0.0
        B = random_dense(8, 2, seed=0)
        with pytest.raises(ShapeError, match="singular"):
            trsm(L, B, p=4)
        with pytest.raises(ShapeError, match="singular"):
            invert_lower_triangular(L)

    def test_upper_junk_rejected(self):
        L = random_lower_triangular(8, seed=0)
        L[0, 5] = 1.0
        with pytest.raises(ShapeError, match="lower triangular"):
            trsm(L, random_dense(8, 2, seed=1), p=4)

    def test_nan_inputs_do_not_pass_silently(self):
        L = random_lower_triangular(8, seed=0)
        B = random_dense(8, 2, seed=1)
        B[3, 1] = np.nan
        res = trsm(L, B, p=4)
        # the solve runs (NaN is data), but verification must flag it
        assert not np.isfinite(res.residual) or res.residual > 1

    def test_empty_matrix_rejected(self):
        with pytest.raises((ShapeError, ValueError, IndexError)):
            trsm(np.zeros((0, 0)), np.zeros((0, 1)), p=1)


class TestGridExhaustion:
    def test_machine_rank_exhaustion(self):
        m = Machine(4)
        m.grid(2, 2)
        with pytest.raises(GridError, match="unallocated"):
            m.grid(1, 1)

    def test_solver_p_validation(self):
        with pytest.raises(ParameterError, match="power of two"):
            trsm(
                random_lower_triangular(8, seed=0),
                random_dense(8, 2, seed=1),
                p=6,
            )

    def test_iterative_grid_shape_validation(self):
        m = Machine(8)
        grid3d = m.grid(2, 2, 2)
        from repro.trsm.iterative import it_inv_trsm

        L = DistMatrix.from_global(
            m, grid3d.plane(2, 0), CyclicLayout(2, 2), random_lower_triangular(8, seed=0)
        )
        # wrong: grid is fine, but pass a non-3D grid
        with pytest.raises(GridError):
            it_inv_trsm(m, grid3d.plane(2, 0), L, L, n0=4)  # type: ignore[arg-type]


class TestLayoutMisuse:
    def test_block_cyclic_zero_block(self):
        with pytest.raises(ShapeError):
            BlockCyclicLayout(2, 2, br=0)

    def test_distmatrix_wrong_block_write(self):
        m = Machine(4)
        g = m.grid(2, 2)
        D = DistMatrix.zeros(m, g, CyclicLayout(2, 2), (8, 8))
        with pytest.raises(ShapeError):
            D.set_local((0, 0), np.zeros((5, 5)))

    def test_rec_tri_inv_vector_grid(self):
        m = Machine(4)
        g = m.grid(1, 4)
        D = DistMatrix.from_global(
            m, g, CyclicLayout(1, 4), random_lower_triangular(8, seed=0)
        )
        with pytest.raises(GridError, match="square"):
            rec_tri_inv(D)


class TestParameterMisuse:
    def test_n0_not_dividing(self):
        m = Machine(4)
        with pytest.raises(ParameterError, match="divide"):
            it_inv_trsm_global(
                m,
                random_lower_triangular(10, seed=0),
                random_dense(10, 2, seed=1),
                p1=2,
                p2=1,
                n0=4,
            )

    def test_rec_trsm_bad_grid_ratio(self):
        m = Machine(12)
        g = m.grid(3, 4)
        with pytest.raises(GridError):
            rec_trsm_global(
                m,
                random_lower_triangular(8, seed=0),
                random_dense(8, 2, seed=1),
                grid=g,
            )

    def test_b_rows_mismatch(self):
        with pytest.raises((ShapeError, ValueError)):
            trsm(
                random_lower_triangular(8, seed=0),
                random_dense(9, 2, seed=1),
                p=4,
            )
