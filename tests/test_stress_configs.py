"""Exhaustive small-configuration sweep of both parallel TRSM algorithms.

Every (grid, shape, cutoff) combination below runs the full simulated
pipeline and is checked against SciPy.  This is the regression net that
catches index-arithmetic mistakes on the boundaries (empty local blocks,
single-row panels, k < p2, n0 = n, ...).
"""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.machine import CostParams, Machine
from repro.trsm import it_inv_trsm_global, rec_trsm_global
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

IT_CONFIGS = [
    # (p1, p2, n, k, n0)
    (1, 1, 4, 1, 4),
    (1, 1, 12, 5, 4),
    (2, 1, 4, 1, 2),
    (2, 1, 6, 2, 3),
    (2, 1, 40, 3, 10),
    (1, 2, 8, 2, 4),
    (1, 2, 8, 1, 8),  # k < p2
    (1, 4, 12, 3, 6),  # k < p2 with slabs
    (2, 2, 8, 8, 4),
    (2, 2, 10, 4, 5),
    (2, 2, 44, 7, 11),
    (2, 4, 16, 4, 8),
    (4, 1, 8, 2, 4),  # n0 < p1 rows per class
    (4, 1, 20, 5, 5),
    (4, 2, 24, 6, 12),
    (2, 2, 6, 1, 2),  # single-column RHS
    (2, 2, 64, 2, 64),  # full inversion, tiny k
]


@pytest.mark.parametrize("p1,p2,n,k,n0", IT_CONFIGS)
def test_iterative_config(p1, p2, n, k, n0):
    machine = Machine(p1 * p1 * p2, params=UNIT)
    L = random_lower_triangular(n, seed=n * 7 + k)
    B = random_dense(n, k, seed=k * 5 + 1)
    X = it_inv_trsm_global(machine, L, B, p1=p1, p2=p2, n0=n0, base_n=2)
    ref = sla.solve_triangular(L, B, lower=True)
    assert np.allclose(X.to_global(), ref, atol=1e-9), (p1, p2, n, k, n0)


REC_CONFIGS = [
    # (grid, n, k, n0)
    ((1, 1), 3, 1, None),
    ((1, 2), 4, 9, None),
    ((2, 2), 5, 5, 1),
    ((2, 2), 9, 2, 2),
    ((2, 2), 16, 16, 4),
    ((1, 4), 6, 40, None),
    ((2, 4), 8, 32, 4),
    ((2, 8), 8, 64, 4),
    ((4, 4), 21, 5, 7),
    ((4, 4), 32, 32, 16),
    ((2, 2), 2, 1, 1),  # minimal recursion
]


@pytest.mark.parametrize("grid_shape,n,k,n0", REC_CONFIGS)
def test_recursive_config(grid_shape, n, k, n0):
    p = grid_shape[0] * grid_shape[1]
    machine = Machine(p, params=UNIT)
    grid = machine.grid(*grid_shape)
    L = random_lower_triangular(n, seed=n * 11 + k)
    B = random_dense(n, k, seed=k * 3 + 2)
    X = rec_trsm_global(machine, L, B, grid=grid, n0=n0)
    ref = sla.solve_triangular(L, B, lower=True)
    assert np.allclose(X.to_global(), ref, atol=1e-9), (grid_shape, n, k, n0)


@pytest.mark.parametrize("p1,p2,n,k,n0", IT_CONFIGS[:8])
def test_iterative_costs_are_finite_and_positive(p1, p2, n, k, n0):
    machine = Machine(p1 * p1 * p2, params=UNIT)
    L = random_lower_triangular(n, seed=0)
    B = random_dense(n, k, seed=1)
    it_inv_trsm_global(machine, L, B, p1=p1, p2=p2, n0=n0, base_n=2)
    cp = machine.critical_path()
    assert np.isfinite(cp.S) and np.isfinite(cp.W) and np.isfinite(cp.F)
    assert cp.F > 0
    if p1 * p1 * p2 == 1:
        assert cp.S == 0 and cp.W == 0
