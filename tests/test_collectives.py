"""Collectives: data correctness + exact Section II-C1 cost charging."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.machine.collectives import (
    allgather,
    allgather_blocks,
    allreduce,
    alltoall,
    bcast,
    gather,
    grid_transpose,
    reduce,
    reduce_scatter,
    scatter,
    send,
    sendrecv,
)
from repro.machine.validate import ShapeError

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def machine(p=8):
    return Machine(p, params=UNIT)


def lg(g):
    return int(math.ceil(math.log2(g))) if g > 1 else 0


class TestAllgather:
    def test_concatenates_in_group_order(self):
        m = machine()
        group = [3, 1, 5]
        out = allgather(m, group, {r: np.full(2, float(r)) for r in group})
        for r in group:
            assert np.allclose(out[r], [3, 3, 1, 1, 5, 5])

    def test_cost_formula(self):
        m = machine()
        group = [0, 1, 2, 3]
        allgather(m, group, {r: np.ones(5) for r in group})
        cp = m.critical_path()
        assert cp.S == lg(4)
        assert cp.W == 20  # result size
        assert cp.F == 0

    def test_singleton_group_free(self):
        m = machine()
        out = allgather(m, [2], {2: np.ones(3)})
        assert m.time() == 0.0
        assert np.allclose(out[2], 1)

    def test_axis_concatenation(self):
        m = machine()
        group = [0, 1]
        out = allgather(
            m, group, {r: np.full((2, 1), float(r)) for r in group}, axis=1
        )
        assert out[0].shape == (2, 2)

    def test_missing_contribution_rejected(self):
        m = machine()
        with pytest.raises(ShapeError):
            allgather(m, [0, 1], {0: np.ones(1)})

    def test_allgather_blocks_keeps_identity(self):
        m = machine()
        group = [4, 2]
        out = allgather_blocks(m, group, {4: np.ones(3), 2: np.zeros(2)})
        assert np.allclose(out[2][4], 1) and np.allclose(out[2][2], 0)
        assert m.critical_path().W == 5


class TestScatterGather:
    def test_scatter_delivers_chunks(self):
        m = machine()
        group = [0, 1, 2]
        chunks = [np.full(2, float(i)) for i in range(3)]
        out = scatter(m, group, 0, chunks)
        assert np.allclose(out[1], 1.0)
        assert m.critical_path() .W == 6

    def test_scatter_wrong_chunk_count(self):
        m = machine()
        with pytest.raises(ShapeError):
            scatter(m, [0, 1], 0, [np.ones(1)])

    def test_scatter_root_not_in_group(self):
        m = machine()
        with pytest.raises(ShapeError):
            scatter(m, [0, 1], 5, [np.ones(1), np.ones(1)])

    def test_gather_collects_in_order(self):
        m = machine()
        group = [2, 0, 1]
        out = gather(m, group, 2, {r: np.full(1, float(r)) for r in group})
        assert [int(a[0]) for a in out] == [2, 0, 1]
        assert m.critical_path().S == lg(3)


class TestReductions:
    def test_reduce_scatter_sums_and_splits(self):
        m = machine()
        group = [0, 1, 2, 3]
        out = reduce_scatter(m, group, {r: np.arange(8.0) for r in group})
        assert np.allclose(out[1], 4 * np.arange(8.0)[2:4])
        cp = m.critical_path()
        assert cp.S == 2 and cp.W == 8 and cp.F == 8

    def test_reduce_scatter_shape_mismatch(self):
        m = machine()
        with pytest.raises(ShapeError):
            reduce_scatter(m, [0, 1], {0: np.ones(4), 1: np.ones(3)})

    def test_allreduce_everyone_gets_sum(self):
        m = machine()
        group = [0, 1, 2]
        out = allreduce(m, group, {r: np.full(4, float(r)) for r in group})
        for r in group:
            assert np.allclose(out[r], 3.0)
        cp = m.critical_path()
        assert cp.S == 2 * lg(3) and cp.W == 8 and cp.F == 4

    def test_reduce_to_root(self):
        m = machine()
        total = reduce(m, [0, 1], 0, {0: np.ones(3), 1: np.ones(3)})
        assert np.allclose(total, 2.0)
        cp = m.critical_path()
        assert cp.S == 2 and cp.W == 6 and cp.F == 3

    def test_singleton_reduction_free(self):
        m = machine()
        allreduce(m, [0], {0: np.ones(10)})
        assert m.time() == 0.0


class TestBcast:
    def test_delivers_value(self):
        m = machine()
        out = bcast(m, [0, 1, 2, 3], 2, np.arange(3.0))
        for r in (0, 1, 2, 3):
            assert np.allclose(out[r], [0, 1, 2])

    def test_cost_two_phase(self):
        m = machine()
        bcast(m, [0, 1, 2, 3], 0, np.ones(5))
        cp = m.critical_path()
        assert cp.S == 2 * lg(4) and cp.W == 10


class TestAlltoall:
    def test_personalized_exchange(self):
        m = machine()
        group = [0, 1, 2]
        blocks = {
            r: [np.full(1, 10.0 * r + j) for j in range(3)] for r in group
        }
        out = alltoall(m, group, blocks)
        # destination j receives blocks[src][j] from every src
        assert np.allclose([a[0] for a in out[1]], [1.0, 11.0, 21.0])

    def test_cost_bruck(self):
        m = machine()
        group = [0, 1, 2, 3]
        blocks = {r: [np.ones(2) for _ in range(4)] for r in group}
        alltoall(m, group, blocks)
        cp = m.critical_path()
        assert cp.S == 2  # log2(4)
        assert cp.W == (8 / 2) * 2  # (per-rank volume / 2) * log

    def test_block_count_mismatch(self):
        m = machine()
        with pytest.raises(ShapeError):
            alltoall(m, [0, 1], {0: [np.ones(1)], 1: [np.ones(1), np.ones(1)]})


class TestPointToPoint:
    def test_sendrecv_swaps(self):
        m = machine()
        a, b = sendrecv(m, 0, 1, np.zeros(3), np.ones(3))
        assert np.allclose(a, 1) and np.allclose(b, 0)
        cp = m.critical_path()
        assert cp.S == 1 and cp.W == 3

    def test_self_exchange_free(self):
        m = machine()
        sendrecv(m, 2, 2, np.zeros(3), np.zeros(3))
        assert m.time() == 0.0

    def test_send(self):
        m = machine()
        out = send(m, 0, 3, np.arange(4.0))
        assert np.allclose(out, np.arange(4.0))
        assert m.critical_path() == type(m.critical_path())(1, 4, 0)

    def test_send_to_self_free(self):
        m = machine()
        send(m, 1, 1, np.ones(8))
        assert m.time() == 0.0

    def test_grid_transpose_pairs(self):
        m = machine()
        data = {0: np.zeros(2), 1: np.ones(2), 2: np.full(2, 2.0)}
        out = grid_transpose(m, [(0, 1), (2, 2)], data)
        assert np.allclose(out[0], 1) and np.allclose(out[1], 0)
        assert np.allclose(out[2], 2)


@settings(max_examples=30, deadline=None)
@given(
    g=st.integers(2, 8),
    words=st.integers(1, 40),
)
def test_allreduce_cost_scales_with_group_and_words(g, words):
    m = Machine(8, params=UNIT)
    group = list(range(g))
    allreduce(m, group, {r: np.ones(words) for r in group})
    cp = m.critical_path()
    assert cp.S == 2 * lg(g)
    assert cp.W == 2 * words
    assert cp.F == words


@settings(max_examples=30, deadline=None)
@given(
    g=st.integers(1, 8),
    words=st.integers(1, 30),
    data=st.data(),
)
def test_allgather_roundtrip_property(g, words, data):
    m = Machine(8, params=UNIT)
    group = list(range(g))
    contribs = {
        r: np.asarray(
            data.draw(
                st.lists(
                    st.floats(-1e6, 1e6, allow_nan=False),
                    min_size=words,
                    max_size=words,
                )
            )
        )
        for r in group
    }
    out = allgather(m, group, contribs)
    expected = np.concatenate([contribs[r] for r in group])
    for r in group:
        assert np.allclose(out[r], expected)
