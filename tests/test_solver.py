"""Top-level trsm() API."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import trsm
from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError
from repro.util.randmat import random_dense, random_lower_triangular


class TestAuto:
    def test_solves_and_verifies(self):
        L = random_lower_triangular(64, seed=0)
        B = random_dense(64, 16, seed=1)
        res = trsm(L, B, p=16)
        assert res.algorithm == "iterative"
        assert res.residual is not None and res.residual < 1e-12
        assert np.allclose(res.X, sla.solve_triangular(L, B, lower=True), atol=1e-9)

    def test_single_processor_uses_recursive(self):
        L = random_lower_triangular(16, seed=0)
        B = random_dense(16, 4, seed=1)
        res = trsm(L, B, p=1)
        assert res.algorithm == "recursive"
        assert res.residual < 1e-13

    def test_vector_rhs(self):
        L = random_lower_triangular(32, seed=0)
        b = random_dense(32, 1, seed=1)[:, 0]
        res = trsm(L, b, p=4)
        assert res.X.shape == (32,)
        assert np.allclose(L @ res.X, b, atol=1e-10)

    def test_measured_and_time_populated(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = trsm(L, B, p=4)
        assert res.time > 0
        assert res.measured.S > 0 and res.measured.W > 0 and res.measured.F > 0
        assert res.modeled.F > 0

    def test_phase_costs_exposed(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = trsm(L, B, p=4, n0=8)
        phases = res.phase_costs()
        assert "inversion" in phases and "solve" in phases


class TestExplicitChoices:
    def test_recursive_explicit(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = trsm(L, B, p=4, algorithm="recursive")
        assert res.algorithm == "recursive"
        assert res.residual < 1e-13
        assert res.choice is None

    def test_search_tuning(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = trsm(L, B, p=4, tune="search")
        assert res.choice is not None
        assert res.residual < 1e-12

    def test_n0_override(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        res = trsm(L, B, p=4, n0=4)
        assert res.choice.n0 == 4
        assert res.residual < 1e-12

    def test_custom_params_change_time_not_solution(self):
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 8, seed=1)
        r1 = trsm(L, B, p=4, params=CostParams(alpha=1e-3))
        r2 = trsm(L, B, p=4, params=CostParams(alpha=1e-9))
        assert np.allclose(r1.X, r2.X)
        assert r1.time > r2.time

    def test_verify_false_skips_residual(self):
        L = random_lower_triangular(16, seed=0)
        B = random_dense(16, 4, seed=1)
        res = trsm(L, B, p=4, verify=False)
        assert res.residual is None


class TestValidation:
    def test_bad_p(self):
        with pytest.raises(ParameterError):
            trsm(random_lower_triangular(8, seed=0), random_dense(8, 2, seed=1), p=3)

    def test_bad_algorithm(self):
        with pytest.raises(ParameterError):
            trsm(
                random_lower_triangular(8, seed=0),
                random_dense(8, 2, seed=1),
                p=4,
                algorithm="quantum",
            )

    def test_bad_tune_mode(self):
        with pytest.raises(ParameterError):
            trsm(
                random_lower_triangular(8, seed=0),
                random_dense(8, 2, seed=1),
                p=4,
                tune="vibes",
            )

    def test_bad_n0(self):
        with pytest.raises(ParameterError):
            trsm(
                random_lower_triangular(8, seed=0),
                random_dense(8, 2, seed=1),
                p=4,
                n0=3,
            )


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("n,k,p", [(32, 8, 4), (48, 12, 16), (24, 48, 4)])
    def test_both_algorithms_same_solution(self, n, k, p):
        L = random_lower_triangular(n, seed=n)
        B = random_dense(n, k, seed=k)
        r_it = trsm(L, B, p=p, algorithm="iterative")
        r_rec = trsm(L, B, p=p, algorithm="recursive")
        assert np.allclose(r_it.X, r_rec.X, atol=1e-9)
