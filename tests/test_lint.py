"""Golden tests for replint: every rule against a paired good/bad fixture.

Each fixture under ``tests/lint_fixtures/`` impersonates a real module via
its ``# replint-fixture-module:`` header, so the rules see it exactly as
they would see hot-path library code.  The bad fixtures pin *exact* rule
ids and line numbers; the good twins pin silence.  Two fixtures encode
the acceptance scenarios from the invariants themselves: ``charge_bad``
is ``stage_matrix`` with its ``charge_pointwise`` pairing deleted, and
``rng_bad`` is a bare ``np.random.rand`` dropped into the serve layer.
"""

from pathlib import Path

from repro.lint import RULES, LintConfig, lint_paths, load_config, run_lint
from repro.lint.engine import _parse_replint_sections, derive_module

ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def lint_fixture(name: str) -> list[tuple[str, int]]:
    config = LintConfig(exclude=())
    found = lint_paths([str(FIXTURES / name)], config=config)
    return [(f.rule, f.line) for f in found]


class TestNoGlobalGather:
    def test_good(self):
        assert lint_fixture("gather_good.py") == []

    def test_bad(self):
        assert lint_fixture("gather_bad.py") == [
            ("no-global-gather", 10),
            ("no-global-gather", 11),
        ]


class TestChargeSoundness:
    def test_good(self):
        """The stage_matrix shape: charge_pointwise/charge paired with apply."""
        assert lint_fixture("charge_good.py") == []

    def test_bad(self):
        """Deleting the charge_pointwise pairing makes the linter fail."""
        assert lint_fixture("charge_bad.py") == [("charge-soundness", 6)]

    def test_covered_through_callers(self, tmp_path):
        """A charge in every caller covers a mutation in a helper."""
        src = (
            "# replint-fixture-module: repro.dist.fixture_chain\n"
            "def outer(plan, machine, blocks):\n"
            "    plan.charge(machine, label='x')\n"
            "    return inner(plan, blocks)\n"
            "\n"
            "def inner(plan, blocks):\n"
            "    return plan.apply(blocks)\n"
        )
        p = tmp_path / "chain.py"
        p.write_text(src)
        assert lint_paths([str(p)], config=LintConfig(exclude=())) == []

    def test_uncovered_when_one_caller_lacks_charge(self, tmp_path):
        src = (
            "# replint-fixture-module: repro.dist.fixture_chain_bad\n"
            "def outer(plan, machine, blocks):\n"
            "    plan.charge(machine, label='x')\n"
            "    return inner(plan, blocks)\n"
            "\n"
            "def sneaky(plan, blocks):\n"
            "    return inner(plan, blocks)\n"
            "\n"
            "def inner(plan, blocks):\n"
            "    return plan.apply(blocks)\n"
        )
        p = tmp_path / "chain_bad.py"
        p.write_text(src)
        found = lint_paths([str(p)], config=LintConfig(exclude=()))
        assert [(f.rule, f.line) for f in found] == [("charge-soundness", 10)]


class TestReferenceIsolation:
    def test_good(self):
        assert lint_fixture("reference_good.py") == []

    def test_bad(self):
        assert lint_fixture("reference_bad.py") == [("reference-isolation", 4)]


class TestToggleHygiene:
    def test_good(self):
        assert lint_fixture("toggle_good.py") == []

    def test_bad(self):
        assert lint_fixture("toggle_bad.py") == [
            ("toggle-hygiene", 8),
            ("toggle-hygiene", 10),
        ]


class TestSlotsRequired:
    def test_good(self):
        assert lint_fixture("slots_good.py") == []

    def test_bad(self):
        assert lint_fixture("slots_bad.py") == [
            ("slots-required", 8),
            ("slots-required", 14),
        ]


class TestRngDiscipline:
    def test_good(self):
        assert lint_fixture("rng_good.py") == []

    def test_bad(self):
        """A bare np.random.rand in the serve layer, plus a seedless rng."""
        assert lint_fixture("rng_bad.py") == [
            ("rng-discipline", 8),
            ("rng-discipline", 12),
        ]


class TestInt32Accumulation:
    def test_good(self):
        assert lint_fixture("int32_good.py") == []

    def test_bad(self):
        assert lint_fixture("int32_bad.py") == [
            ("int32-accumulation", 8),
            ("int32-accumulation", 8),
        ]


class TestWallclockDiscipline:
    def test_good(self):
        assert lint_fixture("wallclock_good.py") == []

    def test_bad(self):
        assert lint_fixture("wallclock_bad.py") == [
            ("wallclock-discipline", 5),
            ("wallclock-discipline", 9),
            ("wallclock-discipline", 13),
        ]

    def test_daemon_is_allowlisted_not_exempt(self):
        """The daemon's wall-clock default is caught by the rule and silenced
        only by the pyproject allowlist — moving the read elsewhere re-fires."""
        config = load_config(ROOT / "pyproject.toml")
        daemon = ROOT / "src" / "repro" / "api" / "online" / "daemon.py"
        raw = lint_paths([str(daemon)], config=LintConfig(exclude=()))
        assert any(f.rule == "wallclock-discipline" for f in raw)
        allowed = lint_paths([str(daemon)], config=config)
        assert [f.rule for f in allowed] == []


class TestBackendDiscipline:
    def test_good(self):
        """Machines from a backend, clocks through backend.timer: silent."""
        assert lint_fixture("backend_good.py") == []

    def test_bad(self):
        """A bare Machine(p) plus three flavors of wall-clock read."""
        assert lint_fixture("backend_bad.py") == [
            ("backend-discipline", 5),
            ("backend-discipline", 11),
            ("backend-discipline", 12),
            ("backend-discipline", 14),
        ]

    def test_backend_and_machine_packages_are_exempt(self, tmp_path):
        """The packages that *implement* execution may build machines and
        read real clocks — the rule is about everyone else."""
        src = (
            "# replint-fixture-module: repro.backend.fixture_impl\n"
            "import time\n"
            "from repro.machine.machine import Machine\n"
            "\n"
            "def make(p):\n"
            "    t0 = time.perf_counter()\n"
            "    return Machine(p), t0\n"
        )
        p = tmp_path / "impl.py"
        p.write_text(src)
        assert lint_paths([str(p)], config=LintConfig(exclude=())) == []

    def test_selfcheck_timer_is_allowlisted_not_exempt(self):
        """_check times the battery with the host clock; that is silenced by
        the pyproject allowlist, not by weakening the rule."""
        config = load_config(ROOT / "pyproject.toml")
        selfcheck = ROOT / "src" / "repro" / "analysis" / "selfcheck.py"
        raw = lint_paths([str(selfcheck)], config=LintConfig(exclude=()))
        assert any(f.rule == "backend-discipline" for f in raw)
        allowed = lint_paths([str(selfcheck)], config=config)
        assert [f.rule for f in allowed] == []


class TestEscapeHatch:
    def test_justified_suppression_silences(self):
        assert lint_fixture("suppress_good.py") == []

    def test_unjustified_suppression_does_not_silence(self):
        """Without '-- <why>' the finding stays AND the comment is flagged."""
        assert lint_fixture("suppress_bad.py") == [
            ("bad-suppression", 8),
            ("rng-discipline", 8),
        ]

    def test_unknown_rule_in_disable_is_flagged(self, tmp_path):
        p = tmp_path / "typo.py"
        p.write_text(
            "# replint: disable=rng-dicipline -- typo in the rule id\n"
            "x = 1\n"
        )
        found = lint_paths([str(p)], config=LintConfig(exclude=()))
        assert [(f.rule, f.line) for f in found] == [("bad-suppression", 1)]

    def test_standalone_comment_covers_next_line_only(self, tmp_path):
        p = tmp_path / "stand.py"
        p.write_text(
            "# replint-fixture-module: repro.api.fixture_stand\n"
            "import numpy as np\n"
            "\n"
            "\n"
            "def f():\n"
            "    # replint: disable=rng-discipline -- only the line below\n"
            "    a = np.random.rand(2)\n"
            "    b = np.random.rand(2)\n"
            "    return a + b\n"
        )
        found = lint_paths([str(p)], config=LintConfig(exclude=()))
        assert [(f.rule, f.line) for f in found] == [("rng-discipline", 8)]


class TestEngine:
    def test_module_derivation(self):
        assert derive_module(Path("src/repro/dist/routing.py")) == "repro.dist.routing"
        assert derive_module(Path("src/repro/dist/__init__.py")) == "repro.dist"
        assert derive_module(Path("tests/test_lint.py")) == "tests.test_lint"
        assert derive_module(Path("benchmarks/bench_serve.py")) == "benchmarks.bench_serve"

    def test_parse_error_is_a_finding(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def f(:\n")
        found = lint_paths([str(p)], config=LintConfig(exclude=()))
        assert [f.rule for f in found] == ["parse-error"]

    def test_allowlist_matches_module_and_qualname(self):
        config = LintConfig(
            exclude=(),
            allow={"rng-discipline": ("repro.api.fixture_serve:jitter",)},
        )
        found = lint_paths([str(FIXTURES / "rng_bad.py")], config=config)
        assert [(f.rule, f.line) for f in found] == [("rng-discipline", 12)]

    def test_config_loads_from_pyproject(self):
        config = load_config(ROOT / "pyproject.toml")
        assert "repro.sched" in config.hot_path_modules
        assert "lint_fixtures" in config.exclude
        assert "no-global-gather" in config.allow

    def test_toml_fallback_matches_tomllib(self):
        """The minimal 3.10 parser reads [tool.replint] identically."""
        import tomllib

        text = (ROOT / "pyproject.toml").read_text()
        full = tomllib.loads(text)["tool"]["replint"]
        mini = _parse_replint_sections(text)["tool"]["replint"]
        assert mini == full

    def test_rule_catalogue_is_complete(self):
        assert set(RULES) == {
            "no-global-gather",
            "charge-soundness",
            "reference-isolation",
            "toggle-hygiene",
            "slots-required",
            "rng-discipline",
            "int32-accumulation",
            "wallclock-discipline",
            "backend-discipline",
        }


class TestRepoTree:
    def test_repo_tree_is_clean(self):
        """`python -m repro lint src tests benchmarks` exits 0 on this tree."""
        config = load_config(ROOT / "pyproject.toml")
        found = lint_paths(
            [str(ROOT / "src"), str(ROOT / "tests"), str(ROOT / "benchmarks")],
            config=config,
        )
        assert [f.render() for f in found] == []

    def test_cli_reports_clean(self, capsys):
        rc = run_lint([str(ROOT / "src")], config_path=ROOT / "pyproject.toml")
        out = capsys.readouterr().out
        assert rc == 0
        assert "replint: clean" in out

    def test_cli_list_rules(self, capsys):
        rc = run_lint([], list_rules=True)
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in RULES:
            assert rule_id in out
