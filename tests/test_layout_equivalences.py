"""Degenerate-parameter equivalences between the three layout families.

``BlockCyclicLayout`` generalizes both other layouts:

* ``br = bc = 1`` is exactly ``CyclicLayout`` — on every shape and grid;
* ``br = ceil(m/pr)`` gives each grid row one contiguous run of rows, which
  coincides with ``BlockedLayout`` whenever ``pr`` divides ``m`` (and
  always on a degenerate axis, ``pr = 1``).  On ragged shapes the two
  *differ by design*: ``BlockedLayout`` balances (front-loaded, sizes
  differ by at most one) while ceil-sized block-cyclic starves the last
  rank — the regression test below pins down that documented divergence.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.layout import BlockCyclicLayout, BlockedLayout, CyclicLayout

GRIDS = st.tuples(st.integers(1, 5), st.integers(1, 5))
EDGE_GRIDS = st.sampled_from([(1, 1), (1, 4), (4, 1), (1, 7), (7, 1)])


def assert_same_index_maps(a, b, m, n):
    for x in range(a.pr):
        assert np.array_equal(a.row_indices(x, m), b.row_indices(x, m)), (
            f"row maps differ at x={x}, m={m}"
        )
    for y in range(a.pc):
        assert np.array_equal(a.col_indices(y, n), b.col_indices(y, n)), (
            f"col maps differ at y={y}, n={n}"
        )


class TestBlockCyclicDegeneratesToCyclic:
    @settings(max_examples=80, deadline=None)
    @given(grid=GRIDS, m=st.integers(0, 40), n=st.integers(0, 40))
    def test_unit_blocks_equal_cyclic_on_ragged_shapes(self, grid, m, n):
        pr, pc = grid
        assert_same_index_maps(
            BlockCyclicLayout(pr, pc, br=1, bc=1), CyclicLayout(pr, pc), m, n
        )

    @settings(max_examples=40, deadline=None)
    @given(grid=EDGE_GRIDS, m=st.integers(1, 30), n=st.integers(1, 30))
    def test_unit_blocks_equal_cyclic_on_degenerate_grids(self, grid, m, n):
        pr, pc = grid
        assert_same_index_maps(
            BlockCyclicLayout(pr, pc, br=1, bc=1), CyclicLayout(pr, pc), m, n
        )

    @settings(max_examples=40, deadline=None)
    @given(grid=GRIDS, m=st.integers(1, 30))
    def test_unit_blocks_extract_like_cyclic(self, grid, m):
        pr, pc = grid
        A = np.arange(float(m * m)).reshape(m, m)
        bc = BlockCyclicLayout(pr, pc, br=1, bc=1)
        cy = CyclicLayout(pr, pc)
        for x in range(pr):
            for y in range(pc):
                assert np.array_equal(bc.extract(A, (x, y)), cy.extract(A, (x, y)))


class TestBlockCyclicDegeneratesToBlocked:
    @settings(max_examples=80, deadline=None)
    @given(
        pr=st.integers(1, 5),
        pc=st.integers(1, 5),
        mb=st.integers(1, 8),
        nb=st.integers(1, 8),
    )
    def test_full_blocks_equal_blocked_when_divisible(self, pr, pc, mb, nb):
        m, n = pr * mb, pc * nb
        lay = BlockCyclicLayout(
            pr, pc, br=math.ceil(m / pr), bc=math.ceil(n / pc)
        )
        assert_same_index_maps(lay, BlockedLayout(pr, pc), m, n)

    @settings(max_examples=60, deadline=None)
    @given(grid=EDGE_GRIDS, m=st.integers(1, 30), n=st.integers(1, 30))
    def test_degenerate_axis_always_matches_blocked(self, grid, m, n):
        """On a 1 x p / p x 1 grid the singleton axis owns everything, and
        both layouts agree on it for any (ragged) extent."""
        pr, pc = grid
        lay = BlockCyclicLayout(pr, pc, br=math.ceil(m / pr), bc=math.ceil(n / pc))
        blk = BlockedLayout(pr, pc)
        if pr == 1:
            assert np.array_equal(lay.row_indices(0, m), blk.row_indices(0, m))
            assert np.array_equal(lay.row_indices(0, m), np.arange(m))
        if pc == 1:
            assert np.array_equal(lay.col_indices(0, n), blk.col_indices(0, n))
            assert np.array_equal(lay.col_indices(0, n), np.arange(n))

    def test_ragged_divergence_is_the_documented_one(self):
        """m=7 over pr=3: blocked balances [3,2,2]; ceil-block-cyclic
        chunks [3,3,1].  Both partition the rows; they are not equal."""
        blocked = BlockedLayout(3, 1)
        ceilbc = BlockCyclicLayout(3, 1, br=math.ceil(7 / 3))
        assert [len(blocked.row_indices(x, 7)) for x in range(3)] == [3, 2, 2]
        assert [len(ceilbc.row_indices(x, 7)) for x in range(3)] == [3, 3, 1]
        for lay in (blocked, ceilbc):
            rows = np.concatenate([lay.row_indices(x, 7) for x in range(3)])
            assert sorted(rows.tolist()) == list(range(7))


@settings(max_examples=60, deadline=None)
@given(
    pr=st.integers(1, 4),
    pc=st.integers(1, 4),
    br=st.integers(1, 5),
    bc=st.integers(1, 5),
    m=st.integers(0, 25),
    n=st.integers(0, 25),
)
def test_block_cyclic_always_partitions(pr, pc, br, bc, m, n):
    """Arbitrary physical block sizes still partition the index space."""
    lay = BlockCyclicLayout(pr, pc, br=br, bc=bc)
    rows = np.concatenate([lay.row_indices(x, m) for x in range(pr)])
    cols = np.concatenate([lay.col_indices(y, n) for y in range(pc)])
    assert sorted(rows.tolist()) == list(range(m))
    assert sorted(cols.tolist()) == list(range(n))
