"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import CostParams, Machine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def unit_machine() -> Machine:
    """A 16-rank machine with unit cost constants (time == S + W + F)."""
    return Machine(16, params=CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit"))


def make_machine(p: int, **kw) -> Machine:
    return Machine(p, **kw)


def assert_cost_close(measured, modeled, factor: float = 4.0, atol: float = 1e-9):
    """Assert each nonzero component agrees within a multiplicative factor.

    The models carry the paper's constants while the simulator counts real
    ragged block sizes and collective constants, so agreement is asserted
    per component up to ``factor``.
    """
    for name in ("S", "W", "F"):
        a = getattr(measured, name)
        b = getattr(modeled, name)
        if b <= atol and a <= atol:
            continue
        assert a <= factor * b + atol, f"{name}: measured {a} >> modeled {b}"
        assert b <= factor * a + atol, f"{name}: modeled {b} >> measured {a}"
