"""Packing-policy contracts.

* **LPT parity** — the policy refactor extracted the historical greedy
  scheduler verbatim: the default policy reproduces pre-refactor golden
  schedules bit for bit (FakeRequest streams and full ``replay()`` runs,
  including cache hit/miss decisions).
* **Validity** — every policy emits a valid schedule: no two
  time-overlapping placements share a subgrid rank, every start respects
  the arrival, every placement books a candidate size for its modeled
  duration, and the pool drains.
* **Backfill no-delay** — a backfilled placement never delays the blocked
  head past its logged reservation, and the mixed small/large stream
  shows the strict win over greedy LPT.
* **Optimal ground truth** — the branch-and-bound search never loses to
  either heuristic, matches hand-checkable optima, and refuses queues it
  cannot search exhaustively.
* **Rolling horizon** — ``HorizonPolicy`` is bit-identical to
  ``OptimalPolicy`` whenever the whole queue fits its window
  (property-tested), serves queues the optimum refuses, never loses to
  either heuristic on the pinned mixed stream or the recorded gap
  streams, and tolerates re-plans at t = 0 (the tolerance-floor
  regression).
* **Accounting** — executing any policy's schedule charges the machine
  exactly once per request region: the global volume total equals the
  per-rank, per-region sums from ``machine.region_cost``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cluster import Cluster
from repro.api.requests import TrsmRequest
from repro.api.serve import poisson_stream, replay, replay_mixed, replay_prepared
from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError
from repro.sched import (
    BackfillPolicy,
    HorizonPolicy,
    LPTPolicy,
    OptimalPolicy,
    Scheduler,
    SubgridAllocator,
    make_policy,
)
from repro.sched.policies import PolicyContext, _plan_tolerance
from repro.trsm.prepared import PreparedTrsm
from repro.util.randmat import random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")

POLICY_NAMES = ("lpt", "backfill", "optimal", "horizon")


def make_pool(p: int) -> SubgridAllocator:
    b = p.bit_length() - 1
    return SubgridAllocator(ProcessorGrid.build((2 ** ((b + 1) // 2), 2 ** (b // 2))))


class FakeRequest:
    """Minimal SchedulableRequest: fixed per-size seconds, no staging."""

    def __init__(self, seconds_by_size: dict[int, float], arrival: float = 0.0):
        self.seconds = seconds_by_size
        self.arrival = arrival

    def candidate_sizes(self, capacity):
        return [s for s in self.seconds if s <= capacity]

    def modeled_cost(self, size, params):
        return Cost(0.0, 0.0, self.seconds[size])

    def staging_cost(self, grid, params):
        return Cost.zero()


def golden_stream(seed: int, count: int, max_arrival: float) -> list[FakeRequest]:
    """The exact generator the pre-refactor goldens were captured with."""
    rng = np.random.default_rng(seed)
    reqs = []
    for _ in range(count):
        ss = sorted(rng.choice([1, 2, 4, 8, 16], size=rng.integers(1, 4), replace=False))
        base = float(rng.uniform(0.5, 4.0))
        secs = {int(s): base * (16 / s) ** float(rng.uniform(0.3, 1.0)) for s in ss}
        arr = float(rng.uniform(0, max_arrival)) if max_arrival else 0.0
        reqs.append(FakeRequest(secs, arrival=arr))
    return reqs


# Captured from the pre-refactor scheduler (PR 4 tree) on golden_stream
# inputs: [index, size, start, finish, ranks] per assignment, start order.
GOLDEN_SCHEDULES = {
    (0, 7, 0.0): [
        [2, 1, 0.0, 9.844294256020655, [1]],
        [3, 1, 0.0, 22.96981128038583, [0]],
        [4, 8, 0.0, 3.6807566900421533, [8, 9, 10, 11, 12, 13, 14, 15]],
        [5, 4, 0.0, 5.027836961265825, [2, 3, 6, 7]],
        [6, 2, 0.0, 26.259571328290587, [4, 5]],
        [0, 4, 3.6807566900421533, 5.731004775980371, [10, 11, 14, 15]],
        [1, 4, 3.6807566900421533, 8.780258307082445, [8, 9, 12, 13]],
    ],
    (1, 9, 3.0): [
        [1, 16, 0.0826773397292051, 2.0148743170212695,
         [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]],
        [0, 8, 2.0148743170212695, 3.453652117857625,
         [8, 9, 10, 11, 12, 13, 14, 15]],
        [2, 4, 2.0148743170212695, 8.64540177291541, [2, 3, 6, 7]],
        [7, 4, 2.0148743170212695, 6.844389018110867, [0, 1, 4, 5]],
        [3, 4, 3.453652117857625, 9.162941406219481, [10, 11, 14, 15]],
        [5, 4, 3.453652117857625, 10.823470394759228, [8, 9, 12, 13]],
        [6, 1, 6.844389018110867, 12.309427476712006, [0]],
        [8, 2, 6.844389018110867, 23.84001601215775, [4, 5]],
        [4, 4, 8.64540177291541, 11.24784065576513, [2, 3, 6, 7]],
    ],
    (2, 12, 8.0): [
        [0, 1, 0.4411730186645455, 6.49134152181604, [0]],
        [3, 4, 0.836348467463532, 9.776436534949108, [2, 3, 6, 7]],
        [9, 1, 0.9010628408905461, 4.705816045716892, [1]],
        [6, 8, 1.7297871281521155, 4.405805909807327,
         [8, 9, 10, 11, 12, 13, 14, 15]],
        [10, 1, 3.604676284414097, 13.121257821229747, [4]],
        [7, 1, 3.6514449670524485, 9.349806056141663, [5]],
        [5, 8, 4.405805909807327, 11.075730881519187,
         [8, 9, 10, 11, 12, 13, 14, 15]],
        [2, 1, 4.705816045716892, 18.907418667988225, [1]],
        [4, 1, 6.49134152181604, 34.355224736858574, [0]],
        [1, 2, 9.776436534949108, 15.506027394527425, [6, 7]],
        [11, 2, 9.776436534949108, 26.310012194468626, [2, 3]],
        [8, 16, 34.355224736858574, 37.77836595328155,
         [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]],
    ],
}


def flatten(schedule):
    return [
        [a.index, a.size, float(a.start), float(a.finish), a.grid.ranks()]
        for a in schedule.assignments
    ]


class TestLPTParity:
    """The default policy is the pre-refactor scheduler, bit for bit."""

    @pytest.mark.parametrize("key", sorted(GOLDEN_SCHEDULES))
    def test_golden_fake_streams(self, key):
        seed, count, max_arrival = key
        reqs = golden_stream(seed, count, max_arrival)
        schedule = Scheduler(make_pool(16), UNIT).schedule(reqs)
        assert flatten(schedule) == GOLDEN_SCHEDULES[key]

    def test_policy_spellings_identical(self):
        def reqs():
            # fresh FakeRequests per scheduler (they are stateless anyway)
            return golden_stream(1, 9, 3.0)

        default = Scheduler(make_pool(16), UNIT).schedule(reqs())
        by_name = Scheduler(make_pool(16), UNIT, policy="lpt").schedule(reqs())
        by_instance = Scheduler(
            make_pool(16), UNIT, policy=LPTPolicy()
        ).schedule(reqs())
        assert flatten(default) == flatten(by_name) == flatten(by_instance)
        assert default.policy == by_name.policy == "lpt"

    def test_golden_replay_resident_stream(self):
        # Captured pre-refactor: a resident Poisson stream through a
        # cache-on Cluster — placements, makespans, and cache decisions.
        stream = poisson_stream(
            count=7, rate=3e4, n_range=(32, 64), k_range=(8, 16), seed=9
        )
        out = replay(stream, p=16)
        assert out.modeled_makespan == 0.0003213221061352696
        assert out.measured_makespan == 0.00032091250613526957
        assert (out.staging_hits, out.staging_misses) == (0, 14)
        got = [
            [r.rid, r.size, float(r.modeled_start), float(r.modeled_finish),
             sorted(r.grid.ranks())]
            for r in out.records
        ]
        assert got == [
            [0, 4, 0.00010963025242444954, 0.00014024203677691303, [0, 1, 4, 5]],
            [1, 4, 0.0001260834451632792, 0.0001516211912513951, [2, 3, 6, 7]],
            [2, 4, 0.00015744876708232558, 0.00018589095143478908, [0, 1, 4, 5]],
            [3, 4, 0.00019073971796019118, 0.00021918190231265468, [0, 1, 4, 5]],
            [4, 4, 0.00021749965476403288, 0.00024594183911649635, [2, 3, 6, 7]],
            [5, 4, 0.0002615130237183503, 0.0002899552080708138, [0, 1, 4, 5]],
            [6, 1, 0.0002890629061352696, 0.0003213221061352696, [2]],
        ]

    def test_golden_replay_prepared_cache_hits(self):
        # Captured pre-refactor: the cache-hit path is decision-identical.
        solver = PreparedTrsm(random_lower_triangular(64, seed=0), p=16, k_hint=8)
        out = replay_prepared(solver, count=6, p=16, k=8, seed=5, cache=True, size=4)
        assert out.modeled_makespan == 2.34272e-05
        assert out.measured_makespan == 3.98208e-05
        assert (out.staging_hits, out.staging_misses) == (4, 8)
        assert out.staging_saved_seconds == 1.5072e-05


@st.composite
def fake_streams(draw, max_count=8, max_menu=3, max_arrival=5.0):
    """Streams of FakeRequests on a 16-rank pool."""
    count = draw(st.integers(min_value=1, max_value=max_count))
    reqs = []
    for _ in range(count):
        menu = draw(
            st.lists(
                st.sampled_from([1, 2, 4, 8, 16]),
                min_size=1,
                max_size=max_menu,
                unique=True,
            )
        )
        secs = {
            s: draw(st.floats(min_value=0.1, max_value=5.0)) for s in menu
        }
        arrival = draw(st.floats(min_value=0.0, max_value=max_arrival))
        reqs.append(FakeRequest(secs, arrival=arrival))
    return reqs


def assert_valid_schedule(schedule, reqs, pool):
    """The satellite validity property: disjointness, arrivals, booking."""
    assert sorted(a.index for a in schedule.assignments) == list(range(len(reqs)))
    for a in schedule.assignments:
        req = reqs[a.index]
        assert a.start >= req.arrival - 1e-12
        assert a.size in req.candidate_sizes(pool.capacity)
        assert a.size == a.grid.size
        assert a.finish == pytest.approx(a.start + req.seconds[a.size])
    for i, a in enumerate(schedule.assignments):
        for b in schedule.assignments[i + 1 :]:
            overlap = a.start < b.finish - 1e-12 and b.start < a.finish - 1e-12
            if overlap:
                assert not set(a.grid.ranks()) & set(b.grid.ranks()), (
                    f"requests {a.index} and {b.index} overlap in time and ranks"
                )
    assert schedule.makespan == max(a.finish for a in schedule.assignments)
    assert pool.drained()


class TestEveryPolicyEmitsValidSchedules:
    @given(fake_streams())
    @settings(max_examples=60, deadline=None)
    def test_lpt_valid(self, reqs):
        pool = make_pool(16)
        schedule = Scheduler(pool, UNIT, policy="lpt").schedule(reqs)
        assert_valid_schedule(schedule, reqs, pool)

    @given(fake_streams())
    @settings(max_examples=60, deadline=None)
    def test_backfill_valid(self, reqs):
        pool = make_pool(16)
        schedule = Scheduler(pool, UNIT, policy="backfill").schedule(reqs)
        assert_valid_schedule(schedule, reqs, pool)

    @given(fake_streams(max_count=4, max_menu=2))
    @settings(max_examples=25, deadline=None)
    def test_optimal_valid(self, reqs):
        pool = make_pool(16)
        schedule = Scheduler(pool, UNIT, policy="optimal").schedule(reqs)
        assert_valid_schedule(schedule, reqs, pool)


class TestBackfillNoDelay:
    @given(fake_streams())
    @settings(max_examples=60, deadline=None)
    def test_head_starts_by_every_logged_reservation(self, reqs):
        policy = BackfillPolicy()
        schedule = Scheduler(make_pool(16), UNIT, policy=policy).schedule(reqs)
        by_index = {a.index: a for a in schedule.assignments}
        for logged_at, head, reserved in policy.reservations:
            assert by_index[head].start <= reserved + 1e-9, (
                f"head {head} reserved at t={logged_at} for {reserved} "
                f"started {by_index[head].start}"
            )

    def test_reservation_holds_capacity_for_the_blocked_head(self):
        """The textbook scenario: a full-grid request starves under greedy
        LPT while staggered small requests keep grabbing freed blocks;
        backfilling reserves its start and refuses the late smalls."""
        def stream():
            reqs = [FakeRequest({8: 3.0}) for _ in range(2)]          # fill pool
            reqs.append(FakeRequest({16: 10.0}, arrival=0.5))         # blocked head
            reqs += [
                FakeRequest({8: 3.0}, arrival=a) for a in (2.0, 3.5, 8.0)
            ]
            return reqs

        lpt = Scheduler(make_pool(16), UNIT, policy="lpt").schedule(stream())
        policy = BackfillPolicy()
        bf = Scheduler(make_pool(16), UNIT, policy=policy).schedule(stream())
        big_lpt = next(a for a in lpt.assignments if a.size == 16)
        big_bf = next(a for a in bf.assignments if a.size == 16)
        assert policy.reservations, "the head must have been reserved"
        assert big_bf.start < big_lpt.start, "backfilling must unblock the head"
        assert bf.makespan < lpt.makespan, "and win the makespan here"

    def test_mixed_pinned_stream_strict_win(self):
        """The real-request version (the bench gate scenario)."""
        lpt = replay_mixed(p=16, policy="lpt", smalls=8)
        bf = replay_mixed(p=16, policy="backfill", smalls=8)
        assert bf.policy == "backfill"
        assert bf.modeled_makespan < lpt.modeled_makespan
        assert bf.measured_makespan < lpt.measured_makespan


class TestOptimalGroundTruth:
    @given(fake_streams(max_count=4, max_menu=2))
    @settings(max_examples=25, deadline=None)
    def test_never_worse_than_either_heuristic(self, reqs):
        lpt = Scheduler(make_pool(16), UNIT, policy="lpt").schedule(reqs)
        bf = Scheduler(make_pool(16), UNIT, policy="backfill").schedule(reqs)
        opt = Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        assert opt.makespan <= min(lpt.makespan, bf.makespan) * (1 + 1e-9)

    def test_hand_checkable_optimum(self):
        # Two half-grid placements in parallel beat any serial full-grid
        # plan: optimal must find 1.4 even though each request alone
        # prefers the full grid.
        reqs = [FakeRequest({16: 1.0, 8: 1.4}), FakeRequest({16: 1.0, 8: 1.4})]
        opt = Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        assert opt.makespan == pytest.approx(1.4)

    def test_deliberate_idling_beats_greedy(self):
        # Greedy fills the second half with the long small job and pays
        # for it; the optimum idles that half until the full-grid job is
        # done.  (8-job 5.0 on the half, 16-job 1.0 on the grid.)
        reqs = [FakeRequest({16: 1.0}), FakeRequest({8: 5.0, 16: 4.0})]
        lpt = Scheduler(make_pool(16), UNIT, policy="lpt").schedule(reqs)
        opt = Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        assert opt.makespan <= lpt.makespan
        assert opt.makespan == pytest.approx(5.0)

    def test_queue_cap_enforced(self):
        reqs = [FakeRequest({4: 1.0}) for _ in range(9)]
        with pytest.raises(ParameterError):
            Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        # a raised cap admits the same queue
        relaxed = Scheduler(
            make_pool(16), UNIT, policy=OptimalPolicy(max_requests=9)
        )
        assert len(relaxed.schedule(reqs).assignments) == 9

    def test_refuses_operand_cache(self):
        from repro.api.opcache import OperandCache

        with pytest.raises(ParameterError):
            Scheduler(make_pool(16), UNIT, cache=OperandCache(), policy="optimal")

    def test_cluster_drops_cache_for_optimal(self):
        cluster = Cluster(16, policy="optimal")
        assert cluster.opcache is None
        assert make_policy("optimal").requires_uncached

    def test_unknown_policy_rejected(self):
        with pytest.raises(ParameterError):
            make_policy("round_robin")


class TestHorizonPolicy:
    @given(fake_streams(max_count=4, max_menu=2))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_optimal_when_queue_fits(self, reqs):
        """Queue <= window: the horizon search IS the exhaustive search —
        one solve, no re-plans, the same plan followed the same way."""
        opt = Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        hor = Scheduler(
            make_pool(16), UNIT, policy=HorizonPolicy(window=8)
        ).schedule(reqs)
        assert flatten(hor) == flatten(opt)

    @given(fake_streams(max_count=8))
    @settings(max_examples=20, deadline=None)
    def test_windowed_schedules_valid(self, reqs):
        """A window smaller than the queue forces re-plans and the
        beyond-window backfill path; the schedule must stay valid."""
        pool = make_pool(16)
        schedule = Scheduler(
            pool, UNIT, policy=HorizonPolicy(window=3)
        ).schedule(reqs)
        assert_valid_schedule(schedule, reqs, pool)

    def test_serves_queues_the_optimum_refuses(self):
        reqs = golden_stream(2, 12, 8.0)
        with pytest.raises(ParameterError):
            Scheduler(make_pool(16), UNIT, policy="optimal").schedule(reqs)
        pool = make_pool(16)
        policy = HorizonPolicy()
        hor = Scheduler(pool, UNIT, policy=policy).schedule(reqs)
        assert_valid_schedule(hor, golden_stream(2, 12, 8.0), pool)
        assert policy.replans >= 2, "a 12-request queue must roll the window"
        # and the windowed search still beats (or ties) the greedy baseline
        lpt = Scheduler(make_pool(16), UNIT, policy="lpt").schedule(
            golden_stream(2, 12, 8.0)
        )
        assert hor.makespan <= lpt.makespan * (1 + 1e-9)

    def test_mixed_pinned_stream_never_loses(self):
        """The bench gate scenario: horizon <= min(lpt, backfill)."""
        lpt = replay_mixed(p=16, policy="lpt", smalls=8)
        bf = replay_mixed(p=16, policy="backfill", smalls=8)
        hor = replay_mixed(p=16, policy="horizon", smalls=8)
        assert hor.policy == "horizon"
        floor = min(lpt.modeled_makespan, bf.modeled_makespan)
        assert hor.modeled_makespan <= floor * (1 + 1e-9)

    @pytest.mark.parametrize("seed,rate", [(0, 0.0), (1, 0.0), (2, 0.0), (0, 3e4)])
    def test_recorded_gap_streams_never_lose(self, seed, rate):
        """The gap-report streams (scheduling-only, so the comparison is
        cheap): horizon <= min(lpt, backfill) on each."""
        from repro.api.serve import schedule_stream

        def stream():
            return poisson_stream(
                count=6, rate=rate, n_range=(64, 128), k_range=(8, 32), seed=seed
            )

        spans = {
            pol: schedule_stream(stream(), p=16, policy=pol, cache=False).makespan
            for pol in ("lpt", "backfill", "horizon")
        }
        assert spans["horizon"] <= min(spans["lpt"], spans["backfill"]) * (1 + 1e-9)

    def test_replan_tolerance_floor_at_t0(self):
        """Regression: a planned start of 0.0 used to collapse the
        plan-following tolerance to exact float equality, so a decision
        point at a sub-resolution positive clock tripped the
        "plan diverged" guard.  The floor comes from the plan's own
        makespan, so a t=0 consultation with negligible drift follows
        the plan instead of raising."""
        reqs = [FakeRequest({8: 1.0}), FakeRequest({8: 2.0})]

        def pricer(req, grid):
            return Cost.zero(), Cost.zero(), ()

        pool = make_pool(16)
        policy = OptimalPolicy()
        policy.reset(reqs)
        pending = list(enumerate(reqs))
        first = policy.choose(PolicyContext(0.0, pool, UNIT, pending, [], pricer))
        assert first is not None and first.index == 0
        grid = pool.allocate(first.candidate.size)
        assert grid == first.candidate.grid
        # the event loop re-consults at "the same" timestamp; give the
        # clock a drift far below the event-timeline resolution (the
        # plan's makespan is 2.0, so the tolerance floor is 2e-9)
        drift = 1e-12
        assert drift <= _plan_tolerance(0.0, 2.0)
        second = policy.choose(
            PolicyContext(
                drift,
                pool,
                UNIT,
                [pending[1]],
                [(first.candidate.finish, 0, first.candidate.size, grid)],
                pricer,
            )
        )
        assert second is not None and second.index == 1

    def test_window_and_budget_validated(self):
        with pytest.raises(ParameterError):
            HorizonPolicy(window=0)
        with pytest.raises(ParameterError):
            HorizonPolicy(node_budget=0)
        assert HorizonPolicy(node_budget=None).node_budget is None

    def test_cluster_drops_cache_for_horizon(self):
        cluster = Cluster(16, policy="horizon")
        assert cluster.opcache is None
        assert make_policy("horizon").requires_uncached


class TestGapReportRendering:
    def test_null_gaps_render_as_em_dash(self):
        from repro.analysis.serve import format_gap_pct, policy_gap_report

        assert format_gap_pct(None) == "—"
        assert format_gap_pct(0.0) == "+0.00"
        assert format_gap_pct(12.5) == "+12.50"
        assert format_gap_pct(-0.25) == "-0.25"
        # a queue past optimal_max: the optimum is skipped, every gap is
        # null, and the table renders — cells (never "None%"/a TypeError)
        stream = poisson_stream(
            count=2, rate=0.0, n_range=(32, 32), k_range=(8, 8), seed=0
        )
        report = policy_gap_report(
            stream, p=16, policies=("lpt", "optimal"), optimal_max=1
        )
        assert "n/a (queue too long)" in report
        assert "—" in report
        assert "None" not in report


class TestClusterPolicyIntegration:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_stream_correct_under_every_policy(self, policy):
        stream = poisson_stream(
            count=4, rate=2e4, n_range=(32, 64), k_range=(8, 16), seed=3
        )
        out = replay(stream, p=16, policy=policy, cache=False)
        assert out.policy == policy
        assert len(out.records) == 4
        for rec in out.records:
            assert rec.residual is not None and rec.residual < 1e-9
            # measured windows are physical: nothing starts before arrival
            assert rec.measured_start >= stream[rec.rid].arrival - 1e-12
            assert rec.modeled_start >= stream[rec.rid].arrival - 1e-12

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_total_charge_equals_per_region_sums(self, policy):
        """Accounting identity: every charge of the run lands in exactly
        one request region, so the machine's global volume total equals
        the per-rank, per-region region_cost sums."""
        cluster = Cluster(16, cache=False, policy=policy)
        rng = np.random.default_rng(7)
        rids = []
        for i in range(4):
            n = int(rng.choice([32, 64]))
            L = random_lower_triangular(n, seed=10 + i)
            B = rng.standard_normal((n, 8))
            rids.append(
                cluster.submit(
                    TrsmRequest(
                        L=cluster.host(L), B=cluster.host(B), verify=False
                    )
                )
            )
        out = cluster.run()
        machine = cluster.machine
        total = machine.counters.total
        S = W = F = 0.0
        for rid in rids:
            region = f"request:{rid}"
            for rank in range(cluster.p):
                c = machine.region_cost(region, [rank])
                S, W, F = S + c.S, W + c.W, F + c.F
        assert S == pytest.approx(total.S, rel=1e-9, abs=1e-9)
        assert W == pytest.approx(total.W, rel=1e-9, abs=1e-9)
        assert F == pytest.approx(total.F, rel=1e-9, abs=1e-9)
        assert out.measured_makespan == machine.time()
