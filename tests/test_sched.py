"""Subgrid allocator invariants and scheduler packing properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cost import Cost, CostParams
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError
from repro.sched import Scheduler, SubgridAllocator

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def make_pool(p: int) -> SubgridAllocator:
    b = p.bit_length() - 1
    return SubgridAllocator(ProcessorGrid.build((2 ** ((b + 1) // 2), 2 ** (b // 2))))


class TestAllocatorBasics:
    def test_full_allocation_is_the_root(self):
        pool = make_pool(16)
        g = pool.allocate(16)
        assert g == pool.root_grid
        pool.release(g)
        assert pool.drained()

    def test_preview_matches_allocate(self):
        pool = make_pool(64)
        pool.allocate(16)
        for size in (16, 8, 2):
            preview = pool.preview(size)
            got = pool.allocate(size)
            assert preview == got

    def test_exhaustion_returns_none(self):
        pool = make_pool(4)
        assert pool.allocate(4) is not None
        assert pool.allocate(1) is None
        assert pool.preview(1) is None

    def test_release_unknown_grid_rejected(self):
        pool = make_pool(4)
        with pytest.raises(ParameterError):
            pool.release(ProcessorGrid.build((2, 2)))

    def test_invalid_sizes_rejected(self):
        pool = make_pool(8)
        with pytest.raises(ParameterError):
            pool.allocate(3)
        with pytest.raises(ParameterError):
            pool.allocate(16)

    def test_machine_grid_pool(self):
        pool = Machine(16).grid_pool()
        assert pool.capacity == 16
        assert pool.root_grid.shape == (4, 4)
        assert sorted(pool.root_grid.ranks()) == list(range(16))


@st.composite
def alloc_scripts(draw):
    """A pool capacity plus a sequence of allocation sizes to attempt."""
    exp = draw(st.integers(min_value=0, max_value=6))
    capacity = 2**exp
    sizes = draw(
        st.lists(
            st.integers(min_value=0, max_value=exp).map(lambda e: 2**e),
            min_size=1,
            max_size=12,
        )
    )
    return capacity, sizes


class TestAllocatorInvariants:
    @given(alloc_scripts())
    @settings(max_examples=200, deadline=None)
    def test_disjoint_bounded_and_coalescing(self, script):
        capacity, sizes = script
        pool = make_pool(capacity)
        granted = []
        for size in sizes:
            g = pool.allocate(size)
            if g is None:
                # refusal is only legal when the free ranks genuinely
                # cannot serve the size (fragmentation or exhaustion)
                assert not pool.can_allocate(size)
                continue
            assert g.size == size
            granted.append(g)

        # 1. allocated subgrids are pairwise disjoint
        seen: set[int] = set()
        for g in granted:
            ranks = set(g.ranks())
            assert not ranks & seen
            seen |= ranks
        # 2. they cover at most the pool's ranks
        assert seen <= set(pool.root_grid.ranks())
        assert pool.in_use() == len(seen) <= capacity
        # 3. every grid is an axis-aligned block of the root
        for g in granted:
            assert set(g.ranks()) <= set(pool.root_grid.ranks())

        # 4. after a full drain the pool coalesces back to the root
        for g in granted:
            pool.release(g)
        assert pool.drained()
        assert pool.in_use() == 0
        regrant = pool.allocate(capacity)
        assert regrant == pool.root_grid

    @given(alloc_scripts())
    @settings(max_examples=100, deadline=None)
    def test_interleaved_release_keeps_invariants(self, script):
        capacity, sizes = script
        pool = make_pool(capacity)
        live = []
        for i, size in enumerate(sizes):
            g = pool.allocate(size)
            if g is not None:
                live.append(g)
            if i % 2 == 1 and live:
                pool.release(live.pop(0))
            held = [set(g.ranks()) for g in live]
            for a in range(len(held)):
                for b in range(a + 1, len(held)):
                    assert not held[a] & held[b]
        for g in live:
            pool.release(g)
        assert pool.drained()


class _FakeRequest:
    """Minimal SchedulableRequest: fixed per-size seconds, no staging."""

    def __init__(self, seconds_by_size: dict[int, float], arrival: float = 0.0):
        self.seconds = seconds_by_size
        self.arrival = arrival

    def candidate_sizes(self, capacity):
        return [s for s in self.seconds if s <= capacity]

    def modeled_cost(self, size, params):
        # unit params: encode seconds in F with gamma = 1
        return Cost(0.0, 0.0, self.seconds[size])

    def staging_cost(self, grid, params):
        return Cost.zero()


class TestScheduler:
    def test_concurrent_requests_pack(self):
        pool = make_pool(16)
        reqs = [_FakeRequest({4: 1.0, 16: 0.9}) for _ in range(4)]
        schedule = Scheduler(pool, UNIT).schedule(reqs)
        # four quarter-grid placements at t=0 beat 4 x 0.9 serial
        assert schedule.makespan == pytest.approx(1.0)
        assert all(a.start == 0.0 for a in schedule.assignments)
        assert schedule.occupancy() == pytest.approx(1.0)
        assert pool.drained()

    def test_queueing_when_pool_is_full(self):
        pool = make_pool(4)
        reqs = [_FakeRequest({4: 1.0}) for _ in range(3)]
        schedule = Scheduler(pool, UNIT).schedule(reqs)
        starts = sorted(a.start for a in schedule.assignments)
        assert starts == pytest.approx([0.0, 1.0, 2.0])
        assert schedule.makespan == pytest.approx(3.0)

    def test_arrivals_delay_start(self):
        pool = make_pool(4)
        reqs = [
            _FakeRequest({4: 1.0}),
            _FakeRequest({4: 1.0}, arrival=5.0),
        ]
        schedule = Scheduler(pool, UNIT).schedule(reqs)
        by_index = {a.index: a for a in schedule.assignments}
        assert by_index[0].start == pytest.approx(0.0)
        assert by_index[1].start == pytest.approx(5.0)

    def test_arrival_during_execution_uses_idle_capacity(self):
        """An arrival while another request runs must start on free ranks
        immediately, not wait for the running tenant to finish."""
        pool = make_pool(16)
        reqs = [
            _FakeRequest({8: 100.0}),
            _FakeRequest({8: 1.0}, arrival=2.0),
        ]
        schedule = Scheduler(pool, UNIT).schedule(reqs)
        by_index = {a.index: a for a in schedule.assignments}
        assert by_index[0].start == pytest.approx(0.0)
        assert by_index[1].start == pytest.approx(2.0)  # not 100.0
        assert by_index[1].finish == pytest.approx(3.0)
        assert not set(by_index[0].grid.ranks()) & set(by_index[1].grid.ranks())

    def test_lpt_prefers_longest_first(self):
        pool = make_pool(4)
        short = _FakeRequest({4: 0.1})
        long = _FakeRequest({4: 2.0})
        schedule = Scheduler(pool, UNIT).schedule([short, long])
        first = min(schedule.assignments, key=lambda a: (a.start, 0))
        assert first.request is long

    def test_unsatisfiable_request_raises(self):
        pool = make_pool(4)
        bad = _FakeRequest({64: 1.0})  # no candidate fits the pool
        with pytest.raises(ParameterError):
            Scheduler(pool, UNIT).schedule([bad])

    def test_makespan_never_exceeds_serial_sum(self):
        rng = np.random.default_rng(0)
        pool = make_pool(16)
        reqs = [
            _FakeRequest({1: t * 4.0, 4: t * 1.5, 16: t})
            for t in rng.uniform(0.5, 2.0, size=6)
        ]
        schedule = Scheduler(pool, UNIT).schedule(reqs)
        serial = sum(r.seconds[16] for r in reqs)
        assert schedule.makespan <= serial + 1e-12
