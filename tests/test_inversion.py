"""Triangular inversion: sequential kernel + parallel RecTriInv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import CyclicLayout, DistMatrix
from repro.inversion import (
    NU,
    invert_lower_triangular,
    invert_unit_lower_triangular,
    rec_tri_inv,
    rec_tri_inv_cost,
    rec_tri_inv_recurrence,
)
from repro.inversion.cost_model import optimal_inversion_grid, rec_tri_inv_base_cost
from repro.inversion.rec_tri_inv import rec_tri_inv_global
from repro.machine import CostParams, Machine
from repro.machine.validate import GridError, ShapeError
from repro.util.checking import backward_error
from repro.util.randmat import (
    ill_conditioned_lower_triangular,
    random_lower_triangular,
    random_unit_lower_triangular,
)

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestSequentialInversion:
    @pytest.mark.parametrize("n", [1, 2, 7, 32, 33, 100])
    def test_matches_numpy_inverse(self, n):
        L = random_lower_triangular(n, seed=n)
        X = invert_lower_triangular(L)
        assert np.allclose(X, np.linalg.inv(L), atol=1e-10)

    def test_result_is_lower_triangular(self):
        L = random_lower_triangular(20, seed=0)
        X = invert_lower_triangular(L)
        assert np.allclose(np.triu(X, 1), 0)

    def test_base_size_does_not_change_result(self):
        L = random_lower_triangular(40, seed=1)
        X1 = invert_lower_triangular(L, base_size=1)
        X2 = invert_lower_triangular(L, base_size=64)
        assert np.allclose(X1, X2, atol=1e-12)

    def test_rejects_non_triangular(self):
        with pytest.raises(ShapeError):
            invert_lower_triangular(np.ones((4, 4)))

    def test_rejects_singular(self):
        L = np.tril(np.ones((4, 4)))
        L[2, 2] = 0.0
        with pytest.raises(ShapeError):
            invert_lower_triangular(L)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            invert_lower_triangular(np.zeros((3, 4)))

    def test_numerically_stable_on_ill_conditioned(self):
        # Triangular inversion is stable (Du Croz & Higham): the residual
        # ||L Linv - I|| / (||L|| ||Linv||) stays O(eps) even at cond 1e8.
        L = ill_conditioned_lower_triangular(60, condition_target=1e8, seed=0)
        X = invert_lower_triangular(L)
        assert backward_error(L, X) < 1e-12

    def test_unit_lower_triangular(self):
        L = random_unit_lower_triangular(25, seed=2)
        X = invert_unit_lower_triangular(L)
        assert np.allclose(L @ X, np.eye(25), atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 30))
    def test_inverse_property(self, n):
        L = random_lower_triangular(n, seed=n * 7 + 1)
        X = invert_lower_triangular(L)
        assert backward_error(L, X) < 1e-12


class TestRecTriInv:
    @pytest.mark.parametrize(
        "sp,n",
        [(1, 8), (2, 16), (2, 13), (4, 32), (4, 29), (4, 64)],
    )
    def test_correct_inverse(self, sp, n):
        machine = Machine(sp * sp, params=UNIT)
        grid = machine.grid(sp, sp)
        L = random_lower_triangular(n, seed=n)
        inv = rec_tri_inv_global(machine, grid, L, base_n=4)
        assert backward_error(L, inv.to_global()) < 1e-12

    def test_result_distribution_matches_input(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        L = random_lower_triangular(16, seed=0)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 2), L)
        inv = rec_tri_inv(D, base_n=4)
        assert inv.grid == grid and inv.shape == (16, 16)

    def test_rejects_non_square_grid(self):
        machine = Machine(8, params=UNIT)
        grid = machine.grid(2, 4)
        L = random_lower_triangular(16, seed=0)
        D = DistMatrix.from_global(machine, grid, CyclicLayout(2, 4), L)
        with pytest.raises(GridError):
            rec_tri_inv(D)

    def test_rejects_upper_triangular_input(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        with pytest.raises(ShapeError):
            rec_tri_inv_global(machine, grid, np.triu(np.ones((8, 8))) + np.eye(8))

    def test_single_rank_base_case_no_comm(self):
        machine = Machine(1, params=UNIT)
        grid = machine.grid(1, 1)
        L = random_lower_triangular(16, seed=3)
        inv = rec_tri_inv_global(machine, grid, L)
        assert backward_error(L, inv.to_global()) < 1e-13
        cp = machine.critical_path()
        assert cp.S == 0 and cp.W == 0 and cp.F > 0

    def test_children_run_concurrently(self):
        """The two half-inversions must overlap in simulated time.

        A serialized schedule would pay twice the child latency; with
        concurrency the critical path carries only one child's cost plus
        the shared full-grid multiplications.
        """
        machine = Machine(16, params=CostParams(alpha=1.0, beta=0.0, gamma=0.0))
        grid = machine.grid(4, 4)
        L = random_lower_triangular(32, seed=4)
        rec_tri_inv_global(machine, grid, L, base_n=4)
        total_S = machine.total_volume().S / 16
        # critical path strictly below the per-rank average x ranks bound
        assert machine.critical_path().S < 2.2 * total_S

    def test_synchronization_grows_polylog(self):
        """S should grow ~ log^2 p, far below any p^(2/3) polynomial."""
        Ss = []
        ps = [4, 16, 64]
        for p in ps:
            sp = int(p**0.5)
            machine = Machine(p, params=UNIT)
            grid = machine.grid(sp, sp)
            L = random_lower_triangular(64, seed=5)
            rec_tri_inv_global(machine, grid, L, base_n=4)
            Ss.append(machine.critical_path().S)
        # polylog growth: quadrupling p should much less than quadruple S
        assert Ss[1] / Ss[0] < 4.0
        assert Ss[2] / Ss[1] < 4.0
        import math

        for p, s in zip(ps, Ss):
            assert s <= 35.0 * (math.log2(p) ** 2)


class TestInversionCostModel:
    def test_nu_constant(self):
        assert NU == pytest.approx(2 ** (1 / 3) / (2 ** (1 / 3) - 1))

    def test_closed_form_components(self):
        c = rec_tri_inv_cost(64, 2, 4)
        p = 16
        assert c.W == pytest.approx(NU * (64**2 / (8 * 4) + 64**2 / (2 * 2 * 4)))
        assert c.F == pytest.approx(NU * 64**3 / (8 * p))

    def test_single_processor_no_comm(self):
        c = rec_tri_inv_cost(64, 1, 1)
        assert c.S == 0 and c.W == 0

    def test_base_cost(self):
        c = rec_tri_inv_base_cost(8, 1, 4)
        assert c.W == 2 * 64 and c.F == 512

    def test_recurrence_flops_close_to_closed_form(self):
        n, p = 256, 16
        rec = rec_tri_inv_recurrence(n, p)
        closed = rec_tri_inv_cost(n, 2, 4)
        assert rec.F == pytest.approx(closed.F, rel=1.5)

    def test_recurrence_single_proc_is_sequential(self):
        c = rec_tri_inv_recurrence(32, 1)
        assert c.S == 0 and c.W == 0
        assert c.F == pytest.approx(32**3 / 6)

    def test_optimal_grid_ratio(self):
        r1, r2 = optimal_inversion_grid(p=256, n0=64, n=256)
        assert r2 == pytest.approx(4 * r1)
        assert r1**2 * r2 == pytest.approx(256 * 64 / 256)
