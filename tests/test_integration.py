"""Cross-module integration tests: full pipelines using the public API."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro import (
    CostParams,
    HARDWARE_PRESETS,
    Machine,
    invert_lower_triangular,
    random_dense,
    random_lower_triangular,
    random_spd,
    relative_residual,
    trsm,
)
from repro.inversion.rec_tri_inv import rec_tri_inv_global
from repro.trsm import it_inv_trsm_global, rec_trsm_global

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestCholeskyPipeline:
    """The paper's motivating use: solve SPD systems after factorization."""

    def test_spd_solve_via_two_trsm(self):
        n, k, p = 64, 8, 16
        A = random_spd(n, seed=0)
        B = random_dense(n, k, seed=1)
        Lc = np.linalg.cholesky(A)  # A = Lc Lc^T
        # forward solve: Lc Y = B
        y = trsm(Lc, B, p=p)
        assert y.residual < 1e-12
        # backward solve: Lc^T X = Y  <=>  (reverse-permuted lower solve)
        P = np.eye(n)[::-1]
        Lrev = P @ Lc.T @ P  # lower triangular again
        z = trsm(Lrev, P @ y.X, p=p)
        X = P @ z.X
        assert np.allclose(A @ X, B, atol=1e-8 * np.linalg.norm(A))

    def test_matches_direct_solve(self):
        n, k, p = 32, 4, 4
        A = random_spd(n, seed=2)
        B = random_dense(n, k, seed=3)
        Lc = np.linalg.cholesky(A)
        y = trsm(Lc, B, p=p)
        Y_ref = sla.solve_triangular(Lc, B, lower=True)
        assert np.allclose(y.X, Y_ref, atol=1e-10)


class TestInversionBasedSolveConsistency:
    def test_full_inverse_vs_trsm(self):
        """x = inv(L) b must agree with the TRSM solution to O(eps)."""
        n = 48
        L = random_lower_triangular(n, seed=4)
        B = random_dense(n, 6, seed=5)
        Linv = invert_lower_triangular(L)
        X_inv = Linv @ B
        res = trsm(L, B, p=4)
        assert np.allclose(res.X, X_inv, atol=1e-10)

    def test_parallel_inverse_matches_sequential(self):
        n = 32
        L = random_lower_triangular(n, seed=6)
        machine = Machine(16, params=UNIT)
        grid = machine.grid(4, 4)
        par = rec_tri_inv_global(machine, grid, L, base_n=4).to_global()
        seq = invert_lower_triangular(L)
        assert np.allclose(par, seq, atol=1e-11)


class TestAlgorithmCostContrast:
    def test_iterative_beats_recursive_latency_3d(self):
        """The paper's core claim, measured end-to-end on the simulator."""
        n, k, p = 128, 32, 16
        L = random_lower_triangular(n, seed=7)
        B = random_dense(n, k, seed=8)
        m_it = Machine(p, params=UNIT)
        it_inv_trsm_global(m_it, L, B, p1=2, p2=4, n0=32)
        m_rec = Machine(p, params=UNIT)
        rec_trsm_global(m_rec, L, B, grid=m_rec.grid(4, 4), n0=8)
        assert m_it.critical_path().S < m_rec.critical_path().S

    def test_presets_order_execution_time_consistently(self):
        """A latency-bound machine amplifies the iterative advantage."""
        n, k, p = 64, 16, 16
        L = random_lower_triangular(n, seed=9)
        B = random_dense(n, k, seed=10)
        ratios = {}
        for preset in ("latency_bound", "bandwidth_bound"):
            params = HARDWARE_PRESETS[preset]
            r_it = trsm(L, B, p=p, algorithm="iterative", params=params, n0=16)
            r_rec = trsm(L, B, p=p, algorithm="recursive", params=params)
            ratios[preset] = r_rec.time / r_it.time
        assert ratios["latency_bound"] > ratios["bandwidth_bound"]


class TestRepeatedSolves:
    def test_machine_accumulates_across_solves(self):
        """Selective inversion amortizes over repeated right-hand sides
        (the Raghavan preconditioning use case from Section II-C3)."""
        n, p = 32, 4
        L = random_lower_triangular(n, seed=11)
        t_first = trsm(L, random_dense(n, 4, seed=12), p=p).time
        t_second = trsm(L, random_dense(n, 4, seed=13), p=p).time
        # same problem shape -> same simulated time (fresh machines)
        assert t_first == pytest.approx(t_second, rel=0.05)

    def test_solution_reusable(self):
        n = 24
        L = random_lower_triangular(n, seed=14)
        B = random_dense(n, 3, seed=15)
        res = trsm(L, B, p=4)
        # X is a plain ndarray usable downstream
        C = res.X.T @ res.X
        assert C.shape == (3, 3)


class TestScalingSanity:
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_strong_scaling_reduces_flops_per_rank(self, p):
        n, k = 64, 16
        L = random_lower_triangular(n, seed=16)
        B = random_dense(n, k, seed=17)
        res = trsm(L, B, p=p, n0=16)
        # critical-path flops shrink as p grows (checked via monotone stash)
        if not hasattr(TestScalingSanity, "_flops"):
            TestScalingSanity._flops = {}
        TestScalingSanity._flops[p] = res.measured.F
        if 1 in TestScalingSanity._flops and p > 1:
            assert TestScalingSanity._flops[p] < TestScalingSanity._flops[1]
