"""Distributed blocked Cholesky (the TRSM consumer)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factor import cholesky_cost, cholesky_factor
from repro.factor.cost_model import latency_advantage
from repro.machine import CostParams, Machine
from repro.machine.validate import GridError, ParameterError, ShapeError
from repro.util.randmat import random_spd

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


def factor(n, sp, block=8, panel="inversion", seed=0):
    machine = Machine(sp * sp, params=UNIT)
    grid = machine.grid(sp, sp)
    A = random_spd(n, seed=seed)
    L = cholesky_factor(machine, grid, A, block=block, panel=panel)
    return machine, A, L


class TestCorrectness:
    @pytest.mark.parametrize("n,sp,block", [(16, 1, 4), (32, 2, 8), (48, 2, 16), (33, 2, 8)])
    def test_factor_reconstructs(self, n, sp, block):
        machine, A, L = factor(n, sp, block)
        G = L.to_global()
        assert np.allclose(G @ G.T, A, atol=1e-8 * np.linalg.norm(A))

    def test_matches_numpy_cholesky(self):
        machine, A, L = factor(24, 2, 8)
        assert np.allclose(L.to_global(), np.linalg.cholesky(A), atol=1e-9)

    @pytest.mark.parametrize("panel", ["inversion", "substitution"])
    def test_both_panel_strategies_correct(self, panel):
        machine, A, L = factor(32, 2, 8, panel=panel)
        G = L.to_global()
        assert np.allclose(G @ G.T, A, atol=1e-8 * np.linalg.norm(A))

    def test_result_lower_triangular(self):
        machine, A, L = factor(20, 2, 4)
        assert np.allclose(np.triu(L.to_global(), 1), 0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 40), block=st.integers(1, 16))
    def test_block_size_invariant(self, n, block):
        machine, A, L = factor(n, 2, block, seed=n)
        G = L.to_global()
        assert np.allclose(G @ G.T, A, atol=1e-7 * np.linalg.norm(A))


class TestValidation:
    def test_non_spd_rejected(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = -np.eye(8)
        with pytest.raises(ShapeError, match="positive definite"):
            cholesky_factor(machine, grid, A, block=4)

    def test_asymmetric_rejected(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        A = random_spd(8, seed=0)
        A[0, 5] += 1.0
        with pytest.raises(ShapeError, match="symmetric"):
            cholesky_factor(machine, grid, A)

    def test_nonsquare_grid_rejected(self):
        machine = Machine(8, params=UNIT)
        grid = machine.grid(2, 4)
        with pytest.raises(GridError):
            cholesky_factor(machine, grid, random_spd(8, seed=0))

    def test_bad_panel_strategy(self):
        machine = Machine(4, params=UNIT)
        grid = machine.grid(2, 2)
        with pytest.raises(ParameterError):
            cholesky_factor(machine, grid, random_spd(8, seed=0), panel="magic")


class TestCostBehaviour:
    def test_phases_recorded(self):
        machine, A, L = factor(32, 2, 8)
        names = set(machine.phase_names())
        assert {"panel_factor", "panel_solve", "trailing_update"} <= names

    def test_inversion_panels_cut_latency(self):
        """The paper's claim inside the consumer: inversion-based panel
        solves need ~b-fold fewer message rounds."""
        m_inv, *_ = factor(64, 2, 8, panel="inversion")
        m_sub, *_ = factor(64, 2, 8, panel="substitution")
        s_inv = m_inv.phase_cost("panel_solve").S
        s_sub = m_sub.phase_cost("panel_solve").S
        assert s_sub > 3 * s_inv

    def test_model_tracks_measurement(self):
        machine, A, L = factor(64, 2, 16)
        model = cholesky_cost(64, 16, 4, panel="inversion")
        cp = machine.critical_path()
        for comp in ("S", "W", "F"):
            a, b = getattr(cp, comp), getattr(model, comp)
            assert a <= 4 * b + 2 and b <= 4 * a + 2, (comp, a, b)

    def test_latency_advantage_grows_with_block(self):
        assert latency_advantage(256, 32, 16) > latency_advantage(256, 8, 16) / 4
        assert latency_advantage(256, 32, 16) > 3

    def test_single_processor_no_comm(self):
        machine, A, L = factor(16, 1, 4)
        assert machine.critical_path().W == 0 or machine.critical_path().S == 0
