"""Doctests embedded in the package documentation stay true."""

import doctest

import repro


def test_package_docstring_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in repro"
    assert results.attempted >= 3  # the quickstart example is exercised
