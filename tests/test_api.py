"""Cluster front-end: wrapper parity, scheduling demo, staging charges."""

import numpy as np
import pytest
import scipy.linalg as sla

from repro.api import (
    Cluster,
    InvRequest,
    MMRequest,
    PreparedSolveRequest,
    TrsmRequest,
)
from repro.api.serve import poisson_stream, replay
from repro.machine.cost import CostParams
from repro.machine.machine import Machine
from repro.machine.validate import ParameterError
from repro.trsm.cost_model import iterative_cost
from repro.trsm.iterative import it_inv_trsm_global
from repro.trsm.prepared import PreparedTrsm
from repro.tuning.parameters import tuned_parameters
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestWrapperParity:
    """trsm() is a thin wrapper over a single-request Cluster — and must
    behave bit-for-bit like the pre-redesign path (fresh machine, tuned
    parameters, it_inv_trsm on the full grid)."""

    @pytest.mark.parametrize("n,k,p", [(64, 16, 16), (96, 8, 4), (128, 32, 64)])
    def test_trsm_matches_pre_redesign_path(self, n, k, p):
        from repro import trsm

        L = random_lower_triangular(n, seed=0)
        B = random_dense(n, k, seed=1)
        params = CostParams()

        choice = tuned_parameters(n, k, p)
        machine = Machine(p, params=params)
        X_old = it_inv_trsm_global(
            machine, L, B, p1=choice.p1, p2=choice.p2, n0=choice.n0
        ).to_global()
        cost_old = machine.critical_path()
        time_old = machine.time()

        res = trsm(L, B, p=p, params=params)
        assert res.X.tobytes() == X_old.tobytes()  # bit-identical
        assert res.measured == cost_old
        assert res.time == time_old
        assert res.modeled == iterative_cost(n, k, choice.n0, choice.p1, choice.p2)

    def test_prepared_trsm_solve_parity_with_inline_path(self):
        """PreparedTrsm.solve must still exclude the inversion phase."""
        L = random_lower_triangular(48, seed=4)
        solver = PreparedTrsm(L, p=4, k_hint=8, params=UNIT, n0=12)
        B = random_dense(48, 8, seed=5)
        X = solver.solve(B)
        assert np.allclose(X, sla.solve_triangular(L, B, lower=True), atol=1e-9)
        assert solver.preparation_cost.F > 0
        assert solver.last_solve_cost is not None
        assert solver.last_solve_cost.F < solver.preparation_cost.F + 1e9

    def test_single_request_cluster_equals_trsm(self):
        from repro import trsm

        n, k, p = 64, 8, 16
        L = random_lower_triangular(n, seed=2)
        B = random_dense(n, k, seed=3)
        res = trsm(L, B, p=p)
        cluster = Cluster(p)
        rid = cluster.submit(TrsmRequest(L=L, B=B, sizes=(p,)))
        rec = cluster.run().record(rid)
        assert rec.value.tobytes() == res.X.tobytes()
        assert cluster.machine.critical_path() == res.measured


class TestSchedulingDemo:
    """The acceptance demo: >= 8 mixed (n, k) TRSM requests on p = 64
    finish with a modeled makespan strictly below serial full-grid
    execution, with every migration charged via an exact routing plan."""

    def test_mixed_queue_beats_serial_full_grid(self):
        shapes = [
            (64, 16), (128, 32), (256, 64), (128, 8),
            (64, 64), (256, 16), (128, 16), (64, 32),
        ]
        cluster = Cluster(64)
        rids = []
        for i, (n, k) in enumerate(shapes):
            L = cluster.host(random_lower_triangular(n, seed=10 + i))
            B = cluster.host(random_dense(n, k, seed=50 + i))
            rids.append(cluster.submit(TrsmRequest(L=L, B=B)))
        outcome = cluster.run()

        assert len(outcome.records) == 8
        assert outcome.modeled_makespan < outcome.serial_seconds  # strict
        for rid in rids:
            rec = outcome.record(rid)
            assert rec.residual is not None and rec.residual < 1e-9
        # concurrency actually happened: some requests overlap in time
        starts = sorted(r.modeled_start for r in outcome.records)
        finishes = sorted(r.modeled_finish for r in outcome.records)
        assert starts[1] < finishes[-1]
        assert 0.0 < outcome.occupancy <= 1.0

    def test_all_migrations_have_exact_plans(self):
        """Staging charges come from RoutingPlan (S = partner counts), never
        from an all-to-all bound over the union."""
        from repro.dist.redistribute import staging_plan

        cluster = Cluster(16)
        n, k = 64, 8
        L = cluster.host(random_lower_triangular(n, seed=0))
        B = cluster.host(random_dense(n, k, seed=1))
        req = TrsmRequest(L=L, B=B)
        grid = cluster.pool.preview(4)
        staged = req.staging_cost(grid, cluster.params)
        targets = list(req._staging_targets(grid, cluster.params))
        assert targets, "resident operands must produce staging targets"
        exact_S = exact_W = bound_W = 0.0
        for D, tgrid, layout in targets:
            plan = staging_plan(D, tgrid, layout)
            exact_S += plan.cost().S
            exact_W += plan.cost().W
            bound_W += plan.alltoall_bound().W
        # the priced migration IS the sum of the exact per-pair plans...
        assert staged.S == exact_S and staged.W == exact_W
        # ...and the exact word count never exceeds the old uniform bound
        assert staged.W <= bound_W

    def test_measured_overlap_on_disjoint_subgrids(self):
        """Charges only advance the clocks they touch, so two requests
        pinned to disjoint halves overlap in measured time."""
        cluster = Cluster(16, params=UNIT)
        for i in range(2):
            cluster.submit(
                TrsmRequest(
                    L=random_lower_triangular(64, seed=i),
                    B=random_dense(64, 16, seed=10 + i),
                    sizes=(8,),
                )
            )
        outcome = cluster.run()
        a, b = outcome.records
        assert not set(a.grid.ranks()) & set(b.grid.ranks())
        # both started at measured time zero: true concurrency
        assert a.measured_start == 0.0 and b.measured_start == 0.0
        assert outcome.measured_makespan == pytest.approx(
            max(a.measured_finish, b.measured_finish)
        )


class TestOtherRequests:
    def test_mm_request(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((32, 24))
        X = rng.standard_normal((24, 12))
        cluster = Cluster(16)
        rid = cluster.submit(MMRequest(A=A, X=X, verify=True))
        rec = cluster.run().record(rid)
        assert np.allclose(rec.value, A @ X, atol=1e-10)
        assert rec.residual < 1e-12

    def test_inv_request_full(self):
        L = random_lower_triangular(32, seed=1)
        cluster = Cluster(16)
        rid = cluster.submit(InvRequest(L=L, verify=True))
        rec = cluster.run().record(rid)
        assert np.allclose(rec.value @ L, np.eye(32), atol=1e-8)

    def test_prepared_solve_request_on_shared_cluster(self):
        L = random_lower_triangular(32, seed=2)
        solver = PreparedTrsm(L, p=4, k_hint=8, params=UNIT, n0=8)
        cluster = Cluster(16, params=UNIT)
        rids = [
            cluster.submit(
                PreparedSolveRequest(prepared=solver, B=random_dense(32, 8, seed=s))
            )
            for s in (3, 4)
        ]
        outcome = cluster.run()
        for rid, s in zip(rids, (3, 4)):
            B = random_dense(32, 8, seed=s)
            assert np.allclose(
                outcome.record(rid).value,
                sla.solve_triangular(L, B, lower=True),
                atol=1e-9,
            )

    def test_submit_rejects_untyped_requests(self):
        cluster = Cluster(4)
        with pytest.raises(ParameterError):
            cluster.submit("solve please")

    def test_host_rejects_vectors(self):
        cluster = Cluster(4)
        with pytest.raises(ParameterError):
            cluster.host(np.ones(8))


class TestServeStream:
    def test_poisson_stream_is_seeded_and_sorted(self):
        s1 = poisson_stream(6, rate=1e4, seed=7)
        s2 = poisson_stream(6, rate=1e4, seed=7)
        assert s1 == s2
        arrivals = [r.arrival for r in s1]
        assert arrivals == sorted(arrivals)
        assert all(r.n >= 64 and r.k >= 8 for r in s1)

    def test_replay_completes_and_beats_serial(self):
        stream = poisson_stream(8, rate=0.0, seed=0)
        outcome = replay(stream, p=64)
        assert len(outcome.records) == 8
        assert outcome.modeled_makespan < outcome.serial_seconds

    def test_measured_window_respects_arrival(self):
        """A request's measured start can never precede its arrival."""
        cluster = Cluster(4, params=UNIT)
        rid = cluster.submit(
            TrsmRequest(
                L=random_lower_triangular(16, seed=0),
                B=random_dense(16, 4, seed=1),
                arrival=5.0,
            )
        )
        outcome = cluster.run()
        rec = outcome.record(rid)
        assert rec.modeled_start >= 5.0
        assert rec.measured_start >= 5.0
        assert rec.measured_finish > rec.measured_start
        assert outcome.measured_makespan >= 5.0


class TestTuningGridTarget:
    def test_tuned_parameters_accepts_grid(self):
        machine = Machine(16)
        grid = machine.grid(4, 4)
        assert tuned_parameters(128, 16, grid=grid) == tuned_parameters(128, 16, 16)
        with pytest.raises(ParameterError):
            tuned_parameters(128, 16, 8, grid=grid)

    def test_optimizer_accepts_grid(self):
        from repro.tuning.optimizer import optimize_parameters

        machine = Machine(16)
        grid = machine.grid(4, 4)
        assert optimize_parameters(64, 8, grid=grid) == optimize_parameters(64, 8, 16)


class TestRegionAccounting:
    def test_region_accumulates_across_inner_phases(self):
        machine = Machine(4, params=UNIT)
        from repro.machine.cost import Cost

        with machine.region("req"):
            with machine.phase("solve"):
                machine.charge([0, 1], Cost(1.0, 10.0, 0.0))
            with machine.phase("update"):
                machine.charge([2, 3], Cost(2.0, 0.0, 5.0))
        assert machine.region_cost("req").S == 2.0
        assert machine.region_cost("req", ranks=[0, 1]).W == 10.0
        assert machine.region_cost("req", ranks=[2, 3]).F == 5.0
        # phases still attribute innermost, now rank-scopable
        assert machine.phase_cost("solve", ranks=[2, 3]).W == 0.0
        assert machine.phase_cost("solve").W == 10.0
