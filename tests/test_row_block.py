"""The paper's physical row block size ``b`` for B's layout (Section VI-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CostParams, Machine
from repro.trsm import it_inv_trsm_global
from repro.trsm.iterative import _RowCyclicColBlocked
from repro.util.checking import relative_residual
from repro.util.randmat import random_dense, random_lower_triangular

UNIT = CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit")


class TestLayout:
    def test_b1_is_cyclic(self):
        lay = _RowCyclicColBlocked(2, 2, b=1)
        assert np.array_equal(lay.row_indices(1, 8), [1, 3, 5, 7])

    def test_b2_blocks(self):
        lay = _RowCyclicColBlocked(2, 2, b=2)
        assert np.array_equal(lay.row_indices(0, 8), [0, 1, 4, 5])
        assert np.array_equal(lay.row_indices(1, 8), [2, 3, 6, 7])

    def test_rows_partition(self):
        lay = _RowCyclicColBlocked(3, 1, b=4)
        rows = np.concatenate([lay.row_indices(x, 25) for x in range(3)])
        assert sorted(rows.tolist()) == list(range(25))

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            _RowCyclicColBlocked(2, 2, b=0)

    def test_equality_includes_block(self):
        assert _RowCyclicColBlocked(2, 2, 1) != _RowCyclicColBlocked(2, 2, 2)


class TestSolver:
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_solution_invariant_under_block_size(self, b):
        machine = Machine(8, params=UNIT)
        L = random_lower_triangular(32, seed=0)
        B = random_dense(32, 12, seed=1)
        X = it_inv_trsm_global(
            machine, L, B, p1=2, p2=2, n0=8, row_block=b, base_n=4
        )
        assert relative_residual(L, X.to_global(), B) < 1e-12

    def test_output_layout_carries_block_size(self):
        machine = Machine(4, params=UNIT)
        L = random_lower_triangular(16, seed=2)
        B = random_dense(16, 8, seed=3)
        X = it_inv_trsm_global(machine, L, B, p1=2, p2=1, n0=8, row_block=2)
        assert getattr(X.layout, "b") == 2
        assert np.allclose(X.to_global() @ np.eye(8), X.to_global())

    def test_communication_volume_insensitive_to_block_size(self):
        """The block size changes data placement, not the cost structure."""
        times = []
        for b in (1, 4):
            machine = Machine(8, params=UNIT)
            L = random_lower_triangular(32, seed=4)
            B = random_dense(32, 8, seed=5)
            it_inv_trsm_global(machine, L, B, p1=2, p2=2, n0=8, row_block=b, base_n=4)
            times.append(machine.critical_path().W)
        assert times[0] == pytest.approx(times[1], rel=0.25)

    @settings(max_examples=10, deadline=None)
    @given(
        b=st.integers(1, 6),
        nb=st.integers(1, 4),
        k=st.integers(1, 10),
    )
    def test_property_any_block_size(self, b, nb, k):
        n = 8 * nb
        machine = Machine(4, params=UNIT)
        L = random_lower_triangular(n, seed=n + b)
        B = random_dense(n, k, seed=k)
        X = it_inv_trsm_global(
            machine, L, B, p1=2, p2=1, n0=8, row_block=b, base_n=4
        )
        assert relative_residual(L, X.to_global(), B) < 1e-11
