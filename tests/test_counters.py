"""Direct tests of the per-rank counter machinery."""

import numpy as np
import pytest

from repro.machine.cost import Cost
from repro.machine.counters import CounterSet, TraceEvent


class TestCharge:
    def test_charge_accumulates(self):
        c = CounterSet(4)
        c.charge(np.array([0, 2]), Cost(1, 2, 3), seconds=0.5)
        assert c.S[0] == 1 and c.W[2] == 2 and c.F[0] == 3
        assert c.S[1] == 0
        assert c.clock[0] == 0.5 and c.clock[1] == 0.0

    def test_total_counts_group_size(self):
        c = CounterSet(4)
        c.charge(np.array([0, 1, 2]), Cost(1, 1, 1), seconds=0.0)
        assert c.total == Cost(3, 3, 3)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CounterSet(0)


class TestSync:
    def test_sync_aligns_clocks_to_max(self):
        c = CounterSet(3)
        c.clock[:] = [5.0, 1.0, 3.0]
        c.sync(np.array([0, 1, 2]))
        assert list(c.clock) == [5.0, 5.0, 5.0]

    def test_sync_propagates_slowest_counters(self):
        c = CounterSet(2)
        c.charge(np.array([0]), Cost(10, 20, 30), seconds=9.0)
        c.charge(np.array([1]), Cost(1, 1, 1), seconds=1.0)
        c.sync(np.array([0, 1]))
        # rank 1 inherits rank 0's path counters (rank 0 was slowest)
        assert c.S[1] == 10 and c.W[1] == 20 and c.F[1] == 30

    def test_sync_singleton_noop(self):
        c = CounterSet(2)
        c.charge(np.array([0]), Cost(1, 1, 1), seconds=1.0)
        c.sync(np.array([0]))
        assert c.clock[0] == 1.0

    def test_sync_partial_group(self):
        c = CounterSet(3)
        c.clock[:] = [1.0, 9.0, 2.0]
        c.sync(np.array([0, 2]))
        assert list(c.clock) == [2.0, 9.0, 2.0]


class TestReporting:
    def test_critical_path_returns_max_rank(self):
        c = CounterSet(3)
        c.charge(np.array([1]), Cost(7, 8, 9), seconds=4.0)
        t, cost = c.critical_path()
        assert t == 4.0
        assert cost == Cost(7, 8, 9)

    def test_max_counters_componentwise(self):
        c = CounterSet(2)
        c.charge(np.array([0]), Cost(10, 0, 0), seconds=0.0)
        c.charge(np.array([1]), Cost(0, 20, 0), seconds=0.0)
        assert c.max_counters() == Cost(10, 20, 0)

    def test_trace_event_fields(self):
        ev = TraceEvent("op", 4, Cost(1, 2, 3), phase="solve")
        assert ev.label == "op" and ev.group_size == 4 and ev.phase == "solve"
