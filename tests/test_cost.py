"""Tests for the alpha-beta-gamma cost model primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.cost import Cost, CostParams, HARDWARE_PRESETS

finite = st.floats(min_value=0, max_value=1e12, allow_nan=False)


class TestCostArithmetic:
    def test_add(self):
        c = Cost(1, 2, 3) + Cost(10, 20, 30)
        assert (c.S, c.W, c.F) == (11, 22, 33)

    def test_sub(self):
        c = Cost(10, 20, 30) - Cost(1, 2, 3)
        assert (c.S, c.W, c.F) == (9, 18, 27)

    def test_scalar_multiplication_both_sides(self):
        assert 2 * Cost(1, 2, 3) == Cost(2, 4, 6)
        assert Cost(1, 2, 3) * 2 == Cost(2, 4, 6)

    def test_zero(self):
        assert Cost.zero() == Cost(0, 0, 0)

    def test_max_componentwise(self):
        assert Cost.max(Cost(1, 5, 2), Cost(3, 1, 2)) == Cost(3, 5, 2)

    def test_dominates(self):
        assert Cost(2, 2, 2).dominates(Cost(1, 2, 2))
        assert not Cost(2, 2, 2).dominates(Cost(3, 0, 0))

    def test_add_non_cost_raises(self):
        with pytest.raises(TypeError):
            Cost(1, 1, 1) + 3  # type: ignore[operator]

    @given(finite, finite, finite, finite, finite, finite)
    def test_addition_commutes(self, a, b, c, d, e, f):
        assert Cost(a, b, c) + Cost(d, e, f) == Cost(d, e, f) + Cost(a, b, c)


class TestCostParams:
    def test_time_formula(self):
        params = CostParams(alpha=2.0, beta=3.0, gamma=5.0)
        assert Cost(1, 1, 1).time(params) == 10.0
        assert params.time(Cost(2, 0, 0)) == 4.0

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            CostParams(alpha=-1.0)

    def test_latency_bandwidth_ratio(self):
        p = CostParams(alpha=1e-6, beta=1e-9)
        assert p.latency_bandwidth_ratio() == pytest.approx(1000.0)

    def test_ratio_with_zero_beta(self):
        assert CostParams(alpha=1.0, beta=0.0).latency_bandwidth_ratio() == float(
            "inf"
        )

    def test_presets_exist_and_are_consistent(self):
        assert set(HARDWARE_PRESETS) >= {
            "default",
            "latency_bound",
            "bandwidth_bound",
            "unit",
            "latency_only",
        }
        for name, preset in HARDWARE_PRESETS.items():
            assert preset.name == name

    def test_latency_bound_preset_has_larger_ratio(self):
        assert (
            HARDWARE_PRESETS["latency_bound"].latency_bandwidth_ratio()
            > HARDWARE_PRESETS["bandwidth_bound"].latency_bandwidth_ratio()
        )

    def test_unit_preset_time_counts_everything(self):
        assert HARDWARE_PRESETS["unit"].time(Cost(1, 2, 3)) == 6.0

    def test_latency_only_preset_counts_messages(self):
        assert HARDWARE_PRESETS["latency_only"].time(Cost(7, 100, 100)) == 7.0

    @given(finite, finite, finite)
    def test_time_nonnegative(self, s, w, f):
        assert Cost(s, w, f).time(CostParams()) >= 0
