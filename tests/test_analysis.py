"""Analysis package: tables, regime map, asymptotic fits."""

import pytest

from repro.analysis import (
    conclusion_table,
    fit_power_law,
    format_table,
    improvement_factors,
    iterative_parts_table,
    latency_ratio_prediction,
    mm_line_table,
    regime_map,
    render_regime_map,
)
from repro.tuning.regimes import TrsmRegime


class TestConclusionTable:
    def test_default_covers_all_regimes(self):
        entries = conclusion_table()
        regimes = {e.regime for e in entries}
        assert regimes == {
            TrsmRegime.ONE_LARGE,
            TrsmRegime.TWO_LARGE,
            TrsmRegime.THREE_LARGE,
        }

    def test_3d_rows_show_improvement(self):
        entries = [
            e for e in conclusion_table() if e.regime is TrsmRegime.THREE_LARGE
        ]
        big = [e for e in entries if e.p >= 1024]
        assert all(e.latency_ratio > 1 for e in big)

    def test_custom_cases(self):
        entries = conclusion_table([(256, 64, 64)])
        assert len(entries) == 1
        assert entries[0].n == 256


class TestMMLineTable:
    def test_model_matches_simulation_exactly(self):
        """On divisible sizes the per-line simulated costs equal the model."""
        rows = mm_line_table(32, 16, 2, 4)
        assert len(rows) == 7
        for line, model, sim in rows:
            assert sim.S == pytest.approx(model.S), line
            assert sim.W == pytest.approx(model.W), line
            assert sim.F == pytest.approx(model.F), line

    def test_2d_split_lines_degenerate(self):
        rows = dict(
            (line, (model, sim)) for line, model, sim in mm_line_table(16, 8, 4, 1)
        )
        model2, sim2 = rows["line2"]
        assert model2.W == 0 and sim2.W == 0  # p2 = 1: no allgather of L
        model3, sim3 = rows["line3"]
        assert model3.W == 0 and sim3.W == 0  # transpose is the identity


class TestIterativePartsTable:
    def test_parts_within_constant_factor(self):
        rows = iterative_parts_table(48, 24, 2, 2, 12)
        names = [r[0] for r in rows]
        assert names == ["inversion", "solve", "update"]
        for name, model, sim in rows:
            for comp in ("S", "W", "F"):
                a, b = getattr(sim, comp), getattr(model, comp)
                if b < 1e-9 and a < 1e-9:
                    continue
                assert a <= 6 * b + 1e-9, (name, comp, a, b)
                assert b <= 6 * a + 1e-9, (name, comp, a, b)


class TestRegimeMap:
    def test_shape(self):
        rmap = regime_map((-2, 2), (4, 256))
        assert len(rmap.ratios) == 5
        assert rmap.ps == [4, 16, 64, 256]
        assert len(rmap.labels) == 5

    def test_monotone_in_ratio(self):
        """For fixed p, increasing n/k can only move 1D -> 3D -> 2D."""
        order = {
            TrsmRegime.ONE_LARGE: 0,
            TrsmRegime.THREE_LARGE: 1,
            TrsmRegime.TWO_LARGE: 2,
        }
        rmap = regime_map((-8, 8), (4, 4096))
        for j in range(len(rmap.ps)):
            col = [rmap.labels[i][j] for i in range(len(rmap.ratios))]
            ranks = [order[r] for r in col]  # ratios ascending
            assert ranks == sorted(ranks)

    def test_large_p_widens_3d_band(self):
        rmap = regime_map((-8, 8), (4, 65536))
        count_small = sum(
            1 for row in rmap.labels if row[0] is TrsmRegime.THREE_LARGE
        )
        count_large = sum(
            1 for row in rmap.labels if row[-1] is TrsmRegime.THREE_LARGE
        )
        assert count_large > count_small

    def test_render_contains_legend(self):
        text = render_regime_map(regime_map((-2, 2), (4, 64)))
        assert "one large dimension" in text
        assert "3" in text


class TestAsymptotics:
    def test_fit_power_law_recovers_exponent(self):
        xs = [2.0**i for i in range(4, 12)]
        ys = [7.0 * x**1.5 for x in xs]
        e, c = fit_power_law(xs, ys)
        assert e == pytest.approx(1.5, abs=1e-9)
        assert c == pytest.approx(7.0, rel=1e-6)

    def test_fit_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 1.0])

    def test_improvement_factors_3d(self):
        imp = improvement_factors(1024, 256, 4096)
        assert imp.regime is TrsmRegime.THREE_LARGE
        assert imp.latency_ratio > 1
        assert imp.bandwidth_ratio == pytest.approx(1.0)
        assert imp.flop_ratio == pytest.approx(0.5)  # new method does 2x flops

    def test_prediction_regime_dispatch(self):
        assert latency_ratio_prediction(1024, 256, 4096) == pytest.approx(
            4 ** (1 / 6) * 4096 ** (2 / 3)
        )
        assert latency_ratio_prediction(4, 4096, 64) < 1


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.00001]], title="T")
        assert "T" in text and "a" in text and "bb" in text
        assert "2.5" in text
        assert "1.000e-05" in text

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
