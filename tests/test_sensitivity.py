"""Machine-sensitivity sweeps and crossover location."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityPoint,
    crossover_ratio,
    sweep_alpha_beta,
)
from repro.machine.validate import ParameterError


class TestSweep:
    def test_points_have_positive_times(self):
        pts = sweep_alpha_beta(256, 64, 64)
        assert len(pts) == 7
        for pt in pts:
            assert pt.t_recursive > 0 and pt.t_iterative > 0

    def test_speedup_monotone_in_latency_dominance(self):
        """More latency-bound machines favor the iterative method more."""
        pts = sweep_alpha_beta(256, 64, 256)
        speedups = [pt.speedup for pt in pts]
        assert speedups[-1] > speedups[0]
        assert all(b >= a * 0.999 for a, b in zip(speedups, speedups[1:]))

    def test_custom_ratios(self):
        pts = sweep_alpha_beta(128, 32, 16, ratios=[1.0, 100.0])
        assert [pt.alpha_over_beta for pt in pts] == [1.0, 100.0]

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            sweep_alpha_beta(0, 1, 1)

    def test_point_speedup(self):
        pt = SensitivityPoint(1.0, t_recursive=2.0, t_iterative=1.0)
        assert pt.speedup == 2.0


class TestCrossover:
    def test_crossover_exists_in_3d_regime(self):
        r = crossover_ratio(256, 64, 256)
        if r is not None:
            # verify it is a genuine crossover point
            lo = sweep_alpha_beta(256, 64, 256, ratios=[r / 10])[0]
            hi = sweep_alpha_beta(256, 64, 256, ratios=[r * 10])[0]
            assert lo.speedup < 1 < hi.speedup

    def test_crossover_moves_down_with_p(self):
        """At larger machine scale the iterative method wins earlier
        (smaller alpha/beta suffices)."""
        r_small = crossover_ratio(256, 64, 64)
        r_large = crossover_ratio(256, 64, 4096)
        if r_small is not None and r_large is not None:
            assert r_large < r_small
        elif r_large is None and r_small is not None:
            # iterative always wins at the large machine — consistent
            pts = sweep_alpha_beta(256, 64, 4096, ratios=[1e-2])
            assert pts[0].speedup > 1

    def test_none_when_dominated(self):
        # 1D regime: the iterative method pays an extra log everywhere,
        # bandwidth/flops equal -> it never wins on latency alone
        r = crossover_ratio(16, 16 * 4 * 64 * 64, 64)
        assert r is None
