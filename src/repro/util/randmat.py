"""Random test-matrix generators.

TRSM correctness and stability tests need triangular matrices whose condition
number is controlled: forward substitution on a random triangular matrix with
entries of mixed sign is notoriously ill-conditioned (condition grows
exponentially with n), which would make residual-based tests flaky.  The
generators here produce well-conditioned triangular factors by dominating the
diagonal, plus knobs to generate deliberately ill-conditioned instances for
the stability study (bench_stability / E9).
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_dense(n: int, k: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Dense ``n x k`` matrix with iid uniform(-1, 1) entries."""
    rng = _rng(seed)
    return rng.uniform(-1.0, 1.0, size=(n, k))


def random_lower_triangular(
    n: int,
    seed: int | np.random.Generator | None = 0,
    diag_dominance: float = 2.0,
) -> np.ndarray:
    """Well-conditioned lower-triangular ``n x n`` matrix.

    Off-diagonal entries are uniform(-1, 1) scaled by ``1/n`` so that row sums
    stay below the diagonal magnitude; the diagonal is set to
    ``diag_dominance`` in absolute value with random sign.  The resulting
    condition number is O(1) in practice, making ``L x = b`` solvable to
    near machine precision.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    rng = _rng(seed)
    L = np.tril(rng.uniform(-1.0, 1.0, size=(n, n)), k=-1) / max(n, 1)
    signs = rng.choice([-1.0, 1.0], size=n)
    L[np.arange(n), np.arange(n)] = diag_dominance * signs
    return L


def random_unit_lower_triangular(
    n: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Unit lower-triangular matrix (ones on the diagonal), well conditioned."""
    L = random_lower_triangular(n, seed=seed, diag_dominance=1.0)
    L[np.arange(n), np.arange(n)] = 1.0
    return L


def ill_conditioned_lower_triangular(
    n: int,
    condition_target: float = 1e8,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Lower-triangular matrix with geometrically decaying diagonal.

    The diagonal decays from 1 down to ``1/condition_target``, giving a
    2-norm condition number of at least ``condition_target``.  Each row's
    off-diagonal entries are scaled by that row's diagonal magnitude so the
    inverse norm stays ~``condition_target`` (rather than exploding
    exponentially through the substitution recurrence) — the instance is
    ill-conditioned but its solutions remain representable, which is what
    the stability experiment (E9b) needs.
    """
    if n < 2:
        raise ValueError("need n >= 2 for an ill-conditioned instance")
    rng = _rng(seed)
    decay = condition_target ** (-np.arange(n) / (n - 1))
    L = np.tril(rng.uniform(-1.0, 1.0, size=(n, n)), k=-1) / n
    L *= decay[:, None]
    L[np.arange(n), np.arange(n)] = decay
    return L


def random_spd(n: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """Symmetric positive definite matrix with condition O(n).

    Used by the Cholesky example: factor A = L L^T then run two TRSMs.
    """
    rng = _rng(seed)
    G = rng.uniform(-1.0, 1.0, size=(n, n))
    return G @ G.T + n * np.eye(n)
