"""Integer arithmetic helpers used throughout the grid and cost machinery.

The paper's algorithms assume divisibility among the problem sizes and the
processor-grid dimensions (powers of two everywhere).  The helpers here keep
that arithmetic in one audited place.
"""

from __future__ import annotations

import math
from typing import Iterator


def unit_step(x: float) -> int:
    """The paper's unit step ``1_x``: 1 if ``x > 1`` else 0.

    Used to zero out communication terms that vanish on degenerate
    (single-processor) grid dimensions, e.g. ``beta * n * 1_p`` for an
    allgather over a group of size ``p``.
    """
    return 1 if x > 1 else 0


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive integral power of two (1 counts)."""
    return isinstance(x, (int,)) and x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2; raises ``ValueError`` for non powers of two."""
    if not is_power_of_two(x):
        raise ValueError(f"ilog2 requires a power of two, got {x!r}")
    return x.bit_length() - 1


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= max(x, 1)."""
    if x <= 1:
        return 1
    return 1 << (x - 1).bit_length()


def prev_power_of_two(x: int) -> int:
    """Largest power of two <= x (x must be >= 1)."""
    if x < 1:
        raise ValueError(f"prev_power_of_two requires x >= 1, got {x!r}")
    return 1 << (x.bit_length() - 1)


def round_to_power_of_two(x: float) -> int:
    """Power of two closest to ``x`` in ratio (geometric rounding).

    Ties (x exactly at the geometric midpoint) round up.  Used by the tuning
    module to snap the paper's closed-form real-valued parameter choices
    (e.g. ``n0 = (n k^3 sqrt(p))^{1/4}``) onto realizable grids.
    """
    if x <= 1:
        return 1
    lo = prev_power_of_two(int(math.floor(x))) if x >= 1 else 1
    hi = lo * 2
    # geometric midpoint: sqrt(lo*hi) = lo*sqrt(2)
    return lo if x < lo * math.sqrt(2.0) else hi


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b!r}")
    return -(-a // b)


def divisor_pairs(p: int) -> Iterator[tuple[int, int]]:
    """Yield all ordered factorizations ``p = a * b`` with ``a, b >= 1``.

    Enumeration order is ascending in ``a``.  Used by the discrete parameter
    optimizer to enumerate candidate processor grids.
    """
    if p < 1:
        raise ValueError(f"divisor_pairs requires p >= 1, got {p!r}")
    for a in range(1, p + 1):
        if p % a == 0:
            yield a, p // a


def power_of_two_divisor_pairs(p: int) -> Iterator[tuple[int, int]]:
    """Yield factorizations ``p = a * b`` where both factors are powers of two."""
    if not is_power_of_two(p):
        raise ValueError(f"expected a power of two, got {p!r}")
    lg = ilog2(p)
    for i in range(lg + 1):
        yield 1 << i, 1 << (lg - i)


def split_indices(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous chunks, first chunks larger.

    Returns half-open ``(start, stop)`` pairs.  Matches the block partitioning
    used for blocked layouts.
    """
    if parts < 1:
        raise ValueError(f"split_indices requires parts >= 1, got {parts!r}")
    base, extra = divmod(n, parts)
    out: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        out.append((start, stop))
        start = stop
    return out


def geometric_range(lo: int, hi: int, factor: int = 2) -> list[int]:
    """Powers-of-``factor`` ladder from ``lo`` to ``hi`` inclusive."""
    if lo < 1 or hi < lo or factor < 2:
        raise ValueError("geometric_range requires 1 <= lo <= hi and factor >= 2")
    out = []
    x = lo
    while x <= hi:
        out.append(x)
        x *= factor
    return out
