"""Error metrics and flop-count conventions.

Flop convention (documented in DESIGN.md §5): following the paper, one
"flop" is one fused multiply-add, so a dense ``(n x n) @ (n x k)`` product
costs ``n^2 k`` flops (the paper's ``F_MM``), a triangular-times-dense product
costs half that, and triangular inversion of an ``n x n`` block costs
``n^3 / 8`` flops per the paper's ``F_Inv`` (to leading order per processor
group; the sequential total is ``n^3/6`` multiply-adds — the paper's
constants are what our analytic models reproduce).
"""

from __future__ import annotations

import numpy as np


def relative_residual(L: np.ndarray, X: np.ndarray, B: np.ndarray) -> float:
    """Normwise relative backward residual ``||L X - B|| / (||L|| ||X|| + ||B||)``.

    Frobenius norms throughout.  For a backward-stable TRSM this is O(eps).
    """
    num = float(np.linalg.norm(L @ X - B))
    den = float(np.linalg.norm(L) * np.linalg.norm(X) + np.linalg.norm(B))
    if den == 0.0:
        return 0.0
    return num / den


def forward_error(X: np.ndarray, X_ref: np.ndarray) -> float:
    """Relative forward error ``||X - X_ref|| / ||X_ref||`` (Frobenius)."""
    den = float(np.linalg.norm(X_ref))
    if den == 0.0:
        return float(np.linalg.norm(X))
    return float(np.linalg.norm(X - X_ref)) / den


def backward_error(L: np.ndarray, Linv: np.ndarray) -> float:
    """Inversion residual ``||L Linv - I|| / ||L|| / ||Linv||`` (Frobenius)."""
    n = L.shape[0]
    num = float(np.linalg.norm(L @ Linv - np.eye(n)))
    den = float(np.linalg.norm(L) * np.linalg.norm(Linv))
    if den == 0.0:
        return num
    return num / den


# ---------------------------------------------------------------------------
# Flop-count helpers (multiply-add convention, matching the paper's F terms)
# ---------------------------------------------------------------------------


def flops_gemm(m: int, n: int, k: int) -> float:
    """Multiply-add count of a dense ``(m x k) @ (k x n)`` product: m*n*k."""
    return float(m) * float(n) * float(k)


def flops_trmm(n: int, k: int) -> float:
    """Multiply-add count of triangular(n) @ dense(n x k): n^2 k / 2."""
    return float(n) * float(n) * float(k) / 2.0

def flops_trsm_seq(n: int, k: int) -> float:
    """Multiply-add count of sequential forward substitution: n^2 k / 2."""
    return float(n) * float(n) * float(k) / 2.0


def flops_tri_inv_seq(n: int) -> float:
    """Multiply-add count of sequential triangular inversion: n^3 / 6."""
    return float(n) ** 3 / 6.0
