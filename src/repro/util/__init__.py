"""Small shared utilities: integer math, random matrix generators, checks."""

from repro.util.mathutil import (
    ceil_div,
    divisor_pairs,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    prev_power_of_two,
    round_to_power_of_two,
    split_indices,
    unit_step,
)
from repro.util.randmat import (
    random_dense,
    random_lower_triangular,
    random_unit_lower_triangular,
    random_spd,
)
from repro.util.checking import (
    backward_error,
    forward_error,
    relative_residual,
)

__all__ = [
    "ceil_div",
    "divisor_pairs",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "prev_power_of_two",
    "round_to_power_of_two",
    "split_indices",
    "unit_step",
    "random_dense",
    "random_lower_triangular",
    "random_unit_lower_triangular",
    "random_spd",
    "backward_error",
    "forward_error",
    "relative_residual",
]
