"""Parallel matrix multiplication (paper Section III).

* :func:`~repro.mm.mm3d.mm3d` — the paper's MM algorithm: 3D multiplication
  operating from a 2D cyclic distribution on a ``p1*sqrt(p2) x p1*sqrt(p2)``
  grid (``p2 = 1`` gives the classical 2D algorithm);
* :func:`~repro.mm.mm1d.mm1d` — the one-large-dimension variant (``n < k/p``);
* :mod:`~repro.mm.dispatch` — regime classification (one/two/three large
  dimensions, Section II-C2) and a-priori grid selection;
* :mod:`~repro.mm.cost_model` — the line-by-line and leading-order analytic
  costs of Section III-A.
"""

from repro.mm.mm3d import mm3d
from repro.mm.mm1d import mm1d
from repro.mm.dispatch import MMRegime, choose_mm_split, classify_mm
from repro.mm.cost_model import mm3d_cost, mm3d_cost_lines, mm_bandwidth_lower_bound

__all__ = [
    "mm3d",
    "mm1d",
    "MMRegime",
    "classify_mm",
    "choose_mm_split",
    "mm3d_cost",
    "mm3d_cost_lines",
    "mm_bandwidth_lower_bound",
]
