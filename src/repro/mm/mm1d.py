"""One-large-dimension matrix multiplication (``n < k/p``).

When the right-hand side is much wider than the square operand, the optimal
layout is one-dimensional (paper Section II-C2, third case): each processor
owns a cyclic set of columns of ``X``; the ``n x n`` operand is allgathered
once (``W = n^2``), after which every column block is computed locally.
This is the MM regime the recursive TRSM's 1D case reduces to, with cost
``O(alpha log p + beta n^2 + gamma n^2 k / p)``.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.machine.collectives import allgather_blocks
from repro.machine.validate import GridError, ShapeError, require


def mm1d(A: DistMatrix, X: DistMatrix, scale: float = 1.0) -> DistMatrix:
    """``B = scale * A @ X`` on a ``1 x p`` processor grid.

    ``A`` (``m x n``) and ``X`` (``n x k``) must be column-distributed on the
    same ``1 x p`` grid; ``B`` comes back distributed like ``X``.
    """
    machine = A.machine
    grid = A.grid
    require(
        grid == X.grid, GridError, "mm1d requires A and X on the same grid"
    )
    require(
        grid.shape[0] == 1,
        GridError,
        f"mm1d requires a 1 x p grid, got {grid.shape}",
    )
    require(
        A.shape[1] == X.shape[0],
        ShapeError,
        f"inner dimensions disagree: A is {A.shape}, X is {X.shape}",
    )
    p = grid.shape[1]
    group = [grid.rank((0, y)) for y in range(p)]

    # Allgather the column blocks of A; every rank reassembles the full A.
    contribs = {r: A.blocks[r] for r in group}
    got = allgather_blocks(machine, group, contribs, label="mm1d.allgather")
    m, n = A.shape
    A_full = np.zeros((m, n))
    for y in range(p):
        cols = A.layout.col_indices(y, n)
        A_full[:, cols] = got[group[0]][group[y]]

    # Local multiply on each rank's column block of X.
    out_blocks: dict[int, np.ndarray] = {}
    flops: dict[int, object] = {}
    from repro.machine.cost import Cost

    for y in range(p):
        r = grid.rank((0, y))
        xb = X.blocks[r]
        out_blocks[r] = scale * (A_full @ xb)
        flops[r] = Cost(0.0, 0.0, float(m) * n * xb.shape[1])
    machine.charge_local(flops, label="mm1d.local")  # type: ignore[arg-type]

    return DistMatrix(machine, grid, X.layout, (m, X.shape[1]), out_blocks)
