"""The paper's MM algorithm (Section III): 3D matrix multiplication that
starts and ends on a 2D cyclic distribution.

``B = mm3d(A, X, p1)`` computes ``B = scale * A @ X`` for an ``m x n``
matrix ``A`` and an ``n x k`` matrix ``X``, both distributed cyclically on
the same ``sqrt(p) x sqrt(p)`` grid with ``sqrt(p) = p1 * sqrt(p2)``.
``p2 = (sqrt(p)/p1)^2`` is implied by ``p1``.  The result ``B`` is
distributed exactly like ``X`` (the algorithm's Ensure clause).

Communication schedule (line numbers match the paper's pseudo-code):

* **line 2** — allgather ``A'[x1,y1] = A[x1::p1, y1::p1]`` over each
  ``(x2, y2)`` fiber of ``p2`` processors (real ``allgather_blocks`` +
  cyclic reassembly with stride ``sqrt(p2)``);
* **lines 3-4** — transposes that move ``X`` from the 2D cyclic layout to
  the ``(y1, z)`` slab layout.  Line 3 is a ``p1 x sqrt(p2)``-grid
  transpose (all-to-all bound, vanishes when ``p2 == 1``); line 4 a
  square-grid pairwise exchange;
* **line 5** — allgather ``X'''[y1,z] = X[y1::p1, cols_z]`` over each
  ``x1`` fiber of ``p1`` processors;
* **line 6** — local multiply ``A'[x1,y1] @ X'''[y1,z]``;
* **line 7** — scatter-reduce of the partial products over the ``y1``
  fibers (real ``reduce_scatter``: sums then splits row slabs);
* **line 8** — transpose ``B`` back to the 2D cyclic layout (all-to-all
  bound).

The ``z`` index enumerates ``p2`` contiguous column slabs of ``X``
(``z = x2 + sqrt(p2)*y2``).  Lines 3, 4 and 8 charge the paper's exact
costs while the slab pieces are routed directly between the owning blocks
(:func:`repro.dist.routing.gather_frame` on the way in,
:func:`~repro.dist.routing.scatter_frame` on the way out — no
``to_global()``/``from_global`` scratch assembly anywhere on the hot
path); lines 2, 5 and 7 use the real collectives.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.routing import End, gather_frame, scatter_frame
from repro.machine.collectives import (
    _log2_ceil,
    allgather_blocks,
    reduce_scatter,
)
from repro.machine.cost import Cost
from repro.machine.validate import GridError, ParameterError, ShapeError, require
from repro.util.mathutil import split_indices


def _validate(A: DistMatrix, X: DistMatrix, p1: int) -> tuple[int, int, int]:
    """Check grids/layouts; return (sp, sq, p) with sp = p1*sq."""
    require(
        A.grid == X.grid,
        GridError,
        "mm3d requires A and X on the same processor grid",
    )
    sp_r, sp_c = A.grid.shape
    require(sp_r == sp_c, GridError, f"mm3d requires a square grid, got {A.grid.shape}")
    sp = sp_r
    require(
        p1 >= 1 and sp % p1 == 0,
        ParameterError,
        f"p1={p1} must divide the grid side {sp}",
    )
    require(
        A.shape[1] == X.shape[0],
        ShapeError,
        f"inner dimensions disagree: A is {A.shape}, X is {X.shape}",
    )
    from repro.dist.layout import CyclicLayout

    for M, name in ((A, "A"), (X, "X")):
        require(
            isinstance(M.layout, CyclicLayout),
            ShapeError,
            f"mm3d requires {name} in a cyclic layout, got {M.layout!r}",
        )
    sq = sp // p1
    return sp, sq, sp * sp


def mm3d(A: DistMatrix, X: DistMatrix, p1: int, scale: float = 1.0) -> DistMatrix:
    """``B = scale * A @ X`` with the Section III communication schedule.

    ``scale`` is folded into the local multiply (BLAS ``alpha``), so the
    negated products of the triangular inversion are free.
    """
    machine = A.machine
    grid = A.grid
    sp, sq, p = _validate(A, X, p1)
    p2 = sq * sq
    m, n = A.shape
    _, k = X.shape

    def r4(x1: int, x2: int, y1: int, y2: int) -> int:
        return grid.rank((x1 + p1 * x2, y1 + p1 * y2))

    # ---- line 2: allgather A'[x1,y1] over the (x2,y2) fibers ----------------
    A_rows = [np.arange(x1, m, p1) for x1 in range(p1)]
    A_cols = [np.arange(y1, n, p1) for y1 in range(p1)]
    Ap: dict[tuple[int, int], np.ndarray] = {}
    for x1 in range(p1):
        for y1 in range(p1):
            group = [r4(x1, x2, y1, y2) for x2 in range(sq) for y2 in range(sq)]
            contribs = {r: A.blocks[r] for r in group}
            got = allgather_blocks(machine, group, contribs, label="mm3d.line2")
            blocks = got[group[0]]
            Aq = np.zeros((len(A_rows[x1]), len(A_cols[y1])))
            for x2 in range(sq):
                for y2 in range(sq):
                    blk = blocks[r4(x1, x2, y1, y2)]
                    # global row g = (x1 + p1*x2) + sp*t sits at A' row
                    # (g - x1)/p1 = x2 + sq*t; likewise for columns.
                    ri = np.arange(x2, len(A_rows[x1]), sq)[: blk.shape[0]]
                    ci = np.arange(y2, len(A_cols[y1]), sq)[: blk.shape[1]]
                    if blk.size:
                        Aq[np.ix_(ri, ci)] = blk
            Ap[(x1, y1)] = Aq
            # p2-fold replication of A: the working-set cost of going 3D
            machine.memory.observe_group(group, float(Aq.size))

    # ---- lines 3-4: move X toward the (y1, z) slab layout -------------------
    all_ranks = grid.ranks()
    xw = float(n) * float(k)
    if p2 > 1 and p > 1:
        # rectangular-grid transpose: all-to-all bound, nk/p words per rank
        machine.charge(
            all_ranks, machine.coll.alltoall(p, xw / p), label="mm3d.line3"
        )
    if p > 1:
        machine.charge(
            all_ranks, Cost(S=1.0, W=xw / p, F=0.0), label="mm3d.line4"
        )

    # ---- line 5: allgather X'''[y1,z] over the x1 fibers ---------------------
    col_slabs = split_indices(k, p2)
    X_rows = [np.arange(y1, n, p1) for y1 in range(p1)]
    X3: dict[tuple[int, int], np.ndarray] = {}
    for y1 in range(p1):
        for z in range(p2):
            x2, y2 = z % sq, z // sq
            lo, hi = col_slabs[z]
            # Route the slab pieces straight out of the owning blocks; the
            # movement itself is charged by lines 3/4 above.
            # replint: disable=no-global-gather -- frame is assembled from already-routed blocks; the movement was charged by the line-3/4 transposes
            slab = gather_frame(
                End(X.grid, X.layout, X.shape, rows=X_rows[y1], cols=np.arange(lo, hi)),
                X.blocks,
            )
            group = [r4(x1, x2, y1, y2) for x1 in range(p1)]
            # After the line-3/4 transposes, the x1-th member holds the
            # column-interleaved piece slab[:, x1::p1].
            contribs = {r4(x1, x2, y1, y2): slab[:, x1::p1] for x1 in range(p1)}
            got = allgather_blocks(machine, group, contribs, label="mm3d.line5")
            assembled = np.zeros_like(slab)
            for x1 in range(p1):
                assembled[:, x1::p1] = got[group[0]][r4(x1, x2, y1, y2)]
            X3[(y1, z)] = assembled
            machine.memory.observe_group(group, float(assembled.size))

    # ---- line 6: local multiply ------------------------------------------------
    Bpart: dict[int, np.ndarray] = {}
    flops: dict[int, Cost] = {}
    for x1 in range(p1):
        for x2 in range(sq):
            for y1 in range(p1):
                for y2 in range(sq):
                    z = x2 + sq * y2
                    r = r4(x1, x2, y1, y2)
                    left = Ap[(x1, y1)]
                    right = X3[(y1, z)]
                    Bpart[r] = scale * (left @ right)
                    flops[r] = Cost(
                        0.0, 0.0, float(left.shape[0]) * left.shape[1] * right.shape[1]
                    )
    machine.charge_local(flops, label="mm3d.line6")

    # ---- line 7: scatter-reduce over the y1 fibers ------------------------------
    # and line 8: transpose B back to the 2D cyclic layout.  Each reduced
    # (x1, z) slab is scattered straight into the destination cyclic blocks
    # (scatter_frame, the routing counterpart of the line-5 gather) — no
    # global ``Bg`` scratch and no ``to_global``/``from_global`` assembly
    # anywhere on the MM hot path.
    out_blocks = {
        grid.rank(coord): np.zeros(X.layout.local_shape(coord, (m, k)))
        for coord in grid.coords()
    }
    for x1 in range(p1):
        for x2 in range(sq):
            for y2 in range(sq):
                z = x2 + sq * y2
                group = [r4(x1, x2, y1, y2) for y1 in range(p1)]
                contribs = {r: Bpart[r] for r in group}
                slabs = reduce_scatter(
                    machine, group, contribs, axis=0, label="mm3d.line7"
                )
                lo, hi = col_slabs[z]
                # The y1-th chunk holds the next contiguous run of A' rows,
                # so concatenating restores the full (x1, z) slab frame.
                frame = np.concatenate([slabs[group[y1]] for y1 in range(p1)], axis=0)
                if frame.size:
                    scatter_frame(
                        End(
                            grid,
                            X.layout,
                            (m, k),
                            rows=A_rows[x1],
                            cols=np.arange(lo, hi),
                        ),
                        frame,
                        out_blocks,
                    )
    if p > 1:
        mk = float(m) * float(k)
        machine.charge(
            all_ranks, machine.coll.alltoall(p, mk / p), label="mm3d.line8"
        )

    return DistMatrix(machine, grid, X.layout, (m, k), out_blocks)
