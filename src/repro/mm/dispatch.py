"""MM regime classification and a-priori grid selection (Section II-C2).

The bandwidth-optimal processor layout for ``(n x n) @ (n x k)`` on ``p``
processors depends on the shape ratio:

* ``n > k * sqrt(p)`` — **two large dimensions**: 2D grid (``p2 = 1``);
* ``k/p <= n <= k * sqrt(p)`` — **three large dimensions**: 3D grid;
* ``n < k/p`` — **one large dimension**: 1D grid.

``choose_mm_split`` realizes the paper's "determine optimal ... processor
grids a priori": it enumerates every valid split ``sqrt(p) = p1 * sqrt(p2)``
and picks the one minimizing the modeled execution time under the given
machine constants.
"""

from __future__ import annotations

import enum
import math

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, require
from repro.mm.cost_model import mm3d_cost
from repro.util.mathutil import is_power_of_two


class MMRegime(enum.Enum):
    """Which of the paper's three MM cases applies."""

    ONE_LARGE = "1D"
    TWO_LARGE = "2D"
    THREE_LARGE = "3D"


def classify_mm(n: int, k: int, p: int) -> MMRegime:
    """The Section II-C2 three-case split for ``(n x n) @ (n x k)``."""
    require(n >= 1 and k >= 1 and p >= 1, ParameterError, "n, k, p must be >= 1")
    if n > k * math.sqrt(p):
        return MMRegime.TWO_LARGE
    if n < k / p:
        return MMRegime.ONE_LARGE
    return MMRegime.THREE_LARGE


def valid_mm_splits(p: int) -> list[tuple[int, int]]:
    """All ``(p1, p2)`` with ``p1^2 * p2 == p`` and integer ``sqrt(p2)``.

    Equivalently all factorizations ``sqrt(p) = p1 * sqrt(p2)``; requires
    ``p`` to be an even power of two (square with power-of-two side).
    """
    require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
    sp = math.isqrt(p)
    require(sp * sp == p, ParameterError, f"p={p} must be a perfect square")
    out = []
    sq = 1
    while sq <= sp:
        if sp % sq == 0:
            out.append((sp // sq, sq * sq))
        sq *= 2
    return out


def choose_mm_split(
    n: int,
    k: int,
    p: int,
    params: CostParams | None = None,
    m: int | None = None,
) -> tuple[int, int]:
    """The ``(p1, p2)`` split minimizing the modeled MM time.

    With the default (bandwidth-dominated) machine constants this lands on
    the paper's asymptotic optimum ``p1 ~ (p n / k)^{1/3}`` in the
    three-large-dimensions regime, ``p1 = sqrt(p)`` in the 2D regime and
    ``p1 = 1`` in the 1D regime.
    """
    params = params or CostParams()
    best: tuple[float, tuple[int, int]] | None = None
    for p1, p2 in valid_mm_splits(p):
        t = mm3d_cost(n, k, p1, p2, m=m).time(params)
        if best is None or t < best[0]:
            best = (t, (p1, p2))
    assert best is not None
    return best[1]
