"""Analytic cost model for the Section III matrix-multiplication algorithm.

``mm3d_cost_lines`` reproduces the paper's line-by-line table; ``mm3d_cost``
sums it.  These are the *model* counterparts of the measured costs the
simulator produces when running :func:`repro.mm.mm3d.mm3d`; the cost-table
bench (E3) checks the two against each other.

Line-by-line table (paper Section III-A), with ``sqrt(p) = p1*sqrt(p2)``:

======  =======================================================
line    cost
======  =======================================================
2       ``alpha*log(p2) + beta*(n^2/p1^2)*1_{p2}``
3       ``O(alpha*log(p) + beta*n*k*log(p)/p)``
4       ``alpha + beta*n*k/p``
5       ``alpha*log(p1) + beta*(n*k/(p1*p2))*1_{p1}``
6       ``gamma*n^2*k/p``
7       ``alpha*log(p1) + (beta+gamma)*(n*k/(p1*p2))*1_{p1}``
8       ``alpha*log(p) + beta*(n*k/p)*log(p)``
======  =======================================================
"""

from __future__ import annotations

import math

from repro.machine.cost import Cost
from repro.machine.validate import ParameterError, require
from repro.util.mathutil import unit_step


def _log2(x: float) -> float:
    return math.log2(x) if x > 1 else 0.0


def validate_mm_split(p: int, p1: int, p2: int) -> int:
    """Check ``p = p1^2 * p2`` with integer ``sqrt(p)`` and ``sqrt(p2)``.

    Returns ``sqrt(p2)``.
    """
    require(p1 >= 1 and p2 >= 1, ParameterError, "p1, p2 must be >= 1")
    require(
        p1 * p1 * p2 == p,
        ParameterError,
        f"MM grid split requires p1^2*p2 == p, got p1={p1}, p2={p2}, p={p}",
    )
    sq = math.isqrt(p2)
    require(sq * sq == p2, ParameterError, f"p2={p2} must be a perfect square")
    return sq


def mm3d_cost_lines(n: int, k: int, p1: int, p2: int, m: int | None = None) -> dict[str, Cost]:
    """Per-line cost of MM multiplying ``(m x n) @ (n x k)`` (default m=n).

    Keys are the paper's line numbers ("line2" ... "line8").
    """
    if m is None:
        m = n
    p = p1 * p1 * p2
    nw = float(m) * float(n)  # words of the left operand
    xw = float(n) * float(k)  # words of the right operand / result
    return {
        # allgather of L'[x1,y1] (m/p1 x n/p1 words) over the p2-fiber
        "line2": Cost(S=_log2(p2), W=(nw / p1**2) * unit_step(p2), F=0.0),
        # rectangular-grid transpose of X: bounded by an all-to-all over
        # sqrt(p) (Bruck: (n/2) log p words for n words per rank);
        # degenerates to the identity when p2 == 1 (x2 == 0 always)
        "line3": Cost(
            S=_log2(p) * unit_step(p2),
            W=(xw / (2.0 * p)) * _log2(p) * unit_step(p2),
            F=0.0,
        ),
        # square-grid transpose: a single pairwise block exchange
        "line4": Cost(S=1.0 if p > 1 else 0.0, W=(xw / p) * unit_step(p), F=0.0),
        # allgather of X'''[y1,z] (n/p1 x k/p2 words) over the p1-fiber
        "line5": Cost(S=_log2(p1), W=(xw / (p1 * p2)) * unit_step(p1), F=0.0),
        # local multiply (m/p1 x n/p1) @ (n/p1 x k/p2)
        "line6": Cost(S=0.0, W=0.0, F=float(m) * float(n) * float(k) / p),
        # scatter-reduce of the partial products over the p1-fiber
        "line7": Cost(
            S=_log2(p1),
            W=(xw * m / n / (p1 * p2)) * unit_step(p1),
            F=(xw * m / n / (p1 * p2)) * unit_step(p1),
        ),
        # transpose back to the 2D cyclic layout of B: all-to-all bound
        "line8": Cost(
            S=_log2(p), W=(xw * m / n / (2.0 * p)) * _log2(p), F=0.0
        ),
    }


def mm3d_cost(n: int, k: int, p1: int, p2: int, m: int | None = None) -> Cost:
    """Total modeled cost of one MM call (sum of the per-line table)."""
    total = Cost.zero()
    for c in mm3d_cost_lines(n, k, p1, p2, m=m).values():
        total = total + c
    return total


def mm3d_leading_order(n: int, k: int, p1: int, p2: int) -> Cost:
    """The paper's leading-order T_MM: ``beta*(n^2/p1^2*1_{p2} + 2nk/(p1 p2))
    + gamma*n^2 k/p``, with the ``O(alpha log p + beta nk log p/p)`` terms
    included in S and W."""
    p = p1 * p1 * p2
    lg = _log2(p)
    return Cost(
        S=2 * lg,
        W=(float(n) * n / p1**2) * unit_step(p2)
        + 2.0 * n * k / (p1 * p2)
        + (float(n) * k / p) * lg,
        F=float(n) * n * k / p,
    )


def mm1d_cost(n: int, k: int, p: int) -> Cost:
    """One-large-dimension MM: allgather L (n^2 words), local multiply.

    Matches the paper's ``T_RT1D = O(alpha log p + beta n^2 + gamma n^2 k/p)``.
    """
    return Cost(
        S=_log2(p),
        W=float(n) * n * unit_step(p),
        F=float(n) * n * k / p,
    )


def mm_bandwidth_lower_bound(n: int, k: int, p: int) -> float:
    """The Section II-C2 bandwidth W_MM(n, k, p) (three-case formula).

    * two large dimensions (``n > k*sqrt(p)``): ``n*k/sqrt(p)``
    * three large dimensions (``k/p <= n <= k*sqrt(p)``): ``(n^2 k/p)^{2/3}``
    * one large dimension (``n < k/p``): ``n^2``
    """
    n_f, k_f, p_f = float(n), float(k), float(p)
    if n_f > k_f * math.sqrt(p_f):
        return n_f * k_f / math.sqrt(p_f)
    if n_f < k_f / p_f:
        return n_f * n_f
    return (n_f * n_f * k_f / p_f) ** (2.0 / 3.0)
