"""Closed-form TRSM cost models: Sections IV-A, VII, VIII and IX.

Two families:

* ``recursive_*`` — the Section IV-A costs of ``Rec-TRSM`` (the paper's
  "standard" baseline) in the three regimes;
* ``iterative_*`` — the Section VII per-part costs (inversion / solve /
  update) of ``It-Inv-TRSM`` plus the Section VIII tuned totals.

``conclusion_row`` assembles the Section IX comparison table entries, and
``latency_improvement`` evaluates the headline ``Theta((n/k)^{1/6} p^{2/3})``
ratio.

Deviations from the printed text (both documented in DESIGN.md):

* the paper's printed ``W_Upd`` bcast term ``4(n n0 - n)/p1^2`` is a typo
  for the summed panel broadcasts ``sum_i 4 (n - i n0) n0 / p1^2 ~=
  2 n^2 / p1^2``; we implement the sum;
* the paper's printed ``T_IT2D`` flop term ``gamma n^2 k / sqrt(p)`` is a
  typo for ``n^2 k / p`` (the conclusion table and ``F_Upd + F_Solve``
  agree on ``n^2 k / p``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.cost import Cost
from repro.inversion.cost_model import NU
from repro.util.mathutil import unit_step


def _log2(x: float) -> float:
    return math.log2(x) if x > 1 else 0.0


# ---------------------------------------------------------------------------
# Section IV-A: recursive TRSM (the "standard" baseline)
# ---------------------------------------------------------------------------


def recursive_cost_1d(n: int, k: int, p: int) -> Cost:
    """``T_RT1D = O(alpha log p + beta n^2 + gamma n^2 k/p)`` (``n < k/p``)."""
    n_f, k_f = float(n), float(k)
    return Cost(S=_log2(p), W=n_f * n_f * unit_step(p), F=n_f * n_f * k_f / p)


def recursive_cost_2d(n: int, k: int, p: int) -> Cost:
    """Standard-method 2D cost (``n > k sqrt(p)``).

    We use the Section IX conclusion-table entry
    ``S = sqrt(p) log p, W = nk log p / sqrt(p), F = n^2 k / p``.
    (Section IV-A's recurrence gives the slightly tighter ``S = O(sqrt(p))``;
    the paper's own table keeps the log factor and it is the table we
    reproduce — see EXPERIMENTS.md E1.)
    """
    n_f, k_f, p_f = float(n), float(k), float(p)
    sp = math.sqrt(p_f)
    return Cost(
        S=sp * max(_log2(p), 1.0),
        W=n_f * k_f * max(_log2(p), 1.0) / sp,
        F=n_f * n_f * k_f / p_f,
    )


def recursive_cost_3d(n: int, k: int, p: int) -> Cost:
    """``T_RT3D = O(alpha (np/k)^{2/3} log p + beta (n^2k/p)^{2/3}
    + gamma n^2k/p)`` (``k/p <= n <= k sqrt(p)``)."""
    n_f, k_f, p_f = float(n), float(k), float(p)
    return Cost(
        S=(n_f * p_f / k_f) ** (2.0 / 3.0) * max(_log2(p), 1.0),
        W=(n_f * n_f * k_f / p_f) ** (2.0 / 3.0),
        F=n_f * n_f * k_f / p_f,
    )


def recursive_cost(n: int, k: int, p: int) -> Cost:
    """Regime-dispatched Section IV-A cost (see
    :func:`repro.tuning.regimes.classify_trsm` for the boundaries)."""
    from repro.tuning.regimes import TrsmRegime, classify_trsm

    regime = classify_trsm(n, k, p)
    if regime is TrsmRegime.ONE_LARGE:
        return recursive_cost_1d(n, k, p)
    if regime is TrsmRegime.TWO_LARGE:
        return recursive_cost_2d(n, k, p)
    return recursive_cost_3d(n, k, p)


# ---------------------------------------------------------------------------
# Section VII: It-Inv-TRSM per-part costs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IterativeParts:
    """The three Section VII components plus their total."""

    inversion: Cost
    solve: Cost
    update: Cost

    @property
    def total(self) -> Cost:
        return self.inversion + self.solve + self.update


def inversion_part(n: int, n0: int, p1: int, p2: int, r1: float, r2: float) -> Cost:
    """Section VII-A: inverting the ``n/n0`` diagonal blocks.

    ``W_Inv = nu (n0^2/(8 r1^2) + n0^2/(2 r1 r2))``;
    ``F_Inv = n n0^2 / (8 p1^2 p2)``; ``S_Inv = O(log^2 p)``.
    """
    p = p1 * p1 * p2
    n0_f = float(n0)
    lg = _log2(p)
    r1 = max(r1, 1.0)
    r2 = max(r2, 1.0)
    return Cost(
        S=2.0 * lg * lg,
        W=NU * (n0_f**2 / (8.0 * r1**2) + n0_f**2 / (2.0 * r1 * r2)) * unit_step(p),
        F=float(n) * n0_f**2 / (8.0 * p1**2 * p2),
    )


def solve_part(n: int, k: int, n0: int, p1: int, p2: int) -> Cost:
    """Section VII-B: ``n/n0`` multiplications with the inverted blocks.

    ``W_Solve = (n/n0) [ (n0^2/p1^2) 1_{p2} + 4 (n0 k/(p1 p2)) 1_{p1} ]``;
    ``F_Solve = (n/n0) n0^2 k / (p1^2 p2)``; ``S_Solve = (n/n0) log p``.

    The latency term carries ``1_{p1}`` (with ``p1 = 1`` the per-iteration
    allreduce degenerates) plus one ``2 log p2`` round for the
    diagonal-block replication along the ``z`` fibers.
    """
    p = p1 * p1 * p2
    nb = n / n0
    n0_f, k_f = float(n0), float(k)
    return Cost(
        S=nb * max(_log2(p), 1.0 * unit_step(p)) * unit_step(p1)
        + 2.0 * _log2(p2) * unit_step(p2),
        W=nb
        * (
            (n0_f**2 / p1**2) * unit_step(p2)
            + 4.0 * (n0_f * k_f / (p1 * p2)) * unit_step(p1)
        ),
        F=nb * n0_f**2 * k_f / (p1**2 * p2),
    )


def update_part(n: int, k: int, n0: int, p1: int, p2: int) -> Cost:
    """Section VII-C: the deferred trailing updates.

    ``W_Upd = sum_i [ 4 (n - i n0) n0/p1^2 1_{p2} + 4 n0 k/(p1 p2) 1_{p1} ]``
    (panel broadcasts + the two allreductions);
    ``F_Upd = (n - n0)/n0 * k n n0/(p1^2 p2)``;
    ``S_Upd = ((n - n0)/n0) log p``.
    """
    p = p1 * p1 * p2
    nb = n // n0
    n_f, k_f, n0_f = float(n), float(k), float(n0)
    if nb <= 1:
        return Cost.zero()
    bcast_w = sum(4.0 * (n_f - i * n0_f) * n0_f / p1**2 for i in range(1, nb))
    reduce_w = (nb - 1) * 4.0 * n0_f * k_f / (p1 * p2)
    return Cost(
        S=(nb - 1) * max(_log2(p), 1.0 * unit_step(p)),
        W=bcast_w * unit_step(p2) + reduce_w * unit_step(p1),
        F=(n_f - n0_f) / n0_f * (k_f * n_f * n0_f / (p1**2 * p2)),
    )


def iterative_parts(
    n: int,
    k: int,
    n0: int,
    p1: int,
    p2: int,
    r1: float | None = None,
    r2: float | None = None,
) -> IterativeParts:
    """All three Section VII parts; ``r1``/``r2`` default to the paper's
    optimal inversion subgrid (Section VII-A)."""
    from repro.inversion.cost_model import optimal_inversion_grid

    p = p1 * p1 * p2
    if r1 is None or r2 is None:
        r1, r2 = optimal_inversion_grid(p, n0, n)
    return IterativeParts(
        inversion=inversion_part(n, n0, p1, p2, r1, r2),
        solve=solve_part(n, k, n0, p1, p2),
        update=update_part(n, k, n0, p1, p2),
    )


def iterative_cost(n: int, k: int, n0: int, p1: int, p2: int) -> Cost:
    """Total modeled It-Inv-TRSM cost for explicit parameters."""
    return iterative_parts(n, k, n0, p1, p2).total


# ---------------------------------------------------------------------------
# Section VIII tuned totals / Section IX conclusion table
# ---------------------------------------------------------------------------


def iterative_cost_1d(n: int, k: int, p: int) -> Cost:
    """``T_IT1D = O(alpha (log^2 p + log p) + beta n^2 + gamma n^2k/p)``."""
    n_f, k_f = float(n), float(k)
    lg = _log2(p)
    return Cost(S=lg * lg + lg, W=n_f * n_f * unit_step(p), F=n_f * n_f * k_f / p)


def iterative_cost_2d(n: int, k: int, p: int) -> Cost:
    """``T_IT2D = O(alpha (log^2 p + (n/k)^{3/4} p^{-1/8} log p)
    + beta nk/sqrt(p) + gamma n^2k/p)``."""
    n_f, k_f, p_f = float(n), float(k), float(p)
    lg = _log2(p)
    return Cost(
        S=lg * lg + (n_f / k_f) ** 0.75 * p_f ** (-0.125) * max(lg, 1.0),
        W=n_f * k_f / math.sqrt(p_f),
        F=n_f * n_f * k_f / p_f,
    )


def iterative_cost_3d(n: int, k: int, p: int) -> Cost:
    """``T_IT3D = O(alpha (log^2 p + max(sqrt(n/k),1) log p)
    + beta (n^2k/p)^{2/3} + gamma 2 n^2k/p)``."""
    n_f, k_f, p_f = float(n), float(k), float(p)
    lg = _log2(p)
    return Cost(
        S=lg * lg + max(math.sqrt(n_f / k_f), 1.0) * max(lg, 1.0),
        W=(n_f * n_f * k_f / p_f) ** (2.0 / 3.0),
        F=2.0 * n_f * n_f * k_f / p_f,
    )


def iterative_cost_tuned(n: int, k: int, p: int) -> Cost:
    """Regime-dispatched Section VIII tuned total."""
    from repro.tuning.regimes import TrsmRegime, classify_trsm

    regime = classify_trsm(n, k, p)
    if regime is TrsmRegime.ONE_LARGE:
        return iterative_cost_1d(n, k, p)
    if regime is TrsmRegime.TWO_LARGE:
        return iterative_cost_2d(n, k, p)
    return iterative_cost_3d(n, k, p)


def conclusion_row(n: int, k: int, p: int) -> dict[str, Cost]:
    """One row pair of the Section IX table: standard vs new method."""
    return {
        "standard": recursive_cost(n, k, p),
        "new": iterative_cost_tuned(n, k, p),
    }


def latency_improvement(n: int, k: int, p: int) -> float:
    """``S_standard / S_new`` — the paper's headline is
    ``Theta((n/k)^{1/6} p^{2/3})`` in the 3D regime."""
    row = conclusion_row(n, k, p)
    if row["new"].S == 0:
        return float("inf")
    return row["standard"].S / row["new"].S
