"""Top-level TRSM entry point with a-priori algorithm/parameter selection.

``trsm(L, B, p=...)`` is the one-call public API: it classifies the regime
(Section VIII), picks tuned parameters (closed forms by default, exhaustive
model search with ``tune="search"``), runs the chosen algorithm on real
data, verifies the residual, and returns a :class:`TrsmResult` bundling the
solution with the measured critical-path costs and the a-priori model
prediction.

Since the Cluster redesign this is a *thin wrapper* over a single-request
:class:`repro.api.Cluster` pinned to the full machine — the call behaves
(and charges) exactly as it always did, but multi-request workloads should
use the Cluster directly, which can pack many solves onto disjoint
subgrids concurrently.  The signature is kept for one release of
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.machine import Machine
from repro.machine.validate import ParameterError, require
from repro.tuning.parameters import TuningChoice
from repro.util.mathutil import is_power_of_two


@dataclass
class TrsmResult:
    """Solution plus the simulation's cost accounting."""

    X: np.ndarray
    algorithm: str
    machine: Machine
    choice: TuningChoice | None
    modeled: Cost
    measured: Cost = field(init=False)
    time: float = field(init=False)
    residual: float | None = None

    def __post_init__(self) -> None:
        self.measured = self.machine.critical_path()
        self.time = self.machine.time()

    def phase_costs(self) -> dict[str, Cost]:
        """Per-phase costs (iterative algorithm: inversion/solve/update)."""
        return {
            name: self.machine.phase_cost(name)
            for name in self.machine.phase_names()
        }


def trsm(
    L: np.ndarray,
    B: np.ndarray,
    p: int,
    algorithm: str = "auto",
    params: CostParams | None = None,
    tune: str = "closed_form",
    n0: int | None = None,
    verify: bool = True,
    base_n: int = 8,
    backend=None,
) -> TrsmResult:
    """Solve ``L X = B`` on a simulated ``p``-processor machine.

    .. deprecated:: 1.1
        ``trsm`` now wraps a single-request :class:`repro.api.Cluster`
        pinned to the full machine; results are bit-identical to the
        pre-Cluster path.  For more than one solve per machine, build a
        ``Cluster`` and submit :class:`repro.api.TrsmRequest` s — the
        subgrid scheduler runs them concurrently.

    Parameters
    ----------
    L, B:
        Global operands (``n x n`` lower triangular, ``n x k``; a vector
        ``B`` is treated as ``k = 1``).
    p:
        Number of simulated processors (power of two).
    algorithm:
        ``"iterative"`` (It-Inv-TRSM, the paper's contribution),
        ``"recursive"`` (Rec-TRSM baseline), or ``"auto"`` — iterative
        unless ``p == 1``.
    params:
        Machine cost constants (``alpha, beta, gamma``).
    tune:
        ``"closed_form"`` — Section VIII formulas; ``"search"`` —
        exhaustive discrete minimization of the modeled time.
    n0:
        Override the inverted-block size (must divide ``n``).
    verify:
        Compute and store the relative residual.
    base_n:
        Redundant-inversion cutoff passed down to ``rec_tri_inv``.
    backend:
        Execution backend (``None``/``"sim"``/``"mpi"`` or a
        :class:`~repro.backend.Backend`); values are identical across
        backends, ``"mpi"`` adds measured Alltoallv transport.
    """
    from repro.api import Cluster, TrsmRequest

    require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
    L = np.asarray(L, dtype=np.float64)
    vector = np.asarray(B).ndim == 1
    B2 = np.asarray(B, dtype=np.float64).reshape(L.shape[0], -1)

    cluster = Cluster(p, params=params, backend=backend)
    rid = cluster.submit(
        TrsmRequest(
            L=L,
            B=B2,
            algorithm=algorithm,
            tune=tune,
            n0=n0,
            verify=verify,
            base_n=base_n,
            sizes=(p,),  # the legacy contract: the whole machine
        )
    )
    rec = cluster.run().record(rid)

    result = TrsmResult(
        X=rec.value,
        algorithm=rec.algorithm,
        machine=cluster.machine,
        choice=rec.choice,
        modeled=rec.modeled,
    )
    result.residual = rec.residual
    if vector:
        result.X = result.X[:, 0]
    return result
