"""Top-level TRSM entry point with a-priori algorithm/parameter selection.

``trsm(L, B, p=...)`` is the one-call public API: it classifies the regime
(Section VIII), picks tuned parameters (closed forms by default, exhaustive
model search with ``tune="search"``), allocates a simulated machine, runs
the chosen algorithm on real data, verifies the residual, and returns a
:class:`TrsmResult` bundling the solution with the measured critical-path
costs and the a-priori model prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.machine import Machine
from repro.machine.validate import ParameterError, require
from repro.trsm.cost_model import iterative_cost, recursive_cost
from repro.trsm.iterative import it_inv_trsm_global
from repro.trsm.recursive import rec_trsm_global
from repro.tuning.optimizer import optimize_parameters
from repro.tuning.parameters import TuningChoice, tuned_parameters
from repro.util.checking import relative_residual
from repro.util.mathutil import is_power_of_two


@dataclass
class TrsmResult:
    """Solution plus the simulation's cost accounting."""

    X: np.ndarray
    algorithm: str
    machine: Machine
    choice: TuningChoice | None
    modeled: Cost
    measured: Cost = field(init=False)
    time: float = field(init=False)
    residual: float | None = None

    def __post_init__(self) -> None:
        self.measured = self.machine.critical_path()
        self.time = self.machine.time()

    def phase_costs(self) -> dict[str, Cost]:
        """Per-phase costs (iterative algorithm: inversion/solve/update)."""
        return {
            name: self.machine.phase_cost(name)
            for name in self.machine.phase_names()
        }


def trsm(
    L: np.ndarray,
    B: np.ndarray,
    p: int,
    algorithm: str = "auto",
    params: CostParams | None = None,
    tune: str = "closed_form",
    n0: int | None = None,
    verify: bool = True,
    base_n: int = 8,
) -> TrsmResult:
    """Solve ``L X = B`` on a simulated ``p``-processor machine.

    Parameters
    ----------
    L, B:
        Global operands (``n x n`` lower triangular, ``n x k``; a vector
        ``B`` is treated as ``k = 1``).
    p:
        Number of simulated processors (power of two).
    algorithm:
        ``"iterative"`` (It-Inv-TRSM, the paper's contribution),
        ``"recursive"`` (Rec-TRSM baseline), or ``"auto"`` — iterative
        unless ``p == 1``.
    params:
        Machine cost constants (``alpha, beta, gamma``).
    tune:
        ``"closed_form"`` — Section VIII formulas; ``"search"`` —
        exhaustive discrete minimization of the modeled time.
    n0:
        Override the inverted-block size (must divide ``n``).
    verify:
        Compute and store the relative residual.
    base_n:
        Redundant-inversion cutoff passed down to ``rec_tri_inv``.
    """
    require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
    L = np.asarray(L, dtype=np.float64)
    B2 = np.asarray(B, dtype=np.float64)
    n = L.shape[0]
    B2 = B2.reshape(n, -1)
    k = B2.shape[1]
    params = params or CostParams()

    if algorithm == "auto":
        algorithm = "iterative" if p > 1 else "recursive"
    require(
        algorithm in ("iterative", "recursive"),
        ParameterError,
        f"unknown algorithm {algorithm!r}",
    )

    machine = Machine(p, params=params)

    if algorithm == "recursive":
        Xd = rec_trsm_global(machine, L, B2)
        X = Xd.to_global()
        result = TrsmResult(
            X=X,
            algorithm="recursive",
            machine=machine,
            choice=None,
            modeled=recursive_cost(n, k, p),
        )
    else:
        if tune == "search":
            choice = optimize_parameters(n, k, p, params=params)
        else:
            require(
                tune == "closed_form",
                ParameterError,
                f"unknown tune mode {tune!r}",
            )
            choice = tuned_parameters(n, k, p)
        if n0 is not None:
            require(n % n0 == 0, ParameterError, f"n0={n0} must divide n={n}")
            choice = TuningChoice(
                regime=choice.regime,
                p1=choice.p1,
                p2=choice.p2,
                n0=n0,
                r1=choice.r1,
                r2=choice.r2,
            )
        Xd = it_inv_trsm_global(
            machine, L, B2, p1=choice.p1, p2=choice.p2, n0=choice.n0, base_n=base_n
        )
        X = Xd.to_global()
        result = TrsmResult(
            X=X,
            algorithm="iterative",
            machine=machine,
            choice=choice,
            modeled=iterative_cost(n, k, choice.n0, choice.p1, choice.p2),
        )

    if verify:
        result.residual = relative_residual(L, result.X, B2)
    if np.asarray(B).ndim == 1:
        result.X = result.X[:, 0]
    return result
