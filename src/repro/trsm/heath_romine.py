"""Heath-Romine parallel triangular solve for a single right-hand side.

The paper cites this (Section II-C3) as the communication-optimal schedule
for ``k = 1`` — and as the motivation for doing something smarter when
``k > 1``: substitution on one vector is inherently serial in ``n`` steps,
so its latency cost is Theta(n) no matter how many processors participate.

We implement the column-cyclic *fan-in* variant: processor ``j mod p`` owns
column ``j``.  At step ``j`` the owner receives the accumulated inner
products for row ``j``, computes ``x_j``, and locally folds ``x_j`` into
its running partial sums for all later rows; the partial for row ``j+1``
is summed across processors with one (pipelinable) reduction of a single
word.  Charged cost per step: one message round (``S = 1``), two words, and
the local update flops — ``S = Theta(n)`` total, which is the behaviour the
latency benches contrast with the paper's algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.validate import ShapeError, require


def heath_romine_trsv(
    machine: Machine,
    L: np.ndarray,
    b: np.ndarray,
    check: bool = True,
) -> np.ndarray:
    """Solve ``L x = b`` (single RHS) on all ranks of ``machine``.

    Columns are dealt cyclically to the ``p`` ranks.  Returns the solution
    vector; the machine's counters hold the Theta(n)-latency schedule cost.
    """
    L = np.asarray(L, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    n = require_square(L, "L")
    require(b.shape[0] == n, ShapeError, f"b has {b.shape[0]} entries, L is {n} x {n}")
    if check:
        require_lower_triangular(L, "L")
        require_nonsingular_triangular(L, "L")

    p = machine.n_ranks
    group = list(range(p))
    # partial[r][i] = sum over owned columns j < current of L[i, j] * x[j]
    partial = {r: np.zeros(n) for r in group}
    x = np.zeros(n)

    for j in range(n):
        owner = j % p
        # Fan-in: the owner needs sum_r partial[r][j].  One pipelined
        # single-word reduction per step.
        s = sum(partial[r][j] for r in group)
        if p > 1:
            machine.charge(
                group, Cost(S=1.0, W=2.0, F=1.0), label="heath_romine.fanin"
            )
        x[j] = (b[j] - s) / L[j, j]
        machine.charge(
            [owner], Cost(S=0.0, W=0.0, F=1.0), label="heath_romine.solve", sync=False
        )
        # Owner folds x_j into its partial sums for the rows below.
        if j + 1 < n:
            partial[owner][j + 1 :] += L[j + 1 :, j] * x[j]
            machine.charge(
                [owner],
                Cost(S=0.0, W=0.0, F=float(n - j - 1)),
                label="heath_romine.update",
                sync=False,
            )
    return x
