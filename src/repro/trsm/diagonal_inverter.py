"""Diagonal-Inverter (Section VI-A): selective inversion of diagonal blocks.

Splits the ``n x n`` triangular matrix into ``n/n0`` diagonal blocks of size
``n0`` and inverts each on its **own subgrid of processors**, all blocks in
parallel.  The subgrids partition the whole machine: with ``p`` processors
and ``n/n0`` blocks each subgrid has ``q = p*n0/n`` processors (the paper's
``r1 x r1 x r2`` with ``r1^2 r2 = q``; we use the largest square
``s_b x s_b <= q`` that :func:`repro.inversion.rec_tri_inv` accepts, see
DESIGN.md §2 on grid substitutions).

Data movement matches the paper's lines 6/9/16/17: the block pieces move
from the owning 2D plane to the inversion subgrid and back.  Each direction
is a **fused transition** (extract + redistribute down, redistribute + embed
back) charged at the exact per-pair routing cost — never of leading order
next to the inversion itself, and the embed back into the plane is charged
whenever the ``(lo, lo)`` offset moves words between ranks (the old scratch
assembly moved them silently for free).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.redistribute import route_embed, route_submatrix
from repro.dist.triangular import require_square
from repro.inversion.rec_tri_inv import rec_tri_inv
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.util.mathutil import prev_power_of_two


def inversion_subgrid_side(p: int, n: int, n0: int) -> int:
    """Side of the square inversion subgrid for each diagonal block.

    ``q = p*n0/n`` processors are available per block; we use the largest
    power-of-two square that fits, ``s_b = prev_pow2(floor(sqrt(q)))``.
    """
    nb = n // n0
    q = max(p // nb, 1)
    return prev_power_of_two(max(math.isqrt(q), 1))


def diagonal_inverter(
    L: DistMatrix,
    n0: int,
    pool: list[int] | None = None,
    base_n: int = 8,
) -> DistMatrix:
    """Invert the ``n/n0`` diagonal blocks of ``L``; zero elsewhere.

    ``L`` is cyclically distributed on a 2D grid (in the iterative solver:
    the ``z = 0`` plane of the 3D grid).  ``pool`` lists the machine ranks
    available for the concurrent inversions (default: the grid's own
    ranks); the pool is chopped into one square subgrid per block.  Returns
    the block-diagonal matrix ``inv(diag blocks)`` distributed like ``L``.
    """
    machine = L.machine
    n = require_square(L, "L")
    require(
        n0 >= 1 and n % n0 == 0,
        ParameterError,
        f"n0={n0} must divide n={n}",
    )
    nb = n // n0
    if pool is None:
        pool = L.grid.ranks()
    p_pool = len(pool)
    side = inversion_subgrid_side(p_pool, n, n0)
    chunk = max(p_pool // nb, 1)

    result = DistMatrix.zeros(machine, L.grid, L.layout, (n, n))
    for b in range(nb):
        lo, hi = b * n0, (b + 1) * n0
        ranks = pool[(b * chunk) % p_pool :][: side * side]
        if len(ranks) < side * side:  # wrap-around tail: reuse leading ranks
            ranks = (pool * 2)[(b * chunk) % p_pool :][: side * side]
        subgrid = ProcessorGrid(
            np.asarray(ranks, dtype=np.int64).reshape(side, side)
        )
        sub_layout = CyclicLayout(side, side)
        # Lines 6 + 9: plane -> subgrid, extract + redistribute fused into
        # one exact charge.
        block_sub = route_submatrix(
            L, lo, hi, lo, hi, subgrid, sub_layout, label="diaginv.to_subgrid"
        )
        inv_sub = rec_tri_inv(block_sub, base_n=base_n)
        # Lines 16 + 17: subgrid -> plane, redistribute + embed fused; the
        # (lo, lo) offset is charged exactly when it moves words.
        route_embed(inv_sub, result, lo, lo, label="diaginv.from_subgrid")

    return result
