"""BLAS-style TRSM variants mapped onto the lower-triangular core.

The paper treats the canonical case — ``L X = B`` with ``L`` lower
triangular — and notes the other cases are symmetric.  This module supplies
the full solve surface a downstream user expects, by reducing every variant
to the canonical one through cost-free index reversals and transposes
(performed on the *global* operands before distribution, so they model the
caller laying out data appropriately, exactly as a ScaLAPACK user would):

* **upper triangular** ``U X = B``: with the anti-identity ``P``,
  ``P U P`` is lower triangular and ``U X = B  <=>  (P U P)(P X) = P B``;
* **transposed** ``L^T X = B``: ``L^T`` is upper triangular — same trick;
* **unit diagonal**: the diagonal is taken as exactly 1 (BLAS ``diag='U'``).

Every variant returns the same :class:`~repro.trsm.solver.TrsmResult`, with
costs measured by the underlying simulated run.
"""

from __future__ import annotations

import numpy as np

from repro.dist.triangular import require_square
from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, ShapeError, require
from repro.trsm.solver import TrsmResult, trsm
from repro.util.checking import relative_residual


def _reverse(n: int) -> np.ndarray:
    """Index vector of the anti-identity permutation."""
    return np.arange(n)[::-1]


def solve_triangular(
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    lower: bool = True,
    trans: bool = False,
    unit_diagonal: bool = False,
    **kwargs,
) -> TrsmResult:
    """Solve ``op(A) X = B`` on a simulated ``p``-processor machine.

    ``op(A)`` is ``A`` or ``A.T`` (``trans=True``); ``A`` is lower
    (``lower=True``) or upper triangular.  Per BLAS semantics **only the
    referenced triangle of ``A`` is read** — anything stored in the other
    half (e.g. the opposite factor in a packed LU) is ignored.
    ``unit_diagonal=True`` ignores the stored diagonal and uses 1 (the
    factor convention of LU without pivot scaling).  Remaining keyword
    arguments are forwarded to :func:`repro.trsm.solver.trsm`
    (``algorithm``, ``params``, ``n0``, ...).
    """
    A = np.asarray(A, dtype=np.float64)
    n = require_square(A, "A")
    Bv = np.asarray(B, dtype=np.float64)
    vector = Bv.ndim == 1
    require(
        Bv.shape[0] == n, ShapeError, f"B has {Bv.shape[0]} rows, A is {n} x {n}"
    )
    B2 = Bv.reshape(n, -1)

    M = A.T if trans else A
    effectively_lower = lower != trans  # XOR: transposing flips the triangle
    # Read only the referenced triangle (BLAS convention).
    M = np.tril(M) if effectively_lower else np.triu(M)
    if unit_diagonal:
        M = M.copy()
        np.fill_diagonal(M, 1.0)

    if effectively_lower:
        result = trsm(M, B2, p=p, **kwargs)
        X = result.X.reshape(n, -1)
    else:
        rev = _reverse(n)
        M_rev = M[np.ix_(rev, rev)]  # P M P: lower triangular
        result = trsm(M_rev, B2[rev, :], p=p, **kwargs)
        X = result.X.reshape(n, -1)[rev, :]
        result.X = X
        if result.residual is not None:
            result.residual = relative_residual(M, X, B2)

    if vector:
        result.X = result.X.reshape(n, -1)[:, 0]
    return result


def solve_lu(
    A: np.ndarray,
    B: np.ndarray,
    p: int,
    params: CostParams | None = None,
    **kwargs,
) -> tuple[np.ndarray, TrsmResult, TrsmResult]:
    """Solve a general system ``A X = B`` via LU + two parallel TRSMs.

    The factorization is computed locally (scipy's LAPACK binding) — the
    paper's subject is the solve phase, which is where the communication
    lives once a factorization exists.  Returns ``(X, forward, backward)``
    where the two :class:`TrsmResult` objects carry the simulated costs of
    the unit-lower and upper solves.
    """
    import scipy.linalg as sla

    A = np.asarray(A, dtype=np.float64)
    n = require_square(A, "A")
    Bv = np.asarray(B, dtype=np.float64)
    vector = Bv.ndim == 1
    B2 = Bv.reshape(n, -1)

    lu, piv = sla.lu_factor(A)
    perm = np.arange(n)
    for i, pv in enumerate(piv):
        perm[i], perm[pv] = perm[pv], perm[i]

    fwd = solve_triangular(
        lu, B2[perm, :], p=p, lower=True, unit_diagonal=True, params=params, **kwargs
    )
    bwd = solve_triangular(
        lu, fwd.X.reshape(n, -1), p=p, lower=False, params=params, **kwargs
    )
    X = bwd.X.reshape(n, -1)
    require(
        relative_residual(A, X, B2) < 1e-8 or n < 2,
        ParameterError,
        "LU solve verification failed (is A numerically singular?)",
    )
    return (X[:, 0] if vector else X), fwd, bwd
