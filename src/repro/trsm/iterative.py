"""It-Inv-TRSM (Section VI-B): the paper's main contribution.

Solves ``L X = B`` on a ``p1 x p1 x p2`` processor grid by first inverting
the ``n/n0`` diagonal blocks of ``L`` (Diagonal-Inverter, each block on its
own subgrid, all concurrent), then running ``n/n0`` iterations in which the
latency-bound small triangular solves of the classical algorithm are
replaced by **matrix multiplications with the pre-inverted blocks**:

* *solve* (lines 4-5): ``X(Si) = inv(L(Si,Si)) @ B(Si)`` — a local product
  with the owned pieces, summed with one allreduce over the ``x`` fibers;
* *update* (lines 6-9): broadcast the panel ``L(Ti+1, Si)`` along the ``z``
  fibers, accumulate ``L(Ti+1,Si) @ X(Si)`` into per-``y`` partial buffers,
  and reduce **only the next block row** ``S_{i+1}`` over the ``y`` fibers
  (deferring the rest is what keeps every word reduced exactly once).

Distribution conventions (all index arithmetic is cyclic over ``p1`` rows):

* ``L`` lives on the ``z = 0`` plane, ``L`` pieces at ``(x, y, 0)`` hold
  rows ``= x (mod p1)``, columns ``= y (mod p1)``;
* ``B`` enters on the ``y = 0`` plane at ``(x, 0, z)`` holding rows
  ``= x (mod p1)`` and the ``z``-th contiguous column slab (``k/p2``
  columns), and is replicated across ``y`` in a setup broadcast (the
  paper's line-2 broadcast, extended to all of ``B``; see DESIGN.md);
* the inverted diagonal pieces are replicated along ``z`` and transposed
  across ``(x, y)`` once in setup, which carries the ``n0^2/p1^2 * 1_{p2}``
  per-iteration term of the paper's ``W_Solve`` as a one-off charge of the
  same total size.

``X`` returns on the ``y = 0`` plane distributed exactly like ``B``.
Phase attribution (``machine.phase``): "inversion", "solve", "update",
"setup" — the E6 bench compares each against the Section VII formulas.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import BlockCyclicLayout, BlockedLayout, CyclicLayout, Layout
from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.machine.collectives import allreduce, bcast, sendrecv
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ParameterError, ShapeError, require
from repro.trsm.diagonal_inverter import diagonal_inverter
from repro.util.mathutil import split_indices


class _RowCyclicColBlocked(Layout):
    """Rows block-cyclic over ``pr`` with physical block size ``b``,
    columns in ``pc`` contiguous slabs.

    This is the paper's layout for ``B`` on the ``(x, z)`` plane — the
    Require clause's "blocked layout with a physical block size of
    ``b x k/p2``".  ``b = 1`` (the default everywhere) is element-cyclic.
    The index maps are the shared ``dist.layout`` machinery: rows from a
    one-axis :class:`BlockCyclicLayout`, columns from a one-axis
    :class:`BlockedLayout`.
    """

    def __init__(self, pr: int, pc: int, b: int = 1):
        if b < 1:
            raise ValueError(f"row block size must be >= 1, got {b}")
        super().__init__(pr, pc)
        self.b = int(b)
        self._row_map = BlockCyclicLayout(pr, 1, br=self.b)
        self._col_map = BlockedLayout(1, pc)

    def _rows(self, x: int, m: int) -> np.ndarray:
        return self._row_map.row_indices(x, m)

    def _cols(self, y: int, n: int) -> np.ndarray:
        return self._col_map.col_indices(y, n)

    def _key(self) -> tuple:
        return ("_RowCyclicColBlocked", self.pr, self.pc, self.b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_RowCyclicColBlocked(pr={self.pr}, pc={self.pc}, b={self.b})"


def it_inv_trsm(
    machine: Machine,
    grid3d: ProcessorGrid,
    L: DistMatrix,
    B: DistMatrix,
    n0: int,
    base_n: int = 8,
    Ltilde: DistMatrix | None = None,
) -> DistMatrix:
    """Solve ``L X = B`` with selective diagonal-block inversion.

    ``grid3d`` must be ``p1 x p1 x p2``; ``L`` cyclic on its ``z = 0``
    plane; ``B`` on its ``y = 0`` plane in the row-cyclic/column-blocked
    layout.  ``n0`` must divide ``n``.  Returns ``X`` distributed like
    ``B``.

    ``Ltilde`` may supply pre-inverted diagonal blocks from a previous
    solve against the same ``L`` (see :class:`~repro.trsm.prepared.
    PreparedTrsm`), skipping the inversion phase entirely — the paper's
    Section II-C3 amortization across repeated solves.
    """
    require(grid3d.ndim == 3, GridError, f"need a 3D grid, got {grid3d.shape}")
    p1a, p1b, p2 = grid3d.shape
    require(
        p1a == p1b,
        GridError,
        f"grid must be p1 x p1 x p2, got {grid3d.shape}",
    )
    p1 = p1a
    n = require_square(L, "L")
    require(B.shape[0] == n, ShapeError, "B row count must match L")
    require(n % n0 == 0 and n0 >= 1, ParameterError, f"n0={n0} must divide n={n}")
    k = B.shape[1]
    nb = n // n0
    col_slabs = split_indices(k, p2)

    # replint: disable=no-global-gather -- triangularity precondition check, not a data path; never charged by design
    Lg_check = L.to_global()
    require_lower_triangular(Lg_check, "L")
    require_nonsingular_triangular(Lg_check, "L")

    # ---------------- phase: inversion (Diagonal-Inverter) -------------------
    if Ltilde is None:
        with machine.phase("inversion"):
            Ltilde = diagonal_inverter(L, n0, pool=grid3d.ranks(), base_n=base_n)

    # Local views of the global operands (assembled from owned blocks only).
    Lg = L.to_global()  # replint: disable=no-global-gather -- simulator-local scratch view; each rank only reads the slices it owns
    Dg = Ltilde.to_global()  # replint: disable=no-global-gather -- same scratch view for the inverted diagonal blocks

    # Row-ownership classes.  The algorithm is valid for any partition of
    # the rows into p1 classes as long as L's column classes and B's row
    # classes coincide, so the partition comes straight from B's layout
    # (the paper's Require clause is the b-block-cyclic special case).
    rows_of = [B.layout.row_indices(c, n) for c in range(p1)]

    # ---------------- phase: setup (replications) ----------------------------
    # B: broadcast each (x, z) block along its y fiber; afterwards every
    # (x, y, z) holds a private running copy of B(rows = x, slab z).
    Brep: dict[tuple[int, int, int], np.ndarray] = {}
    with machine.phase("setup"):
        for x in range(p1):
            for z in range(p2):
                fiber = grid3d.fiber(1, (x, 0, z))
                root = grid3d.rank((x, 0, z))
                block = B.blocks[root]
                got = bcast(machine, fiber, root, block, label="itinv.setup_bcastB")
                for y in range(p1):
                    Brep[(x, y, z)] = got[grid3d.rank((x, y, z))].copy()

    # Diagonal-inverse pieces: replicate along z, then transpose (x, y).
    # After this, (x, y, z) holds piece_T[b] = Dinv_b[rows = y, cols = x].
    # The paper charges this replication inside the per-iteration solve MMs
    # (the n0^2/p1^2 * 1_{p2} term of W_Solve); we realize the same total
    # volume once up front, attributed to the "solve" phase accordingly.
    piecesT: dict[tuple[int, int], list[np.ndarray]] = {}
    for x in range(p1):
        for y in range(p1):
            piece = [
                Dg[np.ix_(
                    rows_of[y][(rows_of[y] >= b * n0) & (rows_of[y] < (b + 1) * n0)],
                    rows_of[x][(rows_of[x] >= b * n0) & (rows_of[x] < (b + 1) * n0)],
                )]
                for b in range(nb)
            ]
            piecesT[(x, y)] = piece
    with machine.phase("solve"):
        for x in range(p1):
            for y in range(p1):
                if p2 > 1:
                    fiber = grid3d.fiber(2, (x, y, 0))
                    words = sum(pc.size for pc in piecesT[(x, y)])
                    machine.charge(
                        fiber,
                        machine.coll.bcast(p2, float(words)),
                        label="itinv.solve_bcastD",
                    )
                if x != y:
                    for z in range(p2):
                        a = grid3d.rank((x, y, z))
                        bb = grid3d.rank((y, x, z))
                        if a < bb:
                            w = float(sum(pc.size for pc in piecesT[(x, y)]))
                            machine.charge(
                                [a, bb],
                                Cost(S=1.0, W=w, F=0.0),
                                label="itinv.solve_transposeD",
                            )

    # Working set per rank: the replicated B copy, the update accumulator,
    # the X pieces and the transposed diagonal-inverse pieces.
    for x in range(p1):
        for y in range(p1):
            piece_words = float(sum(pc.size for pc in piecesT[(x, y)]))
            for z in range(p2):
                machine.memory.observe(
                    grid3d.rank((x, y, z)),
                    3.0 * Brep[(x, y, z)].size + piece_words,
                )

    # Per-rank accumulators for the deferred updates (the paper's B_y).
    Acc: dict[tuple[int, int, int], np.ndarray] = {
        (x, y, z): np.zeros_like(Brep[(x, y, z)])
        for x in range(p1)
        for y in range(p1)
        for z in range(p2)
    }
    # X output pieces: (x, y, z) accumulates X(rows = y, slab z).
    Xrep: dict[tuple[int, int, int], np.ndarray] = {
        (x, y, z): np.zeros((len(rows_of[y]), col_slabs[z][1] - col_slabs[z][0]))
        for x in range(p1)
        for y in range(p1)
        for z in range(p2)
    }

    for i in range(nb):
        lo, hi = i * n0, (i + 1) * n0

        # ---------------- phase: solve (lines 4-5) ---------------------------
        with machine.phase("solve"):
            partials: dict[tuple[int, int, int], np.ndarray] = {}
            flops: dict[int, Cost] = {}
            for x in range(p1):
                for y in range(p1):
                    for z in range(p2):
                        sel_x = (rows_of[x] >= lo) & (rows_of[x] < hi)
                        piece = piecesT[(x, y)][i]  # Dinv_i[rows=y, cols=x]
                        bpart = Brep[(x, y, z)][sel_x, :]
                        partials[(x, y, z)] = piece @ bpart
                        flops[grid3d.rank((x, y, z))] = Cost(
                            0.0, 0.0, float(piece.shape[0]) * piece.shape[1] * bpart.shape[1]
                        )
            machine.charge_local(flops, label="itinv.solve_local")
            for y in range(p1):
                for z in range(p2):
                    fiber = grid3d.fiber(0, (0, y, z))
                    contribs = {
                        grid3d.rank((x, y, z)): partials[(x, y, z)] for x in range(p1)
                    }
                    summed = allreduce(machine, fiber, contribs, label="itinv.solve_allreduce")
                    sel_y = (rows_of[y] >= lo) & (rows_of[y] < hi)
                    for x in range(p1):
                        Xrep[(x, y, z)][sel_y, :] = summed[grid3d.rank((x, y, z))]

        if i + 1 >= nb:
            break

        # ---------------- phase: update (lines 6-9) ---------------------------
        with machine.phase("update"):
            nlo, nhi = (i + 1) * n0, (i + 2) * n0
            upd_flops: dict[int, Cost] = {}
            for x in range(p1):
                for y in range(p1):
                    sel_rx = rows_of[x] >= hi  # T_{i+1} rows owned by x
                    sel_cy = (rows_of[y] >= lo) & (rows_of[y] < hi)
                    panel = Lg[np.ix_(rows_of[x][sel_rx], rows_of[y][sel_cy])]
                    if p2 > 1:
                        fiber = grid3d.fiber(2, (x, y, 0))
                        machine.charge(
                            fiber,
                            machine.coll.bcast(p2, float(panel.size)),
                            label="itinv.update_bcast_panel",
                        )
                    for z in range(p2):
                        xs = Xrep[(x, y, z)][(rows_of[y] >= lo) & (rows_of[y] < hi), :]
                        contrib = panel @ xs
                        Acc[(x, y, z)][sel_rx, :] += contrib
                        upd_flops[grid3d.rank((x, y, z))] = Cost(
                            0.0,
                            0.0,
                            float(panel.shape[0]) * panel.shape[1] * xs.shape[1],
                        )
            machine.charge_local(upd_flops, label="itinv.update_local")
            for x in range(p1):
                for z in range(p2):
                    fiber = grid3d.fiber(1, (x, 0, z))
                    sel_next = (rows_of[x] >= nlo) & (rows_of[x] < nhi)
                    contribs = {
                        grid3d.rank((x, y, z)): Acc[(x, y, z)][sel_next, :]
                        for y in range(p1)
                    }
                    summed = allreduce(machine, fiber, contribs, label="itinv.update_allreduce")
                    for y in range(p1):
                        Brep[(x, y, z)][sel_next, :] -= summed[grid3d.rank((x, y, z))]

    # ---------------- final transpose back to the B layout --------------------
    with machine.phase("setup"):
        for z in range(p2):
            for x in range(p1):
                for y in range(x, p1):
                    a = grid3d.rank((x, y, z))
                    bb = grid3d.rank((y, x, z))
                    if a != bb:
                        sendrecv(
                            machine,
                            a,
                            bb,
                            Xrep[(x, y, z)],
                            Xrep[(y, x, z)],
                            label="itinv.final_transpose",
                        )

    # After the exchange, rank (x, 0, z) holds the array produced at
    # (0, x, z), i.e. X(row class x, column slab z) — exactly B's layout,
    # whatever row partition it prescribed (rows_of came from it).
    out_grid = grid3d.plane(1, 0)  # the (x, z) plane, shape p1 x p2
    layout = B.layout
    blocks = {
        out_grid.rank((x, z)): Xrep[(0, x, z)]
        for x in range(p1)
        for z in range(p2)
    }
    return DistMatrix(machine, out_grid, layout, (n, k), blocks)


def it_inv_trsm_global(
    machine: Machine,
    L_global: np.ndarray,
    B_global: np.ndarray,
    p1: int,
    p2: int,
    n0: int,
    base_n: int = 8,
    row_block: int = 1,
    grid3d: ProcessorGrid | None = None,
) -> DistMatrix:
    """Distribute ``L``/``B`` per the paper's conventions and solve.

    ``row_block`` is the paper's physical row block size ``b`` for ``B``;
    ``L`` is distributed with the matching block-cyclic partition so the
    two operands' row/column classes align.  ``grid3d`` supplies an
    externally owned ``p1 x p1 x p2`` grid (e.g. a Cluster subgrid lease)
    instead of allocating fresh ranks from the machine.
    """
    n = L_global.shape[0]
    B2 = np.asarray(B_global, dtype=np.float64).reshape(n, -1)
    if grid3d is None:
        grid3d = machine.grid(p1, p1, p2)
    require(
        grid3d.shape == (p1, p1, p2),
        GridError,
        f"grid3d has shape {grid3d.shape}, parameters say ({p1}, {p1}, {p2})",
    )
    plane_L = grid3d.plane(2, 0)
    plane_B = grid3d.plane(1, 0)
    L_layout = (
        CyclicLayout(p1, p1)
        if row_block == 1
        else BlockCyclicLayout(p1, p1, br=row_block, bc=row_block)
    )
    L = DistMatrix.from_global(
        machine, plane_L, L_layout, np.asarray(L_global, dtype=np.float64)
    )
    B = DistMatrix.from_global(
        machine, plane_B, _RowCyclicColBlocked(p1, p2, b=row_block), B2
    )
    return it_inv_trsm(machine, grid3d, L, B, n0=n0, base_n=base_n)
