"""Sequential lower-triangular solves (reference kernels, built from scratch).

``forward_substitution`` is the textbook row-by-row algorithm;
``trsm_lower_sequential`` is its blocked BLAS-3 formulation (solve a
diagonal block, update the trailing rows with one GEMM) — the local kernel
used by the parallel algorithms' base cases.  Both cost ``n^2 k / 2``
multiply-adds.
"""

from __future__ import annotations

import numpy as np

from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.machine.validate import ShapeError, require


def forward_substitution(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve ``L X = B`` row by row (unblocked reference).

    ``B`` may be a vector or a matrix; the result matches its shape.
    """
    L = np.asarray(L, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    n = require_square(L, "L")
    vector = B.ndim == 1
    if vector:
        B = B[:, None]
    require(
        B.shape[0] == n,
        ShapeError,
        f"B has {B.shape[0]} rows, L is {n} x {n}",
    )
    X = np.zeros_like(B)
    for i in range(n):
        X[i, :] = (B[i, :] - L[i, :i] @ X[:i, :]) / L[i, i]
    return X[:, 0] if vector else X


def trsm_lower_sequential(
    L: np.ndarray,
    B: np.ndarray,
    block: int = 64,
    check: bool = True,
) -> np.ndarray:
    """Blocked sequential TRSM: ``X = inv(L) @ B``.

    Processes ``block`` rows at a time: an unblocked solve on the diagonal
    block, then one GEMM update of the remaining rows.  Numerically this is
    the standard backward-stable substitution algorithm.
    """
    L = np.asarray(L, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    n = require_square(L, "L")
    if check:
        require_lower_triangular(L, "L")
        require_nonsingular_triangular(L, "L")
    vector = B.ndim == 1
    if vector:
        B = B[:, None]
    require(
        B.shape[0] == n,
        ShapeError,
        f"B has {B.shape[0]} rows, L is {n} x {n}",
    )
    block = max(int(block), 1)
    X = B.copy()
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        X[lo:hi, :] = forward_substitution(L[lo:hi, lo:hi], X[lo:hi, :])
        if hi < n:
            X[hi:, :] -= L[hi:, lo:hi] @ X[lo:hi, :]
    return X[:, 0] if vector else X
