"""Triangular solve with multiple right-hand sides (the paper's subject).

* :mod:`repro.trsm.sequential` — forward substitution and the blocked
  BLAS-3 sequential TRSM (local kernel + reference);
* :mod:`repro.trsm.heath_romine` — the classical single-RHS parallel
  baseline (Section II-C3);
* :mod:`repro.trsm.recursive` — ``Rec-TRSM`` (Section IV), the paper's
  baseline algorithm with 1D/2D/3D regimes;
* :mod:`repro.trsm.diagonal_inverter` — selective inversion of the
  diagonal blocks (Section VI-A);
* :mod:`repro.trsm.iterative` — ``It-Inv-TRSM`` (Section VI-B), the
  paper's main contribution;
* :mod:`repro.trsm.cost_model` — every closed form of Sections IV-A, VII
  and VIII;
* :mod:`repro.trsm.solver` — the top-level :func:`~repro.trsm.solver.trsm`
  entry point with a-priori regime/parameter selection.
"""

from repro.trsm.sequential import trsm_lower_sequential, forward_substitution
from repro.trsm.heath_romine import heath_romine_trsv
from repro.trsm.recursive import rec_trsm, rec_trsm_global
from repro.trsm.diagonal_inverter import diagonal_inverter
from repro.trsm.iterative import it_inv_trsm, it_inv_trsm_global
from repro.trsm.solver import trsm, TrsmResult

__all__ = [
    "trsm_lower_sequential",
    "forward_substitution",
    "heath_romine_trsv",
    "rec_trsm",
    "rec_trsm_global",
    "diagonal_inverter",
    "it_inv_trsm",
    "it_inv_trsm_global",
    "trsm",
    "TrsmResult",
]
