"""PreparedTrsm: invert once, solve many (Section II-C3 amortization).

The paper cites Raghavan's selective inversion for "repeated triangular
solves that arise in preconditioned sparse iterative methods": the factor
``L`` is fixed across hundreds of applications, so the Diagonal-Inverter's
one-off cost amortizes away and each application is pure matrix
multiplication.  ``PreparedTrsm`` packages that pattern:

    solver = PreparedTrsm(L, p=64)          # runs the Diagonal-Inverter
    X1 = solver.solve(B1)                   # solve + update phases only
    X2 = solver.solve(B2)                   # ...
    solver.preparation_cost                 # the amortized one-off
    solver.last_solve_cost                  # per-application cost

Every call runs on a fresh machine seeded with the prepared inverse, so
per-application costs are measured independently and are directly
comparable.

Since the Cluster redesign both the preparation and each application are
single-request :class:`repro.api.Cluster` runs pinned to the full machine
(an :class:`repro.api.InvRequest` with a diagonal block size, then
:class:`repro.api.PreparedSolveRequest` s); behavior and charges are
unchanged.  To batch many applications onto subgrids concurrently, submit
``PreparedSolveRequest(prepared=solver, B=...)`` to a shared Cluster
instead of calling :meth:`solve`.
"""

from __future__ import annotations

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.validate import ParameterError, ShapeError, require
from repro.tuning.parameters import TuningChoice, tuned_parameters
from repro.util.mathutil import is_power_of_two


class PreparedTrsm:
    """A triangular factor with pre-inverted diagonal blocks.

    .. deprecated:: 1.1
        Thin wrapper over single-request Clusters (kept one release for
        compatibility); new code should submit
        :class:`repro.api.PreparedSolveRequest` s directly.
    """

    def __init__(
        self,
        L: np.ndarray,
        p: int,
        k_hint: int = 1,
        params: CostParams | None = None,
        n0: int | None = None,
        base_n: int = 8,
        backend=None,
    ):
        """Run the Diagonal-Inverter for ``L`` on ``p`` simulated processors.

        ``k_hint`` is the expected right-hand-side count, used only for the
        a-priori parameter choice (Section VIII needs the shape ratio).
        ``backend`` selects the execution backend for the preparation and
        every subsequent :meth:`solve` (see :mod:`repro.backend`).
        """
        from repro.api import Cluster, InvRequest

        require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
        self.L = np.asarray(L, dtype=np.float64)
        require(
            self.L.ndim == 2 and self.L.shape[0] == self.L.shape[1],
            ShapeError,
            "L must be square",
        )
        self.n = self.L.shape[0]
        self.p = p
        self.params = params or CostParams()
        self.base_n = base_n
        self.k_hint = max(k_hint, 1)
        self.backend = backend

        choice = tuned_parameters(self.n, self.k_hint, p)
        if n0 is not None:
            require(self.n % n0 == 0, ParameterError, f"n0={n0} must divide n={self.n}")
            choice = TuningChoice(
                regime=choice.regime,
                p1=choice.p1,
                p2=choice.p2,
                n0=n0,
                r1=choice.r1,
                r2=choice.r2,
            )
        self.choice = choice

        # One-off preparation: a single diagonal-inversion request on its
        # own machine, pinned to the full grid.
        cluster = Cluster(p, params=self.params, backend=self.backend)
        rid = cluster.submit(
            InvRequest(
                L=self.L,
                n0=choice.n0,
                k_hint=self.k_hint,
                base_n=base_n,
                sizes=(p,),
            )
        )
        rec = cluster.run().record(rid)
        self._Ltilde_global = rec.value
        self.preparation_cost: Cost = cluster.machine.critical_path()
        self.preparation_time: float = cluster.machine.time()
        self.last_solve_cost: Cost | None = None
        self.last_solve_time: float | None = None
        self.solves: int = 0

    @property
    def Ltilde(self) -> np.ndarray:
        """The prepared inverse (block-inverted factor) as a global matrix.

        Host this next to ``L`` on a shared Cluster
        (``cluster.host(solver.Ltilde)``) to serve a stream of
        :class:`repro.api.PreparedSolveRequest` s against one resident
        factor — the operand cache then amortizes the factor migration
        across placements on the same subgrid.
        """
        return self._Ltilde_global

    def solve(self, B: np.ndarray, verify: bool = True) -> np.ndarray:
        """Apply ``inv(L)`` to a new right-hand side batch.

        Runs only the solve/update phases (the prepared inverse is reused),
        on a fresh machine so the measured cost is per-application.
        """
        from repro.api import Cluster, PreparedSolveRequest

        Bv = np.asarray(B, dtype=np.float64)
        vector = Bv.ndim == 1
        require(
            Bv.shape[0] == self.n,
            ShapeError,
            f"B has {Bv.shape[0]} rows, L is {self.n} x {self.n}",
        )
        B2 = Bv.reshape(self.n, -1)

        cluster = Cluster(self.p, params=self.params, backend=self.backend)
        rid = cluster.submit(
            PreparedSolveRequest(prepared=self, B=B2, verify=verify, sizes=(self.p,))
        )
        rec = cluster.run().record(rid)
        X = rec.value
        self.last_solve_cost = cluster.machine.critical_path()
        self.last_solve_time = cluster.machine.time()
        self.solves += 1
        return X[:, 0] if vector else X

    def amortized_time(self, applications: int) -> float:
        """Modeled total time for ``applications`` solves incl. preparation."""
        require(applications >= 1, ParameterError, "need at least one application")
        require(
            self.last_solve_time is not None,
            ParameterError,
            "call solve() at least once before asking for amortized time",
        )
        return self.preparation_time + applications * float(self.last_solve_time)
