"""PreparedTrsm: invert once, solve many (Section II-C3 amortization).

The paper cites Raghavan's selective inversion for "repeated triangular
solves that arise in preconditioned sparse iterative methods": the factor
``L`` is fixed across hundreds of applications, so the Diagonal-Inverter's
one-off cost amortizes away and each application is pure matrix
multiplication.  ``PreparedTrsm`` packages that pattern:

    solver = PreparedTrsm(L, p=64)          # runs the Diagonal-Inverter
    X1 = solver.solve(B1)                   # solve + update phases only
    X2 = solver.solve(B2)                   # ...
    solver.preparation_cost                 # the amortized one-off
    solver.last_solve_cost                  # per-application cost

Every call runs on a fresh machine seeded with the prepared inverse, so
per-application costs are measured independently and are directly
comparable.
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.machine.cost import Cost, CostParams
from repro.machine.machine import Machine
from repro.machine.validate import ParameterError, ShapeError, require
from repro.trsm.diagonal_inverter import diagonal_inverter
from repro.trsm.iterative import _RowCyclicColBlocked, it_inv_trsm
from repro.tuning.parameters import TuningChoice, tuned_parameters
from repro.util.checking import relative_residual
from repro.util.mathutil import is_power_of_two


class PreparedTrsm:
    """A triangular factor with pre-inverted diagonal blocks."""

    def __init__(
        self,
        L: np.ndarray,
        p: int,
        k_hint: int = 1,
        params: CostParams | None = None,
        n0: int | None = None,
        base_n: int = 8,
    ):
        """Run the Diagonal-Inverter for ``L`` on ``p`` simulated processors.

        ``k_hint`` is the expected right-hand-side count, used only for the
        a-priori parameter choice (Section VIII needs the shape ratio).
        """
        require(is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}")
        self.L = np.asarray(L, dtype=np.float64)
        require(
            self.L.ndim == 2 and self.L.shape[0] == self.L.shape[1],
            ShapeError,
            "L must be square",
        )
        self.n = self.L.shape[0]
        self.p = p
        self.params = params or CostParams()
        self.base_n = base_n

        choice = tuned_parameters(self.n, max(k_hint, 1), p)
        if n0 is not None:
            require(self.n % n0 == 0, ParameterError, f"n0={n0} must divide n={self.n}")
            choice = TuningChoice(
                regime=choice.regime,
                p1=choice.p1,
                p2=choice.p2,
                n0=n0,
                r1=choice.r1,
                r2=choice.r2,
            )
        self.choice = choice

        # One-off preparation on its own machine.
        machine = Machine(p, params=self.params)
        grid3d = machine.grid(choice.p1, choice.p1, choice.p2)
        plane_L = grid3d.plane(2, 0)
        Ld = DistMatrix.from_global(
            machine, plane_L, CyclicLayout(choice.p1, choice.p1), self.L
        )
        with machine.phase("inversion"):
            self._Ltilde_global = diagonal_inverter(
                Ld, choice.n0, pool=grid3d.ranks(), base_n=base_n
            ).to_global()
        self.preparation_cost: Cost = machine.critical_path()
        self.preparation_time: float = machine.time()
        self.last_solve_cost: Cost | None = None
        self.last_solve_time: float | None = None
        self.solves: int = 0

    def solve(self, B: np.ndarray, verify: bool = True) -> np.ndarray:
        """Apply ``inv(L)`` to a new right-hand side batch.

        Runs only the solve/update phases (the prepared inverse is reused),
        on a fresh machine so the measured cost is per-application.
        """
        Bv = np.asarray(B, dtype=np.float64)
        vector = Bv.ndim == 1
        require(
            Bv.shape[0] == self.n,
            ShapeError,
            f"B has {Bv.shape[0]} rows, L is {self.n} x {self.n}",
        )
        B2 = Bv.reshape(self.n, -1)
        c = self.choice

        machine = Machine(self.p, params=self.params)
        grid3d = machine.grid(c.p1, c.p1, c.p2)
        plane_L = grid3d.plane(2, 0)
        plane_B = grid3d.plane(1, 0)
        lay_L = CyclicLayout(c.p1, c.p1)
        Ld = DistMatrix.from_global(machine, plane_L, lay_L, self.L)
        Ltilde = DistMatrix.from_global(machine, plane_L, lay_L, self._Ltilde_global)
        Bd = DistMatrix.from_global(
            machine, plane_B, _RowCyclicColBlocked(c.p1, c.p2), B2
        )
        Xd = it_inv_trsm(
            machine, grid3d, Ld, Bd, n0=c.n0, base_n=self.base_n, Ltilde=Ltilde
        )
        X = Xd.to_global()
        self.last_solve_cost = machine.critical_path()
        self.last_solve_time = machine.time()
        self.solves += 1
        if verify:
            resid = relative_residual(self.L, X, B2)
            require(
                bool(resid < 1e-8) or not np.all(np.isfinite(B2)),
                ShapeError,
                f"prepared solve verification failed (residual {resid:.3e})",
            )
        return X[:, 0] if vector else X

    def amortized_time(self, applications: int) -> float:
        """Modeled total time for ``applications`` solves incl. preparation."""
        require(applications >= 1, ParameterError, "need at least one application")
        require(
            self.last_solve_time is not None,
            ParameterError,
            "call solve() at least once before asking for amortized time",
        )
        return self.preparation_time + applications * float(self.last_solve_time)
