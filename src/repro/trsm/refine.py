"""Iterative refinement for TRSM solutions.

The inversion-based solve is backward stable (Du Croz & Higham), but a
cautious user — or one running with aggressively large ``n0`` on badly
scaled data — may want certified residuals.  One step of iterative
refinement

    r = B - L X,   L d = r,   X <- X + d

squares the backward error at the cost of one extra (cheaper, because the
diagonal inverses are reused via :class:`~repro.trsm.prepared.PreparedTrsm`)
solve.  ``refined_trsm`` wraps the standard solver with a refinement loop
and a residual target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.validate import ParameterError, require
from repro.trsm.prepared import PreparedTrsm
from repro.util.checking import relative_residual


@dataclass
class RefinedResult:
    """Solution with its refinement history."""

    X: np.ndarray
    residuals: list[float]  # residual before each step, then final
    steps: int
    preparation_cost: Cost
    solve_cost_total: float  # simulated seconds over all applications

    @property
    def residual(self) -> float:
        return self.residuals[-1]


def refined_trsm(
    L: np.ndarray,
    B: np.ndarray,
    p: int,
    target: float = 1e-14,
    max_steps: int = 3,
    params: CostParams | None = None,
    n0: int | None = None,
) -> RefinedResult:
    """Solve ``L X = B`` and refine until the residual meets ``target``.

    Uses one :class:`PreparedTrsm` for the initial solve and every
    refinement step, so the Diagonal-Inverter runs exactly once.
    """
    require(max_steps >= 0, ParameterError, "max_steps must be >= 0")
    require(target > 0, ParameterError, "target must be positive")
    L = np.asarray(L, dtype=np.float64)
    Bv = np.asarray(B, dtype=np.float64)
    vector = Bv.ndim == 1
    B2 = Bv.reshape(L.shape[0], -1)

    solver = PreparedTrsm(L, p=p, k_hint=B2.shape[1], params=params, n0=n0)
    X = solver.solve(B2, verify=False)
    total_time = float(solver.last_solve_time or 0.0)

    residuals = [relative_residual(L, X, B2)]
    steps = 0
    while residuals[-1] > target and steps < max_steps:
        r = B2 - L @ X
        d = solver.solve(r, verify=False)
        total_time += float(solver.last_solve_time or 0.0)
        X = X + d
        residuals.append(relative_residual(L, X, B2))
        steps += 1
        if len(residuals) >= 2 and residuals[-1] >= residuals[-2]:
            break  # converged to the attainable accuracy

    return RefinedResult(
        X=X[:, 0] if vector else X,
        residuals=residuals,
        steps=steps,
        preparation_cost=solver.preparation_cost,
        solve_cost_total=total_time,
    )
