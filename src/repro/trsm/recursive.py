"""Rec-TRSM: the paper's recursive baseline algorithm (Section IV).

Solves ``L X = B`` for ``L`` lower triangular (``n x n``) and ``B`` dense
(``n x k``), both cyclically distributed on a ``pr x pc`` grid with
``pc = q * pr``:

1. **column partitioning** (``q > 1``, i.e. more columns than rows in the
   grid, chosen when ``k > n``): replicate ``L`` onto each of the ``q``
   square ``pr x pr`` subgrids with one allgather along the ``z`` fibers
   (``Tpart-cols = O(beta n^2/pr^2 + alpha log p)``), then solve the ``q``
   independent column subproblems concurrently.  The column sets land on
   each subgrid in exactly the cyclic layout, so no data moves for ``B``;
2. **base case** (``n <= n0`` or a single processor): allgather ``L``
   (``W = n^2``), all-to-all ``B`` within each grid column so every
   processor owns full columns, solve locally with the blocked sequential
   kernel, all-to-all back;
3. **recursive case** (square grid): solve ``L11 X1 = B1``, update
   ``B2' = B2 - L21 @ X1`` with the Section III MM (a-priori optimal
   split), solve ``L22 X2 = B2'``.

The ``n0`` recursion cutoff follows Section IV-A (see
:func:`default_recursive_n0`); the update MM dominates the cost exactly as
in the paper's recurrences.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.redistribute import embed_submatrix, extract_submatrix
from repro.dist.triangular import (
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
)
from repro.machine.collectives import allgather_blocks, alltoall
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ShapeError, require
from repro.mm.dispatch import choose_mm_split
from repro.mm.mm3d import mm3d
from repro.trsm.sequential import trsm_lower_sequential
from repro.util.mathutil import prev_power_of_two


def default_recursive_n0(n: int, k: int, p: int) -> int:
    """The Section IV-A recursion cutoffs.

    * 2D regime (``n > k sqrt(p)``): ``n0 = max(sqrt(p), n log p / sqrt(p))``
    * otherwise: ``n0 = n^{1/3} (k/p)^{2/3}``, clamped to ``[1, n]``.
    """
    if p <= 1:
        return max(n, 1)
    sp = math.sqrt(p)
    lg = math.log2(p) if p > 1 else 1.0
    if n > k * sp:
        n0 = max(sp, n * lg / sp)
    else:
        n0 = n ** (1.0 / 3.0) * (k / p) ** (2.0 / 3.0)
    return int(min(max(n0, 1.0), n))


def rec_trsm(
    L: DistMatrix,
    B: DistMatrix,
    n0: int | None = None,
    _depth: int = 0,
) -> DistMatrix:
    """Solve ``L X = B``; result distributed exactly like ``B``."""
    machine = L.machine
    n = require_square(L, "L")
    require(
        B.shape[0] == n,
        ShapeError,
        f"B has {B.shape[0]} rows, L is {n} x {n}",
    )
    require(L.grid == B.grid, GridError, "L and B must share a grid")
    if _depth == 0:
        G = L.to_global()
        require_lower_triangular(G, "L")
        require_nonsingular_triangular(G, "L")

    pr, pc = L.grid.shape
    k = B.shape[1]
    if n0 is None:
        n0 = default_recursive_n0(n, k, L.grid.size)

    if pc > pr:
        return _partition_columns(L, B, n0)
    require(
        pr == pc,
        GridError,
        f"rec_trsm requires pc >= pr with pr | pc, got grid {L.grid.shape}",
    )
    if n <= n0 or L.grid.size == 1:
        return _base_case(L, B)
    return _recurse(L, B, n0, _depth)


# ---------------------------------------------------------------------------
# case 1: column partitioning onto q square subgrids
# ---------------------------------------------------------------------------


def _partition_columns(L: DistMatrix, B: DistMatrix, n0: int) -> DistMatrix:
    machine = L.machine
    grid = L.grid
    pr, pc = grid.shape
    require(
        pc % pr == 0,
        GridError,
        f"column partitioning requires pr | pc, got {grid.shape}",
    )
    q = pc // pr
    n = L.shape[0]
    k = B.shape[1]
    sub_layout = CyclicLayout(pr, pr)

    # Replicate L onto each subgrid: allgather over the z fibers.
    Lz_blocks: dict[int, np.ndarray] = {}
    for x in range(pr):
        for y in range(pr):
            group = [grid.rank((x, y + pr * z)) for z in range(q)]
            contribs = {r: L.blocks[r] for r in group}
            got = allgather_blocks(machine, group, contribs, label="rectrsm.partcols")
            rows = L.layout.row_indices(x, n)
            target = np.zeros((len(rows), len(np.arange(y, n, pr))))
            for z in range(q):
                blk = got[group[0]][group[z]]
                # global col c = (y + pr*z) + pc*t sits at slot (c - y)/pr
                # = z + q*t within the cols-congruent-to-y-mod-pr list.
                ci = np.arange(z, target.shape[1], q)[: blk.shape[1]]
                if blk.size:
                    target[:, ci] = blk
            for z in range(q):
                Lz_blocks[grid.rank((x, y + pr * z))] = target

    # Each subgrid keeps its own columns of B (already in cyclic sub-layout).
    X = DistMatrix.zeros(machine, grid, B.layout, B.shape)
    for z in range(q):
        subgrid = grid.subgrid(slice(None), slice(pr * z, pr * (z + 1)))
        kz = sum(
            len(np.arange(y + pr * z, k, pc)) for y in range(pr)
        )
        Lz = DistMatrix(
            machine,
            subgrid,
            sub_layout,
            (n, n),
            {subgrid.rank((x, y)): Lz_blocks[subgrid.rank((x, y))] for x in range(pr) for y in range(pr)},
        )
        Bz = DistMatrix(
            machine,
            subgrid,
            sub_layout,
            (n, kz),
            {r: B.blocks[r] for r in subgrid.ranks()},
        )
        Xz = rec_trsm(Lz, Bz, n0=n0, _depth=1)
        for r in subgrid.ranks():
            X.blocks[r] = Xz.blocks[r]
    return X


# ---------------------------------------------------------------------------
# case 2: base case — local solves on full columns
# ---------------------------------------------------------------------------


def _base_case(L: DistMatrix, B: DistMatrix) -> DistMatrix:
    machine = L.machine
    grid = L.grid
    pr, pc = grid.shape
    n = L.shape[0]
    k = B.shape[1]

    # Allgather L onto every rank.
    group = grid.ranks()
    contribs = {r: L.blocks[r] for r in group}
    allgather_blocks(machine, group, contribs, label="rectrsm.base_gatherL")
    L_full = L.to_global()
    # every rank holds the full base-case triangle
    machine.memory.observe_group(group, float(L_full.size))

    X = DistMatrix.zeros(machine, grid, B.layout, B.shape)
    for y in range(pc):
        col_group = [grid.rank((x, y)) for x in range(pr)]
        gcols = B.layout.col_indices(y, k)  # global columns of this grid column
        # All-to-all: rank (x, y) sends the sub-columns destined for each x'.
        blocks = {
            grid.rank((x, y)): [B.blocks[grid.rank((x, y))][:, xp::pr] for xp in range(pr)]
            for x in range(pr)
        }
        received = alltoall(machine, col_group, blocks, label="rectrsm.base_fwd")
        solved: dict[int, np.ndarray] = {}
        for xp in range(pr):
            dest = grid.rank((xp, y))
            sub_gcols = gcols[xp::pr]
            cols_full = np.zeros((n, len(sub_gcols)))
            for x in range(pr):
                rows = B.layout.row_indices(x, n)
                cols_full[rows, :] = received[dest][x]
            xsol = trsm_lower_sequential(L_full, cols_full, check=False)
            machine.charge(
                [dest],
                Cost(S=0.0, W=0.0, F=float(n) * n * len(sub_gcols) / 2.0),
                label="rectrsm.base_solve",
                sync=False,
            )
            solved[dest] = xsol
        # All-to-all back to the cyclic layout.
        back = {
            grid.rank((xp, y)): [
                solved[grid.rank((xp, y))][B.layout.row_indices(x, n), :]
                for x in range(pr)
            ]
            for xp in range(pr)
        }
        returned = alltoall(machine, col_group, back, label="rectrsm.base_bwd")
        for x in range(pr):
            dest = grid.rank((x, y))
            mine = np.zeros_like(B.blocks[dest])
            for xp in range(pr):
                mine[:, xp::pr] = returned[dest][xp]
            X.blocks[dest] = mine
    return X


# ---------------------------------------------------------------------------
# case 3: recursion on L (square grid)
# ---------------------------------------------------------------------------


def _recurse(L: DistMatrix, B: DistMatrix, n0: int, depth: int) -> DistMatrix:
    machine = L.machine
    n = L.shape[0]
    k = B.shape[1]
    p = L.grid.size
    h = n // 2

    L11 = extract_submatrix(L, 0, h, 0, h, label="rectrsm.extract")
    B1 = extract_submatrix(B, 0, h, 0, k, label="rectrsm.extract")
    X1 = rec_trsm(L11, B1, n0=n0, _depth=depth + 1)

    L21 = extract_submatrix(L, h, n, 0, h, label="rectrsm.extract")
    B2 = extract_submatrix(B, h, n, 0, k, label="rectrsm.extract")
    p1, _ = choose_mm_split(h, k, p, params=machine.params, m=n - h)
    update = mm3d(L21, X1, p1)  # L21 @ X1, distributed like X1/B2
    for r in B2.grid.ranks():
        B2.blocks[r] = B2.blocks[r] - update.blocks[r]

    L22 = extract_submatrix(L, h, n, h, n, label="rectrsm.extract")
    X2 = rec_trsm(L22, B2, n0=n0, _depth=depth + 1)

    X = DistMatrix.zeros(machine, L.grid, B.layout, B.shape)
    embed_submatrix(X, X1, 0, 0, label="rectrsm.embed")
    embed_submatrix(X, X2, h, 0, label="rectrsm.embed")
    return X


# ---------------------------------------------------------------------------
# top-level convenience
# ---------------------------------------------------------------------------


def choose_recursive_grid(n: int, k: int, p: int) -> tuple[int, int]:
    """Section IV grid choice: ``pc = max(sqrt(p), min(p, sqrt(p k / n)))``
    and ``pr = p / pc``, snapped to powers of two with ``pr | pc``."""
    require(p >= 1, GridError, "p must be >= 1")
    sp = math.sqrt(p)
    pc_target = max(sp, min(float(p), math.sqrt(p * k / n)))
    pc = prev_power_of_two(max(int(pc_target), 1))
    # snap: pc must divide p and be >= sqrt(p)
    while p % pc != 0 and pc > 1:
        pc //= 2
    pc = max(pc, prev_power_of_two(max(int(sp), 1)))
    while p % pc != 0:
        pc *= 2
    pr = p // pc
    return pr, pc


def rec_trsm_global(
    machine: Machine,
    L_global: np.ndarray,
    B_global: np.ndarray,
    grid: ProcessorGrid | None = None,
    n0: int | None = None,
) -> DistMatrix:
    """Distribute, choose a grid per Section IV if none given, and solve."""
    n = L_global.shape[0]
    k = B_global.shape[1] if B_global.ndim == 2 else 1
    if grid is None:
        pr, pc = choose_recursive_grid(n, k, machine.n_ranks)
        grid = machine.grid(pr, pc)
    layout = CyclicLayout(*grid.shape)
    L = DistMatrix.from_global(machine, grid, layout, L_global)
    B = DistMatrix.from_global(
        machine, grid, layout, B_global.reshape(n, -1)
    )
    return rec_trsm(L, B, n0=n0)
