"""The execution backend protocol: one codebase, simulated and real.

Everything above this package — ``DistMatrix`` transitions, the Cluster,
the scheduler — speaks to execution through a :class:`Backend`:

* :meth:`Backend.make_machine` builds the :class:`~repro.machine.machine.
  Machine` the backend executes for (the *model state* — per-rank clocks,
  counters, phases — is always simulated; a real backend adds wall-clock
  measurement alongside it, it does not replace the model);
* :meth:`Backend.execute_plan` routes a :class:`~repro.dist.routing.
  RoutingPlan`'s blocks.  :class:`~repro.backend.sim.SimBackend` is
  ``plan.apply`` verbatim; :class:`~repro.backend.mpi.MPIBackend` moves
  the same payloads over a real communicator with ``Alltoallv``
  count/displacement rounds and times them;
* :meth:`Backend.execute_compute` runs (or models) one compute kernel of
  a given shape and flop count — the gamma-calibration primitive the
  modeled-vs-measured report uses;
* :meth:`Backend.barrier` / :meth:`Backend.timer` — synchronization and
  the backend's clock (simulated seconds for the simulator, wall seconds
  for MPI);
* capability flags — ``name``, ``is_real`` (are measured seconds real
  wall-clock readings?), ``world_size`` (processes backing execution).

Every plan and kernel execution appends a measurement record, so
:mod:`repro.analysis.validation` can compare the model's predictions with
what execution observed — trivially self-consistent under the simulator,
a genuine hardware validation under MPI.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.machine import Machine
from repro.machine.validate import ParameterError, require

if TYPE_CHECKING:
    from repro.dist.routing import RoutingPlan

#: measurement records kept per backend (oldest dropped beyond this; the
#: aggregate report reads recent history, not an unbounded daemon log)
MEASUREMENT_LOG_LIMIT = 65536


class BackendExecutionError(RuntimeError):
    """Real execution diverged from the model (transport delivered wrong
    bytes, a plan routed outside the communicator, ...)."""


@dataclass(slots=True, frozen=True)
class PlanMeasurement:
    """One executed routing plan: what the model predicted, what happened."""

    label: str
    #: machine phase active at execution time ("staging", "solve", ...)
    phase: str
    #: off-rank words the plan moves (sum over all pairwise messages)
    words: int
    #: off-rank pairwise messages in the plan
    messages: int
    #: the model's alpha-beta critical-path seconds for the transition
    modeled_seconds: float
    #: what execution took — simulated seconds (== modeled) for the
    #: simulator, measured wall-clock seconds for a real backend
    measured_seconds: float
    #: Alltoallv rounds the transfer was chunked into (0 = no wire traffic)
    rounds: int = 0
    #: words between virtual ranks co-located on one process — moved
    #: through local memory, so *under-measured* relative to the model
    colocated_words: int = 0

    def relative_error(self) -> float:
        """(measured - modeled) / modeled; 0 when nothing was modeled."""
        if self.modeled_seconds == 0.0:
            return 0.0
        return (self.measured_seconds - self.modeled_seconds) / self.modeled_seconds


@dataclass(slots=True, frozen=True)
class ComputeMeasurement:
    """One executed compute kernel: modeled gamma-seconds vs observed."""

    kind: str
    shape: tuple[int, ...]
    flops: float
    modeled_seconds: float
    measured_seconds: float

    def relative_error(self) -> float:
        if self.modeled_seconds == 0.0:
            return 0.0
        return (self.measured_seconds - self.modeled_seconds) / self.modeled_seconds


class Backend(abc.ABC):
    """Abstract execution backend; see the module docstring.

    A backend instance binds to (at most) one machine:
    :meth:`make_machine` builds and binds one, :meth:`adopt` binds an
    existing one.  ``repro.backend.make_backend`` resolves the ``"sim"`` /
    ``"mpi"`` spellings the public APIs accept.
    """

    #: registry name ("sim", "mpi")
    name: str = "abstract"
    #: True when measured seconds are wall-clock readings on real hardware
    is_real: bool = False
    #: processes backing execution (1 for the simulator)
    world_size: int = 1

    def __init__(self) -> None:
        self.machine: Machine | None = None
        self.params: CostParams = CostParams()
        self.plan_log: deque[PlanMeasurement] = deque(maxlen=MEASUREMENT_LOG_LIMIT)
        self.compute_log: deque[ComputeMeasurement] = deque(
            maxlen=MEASUREMENT_LOG_LIMIT
        )

    # -- machine binding ----------------------------------------------------

    def make_machine(
        self,
        n_ranks: int,
        params: CostParams | None = None,
        trace: bool = False,
        collectives: str = "butterfly",
    ) -> Machine:
        """Build the machine this backend executes for and bind to it.

        The construction path every front-end uses (`Cluster`,
        ``trsm()``): the machine carries the model state either way; the
        backend decides whether executing a plan also moves real bytes.
        """
        machine = Machine(
            n_ranks,
            params=params,
            trace=trace,
            collectives=collectives,
            backend=self,
        )
        self.adopt(machine)
        return machine

    def adopt(self, machine: Machine) -> None:
        """Bind to an existing machine (its params become the model)."""
        self.machine = machine
        self.params = machine.params

    def _phase(self) -> str:
        return self.machine.current_phase() if self.machine is not None else ""

    # -- the execution protocol ---------------------------------------------

    @abc.abstractmethod
    def execute_plan(
        self,
        plan: "RoutingPlan",
        blocks: dict[int, np.ndarray],
        out: dict[int, np.ndarray] | None = None,
        label: str = "route",
    ) -> dict[int, np.ndarray]:
        """Route a plan's blocks; returns the destination block dict.

        Semantics are those of :meth:`RoutingPlan.apply` — same values on
        every backend, bit for bit.  Charging stays the call site's
        business (``plan.charge``/``charge_pointwise`` before executing),
        exactly as it was for direct ``apply`` calls.
        """

    @abc.abstractmethod
    def execute_compute(self, kind: str, shape: tuple[int, ...], flops: float) -> float:
        """Execute (or model) one kernel; returns seconds observed.

        ``kind`` is ``"gemm"`` (shape ``(m, n, k)``), ``"trsm"`` (shape
        ``(n, k)``) or ``"axpy"`` (shape ``(n,)``); ``flops`` is the
        model's count for it.  The simulator returns the modeled
        ``gamma * flops``; a real backend runs the kernel and returns
        wall seconds.
        """

    @abc.abstractmethod
    def barrier(self) -> None:
        """Synchronize all ranks (simulated clocks, or the communicator)."""

    @abc.abstractmethod
    def timer(self) -> float:
        """The backend's clock: simulated seconds, or wall seconds."""

    # -- measurement log ------------------------------------------------------

    def _log_plan(
        self,
        plan: "RoutingPlan",
        label: str,
        measured_seconds: float,
        rounds: int = 0,
        colocated_words: int = 0,
    ) -> PlanMeasurement:
        _, _, words = plan._pair_arrays()
        record = PlanMeasurement(
            label=label,
            phase=self._phase(),
            words=int(words.sum(dtype=np.int64)),
            messages=int(len(words)),
            modeled_seconds=plan.cost().time(self.params),
            measured_seconds=float(measured_seconds),
            rounds=int(rounds),
            colocated_words=int(colocated_words),
        )
        self.plan_log.append(record)
        return record

    def _log_compute(
        self,
        kind: str,
        shape: tuple[int, ...],
        flops: float,
        measured_seconds: float,
    ) -> ComputeMeasurement:
        record = ComputeMeasurement(
            kind=kind,
            shape=tuple(int(s) for s in shape),
            flops=float(flops),
            modeled_seconds=Cost(0.0, 0.0, float(flops)).time(self.params),
            measured_seconds=float(measured_seconds),
        )
        self.compute_log.append(record)
        return record

    def measurements(self) -> list[PlanMeasurement]:
        """Executed-plan records, oldest first (bounded history)."""
        return list(self.plan_log)

    def compute_measurements(self) -> list[ComputeMeasurement]:
        """Executed-kernel records, oldest first (bounded history)."""
        return list(self.compute_log)

    def clear_measurements(self) -> None:
        self.plan_log.clear()
        self.compute_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, world={self.world_size})"


#: CLI-facing registry: the specs `make_backend` resolves by name
BACKEND_NAMES = ("sim", "mpi")


def make_backend(spec: "Backend | str | None" = None) -> Backend:
    """Resolve a backend spec: an instance, ``"sim"``/``"mpi"``, or None.

    ``None`` (every front-end's default) means a fresh simulator.  The
    ``"mpi"`` spelling needs mpi4py importable and raises a clean
    :class:`~repro.machine.validate.ParameterError` otherwise — callers
    that want to degrade (skip-if-no-mpi4py) catch exactly that.
    """
    if spec is None or spec == "sim":
        from repro.backend.sim import SimBackend

        return SimBackend()
    if isinstance(spec, Backend):
        return spec
    require(
        spec == "mpi",
        ParameterError,
        f"unknown backend {spec!r}; choose from {BACKEND_NAMES} "
        "or pass a Backend instance",
    )
    from repro.backend.mpi import MPIBackend

    return MPIBackend()
