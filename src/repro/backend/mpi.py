"""The MPI backend: execute routing plans on a real communicator.

Measurement harness, SPMD replicated-state style: every MPI process
holds the *complete* model state (all virtual ranks' blocks — the same
dict the simulator routes), so any process can compute any message's
payload and every process can verify the bytes the wire delivered.
What MPI adds is real transport and a real clock:

* a plan's cross-rank messages are read off
  :meth:`RoutingPlan.transfer_groups` in the simulator's own
  deterministic enumeration order (:func:`plan_messages`);
* virtual ranks are folded onto the ``world`` processes round-robin
  (:func:`virtual_rank_map`) — running ``p=64`` plans under
  ``mpirun -np 4`` is the normal case, not an error;
* messages are chunked into ``Alltoallv`` rounds whose per-process send
  *and* receive totals each fit the int32 count/displacement limit
  (:func:`build_alltoallv_rounds`) — the pysemtools ``Router`` guard,
  applied to displacements too;
* each round is barriered, timed with ``time.perf_counter`` and its
  received bytes compared against the expected payload (replicated
  state makes the expectation exact; a mismatch is a
  :class:`~repro.backend.base.BackendExecutionError`, not a warning).

Messages between two virtual ranks folded onto the *same* process still
round-trip through ``Alltoallv`` (self-segments) so they are verified,
but they never cross a NIC — their words are reported as
``colocated_words`` on the measurement record, flagging that the
measured seconds under-state the model's cost whenever
``world < n_vranks``.  Returned block values come from
:meth:`RoutingPlan.apply` on the replicated state, so results are
bit-identical to the simulator *by construction*; the wire verification
checks the transport, not the values.

The module imports cleanly without mpi4py: only constructing
:class:`MPIBackend` with no explicit communicator touches it (clean
:class:`~repro.machine.validate.ParameterError` when absent), and
:class:`LoopbackComm` stands in for single-process tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backend.base import Backend, BackendExecutionError
from repro.dist.routing import INT32_LIMIT, RoutingPlan
from repro.machine.validate import ParameterError, require


@dataclass(slots=True, frozen=True)
class PlanMessage:
    """One (source vrank, destination vrank) message of a routing plan.

    ``src_coords`` are the source end's frame-axis coordinates and
    ``rs``/``cs`` the source-side position arrays of the row/column
    groups — exactly what :meth:`RoutingPlan.apply` reads, so
    :func:`message_payload` selects the very elements the simulator
    routes for this pair.
    """

    src_vrank: int
    dst_vrank: int
    src_coords: tuple[int, int]
    rs: np.ndarray
    cs: np.ndarray

    @property
    def words(self) -> int:
        return len(self.rs) * len(self.cs)


@dataclass(slots=True, frozen=True)
class Segment:
    """A chunk of one message: ``words`` payload words from ``offset``."""

    message: int
    offset: int
    words: int


def plan_messages(plan: RoutingPlan) -> list[PlanMessage]:
    """A plan's per-(vrank, vrank) messages, in apply's enumeration order.

    Messages whose source and destination virtual rank coincide are pure
    local copies — the simulator routes them for free and so do we —
    and are excluded here; everything else goes on the wire (or through
    a verified self-segment when both vranks share a process).
    """
    row_groups, col_groups = plan.transfer_groups()
    messages: list[PlanMessage] = []
    for (a, x), (rs, _rd) in row_groups.items():
        for (b, y), (cs, _cd) in col_groups.items():
            src_vrank = plan.src.rank(a, b)
            dst_vrank = plan.dst.rank(x, y)
            if src_vrank == dst_vrank or len(rs) == 0 or len(cs) == 0:
                continue
            messages.append(
                PlanMessage(
                    src_vrank=int(src_vrank),
                    dst_vrank=int(dst_vrank),
                    src_coords=(int(a), int(b)),
                    rs=rs,
                    cs=cs,
                )
            )
    return messages


def virtual_rank_map(n_vranks: int, world: int) -> np.ndarray:
    """Fold ``n_vranks`` virtual ranks onto ``world`` processes round-robin."""
    require(world >= 1, ParameterError, f"world size must be >= 1, got {world}")
    return np.arange(int(n_vranks), dtype=np.int64) % int(world)


def message_payload(
    plan: RoutingPlan, msg: PlanMessage, blocks: dict[int, np.ndarray]
) -> np.ndarray:
    """The message's payload words, flattened row-major (C order)."""
    a, b = msg.src_coords
    view = plan.src.local_view(blocks, a, b)
    return np.ascontiguousarray(view[np.ix_(msg.rs, msg.cs)]).ravel()


def build_alltoallv_rounds(
    messages: list[PlanMessage],
    vmap: np.ndarray,
    world: int,
    cap: int = INT32_LIMIT,
) -> list[list[Segment]]:
    """Chunk messages into rounds whose per-process totals fit ``cap``.

    Within one ``Alltoallv``, every count *and* every displacement must
    fit an int32 — i.e. each process's total send words and total
    receive words must each stay <= ``cap``.  Messages are walked in
    plan order and split into <= ``cap``-word segments; a segment opens
    a new round whenever it would push its sender's send total or its
    receiver's receive total past the budget.  Progress is guaranteed:
    a fresh round always admits the next segment, because a single
    segment never exceeds ``cap``.
    """
    require(cap >= 1, ParameterError, f"round capacity must be >= 1, got {cap}")
    rounds: list[list[Segment]] = []
    send_used = np.zeros(world, dtype=np.int64)
    recv_used = np.zeros(world, dtype=np.int64)

    def open_round() -> None:
        rounds.append([])
        send_used[:] = 0
        recv_used[:] = 0

    open_round()
    for index, msg in enumerate(messages):
        sp = int(vmap[msg.src_vrank])
        dp = int(vmap[msg.dst_vrank])
        offset = 0
        remaining = msg.words
        while remaining > 0:
            words = min(remaining, cap)
            if send_used[sp] + words > cap or recv_used[dp] + words > cap:
                open_round()
            rounds[-1].append(Segment(message=index, offset=offset, words=words))
            send_used[sp] += words
            recv_used[dp] += words
            offset += words
            remaining -= words
    if rounds and not rounds[-1]:
        rounds.pop()
    return rounds


def round_buffers(
    segments: list[Segment],
    messages: list[PlanMessage],
    payloads: dict[int, np.ndarray],
    vmap: np.ndarray,
    world: int,
    rank: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One process's buffers for one round.

    Returns ``(sendbuf, scounts, sdispls, rcounts, rdispls, expected)``:
    the packed send buffer (segments grouped by destination process
    ascending, round order within a group — the order the matching
    receiver expects), the int32 count/displacement arrays for both
    directions, and the receive buffer this process must observe
    (computable locally because the model state is replicated).
    """
    scounts = np.zeros(world, dtype=np.int32)
    rcounts = np.zeros(world, dtype=np.int32)
    for seg in segments:
        msg = messages[seg.message]
        if int(vmap[msg.src_vrank]) == rank:
            scounts[int(vmap[msg.dst_vrank])] += seg.words
        if int(vmap[msg.dst_vrank]) == rank:
            rcounts[int(vmap[msg.src_vrank])] += seg.words
    sdispls = np.zeros(world, dtype=np.int32)
    rdispls = np.zeros(world, dtype=np.int32)
    np.cumsum(scounts[:-1], out=sdispls[1:], dtype=np.int32)
    np.cumsum(rcounts[:-1], out=rdispls[1:], dtype=np.int32)
    sendbuf = np.empty(int(scounts.sum(dtype=np.int64)), dtype=np.float64)
    expected = np.empty(int(rcounts.sum(dtype=np.int64)), dtype=np.float64)
    sfill = sdispls.astype(np.int64).copy()
    rfill = rdispls.astype(np.int64).copy()
    for seg in segments:
        msg = messages[seg.message]
        sp = int(vmap[msg.src_vrank])
        dp = int(vmap[msg.dst_vrank])
        if sp != rank and dp != rank:
            continue
        chunk = payloads[seg.message][seg.offset : seg.offset + seg.words]
        if sp == rank:
            sendbuf[sfill[dp] : sfill[dp] + seg.words] = chunk
            sfill[dp] += seg.words
        if dp == rank:
            expected[rfill[sp] : rfill[sp] + seg.words] = chunk
            rfill[sp] += seg.words
    return sendbuf, scounts, sdispls, rcounts, rdispls, expected


class LoopbackComm:
    """A 1-process communicator for testing the MPI path without MPI.

    Implements exactly the slice of the mpi4py ``Comm`` surface
    :class:`MPIBackend` touches; ``Alltoallv`` copies the rank-0 self
    block, which is the only traffic a world of one can have.
    """

    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 1

    def Barrier(self) -> None:
        return None

    def Alltoallv(self, sendmsg: list, recvmsg: list) -> None:
        sendbuf, (scounts, sdispls) = sendmsg
        recvbuf, (rcounts, rdispls) = recvmsg
        n = int(scounts[0])
        require(
            n == int(rcounts[0]),
            ParameterError,
            f"loopback Alltoallv count mismatch: send {n}, recv {int(rcounts[0])}",
        )
        s0, r0 = int(sdispls[0]), int(rdispls[0])
        recvbuf[r0 : r0 + n] = sendbuf[s0 : s0 + n]


class MPIBackend(Backend):
    """Execute routing plans over a real (or loopback) communicator."""

    name = "mpi"
    is_real = True

    def __init__(self, comm=None, chunk_limit: int = INT32_LIMIT) -> None:
        super().__init__()
        if comm is None:
            try:
                from mpi4py import MPI
            except ImportError as exc:
                raise ParameterError(
                    "backend 'mpi' needs mpi4py, which is not importable; "
                    "install an MPI implementation plus mpi4py (e.g. "
                    "`apt install mpich && pip install mpi4py`) or use "
                    "backend 'sim'"
                ) from exc
            comm = MPI.COMM_WORLD
        require(
            1 <= int(chunk_limit) <= INT32_LIMIT,
            ParameterError,
            f"chunk limit must be in [1, {INT32_LIMIT}], got {chunk_limit}",
        )
        self.comm = comm
        self.rank = int(comm.Get_rank())
        self.world_size = int(comm.Get_size())
        self.chunk_limit = int(chunk_limit)

    # -- the execution protocol ---------------------------------------------

    def execute_plan(
        self,
        plan: RoutingPlan,
        blocks: dict[int, np.ndarray],
        out: dict[int, np.ndarray] | None = None,
        label: str = "route",
    ) -> dict[int, np.ndarray]:
        messages = plan_messages(plan)
        n_vranks = 1 + max(
            (max(m.src_vrank, m.dst_vrank) for m in messages),
            default=self.machine.n_ranks - 1 if self.machine is not None else 0,
        )
        if self.machine is not None:
            n_vranks = max(n_vranks, self.machine.n_ranks)
        vmap = virtual_rank_map(n_vranks, self.world_size)
        colocated = sum(
            m.words for m in messages if vmap[m.src_vrank] == vmap[m.dst_vrank]
        )
        rounds = build_alltoallv_rounds(
            messages, vmap, self.world_size, cap=self.chunk_limit
        )
        # Payloads must be read from the pristine source blocks: apply may
        # write into aliased arrays (a matrix routed into itself).
        payloads = {
            i: message_payload(plan, messages[i], blocks)
            for i in range(len(messages))
        }
        staged = [
            round_buffers(
                segments, messages, payloads, vmap, self.world_size, self.rank
            )
            for segments in rounds
        ]
        expected_out = plan.apply(blocks, out=out)
        measured = 0.0
        for sendbuf, scounts, sdispls, rcounts, rdispls, expected in staged:
            recvbuf = np.empty_like(expected)
            self.comm.Barrier()
            t0 = time.perf_counter()
            self.comm.Alltoallv(
                [sendbuf, (scounts, sdispls)], [recvbuf, (rcounts, rdispls)]
            )
            measured += time.perf_counter() - t0
            if not np.array_equal(recvbuf, expected):
                raise BackendExecutionError(
                    f"Alltoallv for plan {label!r} delivered bytes that differ "
                    f"from the replicated-state expectation on process "
                    f"{self.rank} ({int(np.count_nonzero(recvbuf != expected))}"
                    f"/{len(expected)} words wrong)"
                )
        self._log_plan(
            plan,
            label,
            measured_seconds=measured,
            rounds=len(rounds),
            colocated_words=int(colocated),
        )
        return expected_out

    def execute_compute(self, kind: str, shape: tuple[int, ...], flops: float) -> float:
        rng = np.random.default_rng(0)
        if kind == "gemm" and len(shape) == 3:
            m, n, k = (int(s) for s in shape)
            A = rng.standard_normal((m, k))
            B = rng.standard_normal((k, n))
            t0 = time.perf_counter()
            A @ B
            seconds = time.perf_counter() - t0
        elif kind == "trsm" and len(shape) == 2:
            n, k = (int(s) for s in shape)
            L = np.tril(rng.standard_normal((n, n))) + n * np.eye(n)
            B = rng.standard_normal((n, k))
            t0 = time.perf_counter()
            np.linalg.solve(L, B)
            seconds = time.perf_counter() - t0
        else:
            n = int(np.prod([int(s) for s in shape], dtype=np.int64)) if shape else 1
            x = rng.standard_normal(max(n, 1))
            y = rng.standard_normal(max(n, 1))
            t0 = time.perf_counter()
            x + y
            seconds = time.perf_counter() - t0
        self._log_compute(kind, shape, flops, measured_seconds=seconds)
        return seconds

    def barrier(self) -> None:
        self.comm.Barrier()

    def timer(self) -> float:
        return time.perf_counter()
