"""The simulated backend: today's per-rank clocks, verbatim.

``SimBackend`` is the CI default and the pre-backend behavior bit for
bit: :meth:`execute_plan` *is* :meth:`RoutingPlan.apply` (same group
enumeration, same fancy-index assignments, same aliasing snapshot),
plus a measurement record whose "measured" seconds are the model's own
prediction — the simulator validates against itself by construction, so
the modeled-vs-measured report degenerates to zero relative error.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend
from repro.dist.routing import RoutingPlan
from repro.machine.cost import Cost


class SimBackend(Backend):
    """Execute plans with simulated clocks only (no real data transport
    beyond the in-process block routing the simulator always did)."""

    name = "sim"
    is_real = False
    world_size = 1

    def execute_plan(
        self,
        plan: RoutingPlan,
        blocks: dict[int, np.ndarray],
        out: dict[int, np.ndarray] | None = None,
        label: str = "route",
    ) -> dict[int, np.ndarray]:
        result = plan.apply(blocks, out=out)
        self._log_plan(plan, label, measured_seconds=plan.cost().time(self.params))
        return result

    def execute_compute(self, kind: str, shape: tuple[int, ...], flops: float) -> float:
        seconds = Cost(0.0, 0.0, float(flops)).time(self.params)
        self._log_compute(kind, shape, flops, measured_seconds=seconds)
        return seconds

    def barrier(self) -> None:
        if self.machine is not None:
            self.machine.barrier()

    def timer(self) -> float:
        """The simulated clock: the bound machine's critical-path seconds."""
        return self.machine.time() if self.machine is not None else 0.0
