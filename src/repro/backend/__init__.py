"""Execution backends: the same plans, simulated or on real MPI.

See :mod:`repro.backend.base` for the protocol.  ``make_backend``
resolves the ``"sim"`` / ``"mpi"`` spellings every front-end accepts;
:class:`SimBackend` is the default everywhere and bit-identical to the
pre-backend code paths.
"""

from repro.backend.base import (
    BACKEND_NAMES,
    Backend,
    BackendExecutionError,
    ComputeMeasurement,
    PlanMeasurement,
    make_backend,
)
from repro.backend.sim import SimBackend

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendExecutionError",
    "ComputeMeasurement",
    "PlanMeasurement",
    "SimBackend",
    "make_backend",
]
