"""repro.lint — ``replint``, the repo-aware static-analysis pass.

The cost model's exactness rests on invariants that no general-purpose
linter knows about: every data movement is charged, hot paths never
gather to a global frame, parity toggles don't leak, golden streams stay
reproducible.  ``python -m repro lint`` proves them at lint time:

* :mod:`repro.lint.engine` — file collection, module naming, the
  ``# replint: disable=<rule> -- <why>`` escape hatch (justification
  required), ``[tool.replint]`` configuration and rule dispatch;
* :mod:`repro.lint.rules` — the rule catalogue (no-global-gather,
  charge-soundness, reference-isolation, toggle-hygiene, slots-required,
  rng-discipline, int32-accumulation).
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    Project,
    SourceFile,
    lint_paths,
    load_config,
    run_lint,
)
from repro.lint.rules import RULES, Rule

__all__ = [
    "Finding",
    "LintConfig",
    "Project",
    "Rule",
    "RULES",
    "SourceFile",
    "lint_paths",
    "load_config",
    "run_lint",
]
