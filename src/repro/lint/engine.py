"""replint engine: file collection, suppressions, config, rule dispatch.

The linter proves the repo's cost-model invariants *statically* (see
:mod:`repro.lint.rules` for the rule catalogue).  This module owns the
mechanics shared by every rule:

* **file model** — each ``.py`` file is parsed once into a
  :class:`SourceFile` carrying its dotted module name (``src/repro/x/y.py``
  becomes ``repro.x.y``; ``tests/foo.py`` becomes ``tests.foo``), its AST,
  and its suppression comments;
* **escape hatch** — ``# replint: disable=<rule>[,<rule>...] -- <why>``
  suppresses matching findings on its own line (trailing comment) or the
  line below (standalone comment).  The justification text after ``--`` is
  *required*: a disable without one does not suppress and is itself
  reported as ``bad-suppression``, so the tree can never go green on the
  back of an unexplained opt-out;
* **config** — ``[tool.replint]`` in ``pyproject.toml`` sets the module
  scopes each rule patrols and per-rule allowlists of
  ``module``/``module:qualname`` entries (``tomllib`` when available, a
  minimal section parser on Python 3.10);
* **fixtures** — a leading ``# replint-fixture-module: <dotted>`` comment
  overrides the derived module name so golden-test fixtures can impersonate
  hot-path modules without living in them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: rule ids reserved by the engine itself (not in the registry)
ENGINE_RULES = ("parse-error", "bad-suppression")

_DISABLE_RE = re.compile(
    r"#\s*replint:\s*disable=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s+--\s*(?P<why>\S.*))?"
)
_FIXTURE_MODULE_RE = re.compile(r"#\s*replint-fixture-module:\s*(?P<module>[\w.]+)")


@dataclass(slots=True, frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: ``module`` or ``module:qualname`` — what allowlist entries match against
    context: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(slots=True, frozen=True)
class Suppression:
    """A parsed ``# replint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    justified: bool
    #: comment-only line: the suppression covers the *next* line instead
    standalone: bool

    def covers(self, line: int) -> bool:
        return line == (self.line + 1 if self.standalone else self.line)


@dataclass(slots=True)
class SourceFile:
    """A parsed source file plus everything rules need to know about it."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def display_path(self) -> str:
        return str(self.path)


@dataclass(slots=True)
class Project:
    """The full set of files a lint run sees (rules may walk across files)."""

    files: list[SourceFile]

    def in_modules(self, prefixes: tuple[str, ...]) -> list[SourceFile]:
        return [f for f in self.files if module_matches(f.module, prefixes)]


@dataclass(slots=True)
class LintConfig:
    """``[tool.replint]`` knobs; defaults mirror the repo's pyproject."""

    #: modules where global gathers are banned (no-global-gather)
    hot_path_modules: tuple[str, ...] = (
        "repro.dist.routing",
        "repro.mm.mm3d",
        "repro.trsm.iterative",
        "repro.sched",
    )
    #: modules whose call graph must pair mutations with charges
    charge_modules: tuple[str, ...] = ("repro.dist", "repro.machine")
    #: routing-adjacent modules checked for implicit-dtype reductions
    int32_modules: tuple[str, ...] = ("repro.dist", "repro.machine")
    #: modules whose dataclasses must declare slots=True
    slots_modules: tuple[str, ...] = ("repro.sched", "repro.api", "repro.dist")
    #: virtual-time-only modules: wall-clock reads are banned
    #: (wallclock-discipline; the online daemon is allowlisted)
    wallclock_modules: tuple[str, ...] = ("repro.sched", "repro.dist", "repro.api")
    #: modules that must go through repro.backend for execution: direct
    #: Machine construction and time.* reads are banned there
    #: (backend-discipline; repro.backend and repro.machine are exempt)
    backend_modules: tuple[str, ...] = ("repro",)
    #: path substrings skipped during collection (fixtures are linted by
    #: their golden tests, not by the repo-wide run)
    exclude: tuple[str, ...] = ("lint_fixtures",)
    #: rule id -> tuple of ``module`` / ``module:qualname`` entries
    allow: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def allowed(self, finding: Finding) -> bool:
        entries = self.allow.get(finding.rule, ())
        module, _, qual = finding.context.partition(":")
        for entry in entries:
            if ":" in entry:
                emod, _, equal = entry.partition(":")
                if module == emod and (qual == equal or qual.startswith(equal + ".")):
                    return True
            elif module_matches(module, (entry,)):
                return True
        return False


def module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def derive_module(path: Path) -> str:
    """``src/repro/dist/routing.py`` -> ``repro.dist.routing`` (and so on
    for ``tests/``/``benchmarks/`` trees, wherever the repo root sits)."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "tests", "benchmarks"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            parts = parts[idx + 1 :] if anchor == "src" else parts[idx:]
            break
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def scan_suppressions(text: str) -> list[Suppression]:
    """Parse disable comments from *real* comment tokens (a disable spelled
    inside a string literal — e.g. a linter test's test data — is not a
    suppression)."""
    out: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _DISABLE_RE.search(tok.string)
        if not m:
            continue
        lineno, col = tok.start
        rules = tuple(r.strip() for r in m.group("rules").split(","))
        why = m.group("why")
        standalone = tok.line[:col].strip() == ""
        out.append(
            Suppression(
                line=lineno,
                rules=rules,
                justified=bool(why and why.strip()),
                standalone=standalone,
            )
        )
    return out


def parse_file(path: Path) -> SourceFile | Finding:
    text = path.read_text(encoding="utf-8")
    module = derive_module(path)
    head = "\n".join(text.splitlines()[:5])
    fixture = _FIXTURE_MODULE_RE.search(head)
    if fixture:
        module = fixture.group("module")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="parse-error",
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"could not parse: {exc.msg}",
            context=module,
        )
    return SourceFile(
        path=path,
        module=module,
        text=text,
        tree=tree,
        suppressions=scan_suppressions(text),
    )


def collect_paths(paths: list[str], exclude: tuple[str, ...]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if any(x in str(c) for x in exclude):
                continue
            if c in seen:
                continue
            seen.add(c)
            out.append(c)
    return out


# ---------------------------------------------------------------------------
# configuration


def _parse_replint_sections(text: str) -> dict:
    """Minimal TOML reader for ``[tool.replint*]`` on Python 3.10 (no
    ``tomllib``).  Handles exactly the config subset replint documents:
    string lists (possibly multi-line), strings and booleans."""
    data: dict = {}
    table: dict | None = None
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending:
            pending += " " + line
            if pending.count("[") > pending.count("]"):
                continue
            line = pending
            pending = ""
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            name = line.strip("[]").strip()
            if name == "tool.replint" or name.startswith("tool.replint."):
                key = name[len("tool.replint") :].lstrip(".")
                table = data
                for part in key.split(".") if key else []:
                    table = table.setdefault(part, {})
            else:
                table = None
            continue
        if table is None or "=" not in line:
            continue
        key, _, value = line.partition("=")
        value = value.split("#", 1)[0].strip() if '"' not in value else value.strip()
        if value.startswith("[") and value.count("[") > value.count("]"):
            pending = line
            continue
        table[key.strip().strip('"')] = _parse_toml_value(value)
    return {"tool": {"replint": data}}


def _parse_toml_value(value: str):
    value = value.strip()
    if value.startswith("["):
        inner = value.strip("[]").strip()
        if not inner:
            return []
        return [_parse_toml_value(v) for v in inner.split(",") if v.strip()]
    if value.startswith('"') or value.startswith("'"):
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        return value


def load_config(pyproject: Path | None) -> LintConfig:
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib

        data = tomllib.loads(text)
    except ModuleNotFoundError:
        data = _parse_replint_sections(text)
    section = data.get("tool", {}).get("replint", {})
    cfg = LintConfig()
    for toml_key, attr in (
        ("hot-path-modules", "hot_path_modules"),
        ("charge-modules", "charge_modules"),
        ("int32-modules", "int32_modules"),
        ("slots-modules", "slots_modules"),
        ("wallclock-modules", "wallclock_modules"),
        ("backend-modules", "backend_modules"),
        ("exclude", "exclude"),
    ):
        if toml_key in section:
            setattr(cfg, attr, tuple(section[toml_key]))
    allow = section.get("allow", {})
    cfg.allow = {rule: tuple(entries) for rule, entries in allow.items()}
    return cfg


def find_pyproject(start: Path) -> Path | None:
    for candidate in [start, *start.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


# ---------------------------------------------------------------------------
# the run


def lint_paths(
    paths: list[str],
    config: LintConfig | None = None,
    config_path: Path | None = None,
) -> list[Finding]:
    """Lint ``paths`` and return the surviving findings, sorted by location.

    Pipeline: collect -> parse -> run every registered rule -> drop
    allowlisted findings -> apply justified suppressions -> append a
    ``bad-suppression`` finding for every disable comment that names an
    unknown rule or lacks a ``-- <why>`` justification.
    """
    from repro.lint.rules import RULES

    if config is None:
        config = load_config(config_path or find_pyproject(Path.cwd()))

    files: list[SourceFile] = []
    findings: list[Finding] = []
    for path in collect_paths(paths, config.exclude):
        parsed = parse_file(path)
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            files.append(parsed)

    project = Project(files)
    for rule in RULES.values():
        findings.extend(rule.check(project, config))

    findings = [f for f in findings if not config.allowed(f)]

    known = set(RULES) | set(ENGINE_RULES)
    by_path = {f.display_path(): f for f in files}
    kept: list[Finding] = []
    for finding in findings:
        src = by_path.get(finding.path)
        sup = None
        if src is not None:
            for s in src.suppressions:
                if finding.rule in s.rules and s.covers(finding.line):
                    sup = s
                    break
        if sup is not None and sup.justified:
            continue
        kept.append(finding)

    for src in files:
        for s in src.suppressions:
            unknown = sorted(set(s.rules) - known)
            if unknown:
                kept.append(
                    Finding(
                        rule="bad-suppression",
                        path=src.display_path(),
                        line=s.line,
                        col=0,
                        message=f"disable names unknown rule(s): {', '.join(unknown)}",
                        context=src.module,
                    )
                )
            if not s.justified:
                kept.append(
                    Finding(
                        rule="bad-suppression",
                        path=src.display_path(),
                        line=s.line,
                        col=0,
                        message=(
                            "suppression has no justification: write "
                            "'# replint: disable=<rule> -- <why>'"
                        ),
                        context=src.module,
                    )
                )

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def run_lint(
    paths: list[str],
    config_path: Path | None = None,
    list_rules: bool = False,
) -> int:
    """CLI entry point: print findings, return a shell exit status."""
    from repro.lint.rules import RULES

    if list_rules:
        width = max(len(r) for r in RULES)
        for rule_id, rule in RULES.items():
            print(f"{rule_id:<{width}}  {rule.summary}")
        return 0
    findings = lint_paths(paths, config_path=config_path)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"replint: {len(findings)} finding(s)")
        return 1
    print("replint: clean")
    return 0
