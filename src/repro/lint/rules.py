"""The replint rule catalogue: nine invariants of the cost model, as AST checks.

Every rule proves (a conservative approximation of) a property the
reproduction's exactness depends on:

* ``no-global-gather`` — hot paths never assemble a global frame; the
  modeled ``alpha*S + beta*W`` critical path is only exact if all data
  movement goes through charged routing plans.
* ``charge-soundness`` — every ``RoutingPlan.apply`` / ``set_local``
  mutation in the dist/machine layers is reachable only from functions
  that pair it with a ``charge``/``charge_pointwise``; an uncharged copy
  is a silently wrong critical path.
* ``reference-isolation`` — the pinned pre-vectorization loops in
  ``routing_reference`` exist to *check* the fast path, so only
  ``repro.dist.routing`` itself, tests and benchmarks may import them.
* ``toggle-hygiene`` — the process-global parity toggles
  (``set_reference_mode``/``set_plan_cache_enabled``) leak across tests
  when flipped raw; they may only appear inside context-managed helpers.
* ``slots-required`` — dataclasses on the serve hot path (``sched``,
  ``api``, ``dist``) must declare ``slots=True``: attribute-dict churn is
  measurable at 10^4-request scale and silent attribute typos break the
  pricing-key contracts.
* ``rng-discipline`` — all randomness flows through
  ``np.random.default_rng(seed)`` with an explicit seed; the golden
  schedules and parity suites are only reproducible if nothing touches
  the legacy global generator.
* ``int32-accumulation`` — integer reductions in routing-adjacent code
  need an explicit ``dtype``; the int32 word-count overflow class is
  guarded dynamically at plan construction, and this keeps new reduction
  sites from reintroducing it.
* ``wallclock-discipline`` — the scheduler/dist layers run in *virtual*
  time (the alpha-beta-gamma clock the paper's model defines); a
  ``time.time()``/``time.monotonic()`` read there couples schedules to
  the host and breaks replay determinism.  Only the online daemon — the
  bridge from live arrivals to the simulated machine — is allowlisted.
* ``backend-discipline`` — execution is the backend's business: outside
  ``repro.backend``/``repro.machine``, library code must not construct a
  ``Machine`` directly (``SimBackend().make_machine(...)`` instead) or
  read the wall clock (``Backend.timer`` is the capability).  The MPI
  backend and the daemon bridge are allowlisted in pyproject.

Rules are project-level: each receives the full :class:`~repro.lint.engine.Project`
so cross-file checks (the charge-soundness call-graph walk) and per-file
checks share one shape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.lint.engine import Finding, LintConfig, Project, SourceFile, module_matches

GLOBAL_GATHERS = ("to_global", "from_global", "gather_frame")
MUTATORS = ("apply", "set_local")
CHARGES = ("charge", "charge_pointwise", "charge_local")
TOGGLES = ("set_reference_mode", "set_plan_cache_enabled")
INT_REDUCTIONS = ("sum", "prod", "cumsum", "cumprod")
RNG_SAFE_IMPORTS = ("default_rng", "Generator", "SeedSequence", "BitGenerator")
WALLCLOCK_FNS = (
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "clock_gettime",
    "clock_gettime_ns",
)


@dataclass(slots=True, frozen=True)
class Rule:
    id: str
    summary: str
    check: Callable[[Project, LintConfig], list[Finding]]


def _call_name(node: ast.AST) -> str | None:
    """The simple name a call resolves to: ``f(...)`` and ``x.y.f(...)``
    both yield ``"f"``; anything else (subscripts, lambdas) yields None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _qualnames(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every node to its enclosing def/class qualname ('' at module level)."""
    out: dict[ast.AST, str] = {}

    def visit(node: ast.AST, stack: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack = stack + (node.name,)
        out[node] = ".".join(stack)
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(tree, ())
    return out


def _context(src: SourceFile, qual: str) -> str:
    return f"{src.module}:{qual}" if qual else src.module


def _finding(rule: str, src: SourceFile, node: ast.AST, message: str, qual: str) -> Finding:
    return Finding(
        rule=rule,
        path=src.display_path(),
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        message=message,
        context=_context(src, qual),
    )


# ---------------------------------------------------------------------------
# no-global-gather


def check_no_global_gather(project: Project, config: LintConfig) -> list[Finding]:
    out: list[Finding] = []
    for src in project.in_modules(config.hot_path_modules):
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name in GLOBAL_GATHERS:
                out.append(
                    _finding(
                        "no-global-gather",
                        src,
                        node,
                        f"hot-path module calls `{name}` (assembles a global "
                        "frame outside the charged routing plans)",
                        quals[node],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# charge-soundness


@dataclass(slots=True)
class _FuncRecord:
    key: str
    simple: str
    src: SourceFile
    qual: str
    has_charge: bool = False
    mutations: list[tuple[ast.Call, str]] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)


def _charge_records(project: Project, config: LintConfig) -> dict[str, _FuncRecord]:
    records: dict[str, _FuncRecord] = {}
    for src in project.in_modules(config.charge_modules):
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = quals[node]
            key = f"{src.module}:{qual}" if qual else f"{src.module}:<module>"
            rec = records.get(key)
            if rec is None:
                simple = qual.rsplit(".", 1)[-1] if qual else "<module>"
                rec = records[key] = _FuncRecord(key=key, simple=simple, src=src, qual=qual)
            name = _call_name(node.func)
            if name is None:
                continue
            rec.calls.add(name)
            if name in CHARGES:
                rec.has_charge = True
            if name in MUTATORS:
                rec.mutations.append((node, name))
    return records


def check_charge_soundness(project: Project, config: LintConfig) -> list[Finding]:
    """Greatest-fixpoint coverage over a name-based call graph.

    A function is *covered* when it charges itself, or when it has at
    least one caller (other than itself) and every caller is covered.  A
    mutation (`.apply`/`.set_local` call) inside an uncovered function is
    movement the cost counters never see.
    """
    records = _charge_records(project, config)
    callers: dict[str, list[str]] = {k: [] for k in records}
    for key, rec in records.items():
        for other_key, other in records.items():
            if rec.simple != "<module>" and rec.simple in other.calls:
                callers[key].append(other_key)

    covered = {k: True for k in records}
    changed = True
    while changed:
        changed = False
        for key, rec in records.items():
            if rec.has_charge or not covered[key]:
                continue
            others = [c for c in callers[key] if c != key]
            ok = bool(others) and all(covered[c] for c in others)
            if not ok:
                covered[key] = False
                changed = True

    out: list[Finding] = []
    for key, rec in records.items():
        if covered[key]:
            continue
        for node, name in rec.mutations:
            where = rec.qual or "module level"
            out.append(
                _finding(
                    "charge-soundness",
                    rec.src,
                    node,
                    f"`{name}` in `{where}` is not reachable from any "
                    "charge/charge_pointwise pairing",
                    rec.qual,
                )
            )
    return out


# ---------------------------------------------------------------------------
# reference-isolation


def check_reference_isolation(project: Project, config: LintConfig) -> list[Finding]:
    allowed = ("repro.dist.routing", "repro.dist.routing_reference", "tests", "benchmarks")
    out: list[Finding] = []
    for src in project.files:
        if module_matches(src.module, allowed):
            continue
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            names: list[str] = []
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""] + [a.name for a in node.names]
            if any("routing_reference" in n for n in names):
                out.append(
                    _finding(
                        "reference-isolation",
                        src,
                        node,
                        "the pinned reference loops are for parity checks only: "
                        "import `routing_reference` from routing.py, tests or "
                        "benchmarks, not from library code",
                        quals[node],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# toggle-hygiene


def _is_contextmanager(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for dec in fn.decorator_list:
        name = dec.id if isinstance(dec, ast.Name) else getattr(dec, "attr", None)
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


def check_toggle_hygiene(project: Project, config: LintConfig) -> list[Finding]:
    out: list[Finding] = []
    for src in project.files:
        if src.module == "repro.dist.routing":
            continue  # the toggles and their context managers live here
        cm_funcs: set[str] = set()
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_contextmanager(node):
                    cm_funcs.add(quals[node])
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in TOGGLES:
                continue
            qual = quals[node]
            inside_cm = any(qual == f or qual.startswith(f + ".") for f in cm_funcs)
            if inside_cm:
                continue
            out.append(
                _finding(
                    "toggle-hygiene",
                    src,
                    node,
                    f"raw `{name}` call leaks global state on failure: use the "
                    "`reference_mode()`/`plan_cache_disabled()` context managers",
                    qual,
                )
            )
    return out


# ---------------------------------------------------------------------------
# slots-required


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if _call_name(target) == "dataclass":
            return dec
    return None


def check_slots_required(project: Project, config: LintConfig) -> list[Finding]:
    out: list[Finding] = []
    for src in project.in_modules(config.slots_modules):
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dec = _dataclass_decorator(node)
            if dec is None:
                continue
            has_slots = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not has_slots:
                out.append(
                    _finding(
                        "slots-required",
                        src,
                        node,
                        f"dataclass `{node.name}` must declare slots=True "
                        "(hot-path layers pay for attribute dicts at serve scale)",
                        quals[node],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# rng-discipline


def _np_random_attr(func: ast.AST) -> str | None:
    """``np.random.<fn>`` / ``numpy.random.<fn>`` -> ``<fn>``, else None."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


def _has_explicit_seed(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg == "seed" for kw in node.keywords)


def check_rng_discipline(project: Project, config: LintConfig) -> list[Finding]:
    out: list[Finding] = []
    for src in project.files:
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                bad = [a.name for a in node.names if a.name not in RNG_SAFE_IMPORTS]
                if bad:
                    out.append(
                        _finding(
                            "rng-discipline",
                            src,
                            node,
                            f"legacy numpy.random import(s) {', '.join(bad)}: "
                            "use np.random.default_rng(seed)",
                            quals[node],
                        )
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            fn = _np_random_attr(node.func)
            if fn is None and _call_name(node.func) == "default_rng":
                fn = "default_rng"
            if fn is None:
                continue
            if fn == "default_rng":
                if not _has_explicit_seed(node):
                    out.append(
                        _finding(
                            "rng-discipline",
                            src,
                            node,
                            "default_rng() without an explicit seed: golden "
                            "schedules and parity suites must be reproducible",
                            quals[node],
                        )
                    )
            else:
                out.append(
                    _finding(
                        "rng-discipline",
                        src,
                        node,
                        f"legacy global-state RNG call `np.random.{fn}`: use "
                        "np.random.default_rng(seed)",
                        quals[node],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# int32-accumulation


def check_int32_accumulation(project: Project, config: LintConfig) -> list[Finding]:
    out: list[Finding] = []
    for src in project.in_modules(config.int32_modules):
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in INT_REDUCTIONS):
                continue
            # math.prod/math.fsum are exact Python arithmetic, not numpy
            if isinstance(func.value, ast.Name) and func.value.id == "math":
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            out.append(
                _finding(
                    "int32-accumulation",
                    src,
                    node,
                    f"reduction `{func.attr}` without an explicit dtype in "
                    "routing-adjacent code: word counts overflow int32 "
                    "(pass dtype=np.int64)",
                    quals[node],
                )
            )
    return out


# ---------------------------------------------------------------------------
# wallclock-discipline


def check_wallclock_discipline(project: Project, config: LintConfig) -> list[Finding]:
    """Virtual-time layers must never read the host clock.

    Flags ``time.<fn>`` attribute access (calls *and* bare references —
    ``clock=time.monotonic`` smuggles the wall clock just as well) and
    ``from time import <fn>`` for the reading functions; ``time.sleep``
    and the struct/formatting helpers are not clock reads and pass.
    """
    out: list[Finding] = []
    for src in project.in_modules(config.wallclock_modules):
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in WALLCLOCK_FNS]
                if bad:
                    out.append(
                        _finding(
                            "wallclock-discipline",
                            src,
                            node,
                            f"wall-clock import(s) {', '.join(bad)} from `time`: "
                            "virtual-time layers schedule on the modeled "
                            "alpha-beta-gamma clock only",
                            quals[node],
                        )
                    )
                continue
            if not (
                isinstance(node, ast.Attribute)
                and node.attr in WALLCLOCK_FNS
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                continue
            out.append(
                _finding(
                    "wallclock-discipline",
                    src,
                    node,
                    f"wall-clock read `time.{node.attr}`: virtual-time layers "
                    "schedule on the modeled alpha-beta-gamma clock only "
                    "(inject a clock if one is genuinely needed)",
                    quals[node],
                )
            )
    return out


# ---------------------------------------------------------------------------
# backend-discipline

#: modules the rule never patrols: the backend package (it owns execution
#: and the real clock) and the machine layer (it defines Machine)
BACKEND_EXEMPT = ("repro.backend", "repro.machine")


def check_backend_discipline(project: Project, config: LintConfig) -> list[Finding]:
    """Execution goes through :mod:`repro.backend`, nowhere else.

    Outside the backend package (and ``repro.machine``, which defines the
    class), library code must not construct a ``Machine`` directly — a
    machine built behind the backend's back executes plans no backend
    sees, so its transitions can never be measured.  Real-clock reads are
    flagged for the same reason wallclock-discipline flags them, but over
    the *whole* ``repro`` tree: wall time is the backend's capability
    (``Backend.timer``), not ambient authority.  Construct machines with
    ``SimBackend().make_machine(...)`` (or the lazy ``machine.backend``
    adoption) and read clocks through the backend.
    """
    out: list[Finding] = []
    for src in project.in_modules(config.backend_modules):
        if module_matches(src.module, BACKEND_EXEMPT):
            continue
        # wallclock-discipline already owns clock reads in its modules;
        # re-flagging them here would double-report every finding.
        clock_covered = module_matches(src.module, config.wallclock_modules)
        quals = _qualnames(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and _call_name(node.func) == "Machine":
                out.append(
                    _finding(
                        "backend-discipline",
                        src,
                        node,
                        "direct `Machine(...)` construction bypasses the "
                        "execution backend: use "
                        "`SimBackend().make_machine(...)` (repro.backend)",
                        quals[node],
                    )
                )
                continue
            if clock_covered:
                continue
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in WALLCLOCK_FNS]
                if bad:
                    out.append(
                        _finding(
                            "backend-discipline",
                            src,
                            node,
                            f"wall-clock import(s) {', '.join(bad)} from "
                            "`time` outside repro.backend: wall time is the "
                            "backend's capability (Backend.timer)",
                            quals[node],
                        )
                    )
                continue
            if (
                isinstance(node, ast.Attribute)
                and node.attr in WALLCLOCK_FNS
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
            ):
                out.append(
                    _finding(
                        "backend-discipline",
                        src,
                        node,
                        f"wall-clock read `time.{node.attr}` outside "
                        "repro.backend: wall time is the backend's "
                        "capability (Backend.timer)",
                        quals[node],
                    )
                )
    return out


# ---------------------------------------------------------------------------
# registry

RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "no-global-gather",
            "hot paths must not assemble global frames (to_global/from_global/gather_frame)",
            check_no_global_gather,
        ),
        Rule(
            "charge-soundness",
            "every plan.apply/set_local mutation must be reachable from a charge pairing",
            check_charge_soundness,
        ),
        Rule(
            "reference-isolation",
            "routing_reference is importable only from routing.py, tests and benchmarks",
            check_reference_isolation,
        ),
        Rule(
            "toggle-hygiene",
            "global parity toggles only inside context-managed helpers",
            check_toggle_hygiene,
        ),
        Rule(
            "slots-required",
            "dataclasses in sched/api/dist must declare slots=True",
            check_slots_required,
        ),
        Rule(
            "rng-discipline",
            "randomness only via np.random.default_rng with an explicit seed",
            check_rng_discipline,
        ),
        Rule(
            "int32-accumulation",
            "integer reductions in routing-adjacent code need an explicit dtype",
            check_int32_accumulation,
        ),
        Rule(
            "wallclock-discipline",
            "virtual-time layers (sched/dist/api) must not read the wall clock",
            check_wallclock_discipline,
        ),
        Rule(
            "backend-discipline",
            "Machine construction and time.* reads only inside repro.backend/repro.machine",
            check_backend_discipline,
        ),
    )
}
