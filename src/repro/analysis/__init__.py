"""Paper-artifact generation: tables, the Figure 1 regime map, asymptotics.

* :mod:`repro.analysis.asymptotics` — leading-order cost ratios (the
  Section IX improvement factors) and empirical growth-rate fitting;
* :mod:`repro.analysis.tables` — the Section IX conclusion table and the
  per-line / per-part cost tables, from both models and simulation;
* :mod:`repro.analysis.regime_map` — Figure 1 as a (n/k, p) grid of regime
  labels;
* :mod:`repro.analysis.serve` — throughput/occupancy reports for Cluster
  serve runs (request placements, makespan vs the serial baseline);
* :mod:`repro.analysis.validation` — the backend's modeled-vs-measured
  report (per-phase/per-label/per-regime predicted vs observed seconds);
* :mod:`repro.analysis.report` — plain-text / CSV rendering.
"""

from repro.analysis.asymptotics import (
    fit_power_law,
    improvement_factors,
    latency_ratio_prediction,
)
from repro.analysis.regime_map import regime_map, render_regime_map
from repro.analysis.tables import (
    conclusion_table,
    iterative_parts_table,
    mm_line_table,
)
from repro.analysis.report import format_table
from repro.analysis.validation import (
    ValidationReport,
    ValidationRow,
    validation_report,
)
from repro.analysis.serve import (
    format_gap_pct,
    occupancy_table,
    policy_gap_data,
    policy_gap_report,
    serve_report,
    throughput_report,
)

__all__ = [
    "format_gap_pct",
    "occupancy_table",
    "policy_gap_data",
    "policy_gap_report",
    "serve_report",
    "throughput_report",
    "fit_power_law",
    "improvement_factors",
    "latency_ratio_prediction",
    "regime_map",
    "render_regime_map",
    "conclusion_table",
    "iterative_parts_table",
    "mm_line_table",
    "format_table",
    "ValidationReport",
    "ValidationRow",
    "validation_report",
]
