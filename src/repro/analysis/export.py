"""Structured export of experiment artifacts (CSV / JSON).

The benches write human-readable tables to ``benchmarks/results/``; this
module produces machine-readable versions of the same sweeps for plotting
or downstream analysis, plus a one-call ``write_report`` that regenerates
the full model-side artifact set into a directory.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Sequence

from repro.machine.cost import Cost


def cost_to_dict(cost: Cost) -> dict[str, float]:
    return {"S": cost.S, "W": cost.W, "F": cost.F}


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text (RFC-4180 quoting via the csv module)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()


def conclusion_sweep_rows(
    n: int, k: int, ps: Sequence[int]
) -> tuple[list[str], list[list[object]]]:
    """CSV-ready Section IX sweep for fixed (n, k)."""
    from repro.trsm.cost_model import conclusion_row
    from repro.tuning.regimes import classify_trsm

    headers = [
        "regime", "n", "k", "p",
        "S_std", "W_std", "F_std",
        "S_new", "W_new", "F_new",
    ]
    rows: list[list[object]] = []
    for p in ps:
        r = conclusion_row(n, k, p)
        std, new = r["standard"], r["new"]
        rows.append(
            [
                classify_trsm(n, k, p).value, n, k, p,
                std.S, std.W, std.F, new.S, new.W, new.F,
            ]
        )
    return headers, rows


def regime_map_json(ratio_range=(-8, 8), p_range=(4, 65536)) -> str:
    """Figure 1 as JSON: {ratios, ps, labels}."""
    from repro.analysis.regime_map import regime_map

    rmap = regime_map(ratio_range, p_range)
    return json.dumps(
        {
            "log2_n_over_k": rmap.ratios,
            "p": rmap.ps,
            "labels": [[r.value for r in row] for row in rmap.labels],
        },
        indent=2,
    )


def tuning_table_rows(
    cases: Sequence[tuple[int, int, int]]
) -> tuple[list[str], list[list[object]]]:
    """Section VIII parameters for a case list."""
    from repro.tuning.parameters import tuned_parameters

    headers = ["n", "k", "p", "regime", "p1", "p2", "n0", "r1", "r2"]
    rows: list[list[object]] = []
    for n, k, p in cases:
        c = tuned_parameters(n, k, p)
        rows.append([n, k, p, c.regime.value, c.p1, c.p2, c.n0, c.r1, c.r2])
    return headers, rows


def write_report(
    directory: str | pathlib.Path,
    n: int = 256,
    k: int = 64,
    ps: Sequence[int] | None = None,
) -> list[pathlib.Path]:
    """Regenerate the model-side artifacts into ``directory``.

    Writes ``conclusion_sweep.csv``, ``regime_map.json``,
    ``tuning_table.csv`` and ``sensitivity.csv``; returns the paths.
    """
    from repro.analysis.sensitivity import sweep_alpha_beta

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if ps is None:
        ps = [4**e for e in range(2, 10)]

    written: list[pathlib.Path] = []

    headers, rows = conclusion_sweep_rows(n, k, ps)
    path = directory / "conclusion_sweep.csv"
    path.write_text(rows_to_csv(headers, rows))
    written.append(path)

    path = directory / "regime_map.json"
    path.write_text(regime_map_json())
    written.append(path)

    cases = [(n, k, p) for p in ps]
    headers, rows = tuning_table_rows(cases)
    path = directory / "tuning_table.csv"
    path.write_text(rows_to_csv(headers, rows))
    written.append(path)

    pts = sweep_alpha_beta(n, k, ps[len(ps) // 2])
    headers2 = ["alpha_over_beta", "t_recursive", "t_iterative", "speedup"]
    rows2 = [
        [pt.alpha_over_beta, pt.t_recursive, pt.t_iterative, pt.speedup]
        for pt in pts
    ]
    path = directory / "sensitivity.csv"
    path.write_text(rows_to_csv(headers2, rows2))
    written.append(path)

    return written
