"""Figure 1: which grid layout (1D/2D/3D) each (n/k, p) combination uses.

The paper's Figure 1 shows the one-, two- and three-dimensional processor
layouts as a function of the relative matrix sizes.  ``regime_map`` sweeps
the classifier over a logarithmic (n/k, p) grid; ``render_regime_map``
draws it as ASCII art (rows: n/k ratio descending; columns: p ascending).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tuning.regimes import TrsmRegime, classify_trsm
from repro.util.mathutil import geometric_range

_GLYPH = {
    TrsmRegime.ONE_LARGE: "1",
    TrsmRegime.TWO_LARGE: "2",
    TrsmRegime.THREE_LARGE: "3",
}


@dataclass(frozen=True)
class RegimeMap:
    """The regime label at every (ratio, p) grid point."""

    ratios: list[int]  # n/k ratios (n = ratio * k_base); negative => k > n
    ps: list[int]
    labels: list[list[TrsmRegime]]  # labels[i][j] for ratios[i], ps[j]


def regime_map(
    ratio_exp_range: tuple[int, int] = (-8, 8),
    p_range: tuple[int, int] = (4, 65536),
    k_base: int = 4096,
) -> RegimeMap:
    """Classify every (n/k = 2^e, p) point.

    ``n`` is held at ``k_base * 2^e`` (e >= 0) or ``k`` raised instead
    (e < 0), so both n > k and k > n halves of Figure 1 are covered.
    """
    exps = list(range(ratio_exp_range[0], ratio_exp_range[1] + 1))
    ps = geometric_range(p_range[0], p_range[1], 4)
    labels: list[list[TrsmRegime]] = []
    ratios: list[int] = []
    for e in exps:
        if e >= 0:
            n, k = k_base * (2**e), k_base
        else:
            n, k = k_base, k_base * (2 ** (-e))
        ratios.append(e)
        labels.append([classify_trsm(n, k, p) for p in ps])
    return RegimeMap(ratios=ratios, ps=ps, labels=labels)


def render_regime_map(rmap: RegimeMap) -> str:
    """ASCII rendering: '1'/'2'/'3' glyphs, n/k descending top to bottom."""
    lines = ["log2(n/k) \\ p : " + " ".join(f"{p:>6d}" for p in rmap.ps)]
    for e, row in sorted(zip(rmap.ratios, rmap.labels), reverse=True):
        cells = " ".join(f"{_GLYPH[r]:>6s}" for r in row)
        lines.append(f"{e:>13d} : {cells}")
    lines.append("")
    lines.append("1 = one large dimension (1D grid, full inversion)")
    lines.append("2 = two large dimensions (2D grid)")
    lines.append("3 = three large dimensions (3D grid)")
    return "\n".join(lines)
