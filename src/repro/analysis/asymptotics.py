"""Leading-order comparisons and growth-rate fitting.

The Section IX claims are *ratios* between the standard and new methods:

* 3D regime latency: ``S_std / S_new = Theta((n/k)^{1/6} p^{2/3})``;
* 2D regime latency: at least ``p^{1/4} / log p``;
* 2D regime bandwidth: ``log p``.

``improvement_factors`` evaluates both cost models and returns the measured
ratios next to the predicted ones; ``fit_power_law`` extracts empirical
exponents from sweeps (used by the benches to assert that measured scaling
matches the theory's slope, not its constants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.trsm.cost_model import conclusion_row
from repro.tuning.regimes import TrsmRegime, classify_trsm


def latency_ratio_prediction(n: int, k: int, p: int) -> float:
    """The paper's predicted latency improvement for the regime of (n,k,p).

    3D: ``(n/k)^{1/6} p^{2/3}``; 2D: ``p^{1/4}/log p`` (the paper's "at
    least" bound); 1D: ``1/log p`` (the new method *pays* an extra log).
    """
    regime = classify_trsm(n, k, p)
    lg = math.log2(p) if p > 1 else 1.0
    if regime is TrsmRegime.THREE_LARGE:
        return (n / k) ** (1.0 / 6.0) * p ** (2.0 / 3.0)
    if regime is TrsmRegime.TWO_LARGE:
        return p**0.25 / lg
    return 1.0 / lg


@dataclass(frozen=True)
class Improvement:
    """Measured (model-evaluated) and predicted improvement factors."""

    regime: TrsmRegime
    latency_ratio: float
    bandwidth_ratio: float
    flop_ratio: float
    predicted_latency_ratio: float


def improvement_factors(n: int, k: int, p: int) -> Improvement:
    """Standard-over-new cost ratios from the closed-form models."""
    row = conclusion_row(n, k, p)
    std, new = row["standard"], row["new"]
    return Improvement(
        regime=classify_trsm(n, k, p),
        latency_ratio=std.S / new.S if new.S else float("inf"),
        bandwidth_ratio=std.W / new.W if new.W else float("inf"),
        flop_ratio=std.F / new.F if new.F else float("inf"),
        predicted_latency_ratio=latency_ratio_prediction(n, k, p),
    )


def fit_power_law(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares fit ``y ~ c * x^e`` in log-log space; returns (e, c).

    Used to assert empirical scaling exponents, e.g. that the measured
    recursive-TRSM latency grows like ``p^{2/3}`` while the iterative one
    grows polylogarithmically.
    """
    xs_a = np.asarray(xs, dtype=np.float64)
    ys_a = np.asarray(ys, dtype=np.float64)
    if np.any(xs_a <= 0) or np.any(ys_a <= 0):
        raise ValueError("power-law fit requires positive data")
    e, logc = np.polyfit(np.log(xs_a), np.log(ys_a), 1)
    return float(e), float(math.exp(logc))
