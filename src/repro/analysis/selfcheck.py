"""Built-in acceptance battery: one call that proves the install works.

``run_selfcheck()`` executes a compact matrix of configurations — every
regime, both algorithms, a factorization, a prepared solve — verifying
numerics against SciPy and sanity-checking the cost counters.  It is what
a downstream user should run right after installing (``python -m repro
selfcheck``), and what CI would gate on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla


@dataclass
class CheckResult:
    name: str
    ok: bool
    detail: str = ""
    seconds: float = 0.0


@dataclass
class SelfCheckReport:
    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        lines = []
        for r in self.results:
            status = "PASS" if r.ok else "FAIL"
            lines.append(f"[{status}] {r.name:42s} {r.seconds * 1e3:8.1f} ms  {r.detail}")
        lines.append("")
        n_ok = sum(r.ok for r in self.results)
        lines.append(f"{n_ok}/{len(self.results)} checks passed")
        return "\n".join(lines)


def _check(report: SelfCheckReport, name: str, fn) -> None:
    t0 = time.perf_counter()
    try:
        detail = fn() or ""
        report.results.append(
            CheckResult(name, True, str(detail), time.perf_counter() - t0)
        )
    except Exception as exc:  # noqa: BLE001 - battery reports, not raises
        report.results.append(
            CheckResult(name, False, f"{type(exc).__name__}: {exc}", time.perf_counter() - t0)
        )


def run_selfcheck(quick: bool = False) -> SelfCheckReport:
    """Run the acceptance battery; returns a report (never raises)."""
    from repro import (
        PreparedTrsm,
        random_dense,
        random_lower_triangular,
        random_spd,
        trsm,
    )
    from repro.backend import SimBackend
    from repro.factor import cholesky_factor, lu_factor_distributed

    report = SelfCheckReport()
    sizes = (32, 8, 4) if quick else (96, 24, 16)
    n, k, p = sizes

    def solve_case(regime_name, nn, kk, algorithm):
        def fn():
            L = random_lower_triangular(nn, seed=1)
            B = random_dense(nn, kk, seed=2)
            res = trsm(L, B, p=p, algorithm=algorithm)
            ref = sla.solve_triangular(L, B, lower=True)
            assert np.allclose(res.X, ref, atol=1e-8), "solution mismatch"
            assert res.residual is not None and res.residual < 1e-10
            assert res.measured.F > 0
            return f"residual {res.residual:.1e}"

        _check(report, f"{algorithm} TRSM ({regime_name})", fn)

    solve_case("3D regime", n, k, "iterative")
    solve_case("3D regime", n, k, "recursive")
    solve_case("wide RHS", max(n // 8, 4), 8 * k, "iterative")
    solve_case("tall L", 4 * n, max(k // 8, 1), "iterative")

    def prepared():
        L = random_lower_triangular(n, seed=3)
        solver = PreparedTrsm(L, p=p, k_hint=k, n0=None)
        for s in range(2):
            B = random_dense(n, k, seed=4 + s)
            X = solver.solve(B)
            assert np.allclose(L @ X, B, atol=1e-8)
        return f"2 solves, prep F={solver.preparation_cost.F:.0f}"

    _check(report, "PreparedTrsm repeated solves", prepared)

    def chol():
        A = random_spd(n, seed=5)
        machine = SimBackend().make_machine(4)
        grid = machine.grid(2, 2)
        Lc = cholesky_factor(machine, grid, A, block=max(n // 4, 1))
        G = Lc.to_global()
        assert np.allclose(G @ G.T, A, atol=1e-7 * np.linalg.norm(A))
        return "reconstructed"

    _check(report, "distributed Cholesky", chol)

    def lu():
        rng = np.random.default_rng(6)
        A = rng.standard_normal((n, n))
        machine = SimBackend().make_machine(4)
        grid = machine.grid(2, 2)
        L, U, perm = lu_factor_distributed(machine, grid, A, block=max(n // 4, 1))
        assert np.allclose(
            A[perm], L.to_global() @ U.to_global(), atol=1e-8 * np.linalg.norm(A)
        )
        return "P A = L U"

    _check(report, "distributed LU (tournament pivoting)", lu)

    def counters():
        L = random_lower_triangular(n, seed=7)
        B = random_dense(n, k, seed=8)
        res = trsm(L, B, p=p)
        cp = res.measured
        assert cp.S >= 0 and cp.W >= 0 and cp.F > 0
        assert res.time > 0
        phases = res.phase_costs()
        assert "solve" in phases
        return f"S={cp.S:.0f} W={cp.W:.0f} F={cp.F:.0f}"

    _check(report, "cost counters / phases", counters)

    return report
