"""Trace aggregation: where did the critical-path cost go?

With ``Machine(trace=True)`` every charge records a labelled
:class:`~repro.machine.counters.TraceEvent`.  This module folds the event
stream into per-label summaries — the profiling view a performance engineer
would want before believing a cost model ("which collective dominates the
words moved?", "how many message rounds does the update phase really
issue?").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.machine.cost import Cost
from repro.machine.machine import Machine


@dataclass(frozen=True)
class LabelSummary:
    """Aggregate of all charges sharing one label."""

    label: str
    events: int
    total: Cost  # summed over events (volume view, not critical path)
    worst: Cost  # componentwise max over events
    max_group: int

    @property
    def mean_words(self) -> float:
        return self.total.W / self.events if self.events else 0.0


def summarize_trace(machine: Machine) -> list[LabelSummary]:
    """Per-label summaries, sorted by total words descending.

    Requires the machine to have been created with ``trace=True``; raises
    ``ValueError`` otherwise (an empty trace on a traced machine is fine).
    """
    if not machine.trace_enabled:
        raise ValueError(
            "trace aggregation needs Machine(trace=True); this machine "
            "recorded no events"
        )
    totals: dict[str, Cost] = defaultdict(Cost.zero)
    worsts: dict[str, Cost] = defaultdict(Cost.zero)
    counts: dict[str, int] = defaultdict(int)
    groups: dict[str, int] = defaultdict(int)
    for ev in machine.trace:
        label = ev.label or "<unlabelled>"
        totals[label] = totals[label] + ev.cost
        worsts[label] = Cost.max(worsts[label], ev.cost)
        counts[label] += 1
        groups[label] = max(groups[label], ev.group_size)
    out = [
        LabelSummary(
            label=label,
            events=counts[label],
            total=totals[label],
            worst=worsts[label],
            max_group=groups[label],
        )
        for label in totals
    ]
    return sorted(out, key=lambda s: s.total.W, reverse=True)


def render_trace(machine: Machine, top: int = 20) -> str:
    """Text table of the ``top`` labels by total words."""
    from repro.analysis.report import format_table

    rows = [
        [
            s.label,
            s.events,
            s.max_group,
            s.total.S,
            s.total.W,
            s.total.F,
            s.worst.W,
        ]
        for s in summarize_trace(machine)[:top]
    ]
    return format_table(
        ["label", "events", "max group", "S total", "W total", "F total", "W worst"],
        rows,
        title="Charge trace by label",
    )
