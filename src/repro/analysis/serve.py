"""Throughput and occupancy reporting for Cluster serve runs.

Renders a :class:`~repro.api.cluster.ClusterOutcome` — the result of
packing a request queue onto the subgrid pool — as plain-text artifacts:

* :func:`occupancy_table` — one row per request: placement (subgrid size,
  modeled start/finish), migration charge, modeled vs measured cost;
* :func:`throughput_report` — the aggregate view: modeled and measured
  makespan, the serial full-grid baseline the scheduler is judged
  against, pool occupancy and request throughput.

The functions are duck-typed over the outcome object (no import of
:mod:`repro.api`), so they also render hand-built schedules in tests.
"""

from __future__ import annotations

from repro.analysis.report import format_table


def occupancy_table(outcome) -> str:
    """Per-request placement/cost table for a serve run."""
    rows = []
    for r in outcome.records:
        rows.append(
            [
                r.rid,
                r.kind,
                r.size,
                f"{r.modeled_start * 1e6:.1f}",
                f"{r.modeled_finish * 1e6:.1f}",
                f"{r.staging_seconds * 1e6:.2f}",
                "hit" if r.staging_hit else "-",
                f"{r.staging_saved_seconds * 1e6:.2f}",
                float(r.modeled.S),
                float(r.modeled.W),
                float(r.measured.S),
                float(r.measured.W),
            ]
        )
    return format_table(
        [
            "rid",
            "kind",
            "ranks",
            "start us",
            "finish us",
            "stage us",
            "cache",
            "saved us",
            "S model",
            "W model",
            "S meas",
            "W meas",
        ],
        rows,
        title=f"Request placements (p={outcome.p}, machine {outcome.params.name!r})",
    )


def throughput_report(outcome) -> str:
    """Aggregate makespan/occupancy/throughput summary for a serve run."""
    lines = [
        f"requests          : {len(outcome.records)}",
        f"pool              : {outcome.p} ranks",
        f"modeled makespan  : {outcome.modeled_makespan * 1e6:.2f} us",
        f"measured makespan : {outcome.measured_makespan * 1e6:.2f} us",
        f"serial full-grid  : {outcome.serial_seconds * 1e6:.2f} us",
        f"speedup vs serial : {outcome.speedup_vs_serial():.2f}x",
        f"pool occupancy    : {outcome.occupancy * 100.0:.1f} %",
        f"throughput        : {outcome.throughput() / 1e3:.1f} krequests/s",
    ]
    if outcome.staging_hits or outcome.staging_misses:
        lines.append(
            f"staging cache     : {outcome.staging_hits} hits / "
            f"{outcome.staging_misses} misses, "
            f"{outcome.staging_saved_seconds * 1e6:.2f} us saved"
        )
    return "\n".join(lines)


def serve_report(outcome) -> str:
    """The full artifact: occupancy table plus the aggregate summary."""
    return occupancy_table(outcome) + "\n\n" + throughput_report(outcome)
