"""Throughput and occupancy reporting for Cluster serve runs.

Renders a :class:`~repro.api.cluster.ClusterOutcome` — the result of
packing a request queue onto the subgrid pool — as plain-text artifacts:

* :func:`occupancy_table` — one row per request: placement (subgrid size,
  modeled start/finish), migration charge, modeled vs measured cost;
* :func:`throughput_report` — the aggregate view: modeled and measured
  makespan, the serial full-grid baseline the scheduler is judged
  against, pool occupancy and request throughput;
* :func:`policy_gap_report` — the packing-policy comparison: one stream
  replayed under every policy (cache off, so the heuristics are
  apples-to-apples with the cache-incompatible exhaustive optimum), with
  per-policy makespan/occupancy/throughput and the %-above-optimal gap
  on queues small enough for :class:`~repro.sched.OptimalPolicy`;
* :func:`latency_report` — the p50/p95/p99 request-latency line, the
  *one* formatter both the replay reports and the
  :mod:`repro.api.online.daemon` telemetry render through;
* :func:`cache_stats_report` — the cache-layer summary (routing-plan
  LRU, scheduler PricingMemo, staged-copy operand cache) that
  ``python -m repro serve --profile`` and the daemon surface.

The rendering functions are duck-typed over the outcome object (no
import of :mod:`repro.api` at module scope), so they also render
hand-built schedules in tests.
"""

from __future__ import annotations

from repro.analysis.report import format_table


def occupancy_table(outcome) -> str:
    """Per-request placement/cost table for a serve run."""
    rows = []
    for r in outcome.records:
        rows.append(
            [
                r.rid,
                r.kind,
                r.size,
                f"{r.modeled_start * 1e6:.1f}",
                f"{r.modeled_finish * 1e6:.1f}",
                f"{r.staging_seconds * 1e6:.2f}",
                "hit" if r.staging_hit else "-",
                f"{r.staging_saved_seconds * 1e6:.2f}",
                float(r.modeled.S),
                float(r.modeled.W),
                float(r.measured.S),
                float(r.measured.W),
            ]
        )
    return format_table(
        [
            "rid",
            "kind",
            "ranks",
            "start us",
            "finish us",
            "stage us",
            "cache",
            "saved us",
            "S model",
            "W model",
            "S meas",
            "W meas",
        ],
        rows,
        title=f"Request placements (p={outcome.p}, machine {outcome.params.name!r})",
    )


def latency_report(percentiles: dict, count: int) -> str:
    """The one request-latency line replay reports and the daemon share.

    ``percentiles`` maps percentile → seconds (the shape
    :func:`repro.api.cluster.latency_percentiles` and
    ``ClusterOutcome.latency_percentiles`` produce); sojourn times are
    measured finish minus arrival, so queueing is included.
    """
    cells = " / ".join(
        f"p{int(q)} {v * 1e6:.2f} us" for q, v in sorted(percentiles.items())
    )
    return f"latency           : {cells} ({count} requests)"


def cache_stats_report(outcome=None, plan: dict | None = None) -> str:
    """The cache-layer summary ``--profile`` and the daemon telemetry print.

    Three layers, outermost first: the :func:`repro.dist.routing`
    routing-plan LRU (``plan``, the :func:`plan_cache_stats` dict —
    fetched live when omitted), the scheduler's PricingMemo
    staging-target rows, and the staged-copy operand cache — the last
    two read off ``outcome`` when one is given.
    """
    if plan is None:
        from repro.dist.routing import plan_cache_stats

        plan = plan_cache_stats()
    plan_total = plan["hits"] + plan["misses"]
    plan_rate = plan["hits"] / plan_total * 100.0 if plan_total else 0.0
    lines = [
        f"routing-plan LRU  : {plan['hits']} hits / {plan['misses']} misses "
        f"({plan_rate:.1f} %), {plan['entries']} entries"
    ]
    if outcome is not None:
        pricing_total = outcome.pricing_hits + outcome.pricing_misses
        pricing_rate = outcome.pricing_hit_rate() * 100.0
        if pricing_total:
            lines.append(
                f"pricing memo      : {outcome.pricing_hits} hits / "
                f"{outcome.pricing_misses} misses ({pricing_rate:.1f} %)"
            )
        else:
            lines.append("pricing memo      : off")
        if outcome.staging_hits or outcome.staging_misses:
            lines.append(
                f"staging cache     : {outcome.staging_hits} hits / "
                f"{outcome.staging_misses} misses "
                f"({outcome.staging_hit_rate() * 100.0:.1f} %), "
                f"{outcome.staging_saved_seconds * 1e6:.2f} us saved"
            )
    return "\n".join(lines)


def throughput_report(outcome) -> str:
    """Aggregate makespan/occupancy/throughput summary for a serve run."""
    lines = [
        f"requests          : {len(outcome.records)}",
        f"pool              : {outcome.p} ranks",
        f"modeled makespan  : {outcome.modeled_makespan * 1e6:.2f} us",
        f"measured makespan : {outcome.measured_makespan * 1e6:.2f} us",
        f"serial full-grid  : {outcome.serial_seconds * 1e6:.2f} us",
        f"speedup vs serial : {outcome.speedup_vs_serial():.2f}x",
        f"pool occupancy    : {outcome.occupancy * 100.0:.1f} %",
        f"throughput        : {outcome.throughput() / 1e3:.1f} krequests/s",
        latency_report(outcome.latency_percentiles(), len(outcome.records)),
    ]
    sla = outcome.sla_summary()
    if sla["met"] or sla["missed"]:
        lines.append(
            f"SLA               : {sla['met']} met / {sla['missed']} missed "
            f"({sla['best_effort']} best-effort)"
        )
    if outcome.staging_hits or outcome.staging_misses:
        lines.append(
            f"staging cache     : {outcome.staging_hits} hits / "
            f"{outcome.staging_misses} misses, "
            f"{outcome.staging_saved_seconds * 1e6:.2f} us saved"
        )
    return "\n".join(lines)


def serve_report(outcome) -> str:
    """The full artifact: occupancy table plus the aggregate summary."""
    return occupancy_table(outcome) + "\n\n" + throughput_report(outcome)


def policy_gap_data(
    stream,
    p: int,
    params=None,
    policies: tuple[str, ...] = ("lpt", "backfill", "horizon", "optimal"),
    optimal_max: int = 8,
    verify: bool = False,
) -> dict:
    """Replay ``stream`` under every policy; return the comparison as data.

    Every replay is uncached (``cache=False``) so the heuristics pay the
    same staging prices the pre-planning policies do.  ``"optimal"`` is
    skipped (entry ``None``) on queues longer than ``optimal_max`` — the
    exhaustive search is exponential in the queue length; ``"horizon"``
    runs the same search windowed, so it serves at any length.  The
    result is JSON-ready: per-policy ``makespan_seconds`` / ``occupancy``
    / ``throughput_rps``, plus ``gap_vs_optimal_pct`` (how far each
    policy sits above the ground-truth makespan — ``None`` entries mean
    the optimum did not run) when the optimum ran.
    """
    from repro.api.serve import replay

    results: dict[str, dict | None] = {}
    for name in policies:
        if name == "optimal" and len(stream) > optimal_max:
            results[name] = None
            continue
        outcome = replay(
            stream, p=p, params=params, verify=verify, policy=name, cache=False
        )
        results[name] = {
            "makespan_seconds": outcome.modeled_makespan,
            "occupancy": outcome.occupancy,
            "throughput_rps": outcome.throughput(),
        }
    gaps: dict[str, float | None] = {}
    optimal = results.get("optimal")
    for name, res in results.items():
        if name == "optimal" or res is None or optimal is None:
            gaps[name] = None
        elif optimal["makespan_seconds"] <= 0.0:
            gaps[name] = 0.0
        else:
            gaps[name] = (
                res["makespan_seconds"] / optimal["makespan_seconds"] - 1.0
            ) * 100.0
    return {
        "p": p,
        "requests": len(stream),
        "policies": results,
        "gap_vs_optimal_pct": gaps,
    }


def format_gap_pct(gap: float | None) -> str:
    """Render one ``gap_vs_optimal_pct`` cell; ``None`` (no optimum) is ``—``."""
    return "—" if gap is None else f"{gap:+.2f}"


def policy_gap_report(
    stream,
    p: int,
    params=None,
    policies: tuple[str, ...] = ("lpt", "backfill", "horizon", "optimal"),
    optimal_max: int = 8,
    verify: bool = False,
) -> str:
    """Render :func:`policy_gap_data` as the gap-report table."""
    data = policy_gap_data(
        stream, p, params=params, policies=policies, optimal_max=optimal_max,
        verify=verify,
    )
    rows = []
    for name, res in data["policies"].items():
        if res is None:
            rows.append([name, "n/a (queue too long)", "—", "—", "—"])
            continue
        gap = data["gap_vs_optimal_pct"].get(name)
        rows.append(
            [
                name,
                f"{res['makespan_seconds'] * 1e6:.2f}",
                f"{res['occupancy'] * 100.0:.1f}",
                f"{res['throughput_rps'] / 1e3:.1f}",
                format_gap_pct(gap),
            ]
        )
    return format_table(
        ["policy", "makespan us", "occupancy %", "krps", "vs optimal %"],
        rows,
        title=(
            f"Packing-policy gap report ({data['requests']} requests, "
            f"p={data['p']}, cache off)"
        ),
    )
