"""Throughput and occupancy reporting for Cluster serve runs.

Renders a :class:`~repro.api.cluster.ClusterOutcome` — the result of
packing a request queue onto the subgrid pool — as plain-text artifacts:

* :func:`occupancy_table` — one row per request: placement (subgrid size,
  modeled start/finish), migration charge, modeled vs measured cost;
* :func:`throughput_report` — the aggregate view: modeled and measured
  makespan, the serial full-grid baseline the scheduler is judged
  against, pool occupancy and request throughput;
* :func:`policy_gap_report` — the packing-policy comparison: one stream
  replayed under every policy (cache off, so the heuristics are
  apples-to-apples with the cache-incompatible exhaustive optimum), with
  per-policy makespan/occupancy/throughput and the %-above-optimal gap
  on queues small enough for :class:`~repro.sched.OptimalPolicy`.

The rendering functions are duck-typed over the outcome object (no
import of :mod:`repro.api` at module scope), so they also render
hand-built schedules in tests.
"""

from __future__ import annotations

from repro.analysis.report import format_table


def occupancy_table(outcome) -> str:
    """Per-request placement/cost table for a serve run."""
    rows = []
    for r in outcome.records:
        rows.append(
            [
                r.rid,
                r.kind,
                r.size,
                f"{r.modeled_start * 1e6:.1f}",
                f"{r.modeled_finish * 1e6:.1f}",
                f"{r.staging_seconds * 1e6:.2f}",
                "hit" if r.staging_hit else "-",
                f"{r.staging_saved_seconds * 1e6:.2f}",
                float(r.modeled.S),
                float(r.modeled.W),
                float(r.measured.S),
                float(r.measured.W),
            ]
        )
    return format_table(
        [
            "rid",
            "kind",
            "ranks",
            "start us",
            "finish us",
            "stage us",
            "cache",
            "saved us",
            "S model",
            "W model",
            "S meas",
            "W meas",
        ],
        rows,
        title=f"Request placements (p={outcome.p}, machine {outcome.params.name!r})",
    )


def throughput_report(outcome) -> str:
    """Aggregate makespan/occupancy/throughput summary for a serve run."""
    lines = [
        f"requests          : {len(outcome.records)}",
        f"pool              : {outcome.p} ranks",
        f"modeled makespan  : {outcome.modeled_makespan * 1e6:.2f} us",
        f"measured makespan : {outcome.measured_makespan * 1e6:.2f} us",
        f"serial full-grid  : {outcome.serial_seconds * 1e6:.2f} us",
        f"speedup vs serial : {outcome.speedup_vs_serial():.2f}x",
        f"pool occupancy    : {outcome.occupancy * 100.0:.1f} %",
        f"throughput        : {outcome.throughput() / 1e3:.1f} krequests/s",
    ]
    if outcome.staging_hits or outcome.staging_misses:
        lines.append(
            f"staging cache     : {outcome.staging_hits} hits / "
            f"{outcome.staging_misses} misses, "
            f"{outcome.staging_saved_seconds * 1e6:.2f} us saved"
        )
    return "\n".join(lines)


def serve_report(outcome) -> str:
    """The full artifact: occupancy table plus the aggregate summary."""
    return occupancy_table(outcome) + "\n\n" + throughput_report(outcome)


def policy_gap_data(
    stream,
    p: int,
    params=None,
    policies: tuple[str, ...] = ("lpt", "backfill", "optimal"),
    optimal_max: int = 8,
    verify: bool = False,
) -> dict:
    """Replay ``stream`` under every policy; return the comparison as data.

    Every replay is uncached (``cache=False``) so the heuristics pay the
    same staging prices the pre-planning optimum does.  ``"optimal"`` is
    skipped (entry ``None``) on queues longer than ``optimal_max`` — the
    exhaustive search is exponential in the queue length.  The result is
    JSON-ready: per-policy ``makespan_seconds`` / ``occupancy`` /
    ``throughput_rps``, plus ``gap_vs_optimal_pct`` (how far each
    heuristic sits above the ground-truth makespan) when the optimum ran.
    """
    from repro.api.serve import replay

    results: dict[str, dict | None] = {}
    for name in policies:
        if name == "optimal" and len(stream) > optimal_max:
            results[name] = None
            continue
        outcome = replay(
            stream, p=p, params=params, verify=verify, policy=name, cache=False
        )
        results[name] = {
            "makespan_seconds": outcome.modeled_makespan,
            "occupancy": outcome.occupancy,
            "throughput_rps": outcome.throughput(),
        }
    gaps: dict[str, float | None] = {}
    optimal = results.get("optimal")
    for name, res in results.items():
        if name == "optimal" or res is None or optimal is None:
            gaps[name] = None
        elif optimal["makespan_seconds"] <= 0.0:
            gaps[name] = 0.0
        else:
            gaps[name] = (
                res["makespan_seconds"] / optimal["makespan_seconds"] - 1.0
            ) * 100.0
    return {
        "p": p,
        "requests": len(stream),
        "policies": results,
        "gap_vs_optimal_pct": gaps,
    }


def policy_gap_report(
    stream,
    p: int,
    params=None,
    policies: tuple[str, ...] = ("lpt", "backfill", "optimal"),
    optimal_max: int = 8,
    verify: bool = False,
) -> str:
    """Render :func:`policy_gap_data` as the gap-report table."""
    data = policy_gap_data(
        stream, p, params=params, policies=policies, optimal_max=optimal_max,
        verify=verify,
    )
    rows = []
    for name, res in data["policies"].items():
        if res is None:
            rows.append([name, "n/a (queue too long)", "-", "-", "-"])
            continue
        gap = data["gap_vs_optimal_pct"].get(name)
        rows.append(
            [
                name,
                f"{res['makespan_seconds'] * 1e6:.2f}",
                f"{res['occupancy'] * 100.0:.1f}",
                f"{res['throughput_rps'] / 1e3:.1f}",
                "-" if gap is None else f"{gap:+.2f}",
            ]
        )
    return format_table(
        ["policy", "makespan us", "occupancy %", "krps", "vs optimal %"],
        rows,
        title=(
            f"Packing-policy gap report ({data['requests']} requests, "
            f"p={data['p']}, cache off)"
        ),
    )
