"""Modeled-vs-measured validation: the backend's measurement log, reported.

The point of the backend redesign: every executed routing plan and
kernel carries both the model's predicted seconds and what execution
observed (:class:`~repro.backend.base.PlanMeasurement`).  This module
aggregates those records into a report:

* **per phase** — predicted vs measured seconds for each machine phase
  the plans executed under (staging, inversion, solve, update, ...),
  with the signed relative error;
* **per label** — the same grouped by transition label (``stage``,
  ``rectriinv.route_down``, ...), the finer-grained attribution;
* **per regime** — predicted vs measured makespans of a
  :class:`~repro.api.cluster.ClusterOutcome`'s requests, grouped by the
  Section VIII regime (:func:`~repro.tuning.regimes.classify_trsm`)
  each solve shape falls in.

Under :class:`~repro.backend.sim.SimBackend` the measured side *is* the
model (relative error identically zero) — the report is then a
self-consistency check, and its shape in CI is exactly its shape on
real hardware.  Under :class:`~repro.backend.mpi.MPIBackend` the
measured side is wall-clock Alltoallv time and the error is a genuine
model-vs-hardware residual per regime (the paper's Section VII
comparison, inverted: the model predicts, the machine answers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.backend.base import Backend, PlanMeasurement
from repro.tuning.regimes import classify_trsm


@dataclass(slots=True, frozen=True)
class ValidationRow:
    """One aggregated modeled-vs-measured line."""

    group: str
    plans: int
    words: int
    modeled_seconds: float
    measured_seconds: float

    @property
    def relative_error(self) -> float:
        """Signed (measured - modeled) / modeled; 0 when nothing modeled."""
        if self.modeled_seconds == 0.0:
            return 0.0
        return (self.measured_seconds - self.modeled_seconds) / self.modeled_seconds


@dataclass(slots=True, frozen=True)
class ValidationReport:
    """A backend's measurement log, aggregated for rendering."""

    backend: str
    is_real: bool
    world_size: int
    by_phase: list[ValidationRow]
    by_label: list[ValidationRow]
    by_regime: list[ValidationRow]

    def total(self) -> ValidationRow:
        """The all-plans aggregate (phase rows partition the log)."""
        return ValidationRow(
            group="total",
            plans=sum(r.plans for r in self.by_phase),
            words=sum(r.words for r in self.by_phase),
            modeled_seconds=sum(r.modeled_seconds for r in self.by_phase),
            measured_seconds=sum(r.measured_seconds for r in self.by_phase),
        )

    def render(self) -> str:
        """The plain-text report (the ``--validate`` CLI output)."""
        kind = "wall-clock" if self.is_real else "self-consistent"
        sections = [
            _render_rows(
                f"modeled vs measured [{self.backend} backend, "
                f"world={self.world_size}, {kind}]",
                "phase",
                self.by_phase + [self.total()],
            )
        ]
        if self.by_label:
            sections.append(_render_rows(None, "label", self.by_label))
        if self.by_regime:
            sections.append(_render_rows(None, "regime", self.by_regime))
        return "\n\n".join(sections)


def _render_rows(
    title: str | None, key: str, rows: list[ValidationRow]
) -> str:
    return format_table(
        [key, "plans", "words", "modeled s", "measured s", "rel err"],
        [
            [
                r.group,
                r.plans,
                r.words,
                r.modeled_seconds,
                r.measured_seconds,
                r.relative_error,
            ]
            for r in rows
        ],
        title=title,
    )


def _aggregate(
    records: list[PlanMeasurement], key: "str"
) -> list[ValidationRow]:
    groups: dict[str, list[PlanMeasurement]] = {}
    for rec in records:
        name = getattr(rec, key) or "(none)"
        groups.setdefault(name, []).append(rec)
    return [
        ValidationRow(
            group=name,
            plans=len(recs),
            words=sum(r.words for r in recs),
            modeled_seconds=sum(r.modeled_seconds for r in recs),
            measured_seconds=sum(r.measured_seconds for r in recs),
        )
        for name, recs in sorted(groups.items())
    ]


def _regime_rows(outcome) -> list[ValidationRow]:
    """Per-regime predicted-vs-measured windows of an outcome's requests.

    ``modeled`` is the scheduler's per-request execution window,
    ``measured`` the machine's (wall-clock-backed under a real backend,
    simulated otherwise) — the regime split localizes where the model
    drifts, which Section VIII predicts differs by grid dimensionality.
    """
    groups: dict[str, list] = {}
    for rec in outcome.records:
        shape = getattr(rec.value, "shape", None)
        if shape is not None and len(shape) == 2 and min(shape) >= 1:
            # the solve result is n x k; its shape names the regime
            regime = classify_trsm(int(shape[0]), int(shape[1]), outcome.p).value
        else:
            regime = rec.kind
        groups.setdefault(regime, []).append(rec)
    return [
        ValidationRow(
            group=name,
            plans=len(recs),
            words=int(sum(r.modeled.W for r in recs)),
            modeled_seconds=sum(r.modeled_finish - r.modeled_start for r in recs),
            measured_seconds=sum(r.measured_finish - r.measured_start for r in recs),
        )
        for name, recs in sorted(groups.items())
    ]


def validation_report(backend: Backend, outcome=None) -> ValidationReport:
    """Build the modeled-vs-measured report from a backend's log.

    ``outcome`` (a :class:`~repro.api.cluster.ClusterOutcome`) adds the
    per-regime section; without it the report covers the executed plans
    only.
    """
    records = backend.measurements()
    return ValidationReport(
        backend=backend.name,
        is_real=backend.is_real,
        world_size=backend.world_size,
        by_phase=_aggregate(records, "phase"),
        by_label=_aggregate(records, "label"),
        by_regime=[] if outcome is None else _regime_rows(outcome),
    )
