"""Plain-text table rendering shared by the benches and examples."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Monospace table with per-column width fitting.

    Floats are rendered with 4 significant digits; everything else via
    ``str``.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1e5 or abs(cell) < 1e-3:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_cost(cost: object) -> str:
    """Compact one-line Cost rendering for table cells."""
    return f"S={getattr(cost, 'S', 0):.3g} W={getattr(cost, 'W', 0):.3g} F={getattr(cost, 'F', 0):.3g}"


def render_bars(
    values: dict[str, float],
    width: int = 50,
    unit: str = "",
    title: str | None = None,
) -> str:
    """ASCII horizontal bar chart (largest value fills ``width`` columns).

    The plot-free "figure" renderer used by examples and benches; values
    must be non-negative.
    """
    if not values:
        return "(no data)"
    if any(v < 0 for v in values.values()):
        raise ValueError("render_bars requires non-negative values")
    vmax = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    out = []
    if title:
        out.append(title)
    for key, v in values.items():
        bar = "#" * max(int(round(v / vmax * width)), 1 if v > 0 else 0)
        out.append(f"{key.ljust(label_w)} | {bar} {v:.4g}{unit}")
    return "\n".join(out)
