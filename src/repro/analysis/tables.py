"""The paper's tables, regenerated from models and/or simulation.

* :func:`conclusion_table` — Section IX: S/W/F of standard vs new method in
  all three regimes (model sweep; the benches add simulator spot checks);
* :func:`mm_line_table` — Section III-A: per-line MM costs, model vs
  simulated trace;
* :func:`iterative_parts_table` — Section VII: inversion/solve/update parts,
  model vs simulated phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.sim import SimBackend
from repro.machine.cost import Cost
from repro.trsm.cost_model import conclusion_row
from repro.tuning.regimes import TrsmRegime


@dataclass(frozen=True)
class ConclusionEntry:
    regime: TrsmRegime
    n: int
    k: int
    p: int
    standard: Cost
    new: Cost

    @property
    def latency_ratio(self) -> float:
        return self.standard.S / self.new.S if self.new.S else float("inf")


def conclusion_table(
    cases: list[tuple[int, int, int]] | None = None
) -> list[ConclusionEntry]:
    """Section IX comparison rows for representative (n, k, p) triples.

    The default cases put one triple deep inside each regime at several
    machine sizes.
    """
    from repro.tuning.regimes import classify_trsm

    if cases is None:
        cases = []
        k = 64
        for p in (64, 1024, 16384):
            cases.append((k, 4 * k * p, p))  # 1D: n < 4k/p
            cases.append((8 * k * int(p**0.5), k, p))  # 2D: n > 4k sqrt(p)
            cases.append((4 * k, k, p))  # 3D: between the thresholds
    out = []
    for n, k, p in cases:
        row = conclusion_row(n, k, p)
        out.append(
            ConclusionEntry(
                regime=classify_trsm(n, k, p),
                n=n,
                k=k,
                p=p,
                standard=row["standard"],
                new=row["new"],
            )
        )
    return out


def mm_line_table(
    n: int, k: int, p1: int, p2: int, m: int | None = None, seed: int = 0
) -> list[tuple[str, Cost, Cost]]:
    """(line, modeled, simulated) for one MM run.

    mm3d labels every charge ``mm3d.lineN``; routing each label into a
    machine phase gives per-rank sums per line, whose componentwise max is
    the line's critical-path cost (concurrent fiber groups don't stack).
    """
    import math

    from repro.dist.distmatrix import DistMatrix
    from repro.dist.layout import CyclicLayout
    from repro.mm.cost_model import mm3d_cost_lines
    from repro.util.randmat import random_dense

    if m is None:
        m = n
    sq = math.isqrt(p2)
    sp = p1 * sq
    p = sp * sp
    machine = SimBackend().make_machine(p)
    grid = machine.grid(sp, sp)
    layout = CyclicLayout(sp, sp)
    A = random_dense(m, n, seed=seed)
    X = random_dense(n, k, seed=seed + 1)
    dA = DistMatrix.from_global(machine, grid, layout, A)
    dX = DistMatrix.from_global(machine, grid, layout, X)
    result = _simulate_mm_with_phases(machine, dA, dX, p1)
    assert np.allclose(result.to_global(), A @ X)
    model = mm3d_cost_lines(n, k, p1, p2, m=m)
    out = []
    for line in sorted(model.keys()):
        out.append((line, model[line], machine.phase_cost(f"mm3d.{line}")))
    return out


def _simulate_mm_with_phases(machine, dA, dX, p1):
    """Run mm3d with each line's charges wrapped in a phase.

    mm3d labels its charges "mm3d.lineN"; we monkey-route labels to phases
    by intercepting Machine.charge.
    """
    original_charge = machine.charge
    original_local = machine.charge_local

    def charge(group, cost, label="", sync=True):
        if label.startswith("mm3d."):
            with machine.phase(label):
                original_charge(group, cost, label=label, sync=sync)
        else:
            original_charge(group, cost, label=label, sync=sync)

    def charge_local(rank_costs, label=""):
        if label.startswith("mm3d."):
            with machine.phase(label):
                original_local(rank_costs, label=label)
        else:
            original_local(rank_costs, label=label)

    machine.charge = charge
    machine.charge_local = charge_local
    try:
        from repro.mm.mm3d import mm3d

        return mm3d(dA, dX, p1)
    finally:
        machine.charge = original_charge
        machine.charge_local = original_local


def iterative_parts_table(
    n: int, k: int, p1: int, p2: int, n0: int, seed: int = 0
) -> list[tuple[str, Cost, Cost]]:
    """(part, modeled, simulated) for inversion / solve / update."""
    from repro.trsm.cost_model import iterative_parts
    from repro.trsm.iterative import it_inv_trsm_global
    from repro.util.randmat import random_dense, random_lower_triangular

    machine = SimBackend().make_machine(p1 * p1 * p2)
    L = random_lower_triangular(n, seed=seed)
    B = random_dense(n, k, seed=seed + 1)
    it_inv_trsm_global(machine, L, B, p1=p1, p2=p2, n0=n0)
    model = iterative_parts(n, k, n0, p1, p2)
    return [
        ("inversion", model.inversion, machine.phase_cost("inversion")),
        ("solve", model.solve, machine.phase_cost("solve")),
        ("update", model.update, machine.phase_cost("update")),
    ]
