"""Machine-sensitivity analysis: when does the new method win *in time*?

The paper compares S/W/F asymptotically; a practitioner asks a different
question: on *my* machine (my alpha/beta/gamma), at *my* problem size, is
the iterative algorithm faster, and by how much?  This module sweeps the
latency/bandwidth ratio and locates the crossover — turning the paper's
asymptotic statement into a deployable decision rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, require
from repro.trsm.cost_model import iterative_cost, recursive_cost
from repro.tuning.parameters import tuned_parameters


@dataclass(frozen=True)
class SensitivityPoint:
    """Modeled times of both methods at one alpha/beta ratio."""

    alpha_over_beta: float
    t_recursive: float
    t_iterative: float

    @property
    def speedup(self) -> float:
        return self.t_recursive / self.t_iterative if self.t_iterative else float("inf")


def sweep_alpha_beta(
    n: int,
    k: int,
    p: int,
    ratios: list[float] | None = None,
    beta: float = 1e-9,
    gamma_over_beta: float = 0.05,
) -> list[SensitivityPoint]:
    """Modeled recursive-vs-iterative times across alpha/beta ratios.

    ``beta`` is held fixed; ``alpha = ratio * beta``;
    ``gamma = gamma_over_beta * beta``.  Uses the Section VIII tuned
    parameters for the iterative method at each point.
    """
    require(n >= 1 and k >= 1 and p >= 1, ParameterError, "n, k, p must be >= 1")
    if ratios is None:
        ratios = [10.0**e for e in range(0, 7)]
    choice = tuned_parameters(n, k, p)
    out = []
    for ratio in ratios:
        params = CostParams(
            alpha=ratio * beta, beta=beta, gamma=gamma_over_beta * beta
        )
        t_rec = recursive_cost(n, k, p).time(params)
        t_it = iterative_cost(n, k, choice.n0, choice.p1, choice.p2).time(params)
        out.append(
            SensitivityPoint(
                alpha_over_beta=ratio, t_recursive=t_rec, t_iterative=t_it
            )
        )
    return out


def crossover_ratio(
    n: int,
    k: int,
    p: int,
    lo: float = 1e-2,
    hi: float = 1e8,
    iters: int = 60,
) -> float | None:
    """The alpha/beta ratio above which the iterative method is faster.

    Bisection on the monotone speedup curve; returns ``None`` when one
    method dominates over the whole ``[lo, hi]`` range (e.g. the iterative
    method already wins at ``lo``, or never wins by ``hi``).
    """

    def wins(ratio: float) -> bool:
        pt = sweep_alpha_beta(n, k, p, ratios=[ratio])[0]
        return pt.t_iterative < pt.t_recursive

    if wins(lo):
        return None  # always wins in range
    if not wins(hi):
        return None  # never wins in range
    a, b = lo, hi
    for _ in range(iters):
        mid = math.sqrt(a * b)
        if wins(mid):
            b = mid
        else:
            a = mid
    return math.sqrt(a * b)
