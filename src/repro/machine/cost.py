"""The alpha-beta-gamma execution-time model (paper Section II-A).

``T = alpha * S + beta * W + gamma * F`` where, along the critical path,
``S`` is the number of messages (latency), ``W`` the number of words moved
(bandwidth) and ``F`` the number of flops.  ``Cost`` is an immutable triple
of these counters; ``CostParams`` supplies the machine constants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cost:
    """An (S, W, F) cost triple; supports addition, scaling and comparison.

    ``S`` (latency) counts messages, ``W`` (bandwidth) counts words sent and
    received, ``F`` counts flops (multiply-add convention, see
    ``repro.util.checking``).  All three are floats so that analytic models
    can produce fractional leading-order terms.
    """

    S: float = 0.0
    W: float = 0.0
    F: float = 0.0

    def __add__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(self.S + other.S, self.W + other.W, self.F + other.F)

    def __sub__(self, other: "Cost") -> "Cost":
        if not isinstance(other, Cost):
            return NotImplemented
        return Cost(self.S - other.S, self.W - other.W, self.F - other.F)

    def __mul__(self, scalar: float) -> "Cost":
        return Cost(self.S * scalar, self.W * scalar, self.F * scalar)

    __rmul__ = __mul__

    def time(self, params: "CostParams") -> float:
        """Execution time under the given machine constants."""
        return params.alpha * self.S + params.beta * self.W + params.gamma * self.F

    def dominates(self, other: "Cost") -> bool:
        """True if this cost is >= ``other`` in every component."""
        return self.S >= other.S and self.W >= other.W and self.F >= other.F

    @staticmethod
    def zero() -> "Cost":
        return Cost(0.0, 0.0, 0.0)

    @staticmethod
    def max(a: "Cost", b: "Cost") -> "Cost":
        """Componentwise max; used for independent (concurrent) branches."""
        return Cost(max(a.S, b.S), max(a.W, b.W), max(a.F, b.F))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cost(S={self.S:.6g}, W={self.W:.6g}, F={self.F:.6g})"


@dataclass(frozen=True)
class CostParams:
    """Machine constants: seconds per message, per word, per flop.

    Defaults are representative of a 2016-era Cray XC interconnect with a
    well-tuned dense-linear-algebra kernel: ``alpha = 1 us``, ``beta``
    corresponding to ~8 GB/s per link for 8-byte words, ``gamma``
    corresponding to ~20 Gflop/s per core.
    """

    alpha: float = 1.0e-6
    beta: float = 1.0e-9
    gamma: float = 5.0e-11
    name: str = "default"

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValueError("cost constants must be non-negative")

    def time(self, cost: Cost) -> float:
        return cost.time(self)

    def latency_bandwidth_ratio(self) -> float:
        """alpha/beta: the message size at which latency equals transfer time."""
        if self.beta == 0:
            return float("inf")
        return self.alpha / self.beta


#: Machine presets used by examples and benches.  The ratios (not the
#: absolute values) are what matter for algorithm selection: a *latency-bound*
#: machine makes the paper's synchronization savings dominant.
HARDWARE_PRESETS: dict[str, CostParams] = {
    "default": CostParams(),
    # Large alpha/beta ratio: a capability system where messages are expensive.
    "latency_bound": CostParams(alpha=5.0e-6, beta=5.0e-10, gamma=2.5e-11, name="latency_bound"),
    # Small alpha/beta ratio: a fat-tree commodity cluster.
    "bandwidth_bound": CostParams(alpha=2.0e-7, beta=4.0e-9, gamma=1.0e-10, name="bandwidth_bound"),
    # Uniform unit costs: S, W, F reported directly in the time.
    "unit": CostParams(alpha=1.0, beta=1.0, gamma=1.0, name="unit"),
    # Count-only runs: time == S (useful for latency-focused assertions).
    "latency_only": CostParams(alpha=1.0, beta=0.0, gamma=0.0, name="latency_only"),
}
