"""Simulated distributed-memory machine (the repo's MPI substitute).

The paper analyses algorithms in the alpha-beta-gamma model: execution time
along the critical path is ``T = alpha*S + beta*W + gamma*F`` where ``S``
counts messages, ``W`` words and ``F`` flops.  This package provides

* :class:`~repro.machine.cost.CostParams` — the (alpha, beta, gamma) triple,
  with presets for representative machines;
* :class:`~repro.machine.machine.Machine` — a set of virtual ranks, each with
  its own clock and (S, W, F) counters.  Group operations synchronize the
  participants (clock := group max) before charging, so ``machine.time()``
  is the simulated critical-path time;
* :class:`~repro.machine.topology.ProcessorGrid` — n-dimensional grids with
  fiber/subgrid extraction, used to express the paper's 2D/3D/4D layouts;
* :mod:`~repro.machine.collectives` — butterfly-cost collectives
  (allgather, scatter, gather, reduce-scatter, bcast, reduce, allreduce,
  all-to-all, point-to-point) that move real numpy data between ranks *and*
  charge the exact costs of the paper's Section II-C1.
"""

from repro.machine.cost import Cost, CostParams, HARDWARE_PRESETS
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ShapeError

__all__ = [
    "Cost",
    "CostParams",
    "HARDWARE_PRESETS",
    "Machine",
    "ProcessorGrid",
    "GridError",
    "ShapeError",
]
