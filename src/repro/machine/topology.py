"""Processor grids: the paper's 2D, 3D and 4D process topologies.

A :class:`ProcessorGrid` is a view of a set of machine ranks arranged as an
n-dimensional array.  The same ranks can be viewed through several grids at
once (the paper constantly re-embeds a ``sqrt(p) x sqrt(p)`` 2D grid as a
``p1 x sqrt(p2) x p1 x sqrt(p2)`` 4D grid, Section III line 1), so grids are
cheap immutable objects over a shared ``ranks`` ndarray.

Conventions
-----------
* ``grid.rank(coord)`` maps a coordinate tuple to the machine rank.
* ``grid.fiber(axis, coord)`` is the 1D group obtained by varying ``axis``
  with every other coordinate fixed — the paper's ``Pi(x, o, z)`` notation.
* ``grid.split_axis(axis, inner)`` re-embeds one axis of size ``inner*outer``
  as two axes ``(inner_idx, outer_idx)`` with the original index equal to
  ``inner_idx + inner * outer_idx`` — exactly the paper's
  ``Pi4D(x1, x2, y1, y2) = Pi2D(x1 + p1*x2, y1 + p1*y2)`` construction.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.machine.validate import GridError, require


class ProcessorGrid:
    """An immutable n-dimensional arrangement of machine ranks."""

    __slots__ = ("_ranks",)

    def __init__(self, ranks: np.ndarray):
        ranks = np.asarray(ranks, dtype=np.int64)
        require(ranks.ndim >= 1, GridError, "grid must have at least one axis")
        require(ranks.size >= 1, GridError, "grid must contain at least one rank")
        flat = ranks.reshape(-1)
        require(
            len(set(flat.tolist())) == flat.size,
            GridError,
            "grid ranks must be distinct",
        )
        self._ranks = ranks
        self._ranks.setflags(write=False)

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._ranks.shape

    @property
    def ndim(self) -> int:
        return self._ranks.ndim

    @property
    def size(self) -> int:
        return int(self._ranks.size)

    @property
    def rank_array(self) -> np.ndarray:
        """The underlying (read-only) rank ndarray — vectorized rank lookup."""
        return self._ranks

    def ranks(self) -> list[int]:
        """All machine ranks in this grid, in C (row-major) coordinate order."""
        return [int(r) for r in self._ranks.reshape(-1)]

    def rank(self, coord: Sequence[int]) -> int:
        """Machine rank at the given coordinate."""
        coord = tuple(int(c) for c in coord)
        require(
            len(coord) == self.ndim,
            GridError,
            f"coordinate {coord} has wrong arity for grid shape {self.shape}",
        )
        for c, s in zip(coord, self.shape):
            require(0 <= c < s, GridError, f"coordinate {coord} out of bounds for {self.shape}")
        return int(self._ranks[coord])

    def coords(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all coordinates in C order."""
        return iter(np.ndindex(*self.shape))

    def coord_of(self, rank: int) -> tuple[int, ...]:
        """Inverse of :meth:`rank` (linear scan; for tests and debugging)."""
        hits = np.argwhere(self._ranks == rank)
        require(len(hits) == 1, GridError, f"rank {rank} not in grid")
        return tuple(int(c) for c in hits[0])

    def __contains__(self, rank: int) -> bool:
        return bool(np.any(self._ranks == rank))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProcessorGrid) and (
            self.shape == other.shape and bool(np.all(self._ranks == other._ranks))
        )

    def __hash__(self) -> int:
        return hash((self.shape, self._ranks.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid(shape={self.shape})"

    # -- constructors -------------------------------------------------------

    @staticmethod
    def build(shape: Sequence[int], start: int = 0) -> "ProcessorGrid":
        """Grid over consecutive ranks ``start, start+1, ...`` in C order."""
        shape = tuple(int(s) for s in shape)
        n = math.prod(shape)
        return ProcessorGrid(np.arange(start, start + n, dtype=np.int64).reshape(shape))

    # -- views and subgrids ---------------------------------------------------

    def reshape(self, shape: Sequence[int]) -> "ProcessorGrid":
        """C-order reshape over the same ranks."""
        shape = tuple(int(s) for s in shape)
        require(
            math.prod(shape) == self.size,
            GridError,
            f"cannot reshape grid of size {self.size} to {shape}",
        )
        return ProcessorGrid(self._ranks.reshape(shape))

    def transpose(self, axes: Sequence[int]) -> "ProcessorGrid":
        """Permute grid axes (no data movement; a relabelling of coordinates)."""
        return ProcessorGrid(np.transpose(self._ranks, tuple(axes)))

    def split_axis(self, axis: int, inner: int) -> "ProcessorGrid":
        """Re-embed ``axis`` (size ``inner * outer``) as two axes.

        The original index decomposes as ``idx = inner_idx + inner * outer_idx``;
        the new shape has ``inner`` at position ``axis`` and ``outer`` at
        position ``axis + 1``.  This is the paper's 2D-to-4D embedding.
        """
        size = self.shape[axis]
        require(
            inner >= 1 and size % inner == 0,
            GridError,
            f"axis of size {size} cannot split with inner factor {inner}",
        )
        outer = size // inner
        new_shape = self.shape[:axis] + (outer, inner) + self.shape[axis + 1 :]
        arr = self._ranks.reshape(new_shape)
        # idx = inner_idx + inner*outer_idx means outer varies slowest, so the
        # C-order reshape above yields (outer, inner); swap to (inner, outer).
        arr = np.swapaxes(arr, axis, axis + 1)
        return ProcessorGrid(arr)

    def merge_axes(self, axis: int) -> "ProcessorGrid":
        """Inverse of :meth:`split_axis`: fold axes ``(axis, axis+1)`` back.

        Combined index is ``idx = inner_idx + inner * outer_idx`` where
        ``axis`` is the inner axis.
        """
        require(axis + 1 < self.ndim, GridError, "merge_axes needs two axes")
        arr = np.swapaxes(self._ranks, axis, axis + 1)
        inner = self.shape[axis]
        outer = self.shape[axis + 1]
        new_shape = self.shape[:axis] + (inner * outer,) + self.shape[axis + 2 :]
        return ProcessorGrid(arr.reshape(new_shape))

    def subgrid(self, *index: slice | int) -> "ProcessorGrid":
        """Slice the grid; integer indices drop axes like numpy indexing."""
        arr = self._ranks[tuple(index)]
        if arr.ndim == 0:
            arr = arr.reshape(1)
        return ProcessorGrid(arr)

    def fiber(self, axis: int, coord: Sequence[int]) -> list[int]:
        """Ranks along ``axis`` with the other coordinates fixed by ``coord``.

        ``coord`` has one entry per grid axis; the entry at ``axis`` is
        ignored.  Returns machine ranks ordered by the ``axis`` index —
        the paper's ``Pi(x, o, z)``.
        """
        idx: list[object] = [int(c) for c in coord]
        require(len(idx) == self.ndim, GridError, "fiber coord arity mismatch")
        idx[axis] = slice(None)
        return [int(r) for r in self._ranks[tuple(idx)]]

    def plane(self, axis: int, value: int) -> "ProcessorGrid":
        """The (ndim-1)-dimensional grid with ``axis`` fixed at ``value``."""
        idx: list[object] = [slice(None)] * self.ndim
        idx[axis] = int(value)
        return ProcessorGrid(self._ranks[tuple(idx)])

    def halves(self, axis: int) -> tuple["ProcessorGrid", "ProcessorGrid"]:
        """Split the grid into two equal halves along ``axis``.

        Used by the recursive triangular inversion to hand the two
        independent subproblems to disjoint processor sets.
        """
        size = self.shape[axis]
        require(size % 2 == 0, GridError, f"axis of size {size} cannot halve")
        idx_lo: list[object] = [slice(None)] * self.ndim
        idx_hi: list[object] = [slice(None)] * self.ndim
        idx_lo[axis] = slice(0, size // 2)
        idx_hi[axis] = slice(size // 2, size)
        return (
            ProcessorGrid(self._ranks[tuple(idx_lo)]),
            ProcessorGrid(self._ranks[tuple(idx_hi)]),
        )

    def tiles(self, axis: int, parts: int) -> list["ProcessorGrid"]:
        """Split the grid into ``parts`` equal tiles along ``axis``."""
        size = self.shape[axis]
        require(
            parts >= 1 and size % parts == 0,
            GridError,
            f"axis of size {size} cannot tile into {parts} parts",
        )
        step = size // parts
        out = []
        for t in range(parts):
            idx: list[object] = [slice(None)] * self.ndim
            idx[axis] = slice(t * step, (t + 1) * step)
            out.append(ProcessorGrid(self._ranks[tuple(idx)]))
        return out
