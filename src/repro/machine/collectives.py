"""Collective operations: real data movement + Section II-C1 costs.

Every collective here does two things at once:

1. **moves real numpy data** between virtual ranks (dicts ``rank -> ndarray``),
   so algorithm implementations are numerically honest end to end; and
2. **charges the butterfly-collective costs of the paper's Section II-C1**
   to the participating group, via :meth:`Machine.charge`.

Cost formulas (``g`` = group size, ``n`` = words, ``1_g`` = unit step):

===============  =======================  =========================  ==========
collective       S (messages)             W (words)                  F (flops)
===============  =======================  =========================  ==========
allgather        ``log g``                ``n_result * 1_g``         0
scatter          ``log g``                ``n_total * 1_g``          0
gather           ``log g``                ``n_total * 1_g``          0
reduce-scatter   ``log g``                ``n_total * 1_g``          ``n_total * 1_g``
bcast            ``2 log g``              ``2 n * 1_g``              0
reduce           ``2 log g``              ``2 n * 1_g``              ``n * 1_g``
allreduce        ``2 log g``              ``2 n * 1_g``              ``n * 1_g``
all-to-all       ``log g``                ``(n_per_rank/2) log g``   0
point-to-point   ``1``                    ``n``                      0
===============  =======================  =========================  ==========

``log`` is ``ceil(log2)``; groups of size 1 charge nothing.  All collectives
are *group-synchronizing*: participants' clocks align to the group max before
the charge, which is how the simulation measures critical-path time.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.validate import ShapeError, require
from repro.util.mathutil import split_indices

Arrays = dict[int, np.ndarray]


def _log2_ceil(g: int) -> int:
    return int(math.ceil(math.log2(g))) if g > 1 else 0


def _words(a: np.ndarray) -> int:
    return int(a.size)


def _check_group_data(group: Sequence[int], data: Arrays, what: str) -> None:
    missing = [r for r in group if r not in data]
    require(not missing, ShapeError, f"{what}: ranks {missing} contributed no data")


# ---------------------------------------------------------------------------
# one-phase butterfly collectives
# ---------------------------------------------------------------------------


def allgather(
    machine: Machine,
    group: Sequence[int],
    contribs: Arrays,
    axis: int = 0,
    label: str = "allgather",
) -> Arrays:
    """Concatenate each rank's contribution along ``axis``; all ranks get the result.

    Cost: ``alpha*log g + beta*n_result*1_g`` (paper's allgather).
    """
    group = list(group)
    _check_group_data(group, contribs, "allgather")
    parts = [contribs[r] for r in group]
    result = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=axis)
    g = len(group)
    machine.charge(group, machine.coll.allgather(g, _words(result)), label=label)
    return {r: result for r in group}


def allgather_blocks(
    machine: Machine,
    group: Sequence[int],
    contribs: Arrays,
    label: str = "allgather",
) -> dict[int, Arrays]:
    """Allgather that keeps per-contributor identity.

    Every rank receives a dict ``source_rank -> block`` (the blocks may have
    different shapes; callers reassemble them with their own index maps,
    e.g. the cyclic interleave of the paper's MM line 2).  Cost is identical
    to :func:`allgather`: ``alpha*log g + beta*n_result*1_g`` where
    ``n_result`` is the total gathered volume.
    """
    group = list(group)
    _check_group_data(group, contribs, "allgather_blocks")
    g = len(group)
    n_result = sum(_words(contribs[r]) for r in group)
    machine.charge(group, machine.coll.allgather(g, n_result), label=label)
    gathered = {r: contribs[r] for r in group}
    return {r: gathered for r in group}


def scatter(
    machine: Machine,
    group: Sequence[int],
    root: int,
    chunks: Sequence[np.ndarray],
    label: str = "scatter",
) -> Arrays:
    """Root distributes ``chunks[i]`` to ``group[i]``.

    Cost: ``alpha*log g + beta*n_total*1_g`` where ``n_total`` is the total
    scattered volume (paper's scatter).
    """
    group = list(group)
    require(root in group, ShapeError, "scatter root must be in the group")
    require(
        len(chunks) == len(group),
        ShapeError,
        f"scatter needs one chunk per rank: {len(chunks)} chunks, {len(group)} ranks",
    )
    g = len(group)
    n_total = sum(_words(c) for c in chunks)
    machine.charge(group, machine.coll.scatter(g, n_total), label=label)
    return {r: chunks[i] for i, r in enumerate(group)}


def gather(
    machine: Machine,
    group: Sequence[int],
    root: int,
    contribs: Arrays,
    label: str = "gather",
) -> list[np.ndarray]:
    """Root collects one array per rank (in group order).

    Cost: ``alpha*log g + beta*n_total*1_g``.
    """
    group = list(group)
    require(root in group, ShapeError, "gather root must be in the group")
    _check_group_data(group, contribs, "gather")
    g = len(group)
    n_total = sum(_words(contribs[r]) for r in group)
    machine.charge(group, machine.coll.gather(g, n_total), label=label)
    return [contribs[r] for r in group]


def reduce_scatter(
    machine: Machine,
    group: Sequence[int],
    contribs: Arrays,
    axis: int = 0,
    label: str = "reduce_scatter",
) -> Arrays:
    """Sum the (same-shaped) contributions; rank ``group[i]`` gets slice ``i``.

    The summed array is split into ``g`` near-equal slabs along ``axis``.
    Cost: ``alpha*log g + (beta+gamma)*n_total*1_g`` with ``n_total`` the full
    array size (paper's reduce-scatter).
    """
    group = list(group)
    _check_group_data(group, contribs, "reduce_scatter")
    shapes = {contribs[r].shape for r in group}
    require(len(shapes) == 1, ShapeError, f"reduce_scatter shape mismatch: {shapes}")
    total = contribs[group[0]]
    for r in group[1:]:
        total = total + contribs[r]
    g = len(group)
    n_total = _words(total)
    machine.charge(group, machine.coll.reduce_scatter(g, n_total), label=label)
    slabs = split_indices(total.shape[axis], g)
    out: Arrays = {}
    for i, r in enumerate(group):
        lo, hi = slabs[i]
        idx: list[object] = [slice(None)] * total.ndim
        idx[axis] = slice(lo, hi)
        out[r] = total[tuple(idx)]
    return out


# ---------------------------------------------------------------------------
# two-phase collectives (built from the one-phase set, Chan et al.)
# ---------------------------------------------------------------------------


def bcast(
    machine: Machine,
    group: Sequence[int],
    root: int,
    value: np.ndarray,
    label: str = "bcast",
) -> Arrays:
    """Broadcast ``value`` from ``root`` to the group (scatter + allgather).

    Cost: ``alpha*2 log g + beta*2n*1_g``.
    """
    group = list(group)
    require(root in group, ShapeError, "bcast root must be in the group")
    g = len(group)
    machine.charge(group, machine.coll.bcast(g, _words(value)), label=label)
    return {r: value for r in group}


def reduce(
    machine: Machine,
    group: Sequence[int],
    root: int,
    contribs: Arrays,
    label: str = "reduce",
) -> np.ndarray:
    """Sum contributions onto ``root`` (reduce-scatter + gather).

    Cost: ``alpha*2 log g + beta*2n*1_g + gamma*n*1_g``.
    """
    group = list(group)
    require(root in group, ShapeError, "reduce root must be in the group")
    _check_group_data(group, contribs, "reduce")
    shapes = {contribs[r].shape for r in group}
    require(len(shapes) == 1, ShapeError, f"reduce shape mismatch: {shapes}")
    total = contribs[group[0]]
    for r in group[1:]:
        total = total + contribs[r]
    g = len(group)
    machine.charge(group, machine.coll.reduce(g, _words(total)), label=label)
    return total


def allreduce(
    machine: Machine,
    group: Sequence[int],
    contribs: Arrays,
    label: str = "allreduce",
) -> Arrays:
    """Sum contributions; every rank gets the sum (reduce-scatter + allgather).

    Cost: ``alpha*2 log g + beta*2n*1_g + gamma*n*1_g``.
    """
    group = list(group)
    _check_group_data(group, contribs, "allreduce")
    shapes = {contribs[r].shape for r in group}
    require(len(shapes) == 1, ShapeError, f"allreduce shape mismatch: {shapes}")
    total = contribs[group[0]]
    for r in group[1:]:
        total = total + contribs[r]
    g = len(group)
    machine.charge(group, machine.coll.allreduce(g, _words(total)), label=label)
    return {r: total for r in group}


# ---------------------------------------------------------------------------
# all-to-all and point-to-point
# ---------------------------------------------------------------------------


def alltoall(
    machine: Machine,
    group: Sequence[int],
    blocks: dict[int, Sequence[np.ndarray]],
    label: str = "alltoall",
) -> dict[int, list[np.ndarray]]:
    """Personalized exchange: rank ``group[i]`` sends ``blocks[rank][j]`` to
    ``group[j]`` and receives one block from every rank.

    Cost (Bruck): ``alpha*log g + beta*(n_per_rank/2)*log g`` where
    ``n_per_rank`` is the largest per-rank send volume.
    """
    group = list(group)
    g = len(group)
    _check_group_data(group, blocks, "alltoall")  # type: ignore[arg-type]
    for r in group:
        require(
            len(blocks[r]) == g,
            ShapeError,
            f"alltoall: rank {r} supplied {len(blocks[r])} blocks for group of {g}",
        )
    n_per_rank = max(sum(_words(b) for b in blocks[r]) for r in group)
    machine.charge(group, machine.coll.alltoall(g, n_per_rank), label=label)
    return {
        dest: [np.asarray(blocks[src][j]) for src in group]
        for j, dest in enumerate(group)
    }


def sendrecv(
    machine: Machine,
    rank_a: int,
    rank_b: int,
    data_a: np.ndarray,
    data_b: np.ndarray,
    label: str = "sendrecv",
) -> tuple[np.ndarray, np.ndarray]:
    """Pairwise exchange: ``a`` gets ``data_b`` and vice versa.

    Cost per rank: one message of the larger payload (``S=1, W=n``) — the
    transposes on square grids in the paper's MM (line 4) use exactly this.
    A self-exchange (``rank_a == rank_b``) is free.
    """
    if rank_a == rank_b:
        return data_b, data_a
    n = max(_words(data_a), _words(data_b))
    machine.charge([rank_a, rank_b], Cost(S=1.0, W=float(n), F=0.0), label=label)
    return data_b, data_a


def send(
    machine: Machine,
    src: int,
    dest: int,
    data: np.ndarray,
    label: str = "send",
) -> np.ndarray:
    """One-directional point-to-point message (``S=1, W=n`` for both ends)."""
    if src == dest:
        return data
    machine.charge([src, dest], Cost(S=1.0, W=float(_words(data)), F=0.0), label=label)
    return data


def grid_transpose(
    machine: Machine,
    grid_axis_pairs: Sequence[tuple[int, int]],
    data: Arrays,
    label: str = "transpose",
) -> Arrays:
    """Exchange local blocks between rank pairs ``(a, b)`` (square-grid transpose).

    ``grid_axis_pairs`` lists each unordered pair once; diagonal ranks
    (``a == b``) keep their block for free.  Cost per involved rank:
    one message of its incoming block size.
    """
    out: Arrays = dict(data)
    for a, b in grid_axis_pairs:
        if a == b:
            continue
        out[a], out[b] = sendrecv(machine, a, b, data[a], data[b], label=label)
    return out
