"""Pluggable collective cost models.

Section II-C1 builds everything on butterfly (recursive-doubling)
collectives; the paper notes simpler alternatives exist and sets aside the
factor-of-two-cheaper specialized broadcasts.  To make that design choice
measurable, the machine's collective costs are a strategy object:

* :class:`ButterflyModel` — the paper's choice (default everywhere):
  ``log p`` rounds, bandwidth-optimal volumes;
* :class:`RingModel` — linear/ring algorithms: same (or better) bandwidth,
  but ``p - 1`` rounds.  Running any experiment under this model shows the
  latency terms of every TRSM cost blowing up from ``log p`` to ``p`` —
  i.e. *why* the paper's analysis assumes butterfly collectives.

Every method returns the :class:`Cost` charged to **each participant** of
a group of size ``g`` for a payload of ``n`` words (conventions documented
per method; ``n`` means what it means in the paper's table).
"""

from __future__ import annotations

import math

from repro.machine.cost import Cost
from repro.util.mathutil import unit_step


def _log2_ceil(g: int) -> int:
    return int(math.ceil(math.log2(g))) if g > 1 else 0


class ButterflyModel:
    """Recursive-doubling collectives (the paper's Section II-C1 table)."""

    name = "butterfly"

    def allgather(self, g: int, n_result: float) -> Cost:
        return Cost(S=_log2_ceil(g), W=n_result * unit_step(g), F=0.0)

    def scatter(self, g: int, n_total: float) -> Cost:
        return Cost(S=_log2_ceil(g), W=n_total * unit_step(g), F=0.0)

    gather = scatter

    def reduce_scatter(self, g: int, n_total: float) -> Cost:
        return Cost(
            S=_log2_ceil(g),
            W=n_total * unit_step(g),
            F=n_total * unit_step(g),
        )

    def bcast(self, g: int, n: float) -> Cost:
        return Cost(S=2 * _log2_ceil(g), W=2 * n * unit_step(g), F=0.0)

    def reduce(self, g: int, n: float) -> Cost:
        return Cost(
            S=2 * _log2_ceil(g), W=2 * n * unit_step(g), F=n * unit_step(g)
        )

    allreduce = reduce

    def alltoall(self, g: int, n_per_rank: float) -> Cost:
        return Cost(
            S=_log2_ceil(g), W=(n_per_rank / 2.0) * _log2_ceil(g), F=0.0
        )


class RingModel:
    """Linear-ring collectives: ``g - 1`` rounds, bandwidth-lean.

    Classical ring allgather/reduce-scatter move ``n (g-1)/g ~ n`` words in
    ``g - 1`` rounds; ring bcast/allreduce pipelines cost ``~2n`` words in
    ``~g`` rounds.  All-to-all degenerates to ``g - 1`` direct exchanges of
    ``n/g`` words each.
    """

    name = "ring"

    @staticmethod
    def _rounds(g: int) -> int:
        return max(g - 1, 0)

    def allgather(self, g: int, n_result: float) -> Cost:
        return Cost(S=self._rounds(g), W=n_result * unit_step(g), F=0.0)

    def scatter(self, g: int, n_total: float) -> Cost:
        return Cost(S=self._rounds(g), W=n_total * unit_step(g), F=0.0)

    gather = scatter

    def reduce_scatter(self, g: int, n_total: float) -> Cost:
        return Cost(
            S=self._rounds(g),
            W=n_total * unit_step(g),
            F=n_total * unit_step(g),
        )

    def bcast(self, g: int, n: float) -> Cost:
        return Cost(S=2 * self._rounds(g), W=2 * n * unit_step(g), F=0.0)

    def reduce(self, g: int, n: float) -> Cost:
        return Cost(
            S=2 * self._rounds(g), W=2 * n * unit_step(g), F=n * unit_step(g)
        )

    allreduce = reduce

    def alltoall(self, g: int, n_per_rank: float) -> Cost:
        return Cost(S=self._rounds(g), W=n_per_rank * unit_step(g), F=0.0)


#: registry for Machine(collectives="...")
COLLECTIVE_MODELS = {
    "butterfly": ButterflyModel(),
    "ring": RingModel(),
}
