"""Validation errors and divisibility checks for grids and layouts.

The paper's algorithms "assume divisibility among p, p1, p2 and sqrt(p2)"
(Section III).  Rather than silently mis-partitioning, every entry point
validates its grid/shape arguments and raises one of the exceptions below
with an actionable message.
"""

from __future__ import annotations

from repro.util.mathutil import is_power_of_two


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GridError(ReproError):
    """Invalid processor-grid shape or subgrid request."""


class ShapeError(ReproError):
    """Matrix dimensions incompatible with the requested distribution."""


class ParameterError(ReproError):
    """Algorithm parameter (n0, p1, p2, r1, r2, ...) out of its valid range."""


def require(condition: bool, exc: type[ReproError], message: str) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def require_power_of_two(value: int, what: str) -> None:
    require(
        is_power_of_two(value),
        GridError,
        f"{what} must be a power of two, got {value!r}",
    )


def require_divides(d: int, n: int, what_d: str, what_n: str) -> None:
    require(
        d > 0 and n % d == 0,
        ShapeError,
        f"{what_d} (= {d}) must divide {what_n} (= {n})",
    )
