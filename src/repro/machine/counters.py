"""Per-rank cost counters and an optional event trace.

The :class:`CounterSet` holds, for every virtual rank, the *path* counters
(S, W, F) accumulated along that rank's execution path.  At a group
synchronization the counters of the slowest participant propagate to the
whole group, so at the end of a run the counters of the rank with the
maximal clock are the costs *along the critical path* — the quantity the
paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cost import Cost


@dataclass
class TraceEvent:
    """One charged operation, for debugging and the per-line cost benches."""

    label: str
    group_size: int
    cost: Cost
    phase: str = ""


class CounterSet:
    """Vectorized per-rank clocks and (S, W, F) path counters."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.clock = np.zeros(n_ranks)
        self.S = np.zeros(n_ranks)
        self.W = np.zeros(n_ranks)
        self.F = np.zeros(n_ranks)
        # Totals over all ranks (volume accounting, not critical path).
        self.total = Cost.zero()

    def charge(self, ranks: np.ndarray, cost: Cost, seconds: float) -> None:
        """Add ``cost`` to each rank in ``ranks`` and advance their clocks."""
        self.S[ranks] += cost.S
        self.W[ranks] += cost.W
        self.F[ranks] += cost.F
        self.clock[ranks] += seconds
        self.total = self.total + cost * len(ranks)

    def sync(self, ranks: np.ndarray) -> None:
        """Advance every rank in the group to the group's max clock.

        The path counters of the slowest rank propagate to the whole group so
        that the eventual max-clock rank carries critical-path counters.
        """
        if len(ranks) <= 1:
            return
        clocks = self.clock[ranks]
        imax = int(np.argmax(clocks))
        tmax = clocks[imax]
        rmax = ranks[imax]
        self.clock[ranks] = tmax
        self.S[ranks] = self.S[rmax]
        self.W[ranks] = self.W[rmax]
        self.F[ranks] = self.F[rmax]

    def critical_path(self) -> tuple[float, Cost]:
        """(max clock, path cost of the max-clock rank)."""
        imax = int(np.argmax(self.clock))
        return float(self.clock[imax]), Cost(
            float(self.S[imax]), float(self.W[imax]), float(self.F[imax])
        )

    def max_counters(self) -> Cost:
        """Componentwise maxima over ranks (upper bound on any path)."""
        return Cost(float(self.S.max()), float(self.W.max()), float(self.F.max()))
