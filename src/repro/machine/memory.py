"""Per-rank memory high-water tracking.

The paper analyses its algorithms in the unbounded-memory regime
("we do not place constraints on the local memory size", Section II-A).
The 3D algorithms buy their bandwidth savings with **replication** — e.g.
MM's line 2 leaves each processor holding an ``n/p1 x n/p1`` block of ``L``
(``p2``-fold replication of the input) — so a real deployment needs to know
the per-rank footprint.  This tracker quantifies it.

Two accounting styles are supported:

* ``alloc``/``free`` — explicit lifetime tracking for long-lived buffers
  (distributed-matrix blocks register themselves on construction);
* ``observe`` — declaring an instantaneous working set (algorithms call it
  at their peak-usage points, e.g. right after assembling replicated
  operands).

``peak_words()`` reports the largest per-rank high water across both.
"""

from __future__ import annotations

import numpy as np


class MemoryTracker:
    """Per-rank words currently allocated plus observed working-set peaks."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.current = np.zeros(n_ranks)
        self.peak = np.zeros(n_ranks)

    def alloc(self, rank: int, words: float) -> None:
        """Register ``words`` of long-lived storage on ``rank``."""
        if words < 0:
            raise ValueError("cannot allocate a negative amount")
        self.current[rank] += words
        np.maximum(self.peak, self.current, out=self.peak)

    def free(self, rank: int, words: float) -> None:
        """Release previously allocated storage (floored at zero)."""
        if words < 0:
            raise ValueError("cannot free a negative amount")
        self.current[rank] = max(self.current[rank] - words, 0.0)

    def observe(self, rank: int, words: float) -> None:
        """Record a transient working set of ``words`` on top of the
        currently allocated storage (does not change ``current``)."""
        if words < 0:
            raise ValueError("cannot observe a negative working set")
        self.peak[rank] = max(self.peak[rank], self.current[rank] + words)

    def observe_group(self, ranks, words: float) -> None:
        for r in ranks:
            self.observe(int(r), words)

    def peak_words(self) -> float:
        """Largest per-rank high water (words)."""
        return float(self.peak.max())

    def peak_per_rank(self) -> np.ndarray:
        return self.peak.copy()

    def reset(self) -> None:
        self.current[:] = 0.0
        self.peak[:] = 0.0
