"""The simulated machine: virtual ranks, clocks, charging, phases.

A :class:`Machine` is the root object of every simulation.  It owns the
per-rank clocks/counters and provides:

* ``grid(shape)`` — allocate a fresh :class:`ProcessorGrid` over new ranks
  (most programs allocate exactly one grid over all ranks);
* ``charge(group, cost, label=...)`` — synchronize the group, then add the
  cost to every member.  All collectives go through this;
* ``charge_local(rank_costs)`` — per-rank compute charges without sync;
* ``phase(name)`` — context manager labelling subsequent charges, used by the
  per-phase cost benches (inversion / solve / update in Section VII);
* ``region(name)`` — like ``phase`` but *cumulative across nesting*: a charge
  inside nested regions is attributed to every active region.  The Cluster
  front-end wraps each scheduled request in a region so per-request costs
  can be read back even though the algorithms open their own inner phases;
* ``grid_pool()`` — all remaining ranks as a subgrid-allocator pool (the
  ``repro.sched`` quadrant pool the Cluster schedules solves onto);
* ``time()``, ``critical_path()``, ``group_time(ranks)`` — simulated results.

The machine never looks at the numpy payloads; data movement is done by the
collectives in :mod:`repro.machine.collectives`, which call back into
``charge`` with the Section II-C1 cost formulas.
"""

from __future__ import annotations

import contextlib
import math
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.counters import CounterSet, TraceEvent
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, require

if TYPE_CHECKING:
    from repro.backend.base import Backend


class Machine:
    """A simulated distributed-memory machine with ``n_ranks`` processors."""

    def __init__(
        self,
        n_ranks: int,
        params: CostParams | None = None,
        trace: bool = False,
        collectives: str = "butterfly",
        backend: "Backend | None" = None,
    ):
        require(n_ranks >= 1, GridError, f"need >= 1 rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.params = params or CostParams()
        self.counters = CounterSet(self.n_ranks)
        from repro.machine.collective_models import COLLECTIVE_MODELS
        from repro.machine.memory import MemoryTracker

        require(
            collectives in COLLECTIVE_MODELS,
            GridError,
            f"unknown collective model {collectives!r}; "
            f"choose from {sorted(COLLECTIVE_MODELS)}",
        )
        #: collective cost strategy (butterfly = the paper's Section II-C1)
        self.coll = COLLECTIVE_MODELS[collectives]
        #: per-rank memory high-water accounting (see machine/memory.py)
        self.memory = MemoryTracker(self.n_ranks)
        self.trace_enabled = bool(trace)
        self.trace: list[TraceEvent] = []
        self._phase_stack: list[str] = []
        #: per-phase, per-rank (S, W, F) accumulators; the reported phase
        #: cost is the componentwise max over ranks (see phase_cost)
        self._phase_acc: dict[str, np.ndarray] = {}
        self._region_stack: list[str] = []
        #: per-region accumulators (same shape as phases, but cumulative
        #: across nesting: a charge counts toward every active region)
        self._region_acc: dict[str, np.ndarray] = {}
        self._next_rank = 0
        #: the execution backend data movement routes through (see
        #: repro.backend); None = a SimBackend is adopted on first use
        self._backend: "Backend | None" = backend

    @property
    def backend(self) -> "Backend":
        """The :class:`~repro.backend.Backend` executing this machine's plans.

        Machines built directly (rather than through
        :meth:`Backend.make_machine`) lazily adopt a fresh
        :class:`~repro.backend.SimBackend` — the pre-backend behavior,
        bit for bit — so no construction site is forced to name one.
        """
        if self._backend is None:
            from repro.backend.sim import SimBackend

            backend = SimBackend()
            backend.adopt(self)
            self._backend = backend
        return self._backend

    @backend.setter
    def backend(self, backend: "Backend") -> None:
        self._backend = backend

    # -- grid allocation ------------------------------------------------------

    def grid(self, *shape: int) -> ProcessorGrid:
        """Allocate a grid over fresh consecutive ranks.

        Raises :class:`GridError` when the machine has too few unused ranks.
        """
        n = math.prod(shape)
        require(
            self._next_rank + n <= self.n_ranks,
            GridError,
            f"machine has {self.n_ranks - self._next_rank} unallocated ranks; "
            f"grid of shape {shape} needs {n}",
        )
        g = ProcessorGrid.build(shape, start=self._next_rank)
        self._next_rank += n
        return g

    def grid_pool(self, *shape: int):
        """All remaining ranks as a :class:`repro.sched.SubgridAllocator` pool.

        With no ``shape`` the pool root is the near-square 2D grid over every
        unallocated rank (the Cluster's quadrant pool); an explicit shape
        allocates that grid instead.  Power-of-two subgrids are then handed
        out with ``allocate``/``release`` (split/coalesce semantics).
        """
        from repro.machine.validate import require as _require
        from repro.sched.allocator import SubgridAllocator

        if not shape:
            remaining = self.n_ranks - self._next_rank
            _require(
                remaining >= 1, GridError, "machine has no unallocated ranks to pool"
            )
            b = int(np.log2(remaining)) if remaining > 1 else 0
            _require(
                2**b == remaining,
                GridError,
                f"grid_pool needs a power-of-two rank count, got {remaining}",
            )
            shape = (2 ** ((b + 1) // 2), 2 ** (b // 2))
        return SubgridAllocator(self.grid(*shape))

    # -- charging ---------------------------------------------------------------

    def charge(
        self,
        group: Sequence[int],
        cost: Cost,
        label: str = "",
        sync: bool = True,
    ) -> None:
        """Synchronize ``group`` (unless ``sync=False``) and charge each member."""
        ranks = np.asarray(list(group), dtype=np.int64)
        if ranks.size == 0:
            return
        if sync:
            self.counters.sync(ranks)
        seconds = cost.time(self.params)
        self.counters.charge(ranks, cost, seconds)
        self._phase_add(ranks, cost)
        self._record(label, len(ranks), cost)

    def charge_local(self, rank_costs: dict[int, Cost], label: str = "") -> None:
        """Charge per-rank compute costs (no synchronization).

        Used for local flops where different ranks may do different amounts
        of work (e.g. triangular blocks).
        """
        worst = Cost.zero()
        for rank, cost in rank_costs.items():
            ranks = np.asarray([rank], dtype=np.int64)
            self.counters.charge(ranks, cost, cost.time(self.params))
            self._phase_add(ranks, cost)
            worst = Cost.max(worst, cost)
        if rank_costs:
            self._record(label, len(rank_costs), worst)

    def charge_uniform_flops(
        self, group: Sequence[int], flops: float, label: str = ""
    ) -> None:
        """Charge the same flop count to every rank in ``group`` (no sync)."""
        self.charge(group, Cost(0.0, 0.0, flops), label=label, sync=False)

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Synchronize a group (default: all ranks) without charging."""
        if group is None:
            group = range(self.n_ranks)
        self.counters.sync(np.asarray(list(group), dtype=np.int64))

    def advance_group(self, group: Sequence[int], t: float) -> None:
        """Advance the group's clocks to at least simulated time ``t``.

        No cost is charged — this models an external release time (the
        Cluster uses it so a request's charges cannot start before the
        request arrives).  Ranks already past ``t`` are untouched.
        """
        idx = np.asarray(list(group), dtype=np.int64)
        if idx.size:
            self.counters.clock[idx] = np.maximum(
                self.counters.clock[idx], float(t)
            )

    # -- phases -------------------------------------------------------------------

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Label all charges issued inside the ``with`` block.

        Phases may nest; charges are attributed to the innermost phase.
        Phases may also be re-entered (e.g. once per iteration); costs
        accumulate across entries.
        """
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else ""

    @contextlib.contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute charges to ``name`` *cumulatively* across nesting.

        Unlike :meth:`phase` (innermost wins), a charge inside nested
        regions counts toward every active region, and regions compose
        freely with phases.  The Cluster front-end opens one region per
        scheduled request, so a request's total (S, W, F) is recoverable
        even though the solver opens its own inversion/solve/update phases
        inside it.
        """
        self._region_stack.append(name)
        try:
            yield
        finally:
            self._region_stack.pop()

    def phase_cost(self, name: str, ranks: Sequence[int] | None = None) -> Cost:
        """Componentwise max over ranks of this phase's per-rank totals.

        Concurrent charges to disjoint groups therefore do not inflate the
        phase cost — this is the within-phase critical-path proxy the E6
        bench compares against the Section VII formulas.  ``ranks``
        restricts the max to a subset (per-subgrid accounting: the same
        phase name may be active on several disjoint subgrids at once).
        """
        return self._acc_cost(self._phase_acc.get(name), ranks)

    def region_cost(self, name: str, ranks: Sequence[int] | None = None) -> Cost:
        """Componentwise max over ``ranks`` of a region's per-rank totals."""
        return self._acc_cost(self._region_acc.get(name), ranks)

    def phase_names(self) -> list[str]:
        return list(self._phase_acc.keys())

    def region_names(self) -> list[str]:
        return list(self._region_acc.keys())

    def _acc_cost(
        self, acc: np.ndarray | None, ranks: Sequence[int] | None
    ) -> Cost:
        if acc is None:
            return Cost.zero()
        if ranks is not None:
            idx = np.asarray(list(ranks), dtype=np.int64)
            if idx.size == 0:
                return Cost.zero()
            acc = acc[:, idx]
        return Cost(float(acc[0].max()), float(acc[1].max()), float(acc[2].max()))

    def _phase_add(self, ranks: np.ndarray, cost: Cost) -> None:
        phase = self.current_phase()
        if phase:
            self._bump(self._phase_acc, phase, ranks, cost)
        for name in set(self._region_stack):
            self._bump(self._region_acc, name, ranks, cost)

    def _bump(
        self, table: dict[str, np.ndarray], name: str, ranks: np.ndarray, cost: Cost
    ) -> None:
        acc = table.get(name)
        if acc is None:
            acc = np.zeros((3, self.n_ranks))
            table[name] = acc
        acc[0, ranks] += cost.S
        acc[1, ranks] += cost.W
        acc[2, ranks] += cost.F

    def _record(self, label: str, group_size: int, cost: Cost) -> None:
        if self.trace_enabled:
            self.trace.append(TraceEvent(label, group_size, cost, self.current_phase()))

    # -- results -------------------------------------------------------------------

    def time(self) -> float:
        """Simulated critical-path execution time in seconds."""
        return self.counters.critical_path()[0]

    def group_time(self, ranks: Sequence[int]) -> float:
        """Max simulated clock over a rank subset (a subgrid's finish time)."""
        idx = np.asarray(list(ranks), dtype=np.int64)
        if idx.size == 0:
            return 0.0
        return float(self.counters.clock[idx].max())

    def critical_path(self) -> Cost:
        """(S, W, F) along the critical path (counters of the slowest rank)."""
        return self.counters.critical_path()[1]

    def max_counters(self) -> Cost:
        """Componentwise per-rank maxima of (S, W, F)."""
        return self.counters.max_counters()

    def total_volume(self) -> Cost:
        """Sum of all charges over all ranks (communication volume view)."""
        return self.counters.total

    def reset(self) -> None:
        """Zero all clocks, counters, memory, traces and phase attributions."""
        self.counters = CounterSet(self.n_ranks)
        self.memory.reset()
        self.trace.clear()
        self._phase_acc.clear()
        self._region_acc.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine(n_ranks={self.n_ranks}, params={self.params.name!r})"
