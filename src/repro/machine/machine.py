"""The simulated machine: virtual ranks, clocks, charging, phases.

A :class:`Machine` is the root object of every simulation.  It owns the
per-rank clocks/counters and provides:

* ``grid(shape)`` — allocate a fresh :class:`ProcessorGrid` over new ranks
  (most programs allocate exactly one grid over all ranks);
* ``charge(group, cost, label=...)`` — synchronize the group, then add the
  cost to every member.  All collectives go through this;
* ``charge_local(rank_costs)`` — per-rank compute charges without sync;
* ``phase(name)`` — context manager labelling subsequent charges, used by the
  per-phase cost benches (inversion / solve / update in Section VII);
* ``time()``, ``critical_path()`` — simulated results.

The machine never looks at the numpy payloads; data movement is done by the
collectives in :mod:`repro.machine.collectives`, which call back into
``charge`` with the Section II-C1 cost formulas.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Sequence

import numpy as np

from repro.machine.cost import Cost, CostParams
from repro.machine.counters import CounterSet, TraceEvent
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, require


class Machine:
    """A simulated distributed-memory machine with ``n_ranks`` processors."""

    def __init__(
        self,
        n_ranks: int,
        params: CostParams | None = None,
        trace: bool = False,
        collectives: str = "butterfly",
    ):
        require(n_ranks >= 1, GridError, f"need >= 1 rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.params = params or CostParams()
        self.counters = CounterSet(self.n_ranks)
        from repro.machine.collective_models import COLLECTIVE_MODELS
        from repro.machine.memory import MemoryTracker

        require(
            collectives in COLLECTIVE_MODELS,
            GridError,
            f"unknown collective model {collectives!r}; "
            f"choose from {sorted(COLLECTIVE_MODELS)}",
        )
        #: collective cost strategy (butterfly = the paper's Section II-C1)
        self.coll = COLLECTIVE_MODELS[collectives]
        #: per-rank memory high-water accounting (see machine/memory.py)
        self.memory = MemoryTracker(self.n_ranks)
        self.trace_enabled = bool(trace)
        self.trace: list[TraceEvent] = []
        self._phase_stack: list[str] = []
        #: per-phase, per-rank (S, W, F) accumulators; the reported phase
        #: cost is the componentwise max over ranks (see phase_cost)
        self._phase_acc: dict[str, np.ndarray] = {}
        self._next_rank = 0

    # -- grid allocation ------------------------------------------------------

    def grid(self, *shape: int) -> ProcessorGrid:
        """Allocate a grid over fresh consecutive ranks.

        Raises :class:`GridError` when the machine has too few unused ranks.
        """
        n = int(np.prod(shape))
        require(
            self._next_rank + n <= self.n_ranks,
            GridError,
            f"machine has {self.n_ranks - self._next_rank} unallocated ranks; "
            f"grid of shape {shape} needs {n}",
        )
        g = ProcessorGrid.build(shape, start=self._next_rank)
        self._next_rank += n
        return g

    # -- charging ---------------------------------------------------------------

    def charge(
        self,
        group: Sequence[int],
        cost: Cost,
        label: str = "",
        sync: bool = True,
    ) -> None:
        """Synchronize ``group`` (unless ``sync=False``) and charge each member."""
        ranks = np.asarray(list(group), dtype=np.int64)
        if ranks.size == 0:
            return
        if sync:
            self.counters.sync(ranks)
        seconds = cost.time(self.params)
        self.counters.charge(ranks, cost, seconds)
        self._phase_add(ranks, cost)
        self._record(label, len(ranks), cost)

    def charge_local(self, rank_costs: dict[int, Cost], label: str = "") -> None:
        """Charge per-rank compute costs (no synchronization).

        Used for local flops where different ranks may do different amounts
        of work (e.g. triangular blocks).
        """
        worst = Cost.zero()
        for rank, cost in rank_costs.items():
            ranks = np.asarray([rank], dtype=np.int64)
            self.counters.charge(ranks, cost, cost.time(self.params))
            self._phase_add(ranks, cost)
            worst = Cost.max(worst, cost)
        if rank_costs:
            self._record(label, len(rank_costs), worst)

    def charge_uniform_flops(
        self, group: Sequence[int], flops: float, label: str = ""
    ) -> None:
        """Charge the same flop count to every rank in ``group`` (no sync)."""
        self.charge(group, Cost(0.0, 0.0, flops), label=label, sync=False)

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Synchronize a group (default: all ranks) without charging."""
        if group is None:
            group = range(self.n_ranks)
        self.counters.sync(np.asarray(list(group), dtype=np.int64))

    # -- phases -------------------------------------------------------------------

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Label all charges issued inside the ``with`` block.

        Phases may nest; charges are attributed to the innermost phase.
        Phases may also be re-entered (e.g. once per iteration); costs
        accumulate across entries.
        """
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else ""

    def phase_cost(self, name: str) -> Cost:
        """Componentwise max over ranks of this phase's per-rank totals.

        Concurrent charges to disjoint groups therefore do not inflate the
        phase cost — this is the within-phase critical-path proxy the E6
        bench compares against the Section VII formulas.
        """
        acc = self._phase_acc.get(name)
        if acc is None:
            return Cost.zero()
        return Cost(float(acc[0].max()), float(acc[1].max()), float(acc[2].max()))

    def phase_names(self) -> list[str]:
        return list(self._phase_acc.keys())

    def _phase_add(self, ranks: np.ndarray, cost: Cost) -> None:
        phase = self.current_phase()
        if not phase:
            return
        acc = self._phase_acc.get(phase)
        if acc is None:
            acc = np.zeros((3, self.n_ranks))
            self._phase_acc[phase] = acc
        acc[0, ranks] += cost.S
        acc[1, ranks] += cost.W
        acc[2, ranks] += cost.F

    def _record(self, label: str, group_size: int, cost: Cost) -> None:
        if self.trace_enabled:
            self.trace.append(TraceEvent(label, group_size, cost, self.current_phase()))

    # -- results -------------------------------------------------------------------

    def time(self) -> float:
        """Simulated critical-path execution time in seconds."""
        return self.counters.critical_path()[0]

    def critical_path(self) -> Cost:
        """(S, W, F) along the critical path (counters of the slowest rank)."""
        return self.counters.critical_path()[1]

    def max_counters(self) -> Cost:
        """Componentwise per-rank maxima of (S, W, F)."""
        return self.counters.max_counters()

    def total_volume(self) -> Cost:
        """Sum of all charges over all ranks (communication volume view)."""
        return self.counters.total

    def reset(self) -> None:
        """Zero all clocks, counters, memory, traces and phase attributions."""
        self.counters = CounterSet(self.n_ranks)
        self.memory.reset()
        self.trace.clear()
        self._phase_acc.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine(n_ranks={self.n_ranks}, params={self.params.name!r})"
