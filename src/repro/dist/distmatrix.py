"""DistMatrix: a matrix distributed over a 2D processor grid.

The container every algorithm layer operates on.  A :class:`DistMatrix`
couples four things:

* a :class:`~repro.machine.machine.Machine` (for cost/memory accounting),
* a 2D :class:`~repro.machine.topology.ProcessorGrid` (which ranks),
* a :class:`~repro.dist.layout.Layout` (which indices live where), and
* ``blocks`` — a dict ``machine rank -> local ndarray``, the actual data.

Distribution and assembly (:meth:`from_global` / :meth:`to_global`) are
**free**: the simulation treats the initial data placement as given, exactly
as the paper's Require clauses do ("initially distributed cyclically"), and
``to_global`` is the debugging/verification view, not a collective.  All
*charged* movement between grids and layouts lives in
:mod:`repro.dist.redistribute`.

Construction registers each rank's block words with the machine's
:class:`~repro.machine.memory.MemoryTracker`, so per-rank footprints of
replicated operands show up in ``machine.memory.peak_words()``.

Every instance carries a stable *identity*: a ``uid`` unique for the
process lifetime and a ``generation`` counter bumped whenever the matrix
is mutated through the public mutation paths (:meth:`set_local`,
:func:`repro.dist.redistribute.route_embed`).  The pair is what the
Cluster's operand cache (:mod:`repro.api.opcache`) keys staged copies on:
a cached copy is valid only while its source's ``(uid, generation)`` is
unchanged, so a mutated or re-hosted operand can never be served stale.
Algorithms that scribble into ``blocks`` directly own those matrices
privately and never hand them to the cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.dist.layout import Layout, expected_local_words
from repro.machine.validate import GridError, ShapeError, require

if TYPE_CHECKING:
    from repro.machine.machine import Machine
    from repro.machine.topology import ProcessorGrid


class DistMatrix:
    """A dense matrix distributed over a 2D processor grid by a layout."""

    __slots__ = ("machine", "grid", "layout", "shape", "blocks", "uid", "generation")

    _uids = itertools.count()

    def __init__(
        self,
        machine: "Machine",
        grid: "ProcessorGrid",
        layout: Layout,
        shape: tuple[int, int],
        blocks: Mapping[int, np.ndarray],
    ) -> None:
        require(
            grid.ndim == 2,
            GridError,
            f"DistMatrix requires a 2D grid, got shape {grid.shape}",
        )
        require(
            (layout.pr, layout.pc) == grid.shape,
            GridError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        rank_set = set(grid.ranks())
        require(
            set(blocks) == rank_set,
            ShapeError,
            f"blocks must cover exactly the grid's ranks: "
            f"missing {sorted(rank_set - set(blocks))}, "
            f"extra {sorted(set(blocks) - rank_set)}",
        )
        self.machine = machine
        self.grid = grid
        self.layout = layout
        self.shape = (int(shape[0]), int(shape[1]))
        self.blocks: dict[int, np.ndarray] = dict(blocks)
        for coord in grid.coords():
            block = self.blocks[grid.rank(coord)]
            expected = layout.local_shape(coord, self.shape)
            require(
                block.shape == expected,
                ShapeError,
                f"block at {coord} has shape {block.shape}, layout expects "
                f"{expected} for global shape {self.shape}",
            )
        for rank, block in self.blocks.items():
            machine.memory.observe(rank, float(block.size))
        #: process-lifetime-unique identity (content/placement provenance)
        self.uid = next(DistMatrix._uids)
        #: mutation counter; cached staged copies of an older generation
        #: are stale (see repro.api.opcache)
        self.generation = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_global(
        cls,
        machine: "Machine",
        grid: "ProcessorGrid",
        layout: Layout,
        A: np.ndarray,
    ) -> "DistMatrix":
        """Distribute a global matrix (zero-cost initial placement)."""
        require(
            grid.ndim == 2,
            GridError,
            f"DistMatrix requires a 2D grid, got shape {grid.shape}",
        )
        require(
            (layout.pr, layout.pc) == grid.shape,
            GridError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        A = np.asarray(A, dtype=np.float64)
        require(
            A.ndim == 2,
            ShapeError,
            f"DistMatrix holds 2D matrices; got an array of ndim {A.ndim} "
            "(reshape vectors to (n, 1) first)",
        )
        blocks = {
            grid.rank(coord): layout.extract(A, coord) for coord in grid.coords()
        }
        return cls(machine, grid, layout, (A.shape[0], A.shape[1]), blocks)

    @classmethod
    def zeros(
        cls,
        machine: "Machine",
        grid: "ProcessorGrid",
        layout: Layout,
        shape: tuple[int, int],
    ) -> "DistMatrix":
        """An all-zero distributed matrix of the given global shape."""
        return cls.from_global(machine, grid, layout, np.zeros(shape))

    # -- access -------------------------------------------------------------

    def local(self, coord: tuple[int, int]) -> np.ndarray:
        """The local block at grid coordinate ``coord`` (read-only view).

        Mutation goes through :meth:`set_local`, which bumps the
        generation — a writable alias here would let callers mutate
        blocks behind the generation counter's back and be served stale
        copies from the operand cache.
        """
        view = self.blocks[self.grid.rank(coord)].view()
        view.setflags(write=False)
        return view

    def set_local(self, coord: tuple[int, int], block: np.ndarray) -> None:
        """Replace the block at ``coord``; the shape must match the layout.

        The block is copied in: a caller-retained alias could otherwise
        mutate the content behind the generation counter's back (the same
        staleness :meth:`local` is read-only to prevent).
        """
        block = np.array(block, dtype=np.float64)
        expected = self.layout.local_shape(coord, self.shape)
        require(
            block.shape == expected,
            ShapeError,
            f"block at {coord} must have shape {expected}, got {block.shape}",
        )
        self.blocks[self.grid.rank(coord)] = block
        self.mutated()

    def mutated(self) -> None:
        """Bump the generation: any cached staged copy of this matrix is
        now stale.  Called by every public in-place mutation path."""
        self.generation += 1

    def to_global(self) -> np.ndarray:
        """Assemble the global matrix (free; a verification/debug view)."""
        out = np.zeros(self.shape)
        for coord in self.grid.coords():
            self.layout.place(out, coord, self.blocks[self.grid.rank(coord)])
        return out

    def copy(self) -> "DistMatrix":
        """Deep copy: same machine/grid/layout, private block storage."""
        return DistMatrix(
            self.machine,
            self.grid,
            self.layout,
            self.shape,
            {r: b.copy() for r, b in self.blocks.items()},
        )

    def words_per_rank(self) -> int:
        """Largest per-rank block size — the redistribution ``n_per_rank``."""
        return expected_local_words(self.layout, self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistMatrix(shape={self.shape}, grid={self.grid.shape}, "
            f"layout={self.layout!r})"
        )


@dataclass(slots=True)
class StagedCopy:
    """A staged instance of a source matrix, remembering its provenance.

    ``matrix`` is the staged :class:`DistMatrix` (on some subgrid/layout);
    the record pins the source's ``(uid, generation)`` at staging time plus
    the staged matrix's own generation, so a consumer can tell both kinds
    of staleness apart: the *source* moved on (:meth:`valid_for` fails) or
    the *copy itself* was scribbled on (:meth:`pristine` fails).  The
    operand cache (:mod:`repro.api.opcache`) stores these.
    """

    matrix: DistMatrix
    source_uid: int
    source_generation: int
    staged_generation: int

    @classmethod
    def of(cls, source: DistMatrix, staged: DistMatrix) -> "StagedCopy":
        """Record ``staged`` as a copy of ``source`` as it is right now."""
        return cls(
            matrix=staged,
            source_uid=source.uid,
            source_generation=source.generation,
            staged_generation=staged.generation,
        )

    def valid_for(self, source: DistMatrix) -> bool:
        """True iff ``source`` is the recorded matrix, unmutated since."""
        return (
            source.uid == self.source_uid
            and source.generation == self.source_generation
        )

    def pristine(self) -> bool:
        """True iff the staged copy itself has not been mutated."""
        return self.matrix.generation == self.staged_generation
