"""DistMatrix: a matrix distributed over a 2D processor grid.

The container every algorithm layer operates on.  A :class:`DistMatrix`
couples four things:

* a :class:`~repro.machine.machine.Machine` (for cost/memory accounting),
* a 2D :class:`~repro.machine.topology.ProcessorGrid` (which ranks),
* a :class:`~repro.dist.layout.Layout` (which indices live where), and
* ``blocks`` — a dict ``machine rank -> local ndarray``, the actual data.

Distribution and assembly (:meth:`from_global` / :meth:`to_global`) are
**free**: the simulation treats the initial data placement as given, exactly
as the paper's Require clauses do ("initially distributed cyclically"), and
``to_global`` is the debugging/verification view, not a collective.  All
*charged* movement between grids and layouts lives in
:mod:`repro.dist.redistribute`.

Construction registers each rank's block words with the machine's
:class:`~repro.machine.memory.MemoryTracker`, so per-rank footprints of
replicated operands show up in ``machine.memory.peak_words()``.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.dist.layout import Layout, expected_local_words
from repro.machine.validate import GridError, ShapeError, require


class DistMatrix:
    """A dense matrix distributed over a 2D processor grid by a layout."""

    __slots__ = ("machine", "grid", "layout", "shape", "blocks")

    def __init__(
        self,
        machine,
        grid,
        layout: Layout,
        shape: tuple[int, int],
        blocks: Mapping[int, np.ndarray],
    ):
        require(
            grid.ndim == 2,
            GridError,
            f"DistMatrix requires a 2D grid, got shape {grid.shape}",
        )
        require(
            (layout.pr, layout.pc) == grid.shape,
            GridError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        rank_set = set(grid.ranks())
        require(
            set(blocks) == rank_set,
            ShapeError,
            f"blocks must cover exactly the grid's ranks: "
            f"missing {sorted(rank_set - set(blocks))}, "
            f"extra {sorted(set(blocks) - rank_set)}",
        )
        self.machine = machine
        self.grid = grid
        self.layout = layout
        self.shape = (int(shape[0]), int(shape[1]))
        self.blocks: dict[int, np.ndarray] = dict(blocks)
        for coord in grid.coords():
            block = self.blocks[grid.rank(coord)]
            expected = layout.local_shape(coord, self.shape)
            require(
                block.shape == expected,
                ShapeError,
                f"block at {coord} has shape {block.shape}, layout expects "
                f"{expected} for global shape {self.shape}",
            )
        for rank, block in self.blocks.items():
            machine.memory.observe(rank, float(block.size))

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_global(cls, machine, grid, layout: Layout, A: np.ndarray) -> "DistMatrix":
        """Distribute a global matrix (zero-cost initial placement)."""
        require(
            grid.ndim == 2,
            GridError,
            f"DistMatrix requires a 2D grid, got shape {grid.shape}",
        )
        require(
            (layout.pr, layout.pc) == grid.shape,
            GridError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        A = np.asarray(A, dtype=np.float64)
        require(
            A.ndim == 2,
            ShapeError,
            f"DistMatrix holds 2D matrices; got an array of ndim {A.ndim} "
            "(reshape vectors to (n, 1) first)",
        )
        blocks = {
            grid.rank(coord): layout.extract(A, coord) for coord in grid.coords()
        }
        return cls(machine, grid, layout, A.shape, blocks)

    @classmethod
    def zeros(
        cls, machine, grid, layout: Layout, shape: tuple[int, int]
    ) -> "DistMatrix":
        """An all-zero distributed matrix of the given global shape."""
        return cls.from_global(machine, grid, layout, np.zeros(shape))

    # -- access -------------------------------------------------------------

    def local(self, coord: tuple[int, int]) -> np.ndarray:
        """The local block at grid coordinate ``coord``."""
        return self.blocks[self.grid.rank(coord)]

    def set_local(self, coord: tuple[int, int], block: np.ndarray) -> None:
        """Replace the block at ``coord``; the shape must match the layout."""
        block = np.asarray(block, dtype=np.float64)
        expected = self.layout.local_shape(coord, self.shape)
        require(
            block.shape == expected,
            ShapeError,
            f"block at {coord} must have shape {expected}, got {block.shape}",
        )
        self.blocks[self.grid.rank(coord)] = block

    def to_global(self) -> np.ndarray:
        """Assemble the global matrix (free; a verification/debug view)."""
        out = np.zeros(self.shape)
        for coord in self.grid.coords():
            self.layout.place(out, coord, self.blocks[self.grid.rank(coord)])
        return out

    def copy(self) -> "DistMatrix":
        """Deep copy: same machine/grid/layout, private block storage."""
        return DistMatrix(
            self.machine,
            self.grid,
            self.layout,
            self.shape,
            {r: b.copy() for r, b in self.blocks.items()},
        )

    def words_per_rank(self) -> int:
        """Largest per-rank block size — the redistribution ``n_per_rank``."""
        return expected_local_words(self.layout, self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistMatrix(shape={self.shape}, grid={self.grid.shape}, "
            f"layout={self.layout!r})"
        )
