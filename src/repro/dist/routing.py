"""Exact redistribution routing: per-(sender, receiver) message plans.

The paper charges every grid/layout transition in RecTriInv at the
all-to-all *bound*.  This module replaces the bound with the real plan, in
the spirit of ScaLAPACK's block-cyclic redistribution (Prylli &
Tourancheau): because a transition is fully described by the two sides'
index maps, the per-pair word counts — hence the exact ``S`` and ``W`` —
are derivable without moving a byte.

Three layers:

* :class:`End` — one side of a transition: a *frame* of matrix elements
  (a full matrix, a submatrix window, an arbitrary row/column selection,
  or a transposed view) pinned to a ``(grid, layout)`` pair;
* :class:`RoutingPlan` — the exact plan between two ends.  Per-axis owner
  vectors are intersected (a bincount over owner pairs, O(m + n + p_s p_d)
  per axis), the per-rank send/receive word counts and partner counts
  follow from the row x column product structure, and the charge is

      ``S = max over ranks of max(#send partners, #recv partners)``
      ``W = max over ranks of max(words sent, words received)``

  — the full-duplex critical-path cost of posting each pairwise message.
  Words that stay on their rank are free, so identity and aligned
  transitions cost zero *by construction*, with no special-case branch;
* :class:`TransitionPlan` / :func:`fuse_transitions` — a chain of ends
  (extract -> redistribute -> ... -> embed) collapsed into one composed
  map with a single charge: the paper's three-step cyclic/blocked/cyclic
  transition as one.  Each intermediate end is a bijection of the frame,
  so the fused plan is simply the route from the first end to the last.

Plans also *move* the data: :meth:`RoutingPlan.apply` routes blocks
directly from source ranks to destination ranks, which is what lets the
hot paths in :mod:`repro.dist.redistribute` and :mod:`repro.mm.mm3d` skip
the ``DistMatrix.to_global()`` scratch assembly.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.dist.layout import Layout, expected_local_words
from repro.machine.cost import Cost
from repro.machine.validate import ShapeError, require

Blocks = Mapping[int, np.ndarray]


class End:
    """One side of a routed transition.

    The *frame* is the (logical) set of matrix elements being moved.  An
    ``End`` says where each frame element lives: element ``(i, j)`` of the
    frame is element ``(r0 + i, c0 + j)`` of a ``full_shape`` matrix
    distributed by ``layout`` on ``grid`` (or, with ``transpose=True``,
    element ``(r0 + j, c0 + i)`` — the frame is the transposed view).
    ``rows``/``cols`` instead select arbitrary global indices (the MM
    slab gathers use this); they are mutually exclusive with offsets and
    transposition.
    """

    __slots__ = ("grid", "layout", "full_shape", "offset", "transpose", "rows", "cols")

    def __init__(
        self,
        grid,
        layout: Layout,
        full_shape: tuple[int, int],
        offset: tuple[int, int] = (0, 0),
        transpose: bool = False,
        rows: Sequence[int] | None = None,
        cols: Sequence[int] | None = None,
    ):
        require(
            (layout.pr, layout.pc) == grid.shape,
            ShapeError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        require(
            not (transpose and (rows is not None or cols is not None)),
            ShapeError,
            "transposed ends do not support explicit row/column selections",
        )
        require(
            (rows is None and cols is None) or tuple(offset) == (0, 0),
            ShapeError,
            "explicit row/column selections are mutually exclusive with offsets",
        )
        self.grid = grid
        self.layout = layout
        self.full_shape = (int(full_shape[0]), int(full_shape[1]))
        self.offset = (int(offset[0]), int(offset[1]))
        self.transpose = bool(transpose)
        self.rows = None if rows is None else np.asarray(rows, dtype=np.int64)
        self.cols = None if cols is None else np.asarray(cols, dtype=np.int64)

    # -- constructors -------------------------------------------------------

    @classmethod
    def of(cls, D, transpose: bool = False) -> "End":
        """The frame covering all of ``D`` (transposed view if asked)."""
        return cls(D.grid, D.layout, D.shape, transpose=transpose)

    @classmethod
    def window_of(cls, D, r0: int, c0: int) -> "End":
        """The frame starting at ``(r0, c0)`` inside ``D``."""
        return cls(D.grid, D.layout, D.shape, offset=(r0, c0))

    # -- frame geometry -----------------------------------------------------

    def frame_shape(self, shape: tuple[int, int] | None = None) -> tuple[int, int]:
        """Resolve the frame shape (explicit selections pin it)."""
        fm = len(self.rows) if self.rows is not None else None
        fn = len(self.cols) if self.cols is not None else None
        if shape is None:
            require(
                fm is not None and fn is not None,
                ShapeError,
                "frame shape is required unless rows and cols are explicit",
            )
            return (fm, fn)
        shape = (int(shape[0]), int(shape[1]))
        require(
            (fm is None or fm == shape[0]) and (fn is None or fn == shape[1]),
            ShapeError,
            f"explicit selection of shape ({fm}, {fn}) does not match frame {shape}",
        )
        return shape

    def frame_maps(
        self, shape: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Owner/position vectors along both frame axes.

        Returns ``(row_owners, row_pos, col_owners, col_pos)``: for each
        frame row (column), which coordinate along the matching grid axis
        owns it and at which local offset.  Built by slicing the layout's
        cached owner maps — no per-call allocation beyond the slices.
        """
        fm, fn = self.frame_shape(shape)
        M, N = self.full_shape
        r0, c0 = self.offset
        if self.transpose:
            # Frame rows follow matrix columns and vice versa.
            require(
                c0 + fm <= N and r0 + fn <= M,
                ShapeError,
                f"transposed frame {shape} at {self.offset} exceeds {self.full_shape}",
            )
            col_owners, col_pos = self.layout.col_owner_map(N)
            row_owners, row_pos = self.layout.row_owner_map(M)
            return (
                col_owners[c0 : c0 + fm],
                col_pos[c0 : c0 + fm],
                row_owners[r0 : r0 + fn],
                row_pos[r0 : r0 + fn],
            )
        row_owners, row_pos = self.layout.row_owner_map(M)
        col_owners, col_pos = self.layout.col_owner_map(N)
        if self.rows is None and self.cols is None:
            # contiguous window: zero-copy slice views of the cached maps
            require(
                r0 + fm <= M and c0 + fn <= N,
                ShapeError,
                f"frame {shape} at {self.offset} exceeds {self.full_shape}",
            )
            return (
                row_owners[r0 : r0 + fm],
                row_pos[r0 : r0 + fm],
                col_owners[c0 : c0 + fn],
                col_pos[c0 : c0 + fn],
            )
        ri = self.rows if self.rows is not None else np.arange(fm)
        ci = self.cols if self.cols is not None else np.arange(fn)
        require(
            (ri.size == 0 or (0 <= ri.min() and ri.max() < M))
            and (ci.size == 0 or (0 <= ci.min() and ci.max() < N)),
            ShapeError,
            f"frame selection exceeds matrix of shape {self.full_shape}",
        )
        return row_owners[ri], row_pos[ri], col_owners[ci], col_pos[ci]

    def axis_sizes(self) -> tuple[int, int]:
        """Coordinate counts along the frame's (row, col) axes."""
        if self.transpose:
            return (self.layout.pc, self.layout.pr)
        return (self.layout.pr, self.layout.pc)

    def rank(self, a: int, b: int) -> int:
        """Machine rank of frame-axis coordinates ``(a, b)``."""
        coord = (b, a) if self.transpose else (a, b)
        return self.grid.rank(coord)

    def local_view(self, blocks: Blocks, a: int, b: int) -> np.ndarray:
        """The local block at frame coords ``(a, b)``, frame-oriented."""
        block = blocks[self.rank(a, b)]
        return block.T if self.transpose else block


class RoutingPlan:
    """The exact message plan between two :class:`End` s of one frame."""

    def __init__(self, src: End, dst: End, shape: tuple[int, int]):
        shape = src.frame_shape(shape)
        require(
            dst.frame_shape(shape) == shape,
            ShapeError,
            "source and destination frames disagree on shape",
        )
        self.src = src
        self.dst = dst
        self.shape = shape
        sro, srp, sco, scp = src.frame_maps(shape)
        dro, drp, dco, dcp = dst.frame_maps(shape)
        self._maps = (sro, srp, sco, scp, dro, drp, dco, dcp)
        s_pr, s_pc = src.axis_sizes()
        d_pr, d_pc = dst.axis_sizes()
        # Per-axis coordinate-pair intersection sizes: R[a, x] frame rows are
        # owned by source grid-coordinate a and destination coordinate x.
        self._R = np.bincount(sro * d_pr + dro, minlength=s_pr * d_pr).reshape(
            s_pr, d_pr
        )
        self._C = np.bincount(sco * d_pc + dco, minlength=s_pc * d_pc).reshape(
            s_pc, d_pc
        )
        self._cost: Cost | None = None

    # -- the plan -----------------------------------------------------------

    def pairs(self) -> list[tuple[int, int, int]]:
        """All nonempty off-rank messages as ``(src_rank, dst_rank, words)``.

        Words between the source rank at frame coords ``(a, b)`` and the
        destination rank at ``(x, y)`` factor as ``R[a, x] * C[b, y]``.
        """
        out = []
        R, C = self._R, self._C
        for a, x in zip(*np.nonzero(R)):
            for b, y in zip(*np.nonzero(C)):
                sr = self.src.rank(int(a), int(b))
                dr = self.dst.rank(int(x), int(y))
                if sr != dr:
                    out.append((sr, dr, int(R[a, x] * C[b, y])))
        return out

    def cost(self) -> Cost:
        """The exact transition charge (full-duplex critical path)."""
        if self._cost is None:
            sent: dict[int, float] = {}
            recv: dict[int, float] = {}
            s_pairs: dict[int, int] = {}
            r_pairs: dict[int, int] = {}
            for sr, dr, words in self.pairs():
                sent[sr] = sent.get(sr, 0.0) + words
                recv[dr] = recv.get(dr, 0.0) + words
                s_pairs[sr] = s_pairs.get(sr, 0) + 1
                r_pairs[dr] = r_pairs.get(dr, 0) + 1
            ranks = set(sent) | set(recv)
            S = max(
                (max(s_pairs.get(r, 0), r_pairs.get(r, 0)) for r in ranks),
                default=0,
            )
            W = max(
                (max(sent.get(r, 0.0), recv.get(r, 0.0)) for r in ranks),
                default=0.0,
            )
            self._cost = Cost(S=float(S), W=float(W), F=0.0)
        return self._cost

    def is_free(self) -> bool:
        """True iff no words cross a rank boundary (identity/aligned)."""
        c = self.cost()
        return c.S == 0.0 and c.W == 0.0

    def ranks(self) -> list[int]:
        """Union of both grids' ranks — the group a charge synchronizes."""
        return list(dict.fromkeys(self.src.grid.ranks() + self.dst.grid.ranks()))

    def charge(self, machine, label: str = "route") -> Cost:
        """Charge the exact cost (a free plan charges — and syncs — nothing)."""
        cost = self.cost()
        if not self.is_free():
            machine.charge(self.ranks(), cost, label=label)
        return cost

    def charge_pointwise(self, machine, label: str = "route") -> Cost:
        """Charge each involved rank its own exact traffic, without a barrier.

        ``charge`` synchronizes the union of both grids, which is right for
        a collective transition inside one algorithm but wrong for operand
        *staging* in a multi-tenant cluster: routing a matrix from the full
        data plane onto one subgrid must not serialize the solves already
        running on the other subgrids.  Here every rank that actually sends
        or receives is charged ``S`` = its partner count and ``W`` =
        ``max(words sent, words received)`` locally (no group sync); ranks
        that move nothing are untouched.  The receivers' clocks carry the
        staging time forward, so the subgrid's first collective naturally
        starts after its operands arrive.  Returns the plan's aggregate
        critical-path cost (what :meth:`cost` reports).
        """
        sent: dict[int, float] = {}
        recv: dict[int, float] = {}
        s_pairs: dict[int, int] = {}
        r_pairs: dict[int, int] = {}
        for sr, dr, words in self.pairs():
            sent[sr] = sent.get(sr, 0.0) + words
            recv[dr] = recv.get(dr, 0.0) + words
            s_pairs[sr] = s_pairs.get(sr, 0) + 1
            r_pairs[dr] = r_pairs.get(dr, 0) + 1
        costs = {
            r: Cost(
                S=float(max(s_pairs.get(r, 0), r_pairs.get(r, 0))),
                W=float(max(sent.get(r, 0.0), recv.get(r, 0.0))),
                F=0.0,
            )
            for r in set(sent) | set(recv)
        }
        if costs:
            machine.charge_local(costs, label=label)
        return self.cost()

    def alltoall_bound(self, collective_model=None) -> Cost:
        """The old uniform bound this plan replaces (for comparison/tests):
        an all-to-all over the union at the larger per-rank footprint."""
        if collective_model is None:
            from repro.machine.collective_models import COLLECTIVE_MODELS

            collective_model = COLLECTIVE_MODELS["butterfly"]
        g = len(self.ranks())
        if g <= 1:
            return Cost.zero()
        n_per_rank = max(
            expected_local_words(self.src.layout, _end_extent(self.src, self.shape)),
            expected_local_words(self.dst.layout, _end_extent(self.dst, self.shape)),
        )
        return collective_model.alltoall(g, float(n_per_rank))

    # -- data movement ------------------------------------------------------

    def apply(
        self, blocks: Blocks, out: dict[int, np.ndarray] | None = None
    ) -> dict[int, np.ndarray]:
        """Route the frame from source blocks into destination blocks.

        ``out`` defaults to fresh zero blocks shaped for the destination
        layout (the standalone-result case: ``full_shape == frame shape``);
        pass an existing block dict (e.g. a target matrix's) to scatter the
        frame in place.  When ``out`` shares arrays with ``blocks`` (a
        matrix routed into itself), the source is snapshotted first so
        reads never observe partial writes.  Returns ``out``.
        """
        if out is None:
            out = {
                self.dst.grid.rank(coord): np.zeros(
                    self.dst.layout.local_shape(coord, self.dst.full_shape)
                )
                for coord in self.dst.grid.coords()
            }
        elif any(dst_b is src_b for dst_b in out.values() for src_b in blocks.values()):
            blocks = {r: b.copy() for r, b in blocks.items()}
        sro, srp, sco, scp, dro, drp, dco, dcp = self._maps
        R, C = self._R, self._C
        col_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for a, x in zip(*np.nonzero(R)):
            ridx = np.nonzero((sro == a) & (dro == x))[0]
            rs, rd = srp[ridx], drp[ridx]
            for b, y in zip(*np.nonzero(C)):
                key = (int(b), int(y))
                hit = col_cache.get(key)
                if hit is None:
                    cidx = np.nonzero((sco == b) & (dco == y))[0]
                    hit = col_cache[key] = (scp[cidx], dcp[cidx])
                cs, cd = hit
                src_view = self.src.local_view(blocks, int(a), int(b))
                dst_block = out[self.dst.rank(int(x), int(y))]
                # Write through the frame orientation: for a transposed
                # destination end the block is stored layout-oriented, so
                # the frame view is its transpose (fancy assignment into a
                # .T view writes the underlying block).
                dst_view = dst_block.T if self.dst.transpose else dst_block
                dst_view[np.ix_(rd, cd)] = src_view[np.ix_(rs, cs)]
        return out


def _end_extent(end: End, shape: tuple[int, int]) -> tuple[int, int]:
    """The matrix extent the old bound sized its per-rank footprint on:
    the frame, in the end's own layout orientation."""
    return (shape[1], shape[0]) if end.transpose else shape


class TransitionPlan:
    """A chain of transitions fused into one composed map.

    Every intermediate :class:`End` is a bijection of the frame, so the
    composition of the chain is exactly the route from the first end to
    the last: one plan, one charge.  The unfused ``step_plans`` are kept
    around so benches and tests can quantify what fusion saves — e.g. the
    paper's cyclic -> blocked -> cyclic three-step transition collapses to
    (near-)identity and costs nothing fused, while the stepwise chain pays
    twice.
    """

    def __init__(self, ends: Sequence[End], shape: tuple[int, int]):
        require(len(ends) >= 2, ShapeError, "a transition chain needs >= 2 ends")
        self.ends = list(ends)
        self.shape = (int(shape[0]), int(shape[1]))
        self.fused = RoutingPlan(self.ends[0], self.ends[-1], self.shape)

    def step_plans(self) -> list[RoutingPlan]:
        """The unfused chain, one plan per consecutive pair of ends."""
        return [
            RoutingPlan(a, b, self.shape)
            for a, b in zip(self.ends[:-1], self.ends[1:])
        ]

    def stepwise_cost(self) -> Cost:
        """What the chain would charge without fusion."""
        total = Cost.zero()
        for plan in self.step_plans():
            total = total + plan.cost()
        return total

    def cost(self) -> Cost:
        return self.fused.cost()

    def charge(self, machine, label: str = "route") -> Cost:
        return self.fused.charge(machine, label=label)

    def apply(
        self, blocks: Blocks, out: dict[int, np.ndarray] | None = None
    ) -> dict[int, np.ndarray]:
        return self.fused.apply(blocks, out=out)


def fuse_transitions(ends: Sequence[End], shape: tuple[int, int]) -> TransitionPlan:
    """Fuse a chain of transitions into one composed map with one charge."""
    return TransitionPlan(ends, shape)


def gather_frame(end: End, blocks: Blocks, shape: tuple[int, int] | None = None) -> np.ndarray:
    """Assemble an end's frame into a dense local array (cost-free plumbing).

    The routing counterpart of slicing ``to_global()``: only the frame's
    elements are touched, so hot paths that need one slab of a distributed
    matrix (MM line 5) no longer assemble the whole thing.  Charging is the
    caller's business, exactly as it was for ``to_global``.
    """
    fm, fn = end.frame_shape(shape)
    ro, rp, co, cp = end.frame_maps((fm, fn))
    out = np.zeros((fm, fn))
    col_sel = [(b, np.nonzero(co == b)[0]) for b in np.unique(co)]
    for a in np.unique(ro):
        ridx = np.nonzero(ro == a)[0]
        for b, cidx in col_sel:
            view = end.local_view(blocks, int(a), int(b))
            out[np.ix_(ridx, cidx)] = view[np.ix_(rp[ridx], cp[cidx])]
    return out


def scatter_frame(
    end: End, frame: np.ndarray, out: dict[int, np.ndarray]
) -> dict[int, np.ndarray]:
    """Inverse of :func:`gather_frame`: write a dense frame into an end's blocks.

    Only the frame's elements are written, so hot paths that produce one
    slab of a distributed result (MM line 7) scatter it straight into the
    destination blocks instead of assembling a global scratch matrix first.
    Cost-free plumbing, exactly like ``gather_frame`` — the movement is the
    caller's charge.  Returns ``out``.
    """
    frame = np.asarray(frame)
    fm, fn = end.frame_shape(frame.shape)
    ro, rp, co, cp = end.frame_maps((fm, fn))
    col_sel = [(b, np.nonzero(co == b)[0]) for b in np.unique(co)]
    for a in np.unique(ro):
        ridx = np.nonzero(ro == a)[0]
        for b, cidx in col_sel:
            view = end.local_view(out, int(a), int(b))
            view[np.ix_(rp[ridx], cp[cidx])] = frame[np.ix_(ridx, cidx)]
    return out
