"""Exact redistribution routing: per-(sender, receiver) message plans.

The paper charges every grid/layout transition in RecTriInv at the
all-to-all *bound*.  This module replaces the bound with the real plan, in
the spirit of ScaLAPACK's block-cyclic redistribution (Prylli &
Tourancheau): because a transition is fully described by the two sides'
index maps, the per-pair word counts — hence the exact ``S`` and ``W`` —
are derivable without moving a byte.

Three layers:

* :class:`End` — one side of a transition: a *frame* of matrix elements
  (a full matrix, a submatrix window, an arbitrary row/column selection,
  or a transposed view) pinned to a ``(grid, layout)`` pair;
* :class:`RoutingPlan` — the exact plan between two ends.  Per-axis owner
  vectors are intersected (a bincount over owner pairs, O(m + n + p_s p_d)
  per axis), the per-rank send/receive word counts and partner counts
  follow from the row x column product structure, and the charge is

      ``S = max over ranks of max(#send partners, #recv partners)``
      ``W = max over ranks of max(words sent, words received)``

  — the full-duplex critical-path cost of posting each pairwise message.
  Words that stay on their rank are free, so identity and aligned
  transitions cost zero *by construction*, with no special-case branch;
* :class:`TransitionPlan` / :func:`fuse_transitions` — a chain of ends
  (extract -> redistribute -> ... -> embed) collapsed into one composed
  map with a single charge: the paper's three-step cyclic/blocked/cyclic
  transition as one.  Each intermediate end is a bijection of the frame,
  so the fused plan is simply the route from the first end to the last.

Plans also *move* the data: :meth:`RoutingPlan.apply` routes blocks
directly from source ranks to destination ranks, which is what lets the
hot paths in :mod:`repro.dist.redistribute` and :mod:`repro.mm.mm3d` skip
the ``DistMatrix.to_global()`` scratch assembly.

Two serve-scale mechanisms sit on top (both bit-identical to the original
per-pair loops, which are pinned verbatim in
:mod:`repro.dist.routing_reference` and replayed by the hypothesis parity
suite):

* the pair enumeration, per-rank traffic summaries and block routing are
  **vectorized** — one stable argsort/group-by over owner pairs per axis,
  computed once per plan and shared by :meth:`RoutingPlan.pairs`,
  :meth:`RoutingPlan.cost`, :meth:`RoutingPlan.charge_pointwise` and
  :meth:`RoutingPlan.apply`;
* :func:`routing_plan` memoizes whole plans in an LRU keyed by the two
  ends' full fingerprints plus the frame shape, so a stream of requests
  re-pricing and re-staging the same transitions builds each plan once
  (:func:`plan_cache_stats` / :func:`clear_plan_cache` for tests,
  :func:`set_plan_cache_enabled` / :func:`set_reference_mode` for parity
  benches).
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy as np

from repro.dist.layout import Layout, expected_local_words
from repro.machine.cost import Cost
from repro.machine.validate import ParameterError, ShapeError, require

if TYPE_CHECKING:
    from repro.dist.distmatrix import DistMatrix
    from repro.machine.machine import Machine
    from repro.machine.topology import ProcessorGrid

Blocks = Mapping[int, np.ndarray]

#: one frame axis grouped by (source coord, destination coord) pair:
#: the (source positions, destination positions) arrays per pair
_AxisGroups = dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]

#: per-(sender, receiver) word counts and bincount keys must stay
#: addressable by 32-bit message-count APIs; guarded at plan construction
#: (accumulators are int64 throughout, so the guard is exact).
INT32_LIMIT = 2**31 - 1

#: when True every RoutingPlan method delegates to the pinned pre-
#: vectorization loops in repro.dist.routing_reference (parity benches)
_REFERENCE_MODE = False

def _initial_plan_cache_capacity() -> int:
    """The LRU capacity :func:`routing_plan` starts with.

    ``REPRO_PLAN_CACHE_SIZE`` overrides the default (1024) for the whole
    process; a non-integer or negative value is ignored rather than
    failing at import time.  :func:`set_plan_cache_capacity` (and
    ``ClusterConfig.plan_cache_size`` through it) changes the capacity at
    runtime.
    """
    raw = os.environ.get("REPRO_PLAN_CACHE_SIZE")
    if raw is not None:
        try:
            value = int(raw)
        except ValueError:
            return 1024
        if value >= 0:
            return value
    return 1024


#: (src fingerprint, dst fingerprint, shape) -> RoutingPlan, LRU order
_PLAN_CACHE: "OrderedDict[tuple, RoutingPlan]" = OrderedDict()
_PLAN_CACHE_MAX = _initial_plan_cache_capacity()
_PLAN_CACHE_ENABLED = True
_PLAN_CACHE_HITS = 0
_PLAN_CACHE_MISSES = 0


class End:
    """One side of a routed transition.

    The *frame* is the (logical) set of matrix elements being moved.  An
    ``End`` says where each frame element lives: element ``(i, j)`` of the
    frame is element ``(r0 + i, c0 + j)`` of a ``full_shape`` matrix
    distributed by ``layout`` on ``grid`` (or, with ``transpose=True``,
    element ``(r0 + j, c0 + i)`` — the frame is the transposed view).
    ``rows``/``cols`` instead select arbitrary global indices (the MM
    slab gathers use this); they are mutually exclusive with offsets and
    transposition.
    """

    __slots__ = ("grid", "layout", "full_shape", "offset", "transpose", "rows", "cols")

    def __init__(
        self,
        grid: "ProcessorGrid",
        layout: Layout,
        full_shape: tuple[int, int],
        offset: tuple[int, int] = (0, 0),
        transpose: bool = False,
        rows: Sequence[int] | None = None,
        cols: Sequence[int] | None = None,
    ) -> None:
        require(
            (layout.pr, layout.pc) == grid.shape,
            ShapeError,
            f"layout is for a {layout.pr} x {layout.pc} grid, "
            f"but the grid has shape {grid.shape}",
        )
        require(
            not (transpose and (rows is not None or cols is not None)),
            ShapeError,
            "transposed ends do not support explicit row/column selections",
        )
        require(
            (rows is None and cols is None) or tuple(offset) == (0, 0),
            ShapeError,
            "explicit row/column selections are mutually exclusive with offsets",
        )
        self.grid = grid
        self.layout = layout
        self.full_shape = (int(full_shape[0]), int(full_shape[1]))
        self.offset = (int(offset[0]), int(offset[1]))
        self.transpose = bool(transpose)
        self.rows = None if rows is None else np.asarray(rows, dtype=np.int64)
        self.cols = None if cols is None else np.asarray(cols, dtype=np.int64)

    # -- constructors -------------------------------------------------------

    @classmethod
    def of(cls, D: "DistMatrix", transpose: bool = False) -> "End":
        """The frame covering all of ``D`` (transposed view if asked)."""
        return cls(D.grid, D.layout, D.shape, transpose=transpose)

    @classmethod
    def window_of(cls, D: "DistMatrix", r0: int, c0: int) -> "End":
        """The frame starting at ``(r0, c0)`` inside ``D``."""
        return cls(D.grid, D.layout, D.shape, offset=(r0, c0))

    # -- frame geometry -----------------------------------------------------

    def frame_shape(self, shape: tuple[int, int] | None = None) -> tuple[int, int]:
        """Resolve the frame shape (explicit selections pin it)."""
        fm = len(self.rows) if self.rows is not None else None
        fn = len(self.cols) if self.cols is not None else None
        if shape is None:
            require(
                fm is not None and fn is not None,
                ShapeError,
                "frame shape is required unless rows and cols are explicit",
            )
            assert fm is not None and fn is not None  # require raised otherwise
            return (fm, fn)
        shape = (int(shape[0]), int(shape[1]))
        require(
            (fm is None or fm == shape[0]) and (fn is None or fn == shape[1]),
            ShapeError,
            f"explicit selection of shape ({fm}, {fn}) does not match frame {shape}",
        )
        return shape

    def frame_maps(
        self, shape: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Owner/position vectors along both frame axes.

        Returns ``(row_owners, row_pos, col_owners, col_pos)``: for each
        frame row (column), which coordinate along the matching grid axis
        owns it and at which local offset.  Built by slicing the layout's
        cached owner maps — no per-call allocation beyond the slices.
        """
        fm, fn = self.frame_shape(shape)
        M, N = self.full_shape
        r0, c0 = self.offset
        if self.transpose:
            # Frame rows follow matrix columns and vice versa.
            require(
                c0 + fm <= N and r0 + fn <= M,
                ShapeError,
                f"transposed frame {shape} at {self.offset} exceeds {self.full_shape}",
            )
            col_owners, col_pos = self.layout.col_owner_map(N)
            row_owners, row_pos = self.layout.row_owner_map(M)
            return (
                col_owners[c0 : c0 + fm],
                col_pos[c0 : c0 + fm],
                row_owners[r0 : r0 + fn],
                row_pos[r0 : r0 + fn],
            )
        row_owners, row_pos = self.layout.row_owner_map(M)
        col_owners, col_pos = self.layout.col_owner_map(N)
        if self.rows is None and self.cols is None:
            # contiguous window: zero-copy slice views of the cached maps
            require(
                r0 + fm <= M and c0 + fn <= N,
                ShapeError,
                f"frame {shape} at {self.offset} exceeds {self.full_shape}",
            )
            return (
                row_owners[r0 : r0 + fm],
                row_pos[r0 : r0 + fm],
                col_owners[c0 : c0 + fn],
                col_pos[c0 : c0 + fn],
            )
        ri = self.rows if self.rows is not None else np.arange(fm)
        ci = self.cols if self.cols is not None else np.arange(fn)
        require(
            (ri.size == 0 or (0 <= ri.min() and ri.max() < M))
            and (ci.size == 0 or (0 <= ci.min() and ci.max() < N)),
            ShapeError,
            f"frame selection exceeds matrix of shape {self.full_shape}",
        )
        return row_owners[ri], row_pos[ri], col_owners[ci], col_pos[ci]

    def axis_sizes(self) -> tuple[int, int]:
        """Coordinate counts along the frame's (row, col) axes."""
        if self.transpose:
            return (self.layout.pc, self.layout.pr)
        return (self.layout.pr, self.layout.pc)

    def rank(self, a: int, b: int) -> int:
        """Machine rank of frame-axis coordinates ``(a, b)``."""
        coord = (b, a) if self.transpose else (a, b)
        return self.grid.rank(coord)

    def rank_matrix(self) -> np.ndarray:
        """Rank lookup in frame-axis orientation: ``rank_matrix()[a, b]``
        equals :meth:`rank` ``(a, b)`` (vectorized, no per-pair calls)."""
        ranks = self.grid.rank_array
        return ranks.T if self.transpose else ranks

    def local_view(self, blocks: Blocks, a: int, b: int) -> np.ndarray:
        """The local block at frame coords ``(a, b)``, frame-oriented."""
        block = blocks[self.rank(a, b)]
        return block.T if self.transpose else block

    def fingerprint(self) -> tuple:
        """Hashable identity of everything a routing plan derives from.

        Two ends with equal fingerprints produce identical owner maps,
        rank matrices and therefore identical plans — the contract the
        :func:`routing_plan` LRU cache is keyed on.  The layout part is
        the full attribute fingerprint (see :meth:`Layout._fingerprint`),
        so a layout subclass can never alias another's plans.
        """
        return (
            self.grid.shape,
            self.grid.rank_array.tobytes(),
            self.layout._fingerprint(),
            self.full_shape,
            self.offset,
            self.transpose,
            None if self.rows is None else self.rows.tobytes(),
            None if self.cols is None else self.cols.tobytes(),
        )


class RoutingPlan:
    """The exact message plan between two :class:`End` s of one frame."""

    def __init__(self, src: End, dst: End, shape: tuple[int, int]) -> None:
        shape = src.frame_shape(shape)
        require(
            dst.frame_shape(shape) == shape,
            ShapeError,
            "source and destination frames disagree on shape",
        )
        self.src = src
        self.dst = dst
        self.shape = shape
        sro, srp, sco, scp = src.frame_maps(shape)
        dro, drp, dco, dcp = dst.frame_maps(shape)
        self._maps = (sro, srp, sco, scp, dro, drp, dco, dcp)
        s_pr, s_pc = src.axis_sizes()
        d_pr, d_pc = dst.axis_sizes()
        # Per-axis coordinate-pair intersection sizes: R[a, x] frame rows are
        # owned by source grid-coordinate a and destination coordinate x.
        self._R = np.bincount(sro * d_pr + dro, minlength=s_pr * d_pr).reshape(
            s_pr, d_pr
        )
        self._C = np.bincount(sco * d_pc + dco, minlength=s_pc * d_pc).reshape(
            s_pc, d_pc
        )
        # Overflow guard: bincount keys are bounded by the coordinate-pair
        # products, per-pair word counts by max(R) * max(C); both must fit
        # an int32 (the accumulators themselves are int64 throughout).
        require(
            s_pr * d_pr <= INT32_LIMIT and s_pc * d_pc <= INT32_LIMIT,
            ShapeError,
            f"owner-pair bincount key space ({s_pr} x {d_pr}, {s_pc} x "
            f"{d_pc}) exceeds the int32 limit",
        )
        max_words = int(self._R.max(initial=0)) * int(self._C.max(initial=0))
        require(
            max_words <= INT32_LIMIT,
            ShapeError,
            f"a per-(sender, receiver) message of {max_words} words exceeds "
            f"the int32 limit ({INT32_LIMIT})",
        )
        self._cost: Cost | None = None
        self._pair_arrays_cache: (
            tuple[np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._per_rank_cache: (
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._pointwise_cache: dict[int, Cost] | None = None
        self._groups_cache: tuple[_AxisGroups, _AxisGroups] | None = None

    # -- the plan -----------------------------------------------------------

    def _pair_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src_ranks, dst_ranks, words)`` over all off-rank pairs.

        Built once per plan from the outer product of the per-axis owner
        intersections: row pairs in ``np.nonzero(R)`` order outer, column
        pairs inner — exactly the reference loop's enumeration order, so
        downstream consumers are bit-identical by construction.  Word
        counts are int64.
        """
        cached = self._pair_arrays_cache
        if cached is None:
            R, C = self._R, self._C
            ra, rx = np.nonzero(R)
            cb, cy = np.nonzero(C)
            src_ranks = self.src.rank_matrix()[ra[:, None], cb[None, :]].ravel()
            dst_ranks = self.dst.rank_matrix()[rx[:, None], cy[None, :]].ravel()
            words = (
                R[ra, rx].astype(np.int64)[:, None]
                * C[cb, cy].astype(np.int64)[None, :]
            ).ravel()
            off_rank = src_ranks != dst_ranks
            cached = self._pair_arrays_cache = (
                src_ranks[off_rank],
                dst_ranks[off_rank],
                words[off_rank],
            )
        return cached

    def _per_rank(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-rank traffic: ``(ranks, sent, recv, send_pairs, recv_pairs)``
        over the ascending union of ranks that move at least one word."""
        cached = self._per_rank_cache
        if cached is None:
            sr, dr, words = self._pair_arrays()
            ranks = np.unique(np.concatenate((sr, dr)))
            sid = np.searchsorted(ranks, sr)
            did = np.searchsorted(ranks, dr)
            w = words.astype(np.float64)
            n = len(ranks)
            cached = self._per_rank_cache = (
                ranks,
                np.bincount(sid, weights=w, minlength=n),
                np.bincount(did, weights=w, minlength=n),
                np.bincount(sid, minlength=n),
                np.bincount(did, minlength=n),
            )
        return cached

    def pairs(self) -> list[tuple[int, int, int]]:
        """All nonempty off-rank messages as ``(src_rank, dst_rank, words)``.

        Words between the source rank at frame coords ``(a, b)`` and the
        destination rank at ``(x, y)`` factor as ``R[a, x] * C[b, y]``.
        """
        if _REFERENCE_MODE:
            from repro.dist.routing_reference import reference_pairs

            return reference_pairs(self)
        sr, dr, words = self._pair_arrays()
        return list(zip(sr.tolist(), dr.tolist(), words.tolist()))

    def cost(self) -> Cost:
        """The exact transition charge (full-duplex critical path)."""
        if self._cost is None:
            if _REFERENCE_MODE:
                from repro.dist.routing_reference import reference_cost

                self._cost = reference_cost(self)
                return self._cost
            ranks, sent, recv, s_pairs, r_pairs = self._per_rank()
            if len(ranks) == 0:
                self._cost = Cost(S=0.0, W=0.0, F=0.0)
            else:
                # float sums of int word counts are exact below 2**53, so
                # the vectorized maxima match the reference dict sums bit
                # for bit
                self._cost = Cost(
                    S=float(np.maximum(s_pairs, r_pairs).max()),
                    W=float(np.maximum(sent, recv).max()),
                    F=0.0,
                )
        return self._cost

    def is_free(self) -> bool:
        """True iff no words cross a rank boundary (identity/aligned)."""
        c = self.cost()
        return c.S == 0.0 and c.W == 0.0

    def ranks(self) -> list[int]:
        """Union of both grids' ranks — the group a charge synchronizes."""
        return list(dict.fromkeys(self.src.grid.ranks() + self.dst.grid.ranks()))

    def charge(self, machine: "Machine", label: str = "route") -> Cost:
        """Charge the exact cost (a free plan charges — and syncs — nothing)."""
        cost = self.cost()
        if not self.is_free():
            machine.charge(self.ranks(), cost, label=label)
        return cost

    def charge_pointwise(self, machine: "Machine", label: str = "route") -> Cost:
        """Charge each involved rank its own exact traffic, without a barrier.

        ``charge`` synchronizes the union of both grids, which is right for
        a collective transition inside one algorithm but wrong for operand
        *staging* in a multi-tenant cluster: routing a matrix from the full
        data plane onto one subgrid must not serialize the solves already
        running on the other subgrids.  Here every rank that actually sends
        or receives is charged ``S`` = its partner count and ``W`` =
        ``max(words sent, words received)`` locally (no group sync); ranks
        that move nothing are untouched.  The receivers' clocks carry the
        staging time forward, so the subgrid's first collective naturally
        starts after its operands arrive.  Returns the plan's aggregate
        critical-path cost (what :meth:`cost` reports).
        """
        costs = self._pointwise_costs()
        if costs:
            machine.charge_local(costs, label=label)
        return self.cost()

    def _pointwise_costs(self) -> dict[int, Cost]:
        """Per-rank local charges of :meth:`charge_pointwise` (memoized).

        Ranks ascend (the reference iterates a set union; charges to
        distinct ranks commute, and the per-rank values are bit-identical).
        """
        if _REFERENCE_MODE:
            from repro.dist.routing_reference import reference_pointwise_costs

            return reference_pointwise_costs(self)
        cached = self._pointwise_cache
        if cached is None:
            ranks, sent, recv, s_pairs, r_pairs = self._per_rank()
            partners = np.maximum(s_pairs, r_pairs)
            volume = np.maximum(sent, recv)
            cached = self._pointwise_cache = {
                r: Cost(S=float(s), W=float(w), F=0.0)
                for r, s, w in zip(
                    ranks.tolist(), partners.tolist(), volume.tolist()
                )
            }
        return cached

    def alltoall_bound(self, collective_model: Any = None) -> Cost:
        """The old uniform bound this plan replaces (for comparison/tests):
        an all-to-all over the union at the larger per-rank footprint."""
        if collective_model is None:
            from repro.machine.collective_models import COLLECTIVE_MODELS

            collective_model = COLLECTIVE_MODELS["butterfly"]
        g = len(self.ranks())
        if g <= 1:
            return Cost.zero()
        n_per_rank = max(
            expected_local_words(self.src.layout, _end_extent(self.src, self.shape)),
            expected_local_words(self.dst.layout, _end_extent(self.dst, self.shape)),
        )
        return collective_model.alltoall(g, float(n_per_rank))

    # -- data movement ------------------------------------------------------

    @staticmethod
    def _group_axis(
        so: np.ndarray, do: np.ndarray, sp: np.ndarray, dp: np.ndarray, d_size: int
    ) -> _AxisGroups:
        """Group one frame axis by (source coord, destination coord) pair.

        One stable argsort over ``src_owner * d_size + dst_owner`` replaces
        the reference's per-pair ``np.nonzero((so == a) & (do == x))``
        scans.  Keys iterate in ``np.nonzero`` row-major order and the
        position arrays ascend within each group (the stable sort keeps
        the original ascending frame indices), so the routed assignments
        are identical element for element.
        """
        key = so * d_size + do
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        groups: _AxisGroups = {}
        if len(sorted_key) == 0:
            return groups
        starts = np.flatnonzero(np.diff(sorted_key)) + 1
        bounds = np.concatenate(([0], starts, [len(sorted_key)]))
        for i in range(len(bounds) - 1):
            idx = order[bounds[i] : bounds[i + 1]]
            a, x = divmod(int(sorted_key[bounds[i]]), d_size)
            groups[(a, x)] = (sp[idx], dp[idx])
        return groups

    def _groups(self) -> tuple[_AxisGroups, _AxisGroups]:
        """Per-plan (row groups, column groups) for :meth:`apply` — both
        axes' intersections are computed once per plan, not per call."""
        cached = self._groups_cache
        if cached is None:
            sro, srp, sco, scp, dro, drp, dco, dcp = self._maps
            d_pr, d_pc = self.dst.axis_sizes()
            cached = self._groups_cache = (
                self._group_axis(sro, dro, srp, drp, d_pr),
                self._group_axis(sco, dco, scp, dcp, d_pc),
            )
        return cached

    def transfer_groups(self) -> tuple[_AxisGroups, _AxisGroups]:
        """The per-axis apply groups, publicly.

        ``(row groups, column groups)``: each maps a ``(src coord, dst
        coord)`` pair to its ``(source positions, destination positions)``
        index arrays, in the deterministic enumeration order
        :meth:`apply` routes in.  The MPI backend builds its per-message
        payload selectors from exactly these groups, so what goes over
        the wire is — pair for pair, element for element — what the
        simulator routes.
        """
        return self._groups()

    def apply(
        self, blocks: Blocks, out: dict[int, np.ndarray] | None = None
    ) -> dict[int, np.ndarray]:
        """Route the frame from source blocks into destination blocks.

        ``out`` defaults to fresh zero blocks shaped for the destination
        layout (the standalone-result case: ``full_shape == frame shape``);
        pass an existing block dict (e.g. a target matrix's) to scatter the
        frame in place.  When ``out`` shares arrays with ``blocks`` (a
        matrix routed into itself), the source is snapshotted first so
        reads never observe partial writes.  Returns ``out``.
        """
        if _REFERENCE_MODE:
            from repro.dist.routing_reference import reference_apply

            return reference_apply(self, blocks, out=out)
        if out is None:
            out = {
                self.dst.grid.rank(coord): np.zeros(
                    self.dst.layout.local_shape(coord, self.dst.full_shape)
                )
                for coord in self.dst.grid.coords()
            }
        elif any(dst_b is src_b for dst_b in out.values() for src_b in blocks.values()):
            blocks = {r: b.copy() for r, b in blocks.items()}
        row_groups, col_groups = self._groups()
        dst_ranks = self.dst.rank_matrix()
        dst_transpose = self.dst.transpose
        for (a, x), (rs, rd) in row_groups.items():
            for (b, y), (cs, cd) in col_groups.items():
                src_view = self.src.local_view(blocks, a, b)
                dst_block = out[int(dst_ranks[x, y])]
                # Write through the frame orientation: for a transposed
                # destination end the block is stored layout-oriented, so
                # the frame view is its transpose (fancy assignment into a
                # .T view writes the underlying block).
                dst_view = dst_block.T if dst_transpose else dst_block
                dst_view[np.ix_(rd, cd)] = src_view[np.ix_(rs, cs)]
        return out


def _end_extent(end: End, shape: tuple[int, int]) -> tuple[int, int]:
    """The matrix extent the old bound sized its per-rank footprint on:
    the frame, in the end's own layout orientation."""
    return (shape[1], shape[0]) if end.transpose else shape


# ---------------------------------------------------------------------------
# the plan cache (serve-scale reuse of identical transitions)
# ---------------------------------------------------------------------------


def routing_plan(src: End, dst: End, shape: tuple[int, int]) -> RoutingPlan:
    """A :class:`RoutingPlan` between two ends, memoized in an LRU cache.

    Keyed by both ends' full :meth:`End.fingerprint` plus the frame shape
    — equal fingerprints derive identical owner maps and rank matrices,
    so a cached plan is interchangeable with a fresh one (including its
    memoized pair arrays, per-rank traffic and apply groups, which is the
    point: a stream of requests staging the same operands onto congruent
    subgrids builds each plan once).  Plans are index maps only — they
    hold no matrix data — so reuse across requests is safe by
    construction.
    """
    if not _PLAN_CACHE_ENABLED:
        return RoutingPlan(src, dst, shape)
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    key = (
        src.fingerprint(),
        dst.fingerprint(),
        None if shape is None else (int(shape[0]), int(shape[1])),
    )
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE_HITS += 1
        _PLAN_CACHE.move_to_end(key)
        return plan
    _PLAN_CACHE_MISSES += 1
    plan = RoutingPlan(src, dst, shape)
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_stats() -> dict[str, int]:
    """Lifetime hit/miss counters, entry count and current capacity."""
    return {
        "hits": _PLAN_CACHE_HITS,
        "misses": _PLAN_CACHE_MISSES,
        "entries": len(_PLAN_CACHE),
        "capacity": _PLAN_CACHE_MAX,
    }


def set_plan_cache_capacity(capacity: int) -> int:
    """Resize the :func:`routing_plan` LRU; returns the previous capacity.

    The cache is process-global (plans are pure index maps, shareable
    across machines), so the capacity is too: sizing it to the working
    set of distinct transitions — e.g. ``ClusterConfig.plan_cache_size``,
    or the ``REPRO_PLAN_CACHE_SIZE`` environment override read at import
    — trades memory for repeat-stream hit rate.  Shrinking evicts the
    least recently used plans immediately; ``0`` keeps the cache
    permanently empty (every call builds a fresh plan, hit/miss counters
    still advance).
    """
    require(
        int(capacity) >= 0,
        ParameterError,
        f"plan cache capacity must be >= 0, got {capacity}",
    )
    global _PLAN_CACHE_MAX
    previous = _PLAN_CACHE_MAX
    _PLAN_CACHE_MAX = int(capacity)
    while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
        _PLAN_CACHE.popitem(last=False)
    return previous


def clear_plan_cache() -> None:
    """Drop all memoized plans and reset the counters."""
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    _PLAN_CACHE.clear()
    _PLAN_CACHE_HITS = 0
    _PLAN_CACHE_MISSES = 0


def set_plan_cache_enabled(enabled: bool) -> bool:
    """Toggle the :func:`routing_plan` LRU; returns the previous setting
    (parity benches restore it in a ``finally``)."""
    global _PLAN_CACHE_ENABLED
    previous = _PLAN_CACHE_ENABLED
    _PLAN_CACHE_ENABLED = bool(enabled)
    return previous


def set_reference_mode(enabled: bool) -> bool:
    """Route every plan through the pinned pre-vectorization loops in
    :mod:`repro.dist.routing_reference`; returns the previous setting.
    For parity tests and the before/after throughput bench only."""
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = bool(enabled)
    return previous


@contextlib.contextmanager
def reference_mode(enabled: bool = True) -> Iterator[None]:
    """Scoped :func:`set_reference_mode`: restores the prior setting even
    when the body raises, so a failing parity test can't leak reference
    routing into the rest of the session."""
    previous = set_reference_mode(enabled)
    try:
        yield
    finally:
        set_reference_mode(previous)


@contextlib.contextmanager
def plan_cache_disabled() -> Iterator[None]:
    """Scoped cache bypass: every :func:`routing_plan` call inside builds a
    fresh plan; the prior enabled/disabled state is restored on exit."""
    previous = set_plan_cache_enabled(False)
    try:
        yield
    finally:
        set_plan_cache_enabled(previous)


class TransitionPlan:
    """A chain of transitions fused into one composed map.

    Every intermediate :class:`End` is a bijection of the frame, so the
    composition of the chain is exactly the route from the first end to
    the last: one plan, one charge.  The unfused ``step_plans`` are kept
    around so benches and tests can quantify what fusion saves — e.g. the
    paper's cyclic -> blocked -> cyclic three-step transition collapses to
    (near-)identity and costs nothing fused, while the stepwise chain pays
    twice.
    """

    def __init__(self, ends: Sequence[End], shape: tuple[int, int]) -> None:
        require(len(ends) >= 2, ShapeError, "a transition chain needs >= 2 ends")
        self.ends = list(ends)
        self.shape = (int(shape[0]), int(shape[1]))
        self.fused = routing_plan(self.ends[0], self.ends[-1], self.shape)

    def step_plans(self) -> list[RoutingPlan]:
        """The unfused chain, one plan per consecutive pair of ends."""
        return [
            routing_plan(a, b, self.shape)
            for a, b in zip(self.ends[:-1], self.ends[1:])
        ]

    def stepwise_cost(self) -> Cost:
        """What the chain would charge without fusion."""
        total = Cost.zero()
        for plan in self.step_plans():
            total = total + plan.cost()
        return total

    def cost(self) -> Cost:
        return self.fused.cost()

    def charge(self, machine: "Machine", label: str = "route") -> Cost:
        return self.fused.charge(machine, label=label)

    def apply(
        self, blocks: Blocks, out: dict[int, np.ndarray] | None = None
    ) -> dict[int, np.ndarray]:
        return self.fused.apply(blocks, out=out)


def fuse_transitions(ends: Sequence[End], shape: tuple[int, int]) -> TransitionPlan:
    """Fuse a chain of transitions into one composed map with one charge."""
    return TransitionPlan(ends, shape)


def _owner_groups(owners: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """``(coord, ascending frame indices)`` per distinct owner coordinate.

    One stable argsort replaces the ``np.unique`` + per-coord ``np.nonzero``
    scans: coordinates ascend and each index array is exactly what
    ``np.nonzero(owners == coord)[0]`` returned, so gathered/scattered
    elements land identically.
    """
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    if len(sorted_owners) == 0:
        return []
    starts = np.flatnonzero(np.diff(sorted_owners)) + 1
    bounds = np.concatenate(([0], starts, [len(sorted_owners)]))
    return [
        (int(sorted_owners[bounds[i]]), order[bounds[i] : bounds[i + 1]])
        for i in range(len(bounds) - 1)
    ]


def gather_frame(end: End, blocks: Blocks, shape: tuple[int, int] | None = None) -> np.ndarray:
    """Assemble an end's frame into a dense local array (cost-free plumbing).

    The routing counterpart of slicing ``to_global()``: only the frame's
    elements are touched, so hot paths that need one slab of a distributed
    matrix (MM line 5) no longer assemble the whole thing.  Charging is the
    caller's business, exactly as it was for ``to_global``.
    """
    fm, fn = end.frame_shape(shape)
    ro, rp, co, cp = end.frame_maps((fm, fn))
    out = np.zeros((fm, fn))
    col_sel = _owner_groups(co)
    for a, ridx in _owner_groups(ro):
        for b, cidx in col_sel:
            view = end.local_view(blocks, a, b)
            out[np.ix_(ridx, cidx)] = view[np.ix_(rp[ridx], cp[cidx])]
    return out


def scatter_frame(
    end: End, frame: np.ndarray, out: dict[int, np.ndarray]
) -> dict[int, np.ndarray]:
    """Inverse of :func:`gather_frame`: write a dense frame into an end's blocks.

    Only the frame's elements are written, so hot paths that produce one
    slab of a distributed result (MM line 7) scatter it straight into the
    destination blocks instead of assembling a global scratch matrix first.
    Cost-free plumbing, exactly like ``gather_frame`` — the movement is the
    caller's charge.  Returns ``out``.
    """
    frame = np.asarray(frame)
    fm, fn = end.frame_shape(frame.shape)
    ro, rp, co, cp = end.frame_maps((fm, fn))
    col_sel = _owner_groups(co)
    for a, ridx in _owner_groups(ro):
        for b, cidx in col_sel:
            view = end.local_view(out, a, b)
            view[np.ix_(rp[ridx], cp[cidx])] = frame[np.ix_(ridx, cidx)]
    return out
