"""Data layouts: how a global matrix maps onto a 2D processor grid.

A :class:`Layout` is a pure index map — it owns no data and no ranks.  For a
``pr x pc`` grid it answers "which global rows/columns does grid coordinate
``(x, y)`` hold?".  The paper's Section II-B layouts are all here:

* :class:`CyclicLayout` — the paper's default.  Processor ``(x, y)`` owns
  ``L[x, y](i, j) = L(i*pr + x, j*pc + y)``: rows congruent to ``x`` mod
  ``pr`` and columns congruent to ``y`` mod ``pc``;
* :class:`BlockedLayout` — ``pr x pc`` contiguous tiles, raggedness
  front-loaded (the first ``m mod pr`` row tiles get one extra row);
* :class:`BlockCyclicLayout` — cyclic over *physical blocks* of ``br x bc``
  elements; ``br = bc = 1`` degenerates to the cyclic layout, and
  ``br = ceil(m/pr)`` makes each processor's rows one contiguous run.

Layouts are cheap immutable value objects (equality by parameters), shared
freely between :class:`~repro.dist.distmatrix.DistMatrix` instances.  Index
arrays are always ascending, and the per-coordinate index sets partition the
global index space exactly — the property test in ``tests/test_layout.py``
enforces this for every layout class.
"""

from __future__ import annotations

import numpy as np

from repro.machine.validate import ShapeError, require
from repro.util.mathutil import split_indices


class Layout:
    """Base class: a 2D index map over a ``pr x pc`` grid.

    Subclasses implement ``_rows(x, m)`` and ``_cols(y, n)`` returning the
    ascending global indices owned by grid row ``x`` / grid column ``y``.
    Everything else (extraction, placement, window queries, local shapes)
    derives from those two maps, so a new layout is ~10 lines of code.
    """

    def __init__(self, pr: int, pc: int):
        require(
            int(pr) >= 1 and int(pc) >= 1,
            ShapeError,
            f"layout grid factors must be >= 1, got ({pr}, {pc})",
        )
        self.pr = int(pr)
        self.pc = int(pc)

    # -- the two subclass hooks ---------------------------------------------

    def _rows(self, x: int, m: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _cols(self, y: int, n: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- public index maps --------------------------------------------------

    def row_indices(self, x: int, m: int) -> np.ndarray:
        """Ascending global row indices owned by grid row ``x`` (of ``m``)."""
        require(
            0 <= int(x) < self.pr,
            ShapeError,
            f"grid row {x} out of range for pr={self.pr}",
        )
        return self._rows(int(x), int(m))

    def col_indices(self, y: int, n: int) -> np.ndarray:
        """Ascending global column indices owned by grid column ``y``."""
        require(
            0 <= int(y) < self.pc,
            ShapeError,
            f"grid column {y} out of range for pc={self.pc}",
        )
        return self._cols(int(y), int(n))

    def local_rows_in(self, x: int, m: int, lo: int, hi: int) -> np.ndarray:
        """Positions *within the local row list* whose global row is in
        the half-open window ``[lo, hi)`` — the block-row selector every
        iteration of It-Inv-TRSM needs."""
        rows = self.row_indices(x, m)
        return np.nonzero((rows >= lo) & (rows < hi))[0]

    def local_cols_in(self, y: int, n: int, lo: int, hi: int) -> np.ndarray:
        """Column counterpart of :meth:`local_rows_in`."""
        cols = self.col_indices(y, n)
        return np.nonzero((cols >= lo) & (cols < hi))[0]

    # -- data movement helpers ----------------------------------------------

    def local_shape(self, coord: tuple[int, int], shape: tuple[int, int]) -> tuple[int, int]:
        """Shape of the local block at ``coord`` for a global ``shape``."""
        x, y = coord
        m, n = shape
        return (len(self.row_indices(x, m)), len(self.col_indices(y, n)))

    def extract(self, A: np.ndarray, coord: tuple[int, int]) -> np.ndarray:
        """The local block of global matrix ``A`` at grid coordinate ``coord``."""
        x, y = coord
        m, n = A.shape
        return A[np.ix_(self.row_indices(x, m), self.col_indices(y, n))]

    def place(self, out: np.ndarray, coord: tuple[int, int], block: np.ndarray) -> None:
        """Inverse of :meth:`extract`: scatter ``block`` into global ``out``."""
        x, y = coord
        m, n = out.shape
        rows = self.row_indices(x, m)
        cols = self.col_indices(y, n)
        require(
            block.shape == (len(rows), len(cols)),
            ShapeError,
            f"block at {coord} has shape {block.shape}, layout expects "
            f"({len(rows)}, {len(cols)})",
        )
        out[np.ix_(rows, cols)] = block

    def transposed(self) -> "Layout":
        """The layout of the transposed matrix on the transposed grid."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a transposed layout"
        )

    # -- value semantics ----------------------------------------------------

    def _key(self) -> tuple:
        return (type(self).__name__, self.pr, self.pc)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layout) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pr={self.pr}, pc={self.pc})"


class CyclicLayout(Layout):
    """Element-cyclic: ``(x, y)`` owns ``L(i*pr + x, j*pc + y)``."""

    def _rows(self, x: int, m: int) -> np.ndarray:
        return np.arange(x, m, self.pr)

    def _cols(self, y: int, n: int) -> np.ndarray:
        return np.arange(y, n, self.pc)

    def transposed(self) -> "CyclicLayout":
        return CyclicLayout(self.pc, self.pr)


class BlockedLayout(Layout):
    """Contiguous tiles, raggedness front-loaded (first tiles one larger)."""

    def _rows(self, x: int, m: int) -> np.ndarray:
        lo, hi = split_indices(m, self.pr)[x]
        return np.arange(lo, hi)

    def _cols(self, y: int, n: int) -> np.ndarray:
        lo, hi = split_indices(n, self.pc)[y]
        return np.arange(lo, hi)

    def transposed(self) -> "BlockedLayout":
        return BlockedLayout(self.pc, self.pr)


class BlockCyclicLayout(Layout):
    """Cyclic over physical ``br x bc`` blocks: ``(x, y)`` owns row ``i``
    iff ``(i // br) mod pr == x`` (columns analogously with ``bc``/``pc``).

    ``br = bc = 1`` is exactly :class:`CyclicLayout`; ``br >= ceil(m/pr)``
    gives each grid row one contiguous run of rows (ceil-chunked blocked).
    """

    def __init__(self, pr: int, pc: int, br: int = 1, bc: int = 1):
        super().__init__(pr, pc)
        require(
            int(br) >= 1 and int(bc) >= 1,
            ShapeError,
            f"physical block sizes must be >= 1, got ({br}, {bc})",
        )
        self.br = int(br)
        self.bc = int(bc)

    def _rows(self, x: int, m: int) -> np.ndarray:
        if self.br == 1:
            return np.arange(x, m, self.pr)
        i = np.arange(m)
        return i[(i // self.br) % self.pr == x]

    def _cols(self, y: int, n: int) -> np.ndarray:
        if self.bc == 1:
            return np.arange(y, n, self.pc)
        j = np.arange(n)
        return j[(j // self.bc) % self.pc == y]

    def transposed(self) -> "BlockCyclicLayout":
        return BlockCyclicLayout(self.pc, self.pr, br=self.bc, bc=self.br)

    def _key(self) -> tuple:
        return (type(self).__name__, self.pr, self.pc, self.br, self.bc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockCyclicLayout(pr={self.pr}, pc={self.pc}, "
            f"br={self.br}, bc={self.bc})"
        )


def expected_local_words(layout: Layout, shape: tuple[int, int]) -> int:
    """Largest per-rank block size (words) for ``shape`` under ``layout``.

    This is the ``n_per_rank`` of every all-to-all-bound redistribution
    charge, and the per-rank storage a :class:`DistMatrix` registers.
    """
    m, n = int(shape[0]), int(shape[1])
    max_rows = max(len(layout.row_indices(x, m)) for x in range(layout.pr))
    max_cols = max(len(layout.col_indices(y, n)) for y in range(layout.pc))
    return int(max_rows * max_cols)
