"""Data layouts: how a global matrix maps onto a 2D processor grid.

A :class:`Layout` is a pure index map — it owns no data and no ranks.  For a
``pr x pc`` grid it answers "which global rows/columns does grid coordinate
``(x, y)`` hold?".  The paper's Section II-B layouts are all here:

* :class:`CyclicLayout` — the paper's default.  Processor ``(x, y)`` owns
  ``L[x, y](i, j) = L(i*pr + x, j*pc + y)``: rows congruent to ``x`` mod
  ``pr`` and columns congruent to ``y`` mod ``pc``;
* :class:`BlockedLayout` — ``pr x pc`` contiguous tiles, raggedness
  front-loaded (the first ``m mod pr`` row tiles get one extra row);
* :class:`BlockCyclicLayout` — cyclic over *physical blocks* of ``br x bc``
  elements; ``br = bc = 1`` degenerates to the cyclic layout, and
  ``br = ceil(m/pr)`` makes each processor's rows one contiguous run.

Layouts are cheap immutable value objects (equality by parameters), shared
freely between :class:`~repro.dist.distmatrix.DistMatrix` instances.  Index
arrays are always ascending, and the per-coordinate index sets partition the
global index space exactly — the property test in ``tests/test_layout.py``
enforces this for every layout class.

Index maps are **memoized** per ``(layout, axis, size)`` in a module-level
cache (layouts hash by their parameters, so equal spellings share entries).
Each cache entry holds three read-only arrays per axis:

* the per-coordinate ascending index arrays (what :meth:`Layout.row_indices`
  returns),
* the *owner* vector ``owners[g] = coordinate that owns global index g``, and
* the *position* vector ``pos[g] = offset of g within its owner's list``.

The owner/position maps are what :mod:`repro.dist.routing` intersects to
derive exact per-(sender, receiver) message plans, and the cache is why the
recursion hot loops (which re-derive the same maps at every level) stop
rebuilding O(p*m) index arrays per call once the maps are warm —
``tests/test_routing.py`` guards that repeats add no cache entries.
Cache keys fingerprint the layout's full attribute dict (not just
``_key()``), so a subclass that adds parameters without overriding
``_key()`` can never be served another instance's maps.
"""

from __future__ import annotations

import numpy as np

from repro.machine.validate import ShapeError, require
from repro.util.mathutil import split_indices

#: (layout fingerprint, axis, size) -> (per-coord index arrays, owners, positions).
_AXIS_CACHE: dict[tuple, tuple[tuple[np.ndarray, ...], np.ndarray, np.ndarray]] = {}

#: (layout fingerprint, shape) -> largest per-rank block size in words.
_WORDS_CACHE: dict[tuple, int] = {}

#: Entry bound per cache: long sweeps over many distinct (layout, size)
#: pairs evict oldest-first instead of growing without limit.  Far above
#: any single solve's working set, so hot-loop reuse is unaffected.
_CACHE_MAX_ENTRIES = 4096


def _cache_put(cache: dict, key: tuple, value: object) -> None:
    """Insert with FIFO eviction once the cache reaches its entry bound."""
    while len(cache) >= _CACHE_MAX_ENTRIES:
        cache.pop(next(iter(cache)))
    cache[key] = value


def axis_cache_size() -> int:
    """Number of memoized (layout, axis, size) index maps.

    Exposed so tests can assert that repeated transitions over the same
    layouts reuse the cached maps instead of growing the cache.
    """
    return len(_AXIS_CACHE)


def clear_layout_caches() -> None:
    """Drop all memoized index maps (the cache-growth regression test in
    ``tests/test_routing.py`` starts from this for a deterministic count)."""
    _AXIS_CACHE.clear()
    _WORDS_CACHE.clear()


class Layout:
    """Base class: a 2D index map over a ``pr x pc`` grid.

    Subclasses implement ``_rows(x, m)`` and ``_cols(y, n)`` returning the
    ascending global indices owned by grid row ``x`` / grid column ``y``.
    Everything else (extraction, placement, window queries, local shapes)
    derives from those two maps, so a new layout is ~10 lines of code.
    """

    def __init__(self, pr: int, pc: int) -> None:
        require(
            int(pr) >= 1 and int(pc) >= 1,
            ShapeError,
            f"layout grid factors must be >= 1, got ({pr}, {pc})",
        )
        self.pr = int(pr)
        self.pc = int(pc)

    # -- the two subclass hooks ---------------------------------------------

    def _rows(self, x: int, m: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _cols(self, y: int, n: int) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- cached index maps --------------------------------------------------

    def _fingerprint(self) -> tuple:
        """Cache identity: the concrete type plus *every* attribute.

        Deliberately stronger than ``_key()``: a subclass that adds
        parameters but forgets to override ``_key()`` only mis-answers
        equality, it must never be served another instance's cached maps.
        Covers ``__slots__``-declared attributes as well as ``__dict__``.
        Memoized per instance (layouts are immutable) — the serve hot
        path fingerprints the same layout objects thousands of times.
        """
        memo = self.__dict__.get("_fingerprint_memo")
        if memo is not None:
            return memo
        state = dict(self.__dict__)
        state.pop("_fingerprint_memo", None)
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if hasattr(self, name):
                    state[name] = getattr(self, name)
        memo = (type(self).__qualname__, tuple(sorted(state.items())))
        self.__dict__["_fingerprint_memo"] = memo
        return memo

    def _axis_maps(
        self, axis: int, size: int
    ) -> tuple[tuple[np.ndarray, ...], np.ndarray, np.ndarray]:
        """Memoized ``(index arrays, owners, positions)`` for one axis."""
        key = (self._fingerprint(), axis, int(size))
        hit = _AXIS_CACHE.get(key)
        if hit is not None:
            return hit
        size = int(size)
        build, count = (self._rows, self.pr) if axis == 0 else (self._cols, self.pc)
        index = tuple(
            np.ascontiguousarray(build(c, size), dtype=np.int64) for c in range(count)
        )
        owners = np.full(size, -1, dtype=np.int64)
        pos = np.zeros(size, dtype=np.int64)
        for c, idx in enumerate(index):
            owners[idx] = c
            pos[idx] = np.arange(len(idx), dtype=np.int64)
        require(
            sum(len(a) for a in index) == size
            and (size == 0 or int(owners.min()) >= 0),
            ShapeError,
            f"{self!r} does not partition axis {axis} of size {size}",
        )
        for arr in (*index, owners, pos):
            arr.setflags(write=False)
        hit = (index, owners, pos)
        _cache_put(_AXIS_CACHE, key, hit)
        return hit

    # -- public index maps --------------------------------------------------

    def row_indices(self, x: int, m: int) -> np.ndarray:
        """Ascending global row indices owned by grid row ``x`` (of ``m``).

        The returned array is cached and read-only; copy before mutating.
        """
        require(
            0 <= int(x) < self.pr,
            ShapeError,
            f"grid row {x} out of range for pr={self.pr}",
        )
        return self._axis_maps(0, m)[0][int(x)]

    def col_indices(self, y: int, n: int) -> np.ndarray:
        """Ascending global column indices owned by grid column ``y``.

        The returned array is cached and read-only; copy before mutating.
        """
        require(
            0 <= int(y) < self.pc,
            ShapeError,
            f"grid column {y} out of range for pc={self.pc}",
        )
        return self._axis_maps(1, n)[0][int(y)]

    def row_owner_map(self, m: int) -> tuple[np.ndarray, np.ndarray]:
        """``(owners, positions)`` over all ``m`` global rows (cached).

        ``owners[g]`` is the grid row owning global row ``g`` and
        ``positions[g]`` its offset inside that coordinate's local block —
        the two vectors exact routing intersects.
        """
        _, owners, pos = self._axis_maps(0, m)
        return owners, pos

    def col_owner_map(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Column counterpart of :meth:`row_owner_map` (cached)."""
        _, owners, pos = self._axis_maps(1, n)
        return owners, pos

    def local_rows_in(self, x: int, m: int, lo: int, hi: int) -> np.ndarray:
        """Positions *within the local row list* whose global row is in
        the half-open window ``[lo, hi)`` — the block-row selector every
        iteration of It-Inv-TRSM needs.

        The cached index arrays are ascending, so the window is an
        *interval view*: two binary searches bound it, no O(m) scan."""
        rows = self.row_indices(x, m)
        i0, i1 = np.searchsorted(rows, (lo, hi))
        return np.arange(i0, i1)

    def local_cols_in(self, y: int, n: int, lo: int, hi: int) -> np.ndarray:
        """Column counterpart of :meth:`local_rows_in`."""
        cols = self.col_indices(y, n)
        i0, i1 = np.searchsorted(cols, (lo, hi))
        return np.arange(i0, i1)

    # -- data movement helpers ----------------------------------------------

    def local_shape(self, coord: tuple[int, int], shape: tuple[int, int]) -> tuple[int, int]:
        """Shape of the local block at ``coord`` for a global ``shape``."""
        x, y = coord
        m, n = shape
        return (len(self.row_indices(x, m)), len(self.col_indices(y, n)))

    def extract(self, A: np.ndarray, coord: tuple[int, int]) -> np.ndarray:
        """The local block of global matrix ``A`` at grid coordinate ``coord``."""
        x, y = coord
        m, n = A.shape
        return A[np.ix_(self.row_indices(x, m), self.col_indices(y, n))]

    def place(self, out: np.ndarray, coord: tuple[int, int], block: np.ndarray) -> None:
        """Inverse of :meth:`extract`: scatter ``block`` into global ``out``."""
        x, y = coord
        m, n = out.shape
        rows = self.row_indices(x, m)
        cols = self.col_indices(y, n)
        require(
            block.shape == (len(rows), len(cols)),
            ShapeError,
            f"block at {coord} has shape {block.shape}, layout expects "
            f"({len(rows)}, {len(cols)})",
        )
        out[np.ix_(rows, cols)] = block

    def transposed(self) -> "Layout":
        """The layout of the transposed matrix on the transposed grid."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a transposed layout"
        )

    # -- value semantics ----------------------------------------------------

    def _key(self) -> tuple:
        return (type(self).__name__, self.pr, self.pc)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layout) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pr={self.pr}, pc={self.pc})"


class CyclicLayout(Layout):
    """Element-cyclic: ``(x, y)`` owns ``L(i*pr + x, j*pc + y)``."""

    def _rows(self, x: int, m: int) -> np.ndarray:
        return np.arange(x, m, self.pr)

    def _cols(self, y: int, n: int) -> np.ndarray:
        return np.arange(y, n, self.pc)

    def transposed(self) -> "CyclicLayout":
        return CyclicLayout(self.pc, self.pr)


class BlockedLayout(Layout):
    """Contiguous tiles, raggedness front-loaded (first tiles one larger)."""

    def _rows(self, x: int, m: int) -> np.ndarray:
        lo, hi = split_indices(m, self.pr)[x]
        return np.arange(lo, hi)

    def _cols(self, y: int, n: int) -> np.ndarray:
        lo, hi = split_indices(n, self.pc)[y]
        return np.arange(lo, hi)

    def transposed(self) -> "BlockedLayout":
        return BlockedLayout(self.pc, self.pr)


class BlockCyclicLayout(Layout):
    """Cyclic over physical ``br x bc`` blocks: ``(x, y)`` owns row ``i``
    iff ``(i // br) mod pr == x`` (columns analogously with ``bc``/``pc``).

    ``br = bc = 1`` is exactly :class:`CyclicLayout`; ``br >= ceil(m/pr)``
    gives each grid row one contiguous run of rows (ceil-chunked blocked).
    """

    def __init__(self, pr: int, pc: int, br: int = 1, bc: int = 1) -> None:
        super().__init__(pr, pc)
        require(
            int(br) >= 1 and int(bc) >= 1,
            ShapeError,
            f"physical block sizes must be >= 1, got ({br}, {bc})",
        )
        self.br = int(br)
        self.bc = int(bc)

    def _rows(self, x: int, m: int) -> np.ndarray:
        if self.br == 1:
            return np.arange(x, m, self.pr)
        i = np.arange(m)
        return i[(i // self.br) % self.pr == x]

    def _cols(self, y: int, n: int) -> np.ndarray:
        if self.bc == 1:
            return np.arange(y, n, self.pc)
        j = np.arange(n)
        return j[(j // self.bc) % self.pc == y]

    def transposed(self) -> "BlockCyclicLayout":
        return BlockCyclicLayout(self.pc, self.pr, br=self.bc, bc=self.br)

    def _key(self) -> tuple:
        return (type(self).__name__, self.pr, self.pc, self.br, self.bc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockCyclicLayout(pr={self.pr}, pc={self.pc}, "
            f"br={self.br}, bc={self.bc})"
        )


def expected_local_words(layout: Layout, shape: tuple[int, int]) -> int:
    """Largest per-rank block size (words) for ``shape`` under ``layout``.

    This is the ``n_per_rank`` of the all-to-all *bound* (the envelope the
    exact routing plans are property-tested against) and the per-rank
    storage a :class:`DistMatrix` registers.  Memoized per (layout, shape).
    """
    m, n = int(shape[0]), int(shape[1])
    key = (layout._fingerprint(), m, n)
    words = _WORDS_CACHE.get(key)
    if words is None:
        row_owners, _ = layout.row_owner_map(m)
        col_owners, _ = layout.col_owner_map(n)
        max_rows = int(np.bincount(row_owners, minlength=layout.pr).max()) if m else 0
        max_cols = int(np.bincount(col_owners, minlength=layout.pc).max()) if n else 0
        words = max_rows * max_cols
        _cache_put(_WORDS_CACHE, key, words)
    return words
