"""Triangular-structure helpers shared by every solver and factorization.

Validation (``require_*``) raises :class:`~repro.machine.validate.ShapeError`
with actionable messages; the ``*_words`` helpers are the exact storage
counts the cost models charge for triangular and block-diagonal operands
(the paper stores triangles, not padded squares).

``require_square`` is deliberately duck-typed: it accepts anything with a
2-tuple ``.shape`` — a numpy array or a
:class:`~repro.dist.distmatrix.DistMatrix` — so algorithm entry points
validate distributed and global operands with the same call.
"""

from __future__ import annotations

import numpy as np

from repro.machine.validate import ShapeError, require
from repro.util.mathutil import ceil_div


def require_square(A: object, name: str = "matrix") -> int:
    """Validate that ``A`` (ndarray or DistMatrix) is square; return ``n``."""
    shape = getattr(A, "shape", None)
    require(
        shape is not None and len(shape) == 2,
        ShapeError,
        f"{name} must be a 2D matrix, got shape {shape!r}",
    )
    require(
        shape[0] == shape[1],
        ShapeError,
        f"{name} must be square, got shape {tuple(shape)}",
    )
    return int(shape[0])


def is_lower_triangular(A: np.ndarray, tol: float = 0.0) -> bool:
    """True iff every strictly-upper entry of ``A`` is ``<= tol`` in magnitude."""
    A = np.asarray(A)
    if A.shape[0] <= 1 or A.shape[1] <= 1:
        return True
    upper = A[np.triu_indices_from(A, k=1)]
    return bool(upper.size == 0 or np.max(np.abs(upper)) <= tol)


def require_lower_triangular(A: np.ndarray, name: str = "matrix", tol: float = 0.0) -> None:
    """Raise :class:`ShapeError` unless ``A`` is lower triangular."""
    require(
        is_lower_triangular(A, tol=tol),
        ShapeError,
        f"{name} must be lower triangular (strict upper part exceeds tol={tol})",
    )


def require_nonsingular_triangular(A: np.ndarray, name: str = "matrix") -> None:
    """Raise :class:`ShapeError` if any diagonal entry of ``A`` is zero.

    A triangular matrix is singular exactly when its diagonal has a zero;
    this is the cheap a-priori check every solve performs before starting
    to move data.
    """
    d = np.abs(np.diag(np.asarray(A)))
    require(
        bool(np.all(d > 0.0)),
        ShapeError,
        f"{name} is singular: zero on the diagonal at index "
        f"{int(np.argmin(d))}",
    )


def diagonal_block(A: np.ndarray, b: int, n0: int) -> np.ndarray:
    """The ``b``-th ``n0 x n0`` diagonal block ``A[b*n0:(b+1)*n0, ...]``."""
    n = require_square(A, "A")
    require(
        b >= 0 and n0 >= 1 and (b + 1) * n0 <= n,
        ShapeError,
        f"diagonal block {b} of size {n0} out of range for n={n}",
    )
    lo, hi = b * n0, (b + 1) * n0
    return A[lo:hi, lo:hi]


def triangle_words(n: int) -> int:
    """Words in an ``n x n`` triangle including the diagonal: ``n(n+1)/2``."""
    require(n >= 0, ShapeError, f"triangle_words needs n >= 0, got {n}")
    return n * (n + 1) // 2


def block_diagonal_words(n: int, n0: int) -> int:
    """Words in the ``n/n0`` dense ``n0 x n0`` diagonal blocks of an ``n x n``
    matrix — the storage of the Diagonal-Inverter's output."""
    require(
        n0 >= 1 and n >= 0 and n % n0 == 0,
        ShapeError,
        f"block size n0={n0} must divide n={n}",
    )
    return (n // n0) * n0 * n0


def padded_block_count(n: int, n0: int) -> int:
    """Number of diagonal blocks covering ``n`` rows at block size ``n0``
    (``ceil(n/n0)``; the last block may be ragged)."""
    require(n0 >= 1, ShapeError, f"block size must be >= 1, got {n0}")
    return ceil_div(max(n, 0), n0)
