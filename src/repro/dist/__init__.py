"""repro.dist: distributed matrices, layouts and charged redistribution.

The data-distribution substrate every algorithm layer builds on:

* :mod:`repro.dist.layout` — index maps (:class:`CyclicLayout`,
  :class:`BlockedLayout`, :class:`BlockCyclicLayout`) describing which
  global rows/columns each grid coordinate owns;
* :mod:`repro.dist.distmatrix` — :class:`DistMatrix`, the container
  coupling a machine, a 2D grid, a layout and per-rank blocks, with a
  stable ``(uid, generation)`` identity; :class:`StagedCopy`, the
  provenance record the operand cache stores staged instances under;
* :mod:`repro.dist.routing` — exact per-(sender, receiver) message plans
  derived from index-map intersections (:class:`End`,
  :class:`RoutingPlan`, :class:`TransitionPlan`, :func:`fuse_transitions`,
  :func:`gather_frame`);
* :mod:`repro.dist.redistribute` — charged transitions between grids,
  layouts and submatrix windows (:func:`redistribute`,
  :func:`change_layout`, :func:`transpose_matrix`,
  :func:`extract_submatrix`, :func:`embed_submatrix`), the fused
  chains (:func:`route_submatrix`, :func:`route_embed`), and the
  cluster staging helpers (:func:`staging_plan`, :func:`stage_matrix`);
* :mod:`repro.dist.triangular` — triangular-structure validation and word
  counts shared by the solvers and factorizations.
"""

from repro.dist.distmatrix import DistMatrix, StagedCopy
from repro.dist.layout import (
    BlockCyclicLayout,
    BlockedLayout,
    CyclicLayout,
    Layout,
    expected_local_words,
)
from repro.dist.redistribute import (
    change_layout,
    embed_submatrix,
    extract_submatrix,
    redistribute,
    route_embed,
    route_submatrix,
    stage_matrix,
    staging_plan,
    transpose_matrix,
)
from repro.dist.routing import (
    End,
    RoutingPlan,
    TransitionPlan,
    fuse_transitions,
    gather_frame,
    plan_cache_disabled,
    reference_mode,
    scatter_frame,
)
from repro.dist.triangular import (
    block_diagonal_words,
    diagonal_block,
    is_lower_triangular,
    require_lower_triangular,
    require_nonsingular_triangular,
    require_square,
    triangle_words,
)

__all__ = [
    "Layout",
    "CyclicLayout",
    "BlockedLayout",
    "BlockCyclicLayout",
    "expected_local_words",
    "DistMatrix",
    "StagedCopy",
    "redistribute",
    "change_layout",
    "transpose_matrix",
    "extract_submatrix",
    "embed_submatrix",
    "route_submatrix",
    "route_embed",
    "staging_plan",
    "stage_matrix",
    "End",
    "RoutingPlan",
    "TransitionPlan",
    "fuse_transitions",
    "gather_frame",
    "scatter_frame",
    "reference_mode",
    "plan_cache_disabled",
    "is_lower_triangular",
    "require_square",
    "require_lower_triangular",
    "require_nonsingular_triangular",
    "diagonal_block",
    "triangle_words",
    "block_diagonal_words",
]
