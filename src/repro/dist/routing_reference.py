"""Golden reference: the pre-vectorization routing loops, pinned verbatim.

When :mod:`repro.dist.routing` was vectorized (argsort/group-by over owner
pairs instead of per-pair ``np.nonzero`` scans), the original per-pair loop
implementations moved here unchanged, exactly as ``tests/test_policies.py``
pinned the pre-refactor LPT scheduler.  The hypothesis parity suite in
``tests/test_throughput.py`` replays every plan through both paths and
asserts bit-identical pairs, costs, pointwise charges and routed blocks;
``benchmarks/bench_throughput.py`` measures the speedup against this path.

Nothing here is exported to the library proper — the only consumers are
tests, benches and :func:`repro.dist.routing.set_reference_mode`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.machine.cost import Cost

if TYPE_CHECKING:
    from repro.dist.routing import Blocks, RoutingPlan


def reference_pairs(plan: "RoutingPlan") -> list[tuple[int, int, int]]:
    """The original nested-``np.nonzero`` pair enumeration."""
    out: list[tuple[int, int, int]] = []
    R, C = plan._R, plan._C
    for a, x in zip(*np.nonzero(R)):
        for b, y in zip(*np.nonzero(C)):
            sr = plan.src.rank(int(a), int(b))
            dr = plan.dst.rank(int(x), int(y))
            if sr != dr:
                out.append((sr, dr, int(R[a, x] * C[b, y])))
    return out


def _per_rank_dicts(
    plan: "RoutingPlan",
) -> tuple[dict[int, float], dict[int, float], dict[int, int], dict[int, int]]:
    """The original dict accumulation over :func:`reference_pairs`."""
    sent: dict[int, float] = {}
    recv: dict[int, float] = {}
    s_pairs: dict[int, int] = {}
    r_pairs: dict[int, int] = {}
    for sr, dr, words in reference_pairs(plan):
        sent[sr] = sent.get(sr, 0.0) + words
        recv[dr] = recv.get(dr, 0.0) + words
        s_pairs[sr] = s_pairs.get(sr, 0) + 1
        r_pairs[dr] = r_pairs.get(dr, 0) + 1
    return sent, recv, s_pairs, r_pairs


def reference_cost(plan: "RoutingPlan") -> Cost:
    """The original aggregate critical-path charge."""
    sent, recv, s_pairs, r_pairs = _per_rank_dicts(plan)
    ranks = set(sent) | set(recv)
    S = max(
        (max(s_pairs.get(r, 0), r_pairs.get(r, 0)) for r in ranks),
        default=0,
    )
    W = max(
        (max(sent.get(r, 0.0), recv.get(r, 0.0)) for r in ranks),
        default=0.0,
    )
    return Cost(S=float(S), W=float(W), F=0.0)


def reference_pointwise_costs(plan: "RoutingPlan") -> dict[int, Cost]:
    """The original per-rank local charges of ``charge_pointwise``."""
    sent, recv, s_pairs, r_pairs = _per_rank_dicts(plan)
    return {
        r: Cost(
            S=float(max(s_pairs.get(r, 0), r_pairs.get(r, 0))),
            W=float(max(sent.get(r, 0.0), recv.get(r, 0.0))),
            F=0.0,
        )
        for r in set(sent) | set(recv)
    }


def reference_apply(
    plan: "RoutingPlan",
    blocks: "Blocks",
    out: dict[int, np.ndarray] | None = None,
) -> dict[int, np.ndarray]:
    """The original per-pair ``np.nonzero`` routing loop (with the
    duplicated per-call ``col_cache`` the vectorized path hoisted)."""
    if out is None:
        out = {
            plan.dst.grid.rank(coord): np.zeros(
                plan.dst.layout.local_shape(coord, plan.dst.full_shape)
            )
            for coord in plan.dst.grid.coords()
        }
    elif any(dst_b is src_b for dst_b in out.values() for src_b in blocks.values()):
        blocks = {r: b.copy() for r, b in blocks.items()}
    sro, srp, sco, scp, dro, drp, dco, dcp = plan._maps
    R, C = plan._R, plan._C
    col_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    for a, x in zip(*np.nonzero(R)):
        ridx = np.nonzero((sro == a) & (dro == x))[0]
        rs, rd = srp[ridx], drp[ridx]
        for b, y in zip(*np.nonzero(C)):
            key = (int(b), int(y))
            hit = col_cache.get(key)
            if hit is None:
                cidx = np.nonzero((sco == b) & (dco == y))[0]
                hit = col_cache[key] = (scp[cidx], dcp[cidx])
            cs, cd = hit
            src_view = plan.src.local_view(blocks, int(a), int(b))
            dst_block = out[plan.dst.rank(int(x), int(y))]
            dst_view = dst_block.T if plan.dst.transpose else dst_block
            dst_view[np.ix_(rd, cd)] = src_view[np.ix_(rs, cs)]
    return out
