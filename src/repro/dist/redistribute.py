"""Charged data movement between grids, layouts and submatrices.

Where :meth:`DistMatrix.from_global` is free (initial placement), every
function here models a *transition* of live distributed data and charges the
machine accordingly:

* :func:`redistribute` — move a matrix to another grid and/or layout at the
  all-to-all bound over the union of the two rank sets (the paper's
  cyclic -> blocked -> cyclic transitions in RecTriInv have exactly this
  cost).  Identity transitions are free and return the input unchanged;
* :func:`change_layout` — same-grid layout change (a redistribution);
* :func:`transpose_matrix` — distributed transpose.  On a square grid this
  is the paper's pairwise block exchange (``S = 1``); rectangular grids
  fall back to the all-to-all bound;
* :func:`extract_submatrix` / :func:`embed_submatrix` — the recursion
  primitives.  When the window is *aligned* (every rank's sub-block is a
  slice of data it already owns — e.g. cyclic windows starting at a
  multiple of the grid dimension) they are free; misaligned windows are
  charged at the all-to-all bound.

Every function takes a ``label`` so traces and phase benches can attribute
the movement (e.g. ``rectriinv.redistr``).
"""

from __future__ import annotations

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import Layout, expected_local_words
from repro.machine.collectives import sendrecv
from repro.machine.validate import GridError, ShapeError, require


def _charge_alltoall(machine, ranks: list[int], n_per_rank: float, label: str) -> None:
    """Charge the all-to-all bound for moving ``n_per_rank`` words per rank."""
    g = len(ranks)
    if g > 1:
        machine.charge(ranks, machine.coll.alltoall(g, float(n_per_rank)), label=label)


def _same_index_maps(a: Layout, b: Layout, shape: tuple[int, int]) -> bool:
    """True iff the two layouts place ``shape`` identically.

    Compares the actual index maps, not the layout spellings, so e.g.
    ``BlockCyclicLayout(pr, pc, br=1, bc=1)`` and ``CyclicLayout(pr, pc)``
    count as the same distribution and transition for free.
    """
    if (a.pr, a.pc) != (b.pr, b.pc):
        return False
    m, n = shape
    return all(
        np.array_equal(a.row_indices(x, m), b.row_indices(x, m))
        for x in range(a.pr)
    ) and all(
        np.array_equal(a.col_indices(y, n), b.col_indices(y, n))
        for y in range(a.pc)
    )


def redistribute(
    D: DistMatrix, grid, layout: Layout, label: str = "redistribute"
) -> DistMatrix:
    """Move ``D`` onto ``grid`` with ``layout``.

    The identity transition (same grid, equivalent layout) is free and
    returns ``D`` itself — equivalence is judged on the index maps, not
    the layout object, so degenerate spellings of the same distribution
    (e.g. block-cyclic with unit blocks vs cyclic) stay free.  Anything
    else is charged at the all-to-all bound over the union of the source
    and destination rank sets, with ``n_per_rank`` the larger of the two
    per-rank footprints.
    """
    if grid == D.grid and (
        layout == D.layout or _same_index_maps(D.layout, layout, D.shape)
    ):
        return D
    union = list(dict.fromkeys(D.grid.ranks() + grid.ranks()))
    n_per_rank = max(
        D.words_per_rank(), expected_local_words(layout, D.shape)
    )
    _charge_alltoall(D.machine, union, n_per_rank, label)
    return DistMatrix.from_global(D.machine, grid, layout, D.to_global())


def change_layout(D: DistMatrix, layout: Layout, label: str = "change_layout") -> DistMatrix:
    """Re-lay ``D`` on its own grid (e.g. cyclic -> blocked)."""
    return redistribute(D, D.grid, layout, label=label)


def transpose_matrix(D: DistMatrix, label: str = "transpose") -> DistMatrix:
    """Distributed transpose: returns ``D.T`` on the same grid.

    On a square grid the block at ``(x, y)`` and the block at ``(y, x)``
    swap in one pairwise message per off-diagonal pair (``S = 1`` on the
    critical path — the paper's square-grid transpose in MM line 4);
    diagonal blocks transpose in place for free.  Rectangular grids have no
    pairing, so the transition is charged at the all-to-all bound.
    """
    machine = D.machine
    grid = D.grid
    pr, pc = grid.shape
    GT = D.to_global().T.copy()

    try:
        layout = D.layout.transposed()
    except NotImplementedError:
        layout = None
    if pr == pc and layout is not None and (layout.pr, layout.pc) == grid.shape:
        # The transposed layout's block at (x, y) is the transpose of the
        # source block at (y, x), so one pairwise swap per off-diagonal
        # pair realizes the transition.
        for x in range(pr):
            for y in range(x + 1, pc):
                sendrecv(
                    machine,
                    grid.rank((x, y)),
                    grid.rank((y, x)),
                    D.local((x, y)),
                    D.local((y, x)),
                    label=label,
                )
    else:
        # No pairing exists (rectangular grid, or a layout without a
        # transposed counterpart): a general redistribution.
        _charge_alltoall(machine, grid.ranks(), D.words_per_rank(), label)
        layout = D.layout
    return DistMatrix.from_global(machine, grid, layout, GT)


# ---------------------------------------------------------------------------
# submatrix extraction / embedding (the recursion primitives)
# ---------------------------------------------------------------------------


def _window_aligned(
    sub_indices, own_indices, p: int, full: int, lo: int, sub: int
) -> bool:
    """True iff every rank's sub-window indices are indices it already owns."""
    for x in range(p):
        shifted = sub_indices(x, sub) + lo
        if shifted.size and not np.all(np.isin(shifted, own_indices(x, full))):
            return False
    return True


def extract_submatrix(
    D: DistMatrix, r0: int, r1: int, c0: int, c1: int, label: str = "extract"
) -> DistMatrix:
    """The submatrix ``D[r0:r1, c0:c1]`` in ``D``'s layout on ``D``'s grid.

    Aligned windows (each rank's piece already local — for the cyclic
    layout: ``r0 % pr == 0`` and ``c0 % pc == 0``) are free; misaligned
    windows are charged at the all-to-all bound for the submatrix volume.
    The result is a standard (offset-free) distribution of the submatrix.
    """
    m, n = D.shape
    require(
        0 <= r0 <= r1 <= m and 0 <= c0 <= c1 <= n,
        ShapeError,
        f"window [{r0}:{r1}, {c0}:{c1}] out of range for shape {D.shape}",
    )
    lay = D.layout
    sub_shape = (r1 - r0, c1 - c0)
    aligned = _window_aligned(
        lay.row_indices, lay.row_indices, lay.pr, m, r0, sub_shape[0]
    ) and _window_aligned(
        lay.col_indices, lay.col_indices, lay.pc, n, c0, sub_shape[1]
    )
    if not aligned:
        _charge_alltoall(
            D.machine,
            D.grid.ranks(),
            expected_local_words(lay, sub_shape),
            label,
        )
    G = D.to_global()
    return DistMatrix.from_global(D.machine, D.grid, lay, G[r0:r1, c0:c1])


def embed_submatrix(
    target: DistMatrix, sub: DistMatrix, r0: int, c0: int, label: str = "embed"
) -> DistMatrix:
    """Write ``sub`` into ``target`` at offset ``(r0, c0)``, in place.

    ``sub`` must live on the same grid as ``target``.  Aligned offsets are
    free (each rank writes into its own block); misaligned offsets are
    charged at the all-to-all bound for ``sub``'s volume.  Returns
    ``target`` for chaining.
    """
    require(
        sub.grid == target.grid,
        GridError,
        "embed_submatrix requires sub and target on the same grid",
    )
    sm, sn = sub.shape
    M, N = target.shape
    require(
        0 <= r0 and r0 + sm <= M and 0 <= c0 and c0 + sn <= N,
        ShapeError,
        f"submatrix of shape {sub.shape} at offset ({r0}, {c0}) "
        f"does not fit in target of shape {target.shape}",
    )
    aligned = _window_aligned(
        sub.layout.row_indices, target.layout.row_indices, sub.layout.pr, M, r0, sm
    ) and _window_aligned(
        sub.layout.col_indices, target.layout.col_indices, sub.layout.pc, N, c0, sn
    )
    if not aligned:
        _charge_alltoall(
            target.machine, target.grid.ranks(), sub.words_per_rank(), label
        )
    G = target.to_global()
    G[r0 : r0 + sm, c0 : c0 + sn] = sub.to_global()
    for coord in target.grid.coords():
        target.blocks[target.grid.rank(coord)] = target.layout.extract(G, coord)
    return target
