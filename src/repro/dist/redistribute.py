"""Charged data movement between grids, layouts and submatrices.

Where :meth:`DistMatrix.from_global` is free (initial placement), every
function here models a *transition* of live distributed data.  Since PR 2
every transition is charged at its **exact routing cost**: the per-(sender,
receiver) message plan derived in :mod:`repro.dist.routing` from the two
sides' index maps.  Identity and aligned transitions therefore cost zero by
construction — there is no special-case branch — and blocks are routed
directly between ranks instead of being assembled through a
``to_global()`` scratch copy.

* :func:`redistribute` — move a matrix to another grid and/or layout;
* :func:`change_layout` — same-grid layout change (a redistribution);
* :func:`transpose_matrix` — distributed transpose.  On a square grid with
  pairable block shapes this is the paper's pairwise block exchange
  (``S = 1``); otherwise it falls back to the exact general route;
* :func:`extract_submatrix` / :func:`embed_submatrix` — the recursion
  primitives.  Aligned windows are free (every word stays on its rank);
  misaligned windows charge exactly the words that cross ranks;
* :func:`route_submatrix` / :func:`route_embed` — **fused** chains.  The
  recursion call sites used to pay extract + redistribute (and
  redistribute-back + embed) as separate charges; these helpers compose
  the chain into one map with a single charge, the paper's three-step
  cyclic/blocked/cyclic transition as one.

Every function takes a ``label`` so traces and phase benches can attribute
the movement (e.g. ``rectriinv.route_down``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import Layout
from repro.dist.routing import End, RoutingPlan, fuse_transitions, routing_plan
from repro.machine.collectives import sendrecv
from repro.machine.validate import GridError, ShapeError, require

if TYPE_CHECKING:
    from repro.machine.topology import ProcessorGrid


def redistribute(
    D: DistMatrix, grid: "ProcessorGrid", layout: Layout, label: str = "redistribute"
) -> DistMatrix:
    """Move ``D`` onto ``grid`` with ``layout`` at the exact routing cost.

    The charge comes from the per-pair plan: ``S`` is the largest number of
    point-to-point partners any rank has, ``W`` the largest per-rank word
    count sent or received.  A transition between identical index maps
    (including degenerate spellings of the same distribution) moves nothing,
    charges nothing, and returns ``D`` itself.
    """
    plan = routing_plan(End.of(D), End(grid, layout, D.shape), D.shape)
    plan.charge(D.machine, label)
    if plan.is_free() and grid == D.grid and layout == D.layout:
        # No word crossed a rank boundary and both sides are spelled the
        # same: nothing to rebuild.  A free plan under a *different*
        # spelling of the same distribution (e.g. unit-block block-cyclic
        # -> cyclic) still charges nothing but falls through, so the
        # result carries the layout the caller asked for.
        return D
    blocks = D.machine.backend.execute_plan(plan, D.blocks, label=label)
    return DistMatrix(D.machine, grid, layout, D.shape, blocks)


def change_layout(D: DistMatrix, layout: Layout, label: str = "change_layout") -> DistMatrix:
    """Re-lay ``D`` on its own grid (e.g. cyclic -> blocked)."""
    return redistribute(D, D.grid, layout, label=label)


def _pairable(D: DistMatrix, layout: Layout) -> bool:
    """True iff the square-grid pairwise exchange realizes the transpose.

    The exchange sets the block at ``(x, y)`` to the transpose of the
    source block at ``(y, x)``, which is the true transposed matrix iff
    the transposed layout's row map over ``n`` *is* the source's column
    map (and vice versa) — compared on the cached owner maps, which is
    exact where a shape comparison would be strictly weaker (a layout
    with equal-sized but shifted index sets must fall back)."""
    m, n = D.shape
    return np.array_equal(
        layout.row_owner_map(n)[0], D.layout.col_owner_map(n)[0]
    ) and np.array_equal(layout.col_owner_map(m)[0], D.layout.row_owner_map(m)[0])


def transpose_matrix(D: DistMatrix, label: str = "transpose") -> DistMatrix:
    """Distributed transpose: returns ``D.T`` on the same grid.

    On a square grid the block at ``(x, y)`` and the block at ``(y, x)``
    swap in one pairwise message per off-diagonal pair (``S = 1`` on the
    critical path — the paper's square-grid transpose in MM line 4);
    diagonal blocks transpose in place for free.  The pair's payloads can
    differ for a rectangular matrix (``m != n`` makes the two blocks
    different shapes), so each exchange is charged at the larger direction,
    and block shapes are validated up front: layouts whose transposed
    blocks don't pair — and rectangular grids, which have no pairing at
    all — take the exact general route instead.
    """
    machine = D.machine
    grid = D.grid
    pr, pc = grid.shape
    m, n = D.shape

    try:
        layout = D.layout.transposed()
    except NotImplementedError:
        layout = None
    if layout is not None and (layout.pr, layout.pc) != grid.shape:
        layout = None

    if pr == pc and layout is not None and _pairable(D, layout):
        # Pairwise exchange: rank (x, y)'s new block is the transpose of the
        # source block at (y, x); sendrecv charges the larger payload of
        # each off-diagonal pair, diagonal blocks transpose locally (free).
        blocks: dict[int, np.ndarray] = {}
        for x in range(pr):
            blocks[grid.rank((x, x))] = D.local((x, x)).T.copy()
            for y in range(x + 1, pc):
                sendrecv(
                    machine,
                    grid.rank((x, y)),
                    grid.rank((y, x)),
                    D.local((x, y)),
                    D.local((y, x)),
                    label=label,
                )
                blocks[grid.rank((x, y))] = D.local((y, x)).T.copy()
                blocks[grid.rank((y, x))] = D.local((x, y)).T.copy()
        return DistMatrix(machine, grid, layout, (n, m), blocks)

    # No pairing: route the transposed view exactly (the result keeps the
    # source layout, as the rectangular-grid fallback always did).
    result_layout = layout if layout is not None else D.layout
    plan = routing_plan(
        End(grid, D.layout, (m, n), transpose=True),
        End(grid, result_layout, (n, m)),
        (n, m),
    )
    plan.charge(machine, label)
    blocks = machine.backend.execute_plan(plan, D.blocks, label=label)
    return DistMatrix(machine, grid, result_layout, (n, m), blocks)


# ---------------------------------------------------------------------------
# submatrix extraction / embedding (the recursion primitives)
# ---------------------------------------------------------------------------


def _check_window(D: DistMatrix, r0: int, r1: int, c0: int, c1: int) -> None:
    m, n = D.shape
    require(
        0 <= r0 <= r1 <= m and 0 <= c0 <= c1 <= n,
        ShapeError,
        f"window [{r0}:{r1}, {c0}:{c1}] out of range for shape {D.shape}",
    )


def extract_submatrix(
    D: DistMatrix, r0: int, r1: int, c0: int, c1: int, label: str = "extract"
) -> DistMatrix:
    """The submatrix ``D[r0:r1, c0:c1]`` in ``D``'s layout on ``D``'s grid.

    Aligned windows (each rank's piece already local — for the cyclic
    layout: ``r0 % pr == 0`` and ``c0 % pc == 0``) route nothing and are
    free; misaligned windows charge exactly the words that change ranks.
    An empty window (``r0 == r1`` or ``c0 == c1``) is free and returns a
    valid zero-shape matrix.  The result is a standard (offset-free)
    distribution of the submatrix.
    """
    _check_window(D, r0, r1, c0, c1)
    shape = (r1 - r0, c1 - c0)
    plan = routing_plan(
        End.window_of(D, r0, c0), End(D.grid, D.layout, shape), shape
    )
    plan.charge(D.machine, label)
    blocks = D.machine.backend.execute_plan(plan, D.blocks, label=label)
    return DistMatrix(D.machine, D.grid, D.layout, shape, blocks)


def embed_submatrix(
    target: DistMatrix, sub: DistMatrix, r0: int, c0: int, label: str = "embed"
) -> DistMatrix:
    """Write ``sub`` into ``target`` at offset ``(r0, c0)``, in place.

    ``sub`` must live on the same grid as ``target`` (use
    :func:`route_embed` for the cross-grid fused version).  Aligned offsets
    are free (each rank writes into its own block); misaligned offsets
    charge exactly the words that change ranks.  Returns ``target``.
    """
    require(
        sub.grid == target.grid,
        GridError,
        "embed_submatrix requires sub and target on the same grid",
    )
    return route_embed(sub, target, r0, c0, label=label)


def route_submatrix(
    D: DistMatrix,
    r0: int,
    r1: int,
    c0: int,
    c1: int,
    grid: "ProcessorGrid",
    layout: Layout,
    label: str = "route",
) -> DistMatrix:
    """Fused extract + redistribute: ``D[r0:r1, c0:c1]`` onto ``grid``.

    The recursion call sites used to charge the extraction and the
    redistribution separately; the fused transition composes the window
    map with the destination map and charges the single exact route —
    blocks travel source rank -> destination rank once.
    """
    _check_window(D, r0, r1, c0, c1)
    shape = (r1 - r0, c1 - c0)
    chain = fuse_transitions(
        [
            End.window_of(D, r0, c0),  # the window inside D
            End(D.grid, D.layout, shape),  # (old step 1: standalone extract)
            End(grid, layout, shape),  # (old step 2: redistribute)
        ],
        shape,
    )
    chain.charge(D.machine, label)
    blocks = D.machine.backend.execute_plan(chain.fused, D.blocks, label=label)
    return DistMatrix(D.machine, grid, layout, shape, blocks)


def route_embed(
    sub: DistMatrix,
    target: DistMatrix,
    r0: int,
    c0: int,
    label: str = "route_embed",
) -> DistMatrix:
    """Fused redistribute + embed: write ``sub`` into ``target`` in place.

    ``sub`` may live on any grid; the fused transition routes its blocks
    straight into ``target``'s blocks at offset ``(r0, c0)`` with one
    charge (the old chain paid a redistribution onto ``target``'s grid and
    then an uncharged — or separately charged — placement).  Returns
    ``target`` for chaining.
    """
    sm, sn = sub.shape
    M, N = target.shape
    require(
        0 <= r0 and r0 + sm <= M and 0 <= c0 and c0 + sn <= N,
        ShapeError,
        f"submatrix of shape {sub.shape} at offset ({r0}, {c0}) "
        f"does not fit in target of shape {target.shape}",
    )
    chain = fuse_transitions(
        [End.of(sub), End.window_of(target, r0, c0)], (sm, sn)
    )
    chain.charge(target.machine, label)
    target.machine.backend.execute_plan(
        chain.fused, sub.blocks, out=target.blocks, label=label
    )
    target.mutated()
    return target


# ---------------------------------------------------------------------------
# staging helpers (the Cluster/scheduler entry points)
# ---------------------------------------------------------------------------


def staging_plan(D: DistMatrix, grid: "ProcessorGrid", layout: Layout) -> RoutingPlan:
    """The exact migration plan for moving ``D`` onto ``grid``/``layout``.

    Pure pricing — nothing is charged or moved.  The ``repro.sched``
    scheduler calls this before committing a request to a subgrid, so the
    modeled makespan includes the true per-pair migration cost of staging
    cluster-resident operands (no all-to-all bound anywhere).
    """
    return routing_plan(End.of(D), End(grid, layout, D.shape), D.shape)


def stage_matrix(
    D: DistMatrix,
    grid: "ProcessorGrid",
    layout: Layout,
    label: str = "stage",
    pointwise: bool = True,
) -> DistMatrix:
    """Migrate ``D`` onto a (sub)grid at the exact routing charge.

    The Cluster's operand-staging primitive: the fused plan routes blocks
    rank-to-rank, and by default the charge is *pointwise*
    (:meth:`RoutingPlan.charge_pointwise`) — each sender/receiver pays its
    own traffic with no group barrier, so staging one request does not
    serialize solves running concurrently on disjoint subgrids.  Pass
    ``pointwise=False`` for the synchronized semantics of
    :func:`redistribute`.
    """
    plan = staging_plan(D, grid, layout)
    if pointwise:
        plan.charge_pointwise(D.machine, label=label)
    else:
        plan.charge(D.machine, label=label)
    blocks = D.machine.backend.execute_plan(plan, D.blocks, label=label)
    return DistMatrix(D.machine, grid, layout, D.shape, blocks)
