"""Distributed factorizations that consume the TRSM machinery.

The paper's introduction motivates TRSM through "LU and Cholesky
factorizations" — the triangular solve is both a building block *inside*
the factorization (panel solves) and the operation every subsequent
right-hand side pays.  This package provides a blocked right-looking
Cholesky on the simulated machine with two panel-solve strategies:

* ``"substitution"`` — the classical latency-bound forward substitution
  against the diagonal block;
* ``"inversion"`` — the paper's idea applied in situ: invert the (small)
  diagonal Cholesky factor once and turn every panel solve into a
  matrix multiplication.

The measured contrast between the two is the paper's Section IX story
replayed inside a real consumer.

:mod:`repro.factor.lu` adds blocked LU with the pivoting-latency contrast
(classical partial pivoting's ``Theta(n log p)`` rounds vs CALU-style
tournament pivoting's ``Theta((n/b) log p)``).
"""

from repro.factor.cholesky import cholesky_factor
from repro.factor.cost_model import cholesky_cost
from repro.factor.lu import lu_factor_distributed

__all__ = ["cholesky_factor", "cholesky_cost", "lu_factor_distributed"]
