"""Blocked right-looking distributed LU factorization (``P A = L U``).

The second factorization the paper's introduction names.  Beyond providing
the substrate, LU adds a communication dimension Cholesky lacks —
**pivoting** — with its own latency story, directly analogous to the
paper's TRSM argument:

* ``pivoting="partial"`` — classical partial pivoting: every column of
  every panel performs a distributed argmax over the rows
  (one single-word allreduce each), ``Theta(n)`` synchronization total —
  the latency sink;
* ``pivoting="tournament"`` — CALU-style tournament pivoting: each panel
  selects its ``b`` pivot rows with one ``log p``-round reduction tree of
  ``b x b`` candidate blocks, ``Theta((n/b) log p)`` synchronization total.
  The selected pivots differ from partial pivoting's but keep the panel
  block nonsingular and the growth bounded (the CALU stability argument);
* ``pivoting="none"`` — for diagonally dominant matrices.

The panel's U rows and the trailing update follow the same
bcast-the-inverse pattern as the Cholesky consumer (the paper's selective
inversion at work).  Phases: ``pivot_search`` / ``panel_factor`` /
``panel_solve`` / ``trailing_update``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.triangular import require_square
from repro.inversion.sequential import invert_lower_triangular
from repro.machine.collectives import _log2_ceil
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ParameterError, ShapeError, require


def _tournament_pivots(panel: np.ndarray, groups: int) -> np.ndarray:
    """CALU pivot selection: indices (into ``panel`` rows) of the winners.

    Each of ``groups`` row chunks nominates its best ``b`` rows via a local
    partially-pivoted LU; winners merge pairwise up a binary tree.
    """
    m, b = panel.shape
    candidates: list[np.ndarray] = []  # row-index arrays
    bounds = np.linspace(0, m, groups + 1, dtype=int)
    for g in range(groups):
        lo, hi = bounds[g], bounds[g + 1]
        if hi - lo == 0:
            continue
        rows = np.arange(lo, hi)
        sel = _local_pivot_rows(panel[rows], b)
        candidates.append(rows[sel])
    while len(candidates) > 1:
        merged = []
        for i in range(0, len(candidates) - 1, 2):
            rows = np.concatenate([candidates[i], candidates[i + 1]])
            sel = _local_pivot_rows(panel[rows], b)
            merged.append(rows[sel])
        if len(candidates) % 2 == 1:
            merged.append(candidates[-1])
        candidates = merged
    return candidates[0][:b]


def _local_pivot_rows(block: np.ndarray, b: int) -> np.ndarray:
    """Rows a local partially-pivoted LU would bring to the top (<= b)."""
    rows = min(block.shape[0], b)
    if block.shape[0] == 0:
        return np.arange(0)
    _, piv = sla.lu_factor(
        np.asfortranarray(block[:, :rows] if block.shape[1] > rows else block),
        check_finite=False,
    )
    order = np.arange(block.shape[0])
    for i, p in enumerate(piv):
        order[i], order[p] = order[p], order[i]
    return order[:rows]


def lu_factor_distributed(
    machine: Machine,
    grid: ProcessorGrid,
    A_global: np.ndarray,
    block: int = 32,
    pivoting: str = "tournament",
) -> tuple[DistMatrix, DistMatrix, np.ndarray]:
    """Factor ``P A = L U`` on the simulated grid.

    Returns ``(L, U, perm)`` with ``L`` unit lower triangular and ``U``
    upper triangular, both cyclically distributed, and ``perm`` the row
    permutation such that ``A[perm] == L @ U`` (up to roundoff).
    """
    require(
        grid.ndim == 2 and grid.shape[0] == grid.shape[1],
        GridError,
        f"lu_factor_distributed requires a square grid, got {grid.shape}",
    )
    require(
        pivoting in ("partial", "tournament", "none"),
        ParameterError,
        f"unknown pivoting strategy {pivoting!r}",
    )
    A = np.asarray(A_global, dtype=np.float64)
    n = require_square(A, "A")
    b = max(min(int(block), n), 1)
    sp = grid.shape[0]
    p = grid.size
    all_ranks = grid.ranks()

    work = A.copy()
    perm = np.arange(n)

    for lo in range(0, n, b):
        hi = min(lo + b, n)
        bb = hi - lo
        m_below = n - lo

        # ---- pivot selection ------------------------------------------------
        panel_done = False
        with machine.phase("pivot_search"):
            if pivoting == "partial":
                # Partial pivoting interleaves search and elimination: each
                # column's argmax (one single-word allreduce over the row
                # fiber) must see the already-eliminated values.  This is
                # exactly why its synchronization cost is Theta(n log p).
                machine.charge(
                    all_ranks,
                    Cost(
                        S=2.0 * bb * _log2_ceil(sp) if p > 1 else 0.0,
                        W=2.0 * bb,
                        F=0.0,
                    ),
                    label="lu.pivot_partial",
                )
                for j in range(lo, hi):
                    piv = int(np.argmax(np.abs(work[j:, j]))) + j
                    if piv != j:
                        work[[j, piv], :] = work[[piv, j], :]
                        perm[[j, piv]] = perm[[piv, j]]
                        # pairwise row exchange between the owner ranks
                        machine.charge(
                            all_ranks[:2] if p > 1 else all_ranks,
                            Cost(S=1.0 if p > 1 else 0.0, W=float(n) / sp, F=0.0),
                            label="lu.pivot_swap",
                            sync=False,
                        )
                    pivot = work[j, j]
                    require(
                        abs(pivot) > 0.0,
                        ShapeError,
                        f"matrix is singular (zero pivot at column {j})",
                    )
                    work[j + 1 :, j] /= pivot
                    work[j + 1 :, j + 1 : hi] -= np.outer(
                        work[j + 1 :, j], work[j, j + 1 : hi]
                    )
                machine.charge(
                    all_ranks,
                    Cost(S=0.0, W=0.0, F=float(m_below) * bb * bb / (2.0 * p)),
                    label="lu.panel_factor",
                    sync=False,
                )
                panel_done = True
            elif pivoting == "tournament":
                # one log-depth tournament of b x b candidate blocks
                machine.charge(
                    all_ranks,
                    Cost(
                        S=2.0 * _log2_ceil(sp) if p > 1 else 0.0,
                        W=2.0 * bb * bb * max(_log2_ceil(sp), 1 if p > 1 else 0),
                        F=float(bb) ** 3 / 3.0,
                    ),
                    label="lu.pivot_tournament",
                )
                panel = work[lo:, lo:hi]
                winners = (lo + _tournament_pivots(panel, groups=max(sp, 1))).tolist()
                # bring the winners to the top of the panel in tournament
                # order (the order the selection LU established); repoint
                # pending winners displaced by earlier swaps
                for i in range(len(winners)):
                    j = lo + i
                    w = winners[i]
                    if w != j:
                        work[[j, w], :] = work[[w, j], :]
                        perm[[j, w]] = perm[[w, j]]
                        for t in range(i + 1, len(winners)):
                            if winners[t] == j:
                                winners[t] = w

        # ---- panel factor: unpivoted LU of the (now safe) panel -------------
        if not panel_done:
            with machine.phase("panel_factor"):
                for j in range(lo, hi):
                    pivot = work[j, j]
                    require(
                        abs(pivot) > 0.0,
                        ShapeError,
                        f"zero pivot at column {j} "
                        "(matrix singular or pivoting='none' unsafe)",
                    )
                    work[j + 1 :, j] /= pivot
                    work[j + 1 :, j + 1 : hi] -= np.outer(
                        work[j + 1 :, j], work[j, j + 1 : hi]
                    )
                machine.charge(
                    all_ranks,
                    Cost(S=0.0, W=0.0, F=float(m_below) * bb * bb / (2.0 * p)),
                    label="lu.panel_factor",
                    sync=False,
                )

        if hi == n:
            break

        # ---- panel solve: U(lo:hi, hi:) = inv(L_jj) @ A(lo:hi, hi:) ----------
        with machine.phase("panel_solve"):
            Ljj = np.tril(work[lo:hi, lo:hi], -1) + np.eye(bb)
            machine.charge(
                all_ranks,
                Cost(
                    S=2.0 * _log2_ceil(sp) if p > 1 else 0.0,
                    W=2.0 * bb * bb,
                    F=float(bb) * bb * (n - hi) / p,
                ),
                label="lu.panel_solve",
            )
            Linv = invert_lower_triangular(Ljj, check=False)
            work[lo:hi, hi:] = Linv @ work[lo:hi, hi:]

        # ---- trailing update -------------------------------------------------
        with machine.phase("trailing_update"):
            machine.charge(
                all_ranks,
                Cost(
                    S=2.0 * _log2_ceil(sp) if p > 1 else 0.0,
                    W=2.0 * (n - hi) * bb / max(sp, 1) + 2.0 * bb * (n - hi) / max(sp, 1),
                    F=float(n - hi) * (n - hi) * bb / p,
                ),
                label="lu.update",
            )
            work[hi:, hi:] -= work[hi:, lo:hi] @ work[lo:hi, hi:]

    L = np.tril(work, -1) + np.eye(n)
    U = np.triu(work)
    layout = CyclicLayout(sp, sp)
    return (
        DistMatrix.from_global(machine, grid, layout, L),
        DistMatrix.from_global(machine, grid, layout, U),
        perm,
    )
