"""Analytic cost model for the blocked distributed Cholesky.

For ``n/b`` panels on ``p = sp^2`` processors (``m_j`` = trailing size at
panel j, summing ``sum m_j ~ n^2/(2b)`` and ``sum m_j^2 ~ n^3/(3b)``):

* panel factor:   per panel ``S = log p, W = b^2, F = b^3/6``
* panel solve:
  - inversion:    per panel ``S = 2 log p, W = 2 b^2, F = m b^2/p``
  - substitution: per panel ``S = b log p, W = b m/sp, F = m b^2/(2p)``
* trailing update: per panel ``S = 2 log p, W = 2 m b/sp, F = m^2 b/(2p)``

The latency contrast is the paper's story embedded in a consumer: with
substitution panels the factorization pays ``Theta(n log p)`` messages
(``b`` steps x ``n/b`` panels), with inversion panels only
``Theta((n/b) log p)``.
"""

from __future__ import annotations

import math

from repro.machine.cost import Cost
from repro.machine.validate import ParameterError, require


def cholesky_cost(n: int, b: int, p: int, panel: str = "inversion") -> Cost:
    """Total modeled cost of the blocked distributed Cholesky."""
    require(n >= 1 and b >= 1 and p >= 1, ParameterError, "n, b, p must be >= 1")
    require(
        panel in ("inversion", "substitution"),
        ParameterError,
        f"unknown panel strategy {panel!r}",
    )
    b = min(b, n)
    sp = math.isqrt(p)
    lg = math.log2(p) if p > 1 else 0.0

    total = Cost.zero()
    lo = 0
    while lo < n:
        hi = min(lo + b, n)
        bb = hi - lo
        m = n - hi
        total = total + Cost(S=lg, W=float(bb * bb), F=bb**3 / 6.0)
        if m == 0:
            break
        if panel == "inversion":
            total = total + Cost(
                S=2 * lg, W=2.0 * bb * bb, F=m * bb * bb / p + bb**3 / (6.0 * p)
            )
        else:
            total = total + Cost(
                S=bb * max(lg, 1.0 if p > 1 else 0.0),
                W=bb * m / max(sp, 1),
                F=m * bb * bb / (2.0 * p),
            )
        total = total + Cost(
            S=2 * lg, W=2.0 * m * bb / max(sp, 1), F=m * m * bb / (2.0 * p)
        )
        lo = hi
    return total


def latency_advantage(n: int, b: int, p: int) -> float:
    """``S_substitution / S_inversion`` — grows like ``b`` for many panels."""
    s_sub = cholesky_cost(n, b, p, panel="substitution").S
    s_inv = cholesky_cost(n, b, p, panel="inversion").S
    return s_sub / s_inv if s_inv else float("inf")
