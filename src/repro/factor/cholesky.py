"""Blocked right-looking distributed Cholesky (``A = L L^T``).

Layout: ``A`` symmetric positive definite, cyclically distributed on a
``sp x sp`` grid.  For each panel ``j`` of width ``b``:

1. **panel factor** — the ``b x b`` diagonal block is allgathered over the
   grid column that owns it and factored redundantly
   (``S = log p, W = b^2, F = b^3/6``);
2. **panel solve** — the ``m x b`` subdiagonal panel is solved against
   ``L_jj^T`` from the right.  Strategy ``"substitution"`` performs the
   column-by-column substitution (``S ~ b`` sequential steps per panel —
   the classical latency sink).  Strategy ``"inversion"`` broadcasts
   ``inv(L_jj)`` once (``S = 2 log p, W = 2 b^2``) and multiplies
   (``F = m b^2 / p'`` on the owning ranks) — selective inversion exactly
   as the paper applies it to TRSM;
3. **trailing update** — ``A_22 -= P P^T``: the panel is allgathered along
   both grid fibers (``W = 2 m b / sp`` per rank) and each rank updates its
   local trailing block (``F ~ m^2 b / (2p)``).

Phases are labelled ``panel_factor`` / ``panel_solve`` / ``trailing_update``
so the factorization bench can attribute costs, mirroring the paper's
Section VII decomposition.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.triangular import require_square
from repro.inversion.sequential import invert_lower_triangular
from repro.machine.collectives import _log2_ceil
from repro.machine.cost import Cost
from repro.machine.machine import Machine
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import GridError, ParameterError, ShapeError, require


def _chol_block(A: np.ndarray) -> np.ndarray:
    """Local unblocked Cholesky of an SPD block (raises on non-SPD)."""
    n = A.shape[0]
    L = np.zeros_like(A)
    for j in range(n):
        d = A[j, j] - L[j, :j] @ L[j, :j]
        require(
            d > 0.0,
            ShapeError,
            f"matrix is not positive definite (pivot {j} is {d:.3e})",
        )
        L[j, j] = np.sqrt(d)
        if j + 1 < n:
            L[j + 1 :, j] = (A[j + 1 :, j] - L[j + 1 :, :j] @ L[j, :j]) / L[j, j]
    return L


def cholesky_factor(
    machine: Machine,
    grid: ProcessorGrid,
    A_global: np.ndarray,
    block: int = 32,
    panel: str = "inversion",
) -> DistMatrix:
    """Factor ``A = L L^T`` on the simulated grid; returns distributed ``L``.

    ``panel`` selects the panel-solve strategy (``"inversion"`` or
    ``"substitution"``); ``block`` is the panel width ``b``.
    """
    require(
        grid.ndim == 2 and grid.shape[0] == grid.shape[1],
        GridError,
        f"cholesky_factor requires a square grid, got {grid.shape}",
    )
    require(
        panel in ("inversion", "substitution"),
        ParameterError,
        f"unknown panel strategy {panel!r}",
    )
    A = np.asarray(A_global, dtype=np.float64)
    n = require_square(A, "A")
    require(
        np.allclose(A, A.T, atol=1e-12 * max(np.abs(A).max(), 1.0)),
        ShapeError,
        "A must be symmetric",
    )
    b = max(min(int(block), n), 1)
    sp = grid.shape[0]
    p = grid.size
    all_ranks = grid.ranks()

    work = A.copy()
    L = np.zeros_like(A)

    for lo in range(0, n, b):
        hi = min(lo + b, n)
        bb = hi - lo
        m = n - hi  # trailing rows below the panel

        # ---- panel factor: redundant Cholesky of the diagonal block -------
        with machine.phase("panel_factor"):
            owner_col = [grid.rank((x, (lo // 1) % sp)) for x in range(sp)]
            machine.charge(
                owner_col,
                Cost(S=_log2_ceil(sp), W=float(bb * bb), F=0.0),
                label="chol.diag_gather",
            )
            Ljj = _chol_block(work[lo:hi, lo:hi])
            machine.charge(
                owner_col,
                Cost(S=0.0, W=0.0, F=float(bb) ** 3 / 6.0),
                label="chol.diag_factor",
                sync=False,
            )
            L[lo:hi, lo:hi] = Ljj

        if m == 0:
            break  # last panel: nothing below or to the right

        # ---- panel solve: P = A(hi:, lo:hi) @ inv(Ljj)^T -------------------
        with machine.phase("panel_solve"):
            if panel == "inversion":
                # bcast inv(Ljj) along the grid rows, one multiply per rank
                machine.charge(
                    all_ranks,
                    Cost(
                        S=2.0 * _log2_ceil(sp),
                        W=2.0 * bb * bb,
                        F=float(bb) ** 3 / 6.0 / p,
                    ),
                    label="chol.panel_inv_bcast",
                )
                Linv = invert_lower_triangular(Ljj, check=False)
                P = work[hi:, lo:hi] @ Linv.T
                machine.charge(
                    all_ranks,
                    Cost(S=0.0, W=0.0, F=float(m) * bb * bb / p),
                    label="chol.panel_multiply",
                    sync=False,
                )
            else:
                # substitution: bb dependent column steps, each one message
                # round on the owning column fiber plus the update flops
                machine.charge(
                    all_ranks,
                    Cost(
                        S=float(bb) * max(_log2_ceil(sp), 1 if p > 1 else 0),
                        W=float(bb) * m / max(sp, 1),
                        F=float(m) * bb * bb / (2.0 * p),
                    ),
                    label="chol.panel_substitution",
                )
                P = sla.solve_triangular(Ljj, work[hi:, lo:hi].T, lower=True).T
            L[hi:, lo:hi] = P

        # ---- trailing update: A22 -= P P^T ---------------------------------
        with machine.phase("trailing_update"):
            machine.charge(
                all_ranks,
                Cost(
                    S=2.0 * _log2_ceil(sp),
                    W=2.0 * float(m) * bb / max(sp, 1),
                    F=float(m) * m * bb / (2.0 * p),
                ),
                label="chol.update",
            )
            work[hi:, hi:] -= P @ P.T

    layout = CyclicLayout(sp, sp)
    return DistMatrix.from_global(machine, grid, layout, np.tril(L))
