"""OperandCache: cross-request reuse of staged operand copies.

The serve-style workload — many solves against one hosted factor — used to
re-pay the full :mod:`repro.dist.routing` migration of the factor onto a
subgrid for *every* placement, even when the previous tenant of the same
subgrid had staged an identical copy moments before.  This module is the
owner-computes reuse trick: staged copies stay resident on their subgrid
and are handed back for free while they remain valid.

A cache entry is a :class:`~repro.dist.distmatrix.StagedCopy` keyed by

    ``(source uid, source generation, target grid, layout fingerprint)``

so the three staleness axes are structural:

* **mutation / re-hosting** — mutating a source bumps its ``generation``
  and re-hosting mints a new ``uid``; either way the key no longer
  matches and the stale copy is unreachable (and dropped via
  :meth:`OperandCache.invalidate` on operand release);
* **tenancy loss** — a copy lives exactly as long as the allocator block
  it was staged onto.  The :class:`~repro.sched.SubgridAllocator` reports
  every destroyed block (buddy coalesce on release, split of a free block
  to serve a smaller lease) and :meth:`OperandCache.evict_grid` drops
  every entry whose ranks intersect it;
* **copy corruption** — an entry whose staged matrix was itself mutated
  (``StagedCopy.pristine()`` fails) is dropped on lookup rather than
  served.

Lookups hand out a *private deep copy* of the cached matrix (a purely
local, zero-communication operation), so a tenant scribbling on its
operand can never poison the cache or a later tenant.

:class:`CachePlan` is the scheduler's forward simulation of the same
keyed state: pricing a candidate placement asks the plan, committing one
adds the would-be-staged keys, and allocator destroy events evict — so
the modeled staging charges and the measured ones agree decision for
decision (``tests/test_opcache.py`` proves exact parity).
"""

from __future__ import annotations

from repro.dist.distmatrix import DistMatrix, StagedCopy
from repro.dist.layout import Layout

#: (source uid, source generation, target grid, layout fingerprint)
CacheKey = tuple


def cache_key(source: DistMatrix, grid, layout: Layout) -> CacheKey:
    """The identity a staged copy is filed under.

    The layout is keyed by its full attribute fingerprint rather than its
    ``__eq__`` key — exact where a layout subclass under-reports its
    parameters in ``_key()``.
    """
    return (source.uid, source.generation, grid, layout._fingerprint())


class OperandCache:
    """Live staged copies of cluster-hosted operands, keyed by placement."""

    __slots__ = ("_entries", "_ranks", "hits", "misses")

    def __init__(self):
        self._entries: dict[CacheKey, StagedCopy] = {}
        self._ranks: dict[CacheKey, frozenset[int]] = {}
        #: lifetime counters (lookups served / stagings stored)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- the request path ---------------------------------------------------

    def lookup(self, source: DistMatrix, grid, layout: Layout) -> DistMatrix | None:
        """A private working copy of a valid cached staging, else ``None``.

        Counts a hit or a miss; a present-but-corrupted entry (the staged
        master was mutated in place) is dropped and counts as a miss.
        """
        key = cache_key(source, grid, layout)
        entry = self._entries.get(key)
        if entry is not None and entry.valid_for(source) and entry.pristine():
            self.hits += 1
            return entry.matrix.copy()
        if entry is not None:
            self._drop(key)
        self.misses += 1
        return None

    def store(self, source: DistMatrix, grid, layout: Layout, staged: DistMatrix) -> None:
        """File ``staged`` (just produced by ``stage_matrix``) for reuse.

        The cache keeps its own deep copy as the master, so the caller may
        hand ``staged`` straight to an algorithm that mutates it.  Entries
        for *superseded generations* of the same (operand, placement) are
        purged — unreachable by any lookup once the source moved on, they
        would otherwise pin a dead master per mutation.
        """
        key = cache_key(source, grid, layout)
        for k in [
            k
            for k in self._entries
            if k[0] == key[0] and k[2:] == key[2:] and k[1] != key[1]
        ]:
            self._drop(k)
        self._entries[key] = StagedCopy.of(source, staged.copy())
        self._ranks[key] = frozenset(grid.ranks())

    # -- invalidation / eviction --------------------------------------------

    def invalidate(self, source: DistMatrix) -> int:
        """Drop every copy of ``source`` (operand released or mutated).

        Returns the number of entries dropped.
        """
        dead = [k for k in self._entries if k[0] == source.uid]
        for k in dead:
            self._drop(k)
        return len(dead)

    def evict_grid(self, grid) -> int:
        """Drop every entry whose ranks intersect a destroyed block.

        Wired to :attr:`repro.sched.SubgridAllocator.on_destroy`: once the
        block a copy was staged onto is coalesced away or re-split, the
        tenancy that owned the copy is over.  Returns the entries dropped.
        """
        ranks = frozenset(grid.ranks())
        dead = [k for k, r in self._ranks.items() if r & ranks]
        for k in dead:
            self._drop(k)
        return len(dead)

    def _drop(self, key: CacheKey) -> None:
        self._entries.pop(key, None)
        self._ranks.pop(key, None)

    # -- planning -----------------------------------------------------------

    def plan(self) -> "CachePlan":
        """A scheduler-side simulation seeded with the current live keys."""
        return CachePlan(dict(self._ranks))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OperandCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class CachePlan:
    """The scheduler's what-if view of the cache during one packing pass.

    Holds keys and rank sets only (no matrices): enough to answer "would
    this staging hit?" while the scheduler commits placements and replays
    allocator destroy events forward in modeled time.  The committed
    decisions are recorded on each assignment, and the real cache follows
    the same evictions during execution, so model and measurement agree.
    """

    __slots__ = ("_ranks",)

    def __init__(self, ranks: dict[CacheKey, frozenset[int]]):
        self._ranks = dict(ranks)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._ranks

    def add(self, key: CacheKey, grid) -> None:
        """Record that a committed placement will stage this key."""
        self._ranks[key] = frozenset(grid.ranks())

    def evict_grid(self, grid) -> None:
        """Mirror of :meth:`OperandCache.evict_grid` on the planned state."""
        ranks = frozenset(grid.ranks())
        for k in [k for k, r in self._ranks.items() if r & ranks]:
            del self._ranks[k]
