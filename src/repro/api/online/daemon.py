"""The serve daemon: online requests against the simulated machine.

Everything below :mod:`repro.api` runs in *virtual* time — the simulated
machine's clocks advance by modeled charges, never by the host's.  The
daemon is the one deliberate bridge: a long-running loop
(``python -m repro serve --daemon``) that accepts JSON requests as they
arrive in *wall-clock* time, maps wall gaps onto simulated arrival times
(``time_scale`` simulated seconds per wall second), gates them through
the :class:`~repro.api.online.admission.AdmissionController`, and
executes admitted batches on fresh :class:`~repro.api.cluster.Cluster`
runs — emitting occupancy/latency/hit-rate telemetry as it goes.  It is
the only module allowlisted by the ``wallclock-discipline`` lint rule;
the clock is injectable precisely so every test drives the daemon in
virtual time too.

Protocol: one JSON object per line, one JSON response per line.

* ``{"op": "trsm", "n": 128, "k": 16, "seed": 0, "priority": 1,
  "sla": 2e-4, "tenant": "acme"}`` — offer one solve.  ``sla`` is
  deadline slack in simulated seconds (``deadline = arrival + sla``);
  an absolute ``deadline`` is accepted too.  The response carries the
  typed admission decision (``admitted`` + rid, ``rejected`` + reason,
  or ``deferred`` + retry time);
* ``{"op": "flush"}`` — run everything admitted so far as one batch and
  return its outcome (per-request residuals and latencies, makespan,
  occupancy, cache rates).  Batches also flush automatically whenever
  ``batch`` requests are queued;
* ``{"op": "stats"}`` — the cumulative telemetry snapshot;
* ``{"op": "shutdown"}`` — final flush, respond, stop.

Transport is stdin/stdout (:meth:`ServeDaemon.run_stdin`) or a Unix
socket (:meth:`ServeDaemon.serve_unix`, ``--socket PATH``).  The
load-test mode (:meth:`ServeDaemon.run_load_test`) replaces the wall
clock with a seeded arrival process from
:mod:`repro.api.online.arrivals` — fully reproducible, and what
``benchmarks/bench_daemon.py`` gates sustained throughput on.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.api.cluster import Cluster, ClusterOutcome, latency_percentiles
from repro.api.online.admission import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    Deferred,
    Rejected,
)
from repro.api.requests import TrsmRequest
from repro.dist.routing import plan_cache_stats
from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, require
from repro.util.randmat import random_dense, random_lower_triangular

__all__ = ["DaemonConfig", "ServeDaemon"]


@dataclass(frozen=True, slots=True)
class DaemonConfig:
    """Daemon knobs: pool, batching, clock mapping, admission.

    ``time_scale`` maps wall seconds onto simulated seconds (the default
    1e-6 makes one wall second one simulated microsecond — the scale of
    a mid-size solve, so interactive gaps become meaningful simulated
    gaps).  ``batch`` auto-flushes whenever that many requests are
    queued; ``telemetry_every`` emits a telemetry record every N flushes
    (0 = only on request).  ``verify`` checks every solve's residual
    (slower; the CI smoke turns it on for one request).
    """

    p: int = 16
    params: CostParams | None = None
    policy: str | None = None
    cache: bool = True
    pricing_cache: bool = True
    verify: bool = False
    time_scale: float = 1e-6
    batch: int = 8
    telemetry_every: int = 1
    admission: AdmissionConfig | None = None

    def __post_init__(self) -> None:
        require(self.batch >= 1, ParameterError, f"batch must be >= 1, got {self.batch}")
        require(
            self.time_scale > 0.0,
            ParameterError,
            f"time_scale must be > 0, got {self.time_scale}",
        )


@dataclass(slots=True)
class _Pending:
    """One admitted solve waiting for its flush batch."""

    rid: int
    n: int
    k: int
    seed: int
    arrival: float
    priority: int
    deadline: float | None
    tenant: str


@dataclass(slots=True)
class _Totals:
    """Cumulative serving counters across flush batches."""

    completed: int = 0
    flushes: int = 0
    sim_busy_seconds: float = 0.0
    latencies: list[float] = field(default_factory=list)
    sla_met: int = 0
    sla_missed: int = 0
    staging_hits: int = 0
    staging_misses: int = 0
    pricing_hits: int = 0
    pricing_misses: int = 0


class ServeDaemon:
    """A live front-end over one admission controller and many batch runs.

    ``clock`` is any zero-argument callable returning seconds; it
    defaults to ``time.monotonic`` (the daemon is the lint-allowlisted
    wall-clock boundary) and tests inject a virtual clock instead.  Sim
    time is ``(clock() - start) * time_scale``, so the whole pipeline —
    admission token buckets, arrival stamps, SLA deadlines — runs in
    simulated seconds regardless of which clock drives it.
    """

    def __init__(
        self,
        config: DaemonConfig | None = None,
        clock=None,
    ) -> None:
        self.config = config or DaemonConfig()
        self._clock = time.monotonic if clock is None else clock
        self._t0 = float(self._clock())
        self.admission = AdmissionController(self.config.admission)
        self._queue: dict[int, _Pending] = {}
        self._next_rid = 0
        self.totals = _Totals()
        self.last_outcome: ClusterOutcome | None = None
        #: telemetry records emitted by ``telemetry_every`` (a transport
        #: loop may also forward them; see :meth:`run_stdin`)
        self.telemetry_log: list[dict] = []
        self._stop = False
        self._sim_floor = 0.0

    # -- clocks --------------------------------------------------------------

    def sim_now(self) -> float:
        """The current simulated time: scaled elapsed clock, monotone."""
        now = (float(self._clock()) - self._t0) * self.config.time_scale
        # A virtual clock may be coarse; admission requires monotonicity.
        self._sim_floor = max(self._sim_floor, now)
        return self._sim_floor

    @property
    def stopped(self) -> bool:
        return self._stop

    # -- the protocol --------------------------------------------------------

    def handle(self, line: str) -> dict:
        """Process one protocol line; always returns a JSON-ready dict."""
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as e:
            return {"ok": False, "error": f"bad JSON: {e}"}
        if not isinstance(msg, dict) or "op" not in msg:
            return {"ok": False, "error": 'expected {"op": ...}'}
        op = msg["op"]
        try:
            if op == "trsm":
                return self._handle_trsm(msg)
            if op == "flush":
                return {"ok": True, "op": "flush", **self.flush()}
            if op == "stats":
                return {"ok": True, "op": "stats", **self.telemetry()}
            if op == "shutdown":
                final = self.flush() if self._queue else None
                self._stop = True
                out = {"ok": True, "op": "shutdown", **self.telemetry()}
                if final is not None:
                    out["final_flush"] = final
                return out
        except (ParameterError, ValueError, TypeError, KeyError) as e:
            return {"ok": False, "op": op, "error": f"{type(e).__name__}: {e}"}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_trsm(self, msg: dict) -> dict:
        now = self.sim_now()
        n = int(msg["n"])
        k = int(msg.get("k", 1))
        seed = int(msg.get("seed", 0))
        priority = int(msg.get("priority", 0))
        tenant = str(msg.get("tenant", "default"))
        if msg.get("deadline") is not None:
            deadline = float(msg["deadline"])
        elif msg.get("sla") is not None:
            deadline = now + float(msg["sla"])
        else:
            deadline = None
        entry = _Pending(
            rid=-1,
            n=n,
            k=k,
            seed=seed,
            arrival=now,
            priority=priority,
            deadline=deadline,
            tenant=tenant,
        )
        decision = self.admission.offer(entry, now=now)
        if isinstance(decision, Rejected):
            return {
                "ok": True,
                "op": "trsm",
                "decision": "rejected",
                "reason": decision.reason,
                "sim_time": now,
            }
        if isinstance(decision, Deferred):
            return {
                "ok": True,
                "op": "trsm",
                "decision": "deferred",
                "retry_at": decision.retry_at,
                "reason": decision.reason,
                "sim_time": now,
            }
        assert isinstance(decision, Admitted)
        rid = self._next_rid
        self._next_rid += 1
        entry.rid = rid
        self._queue[id(entry)] = entry
        out = {
            "ok": True,
            "op": "trsm",
            "decision": "admitted",
            "rid": rid,
            "seq": decision.seq,
            "sim_time": now,
            "queued": self.admission.pending(),
        }
        if self.admission.pending() >= self.config.batch:
            out["flushed"] = self.flush()
        return out

    # -- execution -----------------------------------------------------------

    def flush(self) -> dict:
        """Run every admitted request as one batch on a fresh Cluster.

        The admission queue drains in (priority class, admission order);
        arrivals and deadlines are rebased to the batch's earliest
        arrival, so each batch is a self-contained replay whose
        occupancy/makespan mean what they do offline.  Returns the batch
        summary (per-request rid/latency/residual, makespan, occupancy,
        cache rates) and folds it into the cumulative totals.
        """
        drained = [e for e in self.admission.drain() if isinstance(e, _Pending)]
        if not drained:
            return {"completed": 0, "results": []}
        cfg = self.config
        base = min(e.arrival for e in drained)
        cluster = Cluster(
            cfg.p,
            params=cfg.params,
            cache=cfg.cache,
            policy=cfg.policy,
            pricing_cache=cfg.pricing_cache,
        )
        rid_of: dict[int, int] = {}
        for e in drained:
            L = cluster.host(random_lower_triangular(e.n, seed=e.seed))
            B = cluster.host(random_dense(e.n, e.k, seed=e.seed + 1))
            cluster_rid = cluster.submit(
                TrsmRequest(
                    L=L,
                    B=B,
                    verify=cfg.verify,
                    arrival=e.arrival - base,
                    priority=e.priority,
                    deadline=None if e.deadline is None else e.deadline - base,
                    tenant=e.tenant,
                )
            )
            rid_of[cluster_rid] = e.rid
        self._queue.clear()
        outcome = cluster.run()
        self.last_outcome = outcome
        t = self.totals
        t.completed += len(outcome.records)
        t.flushes += 1
        t.sim_busy_seconds += outcome.modeled_makespan
        t.latencies.extend(outcome.latencies())
        sla = outcome.sla_summary()
        t.sla_met += sla["met"]
        t.sla_missed += sla["missed"]
        t.staging_hits += outcome.staging_hits
        t.staging_misses += outcome.staging_misses
        t.pricing_hits += outcome.pricing_hits
        t.pricing_misses += outcome.pricing_misses
        results = [
            {
                "rid": rid_of[r.rid],
                "kind": r.kind,
                "ranks": r.size,
                "latency_seconds": r.latency_seconds(),
                "residual": r.residual,
                "priority": r.priority,
                "tenant": r.tenant,
                "sla_met": r.sla_met(),
            }
            for r in outcome.records
        ]
        summary = {
            "completed": len(outcome.records),
            "results": results,
            "makespan_seconds": outcome.modeled_makespan,
            "occupancy": outcome.occupancy,
            "latency": {
                f"p{int(q)}": v
                for q, v in outcome.latency_percentiles().items()
            },
        }
        if (
            cfg.telemetry_every > 0
            and t.flushes % cfg.telemetry_every == 0
        ):
            self.telemetry_log.append({"op": "telemetry", **self.telemetry()})
        return summary

    # -- observability -------------------------------------------------------

    def telemetry(self) -> dict:
        """The cumulative occupancy/latency/hit-rate snapshot (JSON-ready).

        Includes the two cache layers the profile report also surfaces:
        the :func:`repro.dist.routing.plan_cache_stats` routing-plan LRU
        and the scheduler's PricingMemo hit/miss totals.
        """
        t = self.totals
        pct = latency_percentiles(t.latencies)
        staging_total = t.staging_hits + t.staging_misses
        pricing_total = t.pricing_hits + t.pricing_misses
        return {
            "sim_time": self.sim_now(),
            "completed": t.completed,
            "flushes": t.flushes,
            "queued": self.admission.pending(),
            "admission": self.admission.stats(),
            "latency": {f"p{int(q)}": v for q, v in pct.items()},
            "sla": {"met": t.sla_met, "missed": t.sla_missed},
            "occupancy": (
                self.last_outcome.occupancy if self.last_outcome is not None else 0.0
            ),
            "throughput_rps": (
                t.completed / t.sim_busy_seconds if t.sim_busy_seconds > 0.0 else 0.0
            ),
            "staging_cache": {
                "hits": t.staging_hits,
                "misses": t.staging_misses,
                "hit_rate": t.staging_hits / staging_total if staging_total else 0.0,
            },
            "pricing_memo": {
                "hits": t.pricing_hits,
                "misses": t.pricing_misses,
                "hit_rate": t.pricing_hits / pricing_total if pricing_total else 0.0,
            },
            "plan_cache": plan_cache_stats(),
        }

    # -- transports ----------------------------------------------------------

    def run_stdin(self, stdin=None, stdout=None) -> int:
        """Line-protocol loop over stdin/stdout; returns processed count.

        Blank lines are skipped; every request line gets exactly one
        compact JSON response line.  Telemetry records due under
        ``telemetry_every`` are written between responses.  EOF performs
        a final flush and a telemetry line, same as ``shutdown``.
        """
        import sys

        fin = sys.stdin if stdin is None else stdin
        fout = sys.stdout if stdout is None else stdout

        def emit(obj: dict) -> None:
            fout.write(json.dumps(obj, separators=(",", ":")) + "\n")
            fout.flush()

        processed = 0
        seen_telemetry = 0
        for line in fin:
            if not line.strip():
                continue
            response = self.handle(line)
            processed += 1
            emit(response)
            while seen_telemetry < len(self.telemetry_log):
                emit(self.telemetry_log[seen_telemetry])
                seen_telemetry += 1
            if self._stop:
                break
        if not self._stop:
            if self._queue:
                emit({"ok": True, "op": "flush", **self.flush()})
            emit({"op": "telemetry", **self.telemetry()})
            self._stop = True
        return processed

    def serve_unix(self, path: str, accept_timeout: float = 0.5) -> int:
        """Serve the line protocol on a Unix domain socket at ``path``.

        One client at a time (the operator console); each connection runs
        the same protocol as stdin, and a ``shutdown`` op ends the accept
        loop.  Returns the number of lines processed across connections.
        """
        import os
        import socket

        if os.path.exists(path):
            os.unlink(path)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        processed = 0
        try:
            sock.bind(path)
            sock.listen(1)
            sock.settimeout(accept_timeout)
            while not self._stop:
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    continue
                with conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    seen_telemetry = len(self.telemetry_log)
                    for line in reader:
                        if not line.strip():
                            continue
                        response = self.handle(line)
                        processed += 1
                        payload = json.dumps(response, separators=(",", ":")) + "\n"
                        conn.sendall(payload.encode("utf-8"))
                        while seen_telemetry < len(self.telemetry_log):
                            extra = json.dumps(
                                self.telemetry_log[seen_telemetry],
                                separators=(",", ":"),
                            )
                            conn.sendall((extra + "\n").encode("utf-8"))
                            seen_telemetry += 1
                        if self._stop:
                            break
        finally:
            sock.close()
            if os.path.exists(path):
                os.unlink(path)
        return processed

    # -- load testing --------------------------------------------------------

    def run_load_test(
        self,
        count: int,
        rate: float,
        process: str = "poisson",
        n_range: tuple[int, int] = (64, 128),
        k_range: tuple[int, int] = (8, 32),
        seed: int = 0,
        tenants: tuple[str, ...] = ("default",),
        priorities: tuple[int, ...] = (0,),
        deadline_slack: float | None = None,
        **knobs,
    ) -> dict:
        """Drive the daemon from a seeded arrival process, no wall clock.

        The load-test mode the arrival generators exist for: a
        :func:`~repro.api.online.arrivals.synthetic_stream` is offered to
        admission at its own simulated arrival times (bypassing the wall
        clock entirely, so runs are exactly reproducible), batches flush
        on the daemon's normal ``batch`` boundary, and the returned
        summary adds offered/admitted/rejected counts to the telemetry.
        ``benchmarks/bench_daemon.py`` gates its sustained-throughput
        floor on this.
        """
        from repro.api.online.arrivals import synthetic_stream

        stream = synthetic_stream(
            count,
            rate=rate,
            process=process,
            n_range=n_range,
            k_range=k_range,
            seed=seed,
            tenants=tenants,
            priorities=priorities,
            deadline_slack=deadline_slack,
            **knobs,
        )
        offered = len(stream)
        rejected = deferred = 0
        for s in stream:
            now = max(s.arrival, self._sim_floor)
            self._sim_floor = now
            entry = _Pending(
                rid=-1,
                n=s.n,
                k=s.k,
                seed=s.seed,
                arrival=now,
                priority=s.priority,
                deadline=s.deadline,
                tenant=s.tenant,
            )
            decision = self.admission.offer(entry, now=now)
            if isinstance(decision, Rejected):
                rejected += 1
                continue
            if isinstance(decision, Deferred):
                deferred += 1
                continue
            entry.rid = self._next_rid
            self._next_rid += 1
            self._queue[id(entry)] = entry
            if self.admission.pending() >= self.config.batch:
                self.flush()
        if self._queue:
            self.flush()
        return {
            "offered": offered,
            "rejected": rejected,
            "deferred": deferred,
            **self.telemetry(),
        }
