"""Admission control: the gate between online traffic and the scheduler.

Offline replay schedules whatever the trace contains; an online front-end
must be able to say *no*.  The :class:`AdmissionController` sits in front
of the :class:`~repro.api.cluster.Cluster` queue and makes a typed
decision per offered request:

* :class:`Admitted` — the request enters the admission queue and will be
  drained to the scheduler (FIFO within its priority class, higher
  classes first);
* :class:`Rejected` — dropped before the scheduler ever sees it
  (queue-depth caps, per-tenant caps, or hard rate limits).  A rejected
  request never reaches the scheduler — the invariant the property suite
  pins;
* :class:`Deferred` — rate-limited but retryable: carries the earliest
  time the tenant's token bucket can serve it again.

Fairness is per tenant: each tenant owns a token bucket
(:class:`TokenBucket`, ``rate`` tokens/s refill up to ``burst``) and an
optional queue-depth cap, so one tenant's flood cannot starve the others
of queue space.  All time is the caller's clock — simulated seconds in
tests and load tests, scaled wall-clock in the daemon — the controller
itself never reads a clock (``wallclock-discipline`` holds everywhere
except the daemon loop).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.machine.validate import ParameterError, require

__all__ = [
    "Admitted",
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "Deferred",
    "Rejected",
    "TenantLimits",
    "TokenBucket",
]


@dataclass(slots=True)
class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    Starts full.  ``now`` must be non-decreasing across calls (the
    controller enforces its own monotone clock).
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    stamp: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        require(self.rate > 0.0, ParameterError, f"rate must be > 0, got {self.rate}")
        require(
            self.burst >= 1.0, ParameterError, f"burst must be >= 1, got {self.burst}"
        )
        self.tokens = float(self.burst)

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now

    def try_take(self, now: float) -> bool:
        """Take one token if available; refills first."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def next_available(self, now: float) -> float:
        """Earliest time one whole token will be available."""
        self._refill(now)
        if self.tokens >= 1.0:
            return now
        return now + (1.0 - self.tokens) / self.rate


@dataclass(frozen=True, slots=True)
class TenantLimits:
    """Per-tenant fairness knobs (``None`` = the config's defaults)."""

    rate: float | None = None
    burst: float | None = None
    max_queued: int | None = None


@dataclass(slots=True)
class AdmissionConfig:
    """Controller-wide knobs.

    ``rate``/``burst`` configure the default per-tenant token bucket
    (``rate=None`` disables rate limiting entirely); ``max_queue_depth``
    caps the whole admission queue and ``max_tenant_depth`` each tenant's
    share of it.  ``defer_on_rate=True`` turns rate-limit refusals into
    retryable :class:`Deferred` decisions instead of hard
    :class:`Rejected` ones.  ``tenants`` overrides any knob per tenant.
    """

    rate: float | None = None
    burst: float = 8.0
    max_queue_depth: int = 1024
    max_tenant_depth: int | None = None
    defer_on_rate: bool = True
    tenants: dict[str, TenantLimits] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(
            self.max_queue_depth >= 1,
            ParameterError,
            f"max_queue_depth must be >= 1, got {self.max_queue_depth}",
        )


@dataclass(frozen=True, slots=True)
class Admitted:
    """The request entered the admission queue at sequence ``seq``."""

    seq: int


@dataclass(frozen=True, slots=True)
class Rejected:
    """Dropped before the scheduler: ``queue_full`` / ``tenant_queue_full``
    / ``rate_limited`` (when deferral is disabled)."""

    reason: str


@dataclass(frozen=True, slots=True)
class Deferred:
    """Rate-limited but retryable at ``retry_at`` (the caller's clock)."""

    retry_at: float
    reason: str = "rate_limited"


Decision = Admitted | Rejected | Deferred


class AdmissionController:
    """Typed admit/reject/defer decisions plus a priority admission queue.

    ``offer(request, now)`` runs the gate; admitted requests are held in
    a priority queue and handed to the scheduler by ``drain()`` in
    (priority class descending, admission order) order — strictly FIFO
    within a class, which is the fairness contract the property tests
    pin.  ``now`` must be non-decreasing across calls.
    """

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self._heap: list[tuple[int, int, object]] = []  # (-priority, seq, request)
        self._depth_by_tenant: dict[str, int] = {}
        self._seq = 0
        self._clock = 0.0
        #: lifetime decision counters, by outcome and reject reason
        self.admitted = 0
        self.rejected = 0
        self.deferred = 0
        self.reject_reasons: dict[str, int] = {}

    # -- introspection -------------------------------------------------------

    def pending(self) -> int:
        """Admitted requests not yet drained to the scheduler."""
        return len(self._heap)

    def tenant_depth(self, tenant: str) -> int:
        return self._depth_by_tenant.get(tenant, 0)

    def stats(self) -> dict:
        """Lifetime decision counters (JSON-ready, for telemetry)."""
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "deferred": self.deferred,
            "pending": self.pending(),
            "reject_reasons": dict(self.reject_reasons),
        }

    # -- the gate ------------------------------------------------------------

    def _limits(self, tenant: str) -> TenantLimits:
        return self.config.tenants.get(tenant, TenantLimits())

    def _bucket(self, tenant: str) -> TokenBucket | None:
        limits = self._limits(tenant)
        rate = limits.rate if limits.rate is not None else self.config.rate
        if rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            burst = limits.burst if limits.burst is not None else self.config.burst
            bucket = self._buckets[tenant] = TokenBucket(rate=rate, burst=burst)
        return bucket

    def offer(self, request: object, now: float = 0.0) -> Decision:
        """Gate one request: :class:`Admitted`, :class:`Rejected`, or
        :class:`Deferred`.  ``request.tenant``/``request.priority`` are
        read off the request (defaulting to ``"default"``/0 for foreign
        objects)."""
        require(
            now >= self._clock,
            ParameterError,
            f"admission clock must be monotone (got {now!r} after {self._clock!r})",
        )
        self._clock = now
        tenant = str(getattr(request, "tenant", "default"))
        priority = int(getattr(request, "priority", 0))
        if len(self._heap) >= self.config.max_queue_depth:
            return self._reject("queue_full")
        limits = self._limits(tenant)
        tenant_cap = (
            limits.max_queued
            if limits.max_queued is not None
            else self.config.max_tenant_depth
        )
        if tenant_cap is not None and self.tenant_depth(tenant) >= tenant_cap:
            return self._reject("tenant_queue_full")
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_take(now):
            if self.config.defer_on_rate:
                self.deferred += 1
                return Deferred(retry_at=bucket.next_available(now))
            return self._reject("rate_limited")
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (-priority, seq, request))
        self._depth_by_tenant[tenant] = self.tenant_depth(tenant) + 1
        self.admitted += 1
        return Admitted(seq=seq)

    def _reject(self, reason: str) -> Rejected:
        self.rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1
        return Rejected(reason=reason)

    def drain(self) -> list[object]:
        """Hand every queued request to the caller, priority-class order.

        Higher priority classes first; within a class strictly FIFO in
        admission order (the heap key is ``(-priority, seq)``).  Every
        admitted request is drained exactly once — nothing the controller
        admits can be starved forever, because each drain empties the
        queue and admission order breaks all ties.
        """
        out = []
        while self._heap:
            _neg, _seq, request = heapq.heappop(self._heap)
            tenant = str(getattr(request, "tenant", "default"))
            self._depth_by_tenant[tenant] -= 1
            out.append(request)
        return out
