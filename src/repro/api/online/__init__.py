"""repro.api.online: the online serving subsystem.

Everything the offline replay path cannot represent about "heavy traffic
from millions of users": typed admission control with per-tenant token
buckets (:mod:`~repro.api.online.admission`), seeded Poisson /
heavy-tailed / diurnal arrival processes
(:mod:`~repro.api.online.arrivals`), and the wall-clock daemon bridging
live JSON requests onto the simulated machine
(:mod:`~repro.api.online.daemon`, ``python -m repro serve --daemon``).
Priority classes and SLA deadlines ride on the existing
:class:`~repro.api.requests.Request` fields and are honored by the
policy layer (:meth:`repro.sched.policies.PolicyContext.class_order`);
with the defaults the offline replay schedules are bit-identical.
"""

from repro.api.online.admission import (
    Admitted,
    AdmissionConfig,
    AdmissionController,
    Decision,
    Deferred,
    Rejected,
    TenantLimits,
    TokenBucket,
)
from repro.api.online.arrivals import (
    ARRIVAL_PROCESSES,
    diurnal_arrivals,
    lognormal_arrivals,
    make_arrivals,
    poisson_arrivals,
    synthetic_stream,
)
from repro.api.online.daemon import DaemonConfig, ServeDaemon

__all__ = [
    "ARRIVAL_PROCESSES",
    "Admitted",
    "AdmissionConfig",
    "AdmissionController",
    "DaemonConfig",
    "Decision",
    "Deferred",
    "Rejected",
    "ServeDaemon",
    "TenantLimits",
    "TokenBucket",
    "diurnal_arrivals",
    "lognormal_arrivals",
    "make_arrivals",
    "poisson_arrivals",
    "synthetic_stream",
]
