"""Cluster: one machine, a pool of subgrids, many concurrent solves.

The front-end the public API is built around.  A :class:`Cluster` owns one
simulated :class:`~repro.machine.machine.Machine` and a
:class:`~repro.sched.SubgridAllocator` pool over all of its ranks.  Typed
requests (:mod:`repro.api.requests`) are queued with :meth:`submit`;
:meth:`run` packs the queue onto disjoint subgrids with the
:class:`~repro.sched.Scheduler` and replays the packing on the machine.
The packing decision rule is pluggable (``policy="lpt"`` greedy LPT, the
default; ``"backfill"`` conservative no-delay backfilling; ``"optimal"``
exhaustive ground truth for queues of ≤ 8; ``"horizon"`` the same search
on a sliding window, serving any queue length — see
:mod:`repro.sched.policies`).

Because a charge only advances the clocks of the ranks it touches, requests
executed on disjoint subgrids overlap in simulated time exactly as the
schedule modeled — the measured makespan is ``machine.time()``, and a
request placed on a just-freed subgrid starts when that subgrid's previous
tenant finished (the ranks' clocks carry the history).

Operands can be *hosted* on the cluster's data plane (:meth:`host` — the
full 2D grid, cyclic layout, free initial placement) and then referenced by
any number of requests; each placement stages them onto the assigned
subgrid at the exact :mod:`repro.dist.routing` migration cost, priced by
the scheduler before committing and charged point-to-point during
execution (no global barrier, so staging one request does not serialize
the others).

Staged copies are **cached** per (operand, subgrid, layout) in an
:class:`~repro.api.opcache.OperandCache`: a request placed on a subgrid
where a valid copy of its operand is still resident from a previous
tenancy pays nothing for it — the scheduler prices the placement
accordingly (subgrid affinity), :meth:`stage_resident` serves the copy
during execution, and :class:`RequestRecord.staging_hit` /
:class:`ClusterOutcome.staging_saved_seconds` report the reuse.  Copies
are invalidated when the operand mutates or is :meth:`release`\\ d and
evicted when the allocator destroys their subgrid (coalesce/re-split).
Construct with ``cache=False`` for the uncached PR-3 behavior; a
single-request cluster never hits the cache either way.

>>> import numpy as np
>>> from repro.api import Cluster, TrsmRequest
>>> from repro.util.randmat import random_dense, random_lower_triangular
>>> cluster = Cluster(p=16)
>>> rids = [
...     cluster.submit(TrsmRequest(
...         L=random_lower_triangular(64, seed=s),
...         B=random_dense(64, 8, seed=100 + s)))
...     for s in range(3)
... ]
>>> outcome = cluster.run()
>>> [outcome.record(r).residual < 1e-10 for r in rids]
[True, True, True]
>>> outcome.modeled_makespan < outcome.serial_seconds  # packing beats serial
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.opcache import OperandCache
from repro.api.requests import Execution, Request, validate_request
from repro.backend.base import Backend, make_backend
from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout, Layout
from repro.dist.redistribute import stage_matrix
from repro.dist.routing import set_plan_cache_capacity
from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, require
from repro.sched.policies import PackingPolicy, make_policy
from repro.sched.scheduler import Scheduler
from repro.util.mathutil import is_power_of_two


def latency_percentiles(
    latencies: list[float], percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
) -> dict[float, float]:
    """Nearest-rank latency percentiles in seconds (empty input → all zero).

    The one percentile implementation both :class:`ClusterOutcome` (replay
    reports) and the :mod:`repro.api.online.daemon` telemetry compute
    through, rendered by the one formatter
    :func:`repro.analysis.serve.latency_report`.
    """
    lats = sorted(latencies)
    if not lats:
        return {q: 0.0 for q in percentiles}
    out = {}
    for q in percentiles:
        rank = max(0, min(len(lats) - 1, int(math.ceil(q / 100.0 * len(lats))) - 1))
        out[q] = lats[rank]
    return out


@dataclass(slots=True)
class ClusterConfig:
    """Everything a :class:`Cluster` can be configured with, in one place.

    The keyword sprawl (``cache=``, ``policy=``, ``pricing_cache=``,
    ``backend=``, ...) consolidated into a typed object: build one, pass
    it as ``Cluster(p, config=...)``, share it across clusters.  The
    individual ``Cluster(...)`` keywords still work as deprecation shims
    — they fold into a config — but a config and a legacy keyword
    together is an error, not a silent merge.
    """

    #: machine cost parameters (None = the default CostParams)
    params: CostParams | None = None
    #: collective cost strategy (see repro.machine.collective_models)
    collectives: str = "butterfly"
    #: record per-charge TraceEvents on the machine
    trace: bool = False
    #: staged-copy reuse across requests (False = uncached PR-3 behavior)
    cache: bool = True
    #: packing decision rule ("lpt", "backfill", "optimal", "horizon",
    #: or a PackingPolicy instance; see repro.sched.policies)
    policy: PackingPolicy | str | None = None
    #: memoize scheduler pricing across decision points
    pricing_cache: bool = True
    #: execution backend: None/"sim" (default, simulated clocks), "mpi"
    #: (real Alltoallv transport), or a Backend instance
    backend: Backend | str | None = None
    #: resize the process-global routing_plan() LRU (None = leave as is;
    #: see repro.dist.routing.set_plan_cache_capacity)
    plan_cache_size: int | None = None


@dataclass(slots=True)
class RequestRecord:
    """One completed request: placement, model, and measurement."""

    rid: int
    kind: str
    value: object
    algorithm: str
    residual: float | None
    choice: object
    grid: ProcessorGrid
    size: int
    staging: Cost
    staging_seconds: float
    modeled: Cost
    modeled_seconds: float
    modeled_start: float
    modeled_finish: float
    measured: Cost
    measured_start: float
    measured_finish: float
    #: at least one resident operand was served from the staged-copy cache
    staging_hit: bool = False
    #: modeled migration seconds this request did *not* pay thanks to it
    staging_saved_seconds: float = 0.0
    #: the online-serving fields, copied off the request (offline replays
    #: carry the defaults): when the request arrived, its priority class,
    #: its SLA deadline in simulated seconds, and its admission tenant
    arrival: float = 0.0
    priority: int = 0
    deadline: float | None = None
    tenant: str = "default"

    def latency_seconds(self) -> float:
        """Sojourn time: measured finish minus arrival (queueing included)."""
        return self.measured_finish - self.arrival

    def sla_met(self) -> bool | None:
        """Whether the SLA held (``None`` for best-effort requests)."""
        if self.deadline is None:
            return None
        return self.measured_finish <= self.deadline


@dataclass(slots=True)
class ClusterOutcome:
    """What one :meth:`Cluster.run` produced, with aggregate views."""

    records: list[RequestRecord]
    p: int
    params: CostParams
    modeled_makespan: float
    measured_makespan: float
    occupancy: float
    serial_seconds: float
    #: name of the packing policy that produced the schedule
    policy: str = "lpt"
    #: modeled migration seconds the operand cache saved across the run
    staging_saved_seconds: float = 0.0
    #: resident-operand stagings served from / missing the cache
    staging_hits: int = 0
    staging_misses: int = 0
    #: scheduler PricingMemo staging-target traffic (0/0 = cache off)
    pricing_hits: int = 0
    pricing_misses: int = 0
    _by_rid: dict[int, RequestRecord] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._by_rid = {r.rid: r for r in self.records}

    def record(self, rid: int) -> RequestRecord:
        """The record of the request ``submit`` returned ``rid`` for."""
        got = self._by_rid.get(rid)
        if got is None:
            raise KeyError(f"no record for request id {rid}")
        return got

    def staging_hit_rate(self) -> float:
        """Cache hit fraction over resident-operand stagings (0 when none)."""
        total = self.staging_hits + self.staging_misses
        return self.staging_hits / total if total else 0.0

    def pricing_hit_rate(self) -> float:
        """PricingMemo hit fraction over staging-target lookups (0 when off)."""
        total = self.pricing_hits + self.pricing_misses
        return self.pricing_hits / total if total else 0.0

    def latencies(self) -> list[float]:
        """Per-request sojourn times (measured finish minus arrival)."""
        return [r.latency_seconds() for r in self.records]

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> dict[float, float]:
        """Request-latency percentiles in seconds (empty run → all zero).

        Nearest-rank percentiles over :meth:`latencies` — the p50/p95/p99
        summary both the replay reports and the daemon telemetry print
        (one formatter: :func:`repro.analysis.serve.latency_report`).
        """
        return latency_percentiles(self.latencies(), percentiles)

    def sla_summary(self) -> dict[str, int]:
        """SLA outcome counts: requests with deadlines met/missed/best-effort."""
        met = missed = best_effort = 0
        for r in self.records:
            ok = r.sla_met()
            if ok is None:
                best_effort += 1
            elif ok:
                met += 1
            else:
                missed += 1
        return {"met": met, "missed": missed, "best_effort": best_effort}

    def throughput(self) -> float:
        """Completed requests per modeled second."""
        if self.modeled_makespan <= 0.0:
            return 0.0
        return len(self.records) / self.modeled_makespan

    def speedup_vs_serial(self) -> float:
        """Serial full-grid time over the packed modeled makespan."""
        if self.modeled_makespan <= 0.0:
            return float("inf") if self.serial_seconds > 0.0 else 1.0
        return self.serial_seconds / self.modeled_makespan


class Cluster:
    """A simulated machine serving a queue of heterogeneous requests."""

    def __init__(
        self,
        p: int,
        params: CostParams | None = None,
        collectives: str | None = None,
        trace: bool | None = None,
        cache: bool | None = None,
        policy: PackingPolicy | str | None = None,
        pricing_cache: bool | None = None,
        backend: Backend | str | None = None,
        config: ClusterConfig | None = None,
    ):
        """Build a cluster of ``p`` ranks.

        Configuration lives on :class:`ClusterConfig` (``config=``); the
        individual keywords are deprecation shims that fold into one.
        Passing both a ``config`` and a legacy keyword is an error.
        """
        require(
            is_power_of_two(p), ParameterError, f"p must be a power of two, got {p}"
        )
        legacy = {
            "params": params,
            "collectives": collectives,
            "trace": trace,
            "cache": cache,
            "policy": policy,
            "pricing_cache": pricing_cache,
            "backend": backend,
        }
        passed = {k: v for k, v in legacy.items() if v is not None}
        if config is None:
            config = ClusterConfig(**passed)
        else:
            require(
                not passed,
                ParameterError,
                f"legacy keyword(s) {sorted(passed)} conflict with config=; "
                "set them on the ClusterConfig instead",
            )
        self.config = config
        self.p = int(p)
        self.params = config.params or CostParams()
        #: the execution backend plans route through (repro.backend)
        self.backend = make_backend(config.backend)
        self.machine = self.backend.make_machine(
            self.p,
            params=self.params,
            trace=config.trace,
            collectives=config.collectives,
        )
        if config.plan_cache_size is not None:
            # process-global by design: plans are pure index maps shared
            # across machines (see set_plan_cache_capacity)
            set_plan_cache_capacity(config.plan_cache_size)
        #: the packing decision rule ("lpt", "backfill", "optimal",
        #: "horizon", or a PackingPolicy instance; see repro.sched.policies)
        self.policy = make_policy(config.policy)
        #: the quadrant pool over all ranks (repro.sched.SubgridAllocator)
        self.pool = self.machine.grid_pool()
        #: the data plane: hosted operands live here in a cyclic layout
        self.plane = self.pool.root_grid
        self.plane_layout = CyclicLayout(*self.plane.shape)
        #: staged-copy reuse across requests (None = uncached PR-3
        #: behavior).  A pre-planning policy (OptimalPolicy) must see at
        #: commit time the exact prices it planned with, so it forces the
        #: cache off.
        self.opcache: OperandCache | None = (
            OperandCache()
            if config.cache and not self.policy.requires_uncached
            else None
        )
        #: memoize scheduler pricing across decision points (bit-identical
        #: schedules; False re-derives every price, the pre-memo behavior)
        self.pricing_cache = bool(config.pricing_cache)
        self._queue: list[Request] = []
        self._next_rid = 0
        self._exec_hits = 0
        self._exec_misses = 0

    # -- data plane ---------------------------------------------------------

    def host(self, A: np.ndarray) -> DistMatrix:
        """Place a matrix on the data plane (free initial placement).

        The returned handle can be used as an operand in any number of
        requests; every placement migrates it to the assigned subgrid at
        the exact routing charge (unlike ndarray operands, which the
        simulation places on the subgrid for free).
        """
        A = np.asarray(A, dtype=np.float64)
        require(A.ndim == 2, ParameterError, "host() takes a 2D matrix")
        return DistMatrix.from_global(self.machine, self.plane, self.plane_layout, A)

    def release(self, operand: DistMatrix) -> int:
        """Declare a hosted operand dead: drop its cached staged copies.

        The handle itself stays usable (the simulation never reclaims
        memory), but no future placement can be served a copy of it.
        Returns the number of cached copies dropped.
        """
        if self.opcache is None:
            return 0
        return self.opcache.invalidate(operand)

    def stage_resident(
        self,
        operand: DistMatrix,
        grid: ProcessorGrid,
        layout: Layout,
        label: str = "cluster.stage",
    ) -> DistMatrix:
        """Stage a resident operand onto ``grid``/``layout`` via the cache.

        The Cluster's staging primitive: a valid cached copy from a
        previous tenancy of the same subgrid is handed back as a private
        working copy for free; otherwise the operand migrates at the
        exact point-to-point routing charge and the staged copy is filed
        for the next tenant.
        """
        require(
            operand.machine is self.machine,
            ParameterError,
            "resident operand belongs to a different cluster's machine",
        )
        if self.opcache is not None:
            cached = self.opcache.lookup(operand, grid, layout)
            if cached is not None:
                self._exec_hits += 1
                return cached
            self._exec_misses += 1
        with self.machine.phase("staging"):
            staged = stage_matrix(operand, grid, layout, label=label)
        if self.opcache is not None:
            self.opcache.store(operand, grid, layout, staged)
        return staged

    # -- queue --------------------------------------------------------------

    def submit(self, request: Request) -> int:
        """Queue a typed request; returns its id for :meth:`ClusterOutcome.record`."""
        validate_request(request)
        self._queue.append(request)
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def pending(self) -> int:
        """Queued requests not yet run."""
        return len(self._queue)

    # -- execution ----------------------------------------------------------

    def run(self) -> ClusterOutcome:
        """Schedule the queued requests onto subgrids and execute them.

        The scheduler packs the queue to minimize the *modeled* makespan
        (closed-form costs plus exact operand-migration plans); execution
        replays the packing in start order on the shared machine, whose
        group-synchronization semantics reproduce the overlap.  Returns a
        :class:`ClusterOutcome`; the queue is left empty.
        """
        queue = self._queue
        base_rid = self._next_rid - len(queue)
        self._queue = []
        if self.opcache is not None:
            # A copy lives exactly as long as its allocator block, and a
            # drained pool has no blocks: entries left over from manual
            # stage_resident() warm-ups have no tenancy and must not be
            # priced as hits (the first allocation's splits would destroy
            # them mid-run and diverge the plan from the measurement).
            self.opcache.evict_grid(self.pool.root_grid)
        schedule = Scheduler(
            self.pool,
            self.params,
            cache=self.opcache,
            policy=self.policy,
            pricing_cache=self.pricing_cache,
        ).schedule(queue)
        require(
            self.pool.drained(),
            ParameterError,
            "scheduler must return the pool drained",
        )
        records: list[RequestRecord] = []
        # Allocator destroy events in modeled-time order: replayed against
        # the real cache as execution advances, so a copy the planner saw
        # evicted (subgrid coalesced or re-split) is never served here.
        evictions = list(schedule.evictions)
        next_evict = 0
        for a in schedule.assignments:
            rid = base_rid + a.index
            region = f"request:{rid}"
            ranks = a.grid.ranks()
            while next_evict < len(evictions) and evictions[next_evict][0] <= a.start:
                if self.opcache is not None:
                    self.opcache.evict_grid(evictions[next_evict][1])
                next_evict += 1
            # A request cannot start before it arrives: lift the subgrid's
            # clocks to the arrival time so the measured window is physical.
            self.machine.advance_group(ranks, a.request.arrival)
            started = self.machine.group_time(ranks)
            self._exec_hits = self._exec_misses = 0
            with self.machine.region(region):
                ex: Execution = a.request.execute(self, a.grid)
            require(
                (self._exec_hits, self._exec_misses)
                == (a.cache_hits, a.cache_misses)
                or self.opcache is None,
                ParameterError,
                f"request {rid}: staged-copy reuse diverged from the "
                f"schedule (planned {a.cache_hits} hits/{a.cache_misses} "
                f"misses, measured {self._exec_hits}/{self._exec_misses})",
            )
            records.append(
                RequestRecord(
                    rid=rid,
                    kind=a.request.kind,
                    value=ex.value,
                    algorithm=ex.algorithm,
                    residual=ex.residual,
                    choice=ex.choice,
                    grid=a.grid,
                    size=a.size,
                    staging=a.staging,
                    staging_seconds=a.staging_seconds,
                    modeled=a.modeled,
                    modeled_seconds=a.exec_seconds,
                    modeled_start=a.start,
                    modeled_finish=a.finish,
                    measured=self.machine.region_cost(region),
                    measured_start=started,
                    measured_finish=self.machine.group_time(ranks),
                    staging_hit=a.cache_hits > 0,
                    staging_saved_seconds=a.staging_saved_seconds,
                    arrival=a.request.arrival,
                    priority=getattr(a.request, "priority", 0),
                    deadline=getattr(a.request, "deadline", None),
                    tenant=getattr(a.request, "tenant", "default"),
                )
            )
        if self.opcache is not None:
            # Apply the trailing destroy events (the end-of-run drain
            # coalesces the pool back to the root, ending every tenancy).
            for _, grid in evictions[next_evict:]:
                self.opcache.evict_grid(grid)
        serial = sum(
            req.modeled_cost(max(req.candidate_sizes(self.p)), self.params).time(
                self.params
            )
            for req in queue
        )
        return ClusterOutcome(
            records=records,
            p=self.p,
            params=self.params,
            modeled_makespan=schedule.makespan,
            measured_makespan=self.machine.time(),
            occupancy=schedule.occupancy(),
            serial_seconds=serial,
            policy=schedule.policy,
            staging_saved_seconds=sum(a.staging_saved_seconds for a in schedule.assignments),
            staging_hits=sum(a.cache_hits for a in schedule.assignments),
            staging_misses=sum(a.cache_misses for a in schedule.assignments),
            pricing_hits=schedule.pricing_hits,
            pricing_misses=schedule.pricing_misses,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(p={self.p}, params={self.params.name!r}, "
            f"pending={len(self._queue)})"
        )
