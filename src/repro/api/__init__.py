"""repro.api: the Cluster/Session front-end — one API for every workload.

The public entry point of the package.  Instead of three unrelated
functions that each privately allocate a whole machine, every workload is
a typed request submitted to a :class:`Cluster` that owns one machine and
a pool of disjoint subgrids:

* :class:`Cluster` — machine + subgrid pool + request queue
  (``host``/``submit``/``run``);
* :class:`ClusterConfig` — every Cluster knob as one typed object
  (``cache``, ``policy``, ``pricing_cache``, ``backend``,
  ``plan_cache_size``, ...); the individual keywords remain as
  deprecation shims;
* :class:`Backend` / :func:`make_backend` — the execution backend
  (:mod:`repro.backend`): ``"sim"`` simulated clocks (default),
  ``"mpi"`` real Alltoallv transport with wall-clock measurement;
* :class:`TrsmRequest` — solve ``L X = B`` (It-Inv-TRSM or the recursive
  baseline);
* :class:`MMRequest` — the Section III matrix multiplication;
* :class:`InvRequest` — triangular inversion, full (RecTriInv) or
  diagonal-blocks-only (the Diagonal-Inverter preparation);
* :class:`PreparedSolveRequest` — apply a prepared inverse to new
  right-hand sides (solve + update phases only, Section II-C3);
* :class:`RequestRecord` / :class:`ClusterOutcome` — per-request and
  aggregate results: placement, modeled and measured costs, makespan,
  occupancy, throughput, staged-copy cache hits and savings;
* :class:`OperandCache` / :class:`CachePlan` — cross-request reuse of
  staged operand copies (:mod:`repro.api.opcache`): repeat placements on
  a subgrid whose staged copy is still resident skip the migration, in
  the scheduler's prices and in the measured charges alike.

The legacy one-call entry points (``repro.trsm``,
``repro.trsm.prepared.PreparedTrsm``) are thin wrappers over a
single-request Cluster, kept one release for compatibility.
"""

from repro.api.cluster import Cluster, ClusterConfig, ClusterOutcome, RequestRecord
from repro.api.opcache import CachePlan, OperandCache, cache_key
from repro.api.requests import (
    Execution,
    InvRequest,
    MMRequest,
    PreparedSolveRequest,
    Request,
    TrsmRequest,
)
from repro.backend import Backend, SimBackend, make_backend

__all__ = [
    "Backend",
    "CachePlan",
    "Cluster",
    "ClusterConfig",
    "ClusterOutcome",
    "Execution",
    "InvRequest",
    "MMRequest",
    "OperandCache",
    "PreparedSolveRequest",
    "Request",
    "RequestRecord",
    "SimBackend",
    "TrsmRequest",
    "cache_key",
    "make_backend",
]
