"""Typed request objects: the units the Cluster schedules.

A request is a declarative description of one unit of work — operands,
algorithm knobs, an optional arrival time — plus the three hooks the
:mod:`repro.sched` scheduler prices placements with (``candidate_sizes``,
``modeled_cost``, ``staging_cost``) and the ``execute`` hook the Cluster
replays the chosen placement with on the real simulated machine.

Operands are either global ``ndarray``\\ s (placed on the assigned subgrid
for free, the paper's Require-clause convention) or *cluster-resident*
:class:`~repro.dist.distmatrix.DistMatrix` handles from
:meth:`~repro.api.cluster.Cluster.host` — those are staged onto the
subgrid through :func:`repro.dist.redistribute.stage_matrix`, charged at
the exact per-pair routing cost, and the same
:func:`~repro.dist.redistribute.staging_plan` prices the migration for the
scheduler before the placement is committed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
import numpy as np

from repro.api.opcache import cache_key
from repro.dist.distmatrix import DistMatrix
from repro.dist.layout import CyclicLayout
from repro.dist.redistribute import staging_plan
from repro.machine.cost import Cost, CostParams
from repro.machine.topology import ProcessorGrid
from repro.machine.validate import ParameterError, ShapeError, require
from repro.tuning.parameters import TuningChoice, tuned_parameters
from repro.util.checking import relative_residual


def _pow2_sizes(capacity: int) -> list[int]:
    sizes = []
    q = capacity
    while q >= 1:
        sizes.append(q)
        q //= 2
    return sizes


def _square_sizes(capacity: int) -> list[int]:
    return [q for q in _pow2_sizes(capacity) if math.isqrt(q) ** 2 == q]


def _shape_of(M) -> tuple[int, int]:
    if isinstance(M, DistMatrix):
        return M.shape
    A = np.asarray(M)
    return (A.shape[0], A.shape[1] if A.ndim == 2 else 1)


def _operand_key(M):
    """The pricing identity of one operand.

    Cluster-resident matrices price by handle and generation (staging
    costs and cache keys both derive from exactly these); global arrays
    never stage, so only their shape matters for pricing — and the shape
    is already part of every ``pricing_key`` — hence ``None``.
    """
    return (M.uid, M.generation) if isinstance(M, DistMatrix) else None


@dataclass(slots=True)
class Execution:
    """What one request execution produced (see ``RequestRecord``)."""

    value: object
    algorithm: str
    residual: float | None = None
    choice: TuningChoice | None = None


@dataclass(kw_only=True, eq=False, slots=True)
class Request:
    """Base request: arrival time and an optional placement restriction.

    ``sizes`` pins the candidate subgrid sizes (e.g. ``(p,)`` forces the
    full machine — how the deprecated one-call wrappers reproduce the
    pre-Cluster behavior bit for bit).

    ``priority``/``deadline``/``tenant`` are the online-serving fields
    (:mod:`repro.api.online`): higher priority classes are ordered first
    by the policy layer, ``deadline`` is an SLA target in simulated
    seconds (ties within a class break earliest-deadline-first), and
    ``tenant`` names the admission-control fairness domain.  Like
    ``arrival``, none of them affects pricing — ``pricing_key`` excludes
    them by contract — and the defaults reproduce the offline behavior
    bit for bit.
    """

    arrival: float = 0.0
    sizes: tuple[int, ...] | None = None
    priority: int = 0
    deadline: float | None = None
    tenant: str = "default"
    kind: str = field(default="request", init=False)

    def candidate_sizes(self, capacity: int) -> list[int]:
        base = self._natural_sizes(capacity)
        if self.sizes is None:
            return base
        pinned = [int(s) for s in self.sizes if int(s) in base]
        require(
            bool(pinned),
            ParameterError,
            f"none of the pinned sizes {self.sizes} is valid for this "
            f"request on a {capacity}-rank pool (valid: {base})",
        )
        return pinned

    def _natural_sizes(self, capacity: int) -> list[int]:
        return _pow2_sizes(capacity)

    def modeled_cost(self, size: int, params: CostParams) -> Cost:
        raise NotImplementedError

    def staging_cost(self, grid: ProcessorGrid, params: CostParams) -> Cost:
        """Exact migration cost of this request's resident operands."""
        total = Cost.zero()
        for D, target_grid, layout in self._staging_targets(grid, params):
            total = total + staging_plan(D, target_grid, layout).cost()
        return total

    def staging_breakdown(self, grid: ProcessorGrid, params: CostParams, plan):
        """Cache-aware staging price: ``(charged, saved, targets)``.

        ``plan`` is the scheduler's :class:`~repro.api.opcache.CachePlan`.
        Each resident operand target prices at zero when a valid staged
        copy is (or, within this same request, will be) resident on the
        candidate subgrid, and at the full exact migration plan otherwise.
        ``targets`` lists ``(cache key, target grid, cost, hit)`` per
        resident operand so the scheduler can commit the decisions.
        """
        charged, saved = Cost.zero(), Cost.zero()
        targets = []
        staged_here: set = set()
        for D, target_grid, layout in self._staging_targets(grid, params):
            key = cache_key(D, target_grid, layout)
            cost = staging_plan(D, target_grid, layout).cost()
            hit = key in plan or key in staged_here
            if hit:
                saved = saved + cost
            else:
                charged = charged + cost
                staged_here.add(key)
            targets.append((key, target_grid, cost, hit))
        return charged, saved, tuple(targets)

    def _staging_targets(self, grid: ProcessorGrid, params: CostParams):
        """Yield ``(resident_matrix, target_grid, target_layout)`` triples."""
        return ()

    def pricing_key(self):
        """Hashable pricing identity, or ``None`` to opt out of sharing.

        **Contract**: two requests with equal, non-``None`` keys must
        price identically — same ``candidate_sizes``, same
        ``modeled_cost`` at every size, and same ``_staging_targets`` on
        any concrete subgrid.  The scheduler's
        :class:`~repro.sched.pricing.PricingMemo` then shares one memo
        row across them, which is what makes a serve stream of
        same-shape requests price in O(1) amortized.  Arrival times and
        verification flags are deliberately excluded — they never affect
        a price.
        """
        return None

    def execute(self, cluster, grid: ProcessorGrid) -> Execution:
        raise NotImplementedError


def _place(
    cluster,
    operand,
    grid: ProcessorGrid,
    layout,
    shape: tuple[int, int],
    label: str,
):
    """Resident operands migrate (exact charge, cache-aware); globals are free."""
    if isinstance(operand, DistMatrix):
        return cluster.stage_resident(operand, grid, layout, label=label)
    A = np.asarray(operand, dtype=np.float64).reshape(shape)
    return DistMatrix.from_global(cluster.machine, grid, layout, A)


def _as_global(operand) -> np.ndarray:
    return operand.to_global() if isinstance(operand, DistMatrix) else np.asarray(
        operand, dtype=np.float64
    )


@dataclass(kw_only=True, eq=False, slots=True)
class TrsmRequest(Request):
    """Solve ``L X = B`` (It-Inv-TRSM or the recursive baseline)."""

    L: object
    B: object
    algorithm: str = "auto"
    tune: str = "closed_form"
    n0: int | None = None
    verify: bool = True
    base_n: int = 8
    n: int = field(init=False)
    k: int = field(init=False)
    _choices: dict[tuple[int, CostParams], TuningChoice] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.kind = "trsm"
        require(
            self.algorithm in ("auto", "iterative", "recursive"),
            ParameterError,
            f"unknown algorithm {self.algorithm!r}",
        )
        require(
            self.tune in ("closed_form", "search"),
            ParameterError,
            f"unknown tune mode {self.tune!r}",
        )
        n, n2 = _shape_of(self.L)
        require(n == n2, ShapeError, "L must be square")
        self.n = n
        self.k = _shape_of(self.B)[1]
        require(
            self.n0 is None or (self.n0 >= 1 and n % self.n0 == 0),
            ParameterError,
            f"n0={self.n0} must divide n={n}",
        )
        self._choices = {}

    # -- scheduling hooks ---------------------------------------------------

    def _algorithm_for(self, size: int) -> str:
        if self.algorithm != "auto":
            return self.algorithm
        return "iterative" if size > 1 else "recursive"

    def choice_for(self, size: int, params: CostParams) -> TuningChoice:
        """The (cached) tuning choice scoped to a ``size``-rank subgrid."""
        key = (size, params)
        got = self._choices.get(key)
        if got is None:
            if self.tune == "search":
                from repro.tuning.optimizer import optimize_parameters

                got = optimize_parameters(self.n, self.k, size, params=params)
            else:
                got = tuned_parameters(self.n, self.k, size)
            if self.n0 is not None:
                got = TuningChoice(
                    regime=got.regime,
                    p1=got.p1,
                    p2=got.p2,
                    n0=self.n0,
                    r1=got.r1,
                    r2=got.r2,
                )
            self._choices[key] = got
        return got

    def modeled_cost(self, size: int, params: CostParams) -> Cost:
        from repro.trsm.cost_model import iterative_cost, recursive_cost

        if self._algorithm_for(size) == "recursive":
            return recursive_cost(self.n, self.k, size)
        c = self.choice_for(size, params)
        return iterative_cost(self.n, self.k, c.n0, c.p1, c.p2)

    def pricing_key(self):
        return (
            "trsm",
            self.n,
            self.k,
            self.algorithm,
            self.tune,
            self.n0,
            self.base_n,
            self.sizes,
            _operand_key(self.L),
            _operand_key(self.B),
        )

    def _staging_targets(self, grid: ProcessorGrid, params: CostParams):
        from repro.trsm.iterative import _RowCyclicColBlocked
        from repro.trsm.recursive import choose_recursive_grid

        if self._algorithm_for(grid.size) == "recursive":
            pr, pc = choose_recursive_grid(self.n, self.k, grid.size)
            grid2d = grid.reshape((pr, pc))
            layout = CyclicLayout(pr, pc)
            for M in (self.L, self.B):
                if isinstance(M, DistMatrix):
                    yield M, grid2d, layout
            return
        c = self.choice_for(grid.size, params)
        grid3d = grid.reshape((c.p1, c.p1, c.p2))
        if isinstance(self.L, DistMatrix):
            yield self.L, grid3d.plane(2, 0), CyclicLayout(c.p1, c.p1)
        if isinstance(self.B, DistMatrix):
            yield self.B, grid3d.plane(1, 0), _RowCyclicColBlocked(c.p1, c.p2)

    # -- execution ----------------------------------------------------------

    def execute(self, cluster, grid: ProcessorGrid) -> Execution:
        from repro.trsm.iterative import _RowCyclicColBlocked, it_inv_trsm
        from repro.trsm.recursive import choose_recursive_grid, rec_trsm

        machine = cluster.machine
        n, k = self.n, self.k
        algorithm = self._algorithm_for(grid.size)

        if algorithm == "recursive":
            pr, pc = choose_recursive_grid(n, k, grid.size)
            grid2d = grid.reshape((pr, pc))
            layout = CyclicLayout(pr, pc)
            Ld = _place(cluster, self.L, grid2d, layout, (n, n), "cluster.stage_L")
            Bd = _place(cluster, self.B, grid2d, layout, (n, k), "cluster.stage_B")
            X = rec_trsm(Ld, Bd).to_global()
            choice = None
        else:
            choice = self.choice_for(grid.size, cluster.params)
            grid3d = grid.reshape((choice.p1, choice.p1, choice.p2))
            Ld = _place(
                cluster,
                self.L,
                grid3d.plane(2, 0),
                CyclicLayout(choice.p1, choice.p1),
                (n, n),
                "cluster.stage_L",
            )
            Bd = _place(
                cluster,
                self.B,
                grid3d.plane(1, 0),
                _RowCyclicColBlocked(choice.p1, choice.p2),
                (n, k),
                "cluster.stage_B",
            )
            X = it_inv_trsm(
                machine, grid3d, Ld, Bd, n0=choice.n0, base_n=self.base_n
            ).to_global()

        residual = None
        if self.verify:
            residual = relative_residual(
                _as_global(self.L), X, _as_global(self.B).reshape(n, k)
            )
        return Execution(value=X, algorithm=algorithm, residual=residual, choice=choice)


@dataclass(kw_only=True, eq=False, slots=True)
class MMRequest(Request):
    """Multiply ``B = scale * A @ X`` with the Section III MM."""

    A: object
    X: object
    scale: float = 1.0
    p1: int | None = None
    verify: bool = False
    m: int = field(init=False)
    n: int = field(init=False)
    k: int = field(init=False)

    def __post_init__(self) -> None:
        self.kind = "mm"
        self.m, self.n = _shape_of(self.A)
        n2, self.k = _shape_of(self.X)
        require(
            self.n == n2,
            ShapeError,
            f"inner dimensions disagree: A is {_shape_of(self.A)}, "
            f"X is {_shape_of(self.X)}",
        )

    def _natural_sizes(self, capacity: int) -> list[int]:
        # mm3d runs on a square grid: even powers of two only.
        return _square_sizes(capacity)

    def _split(self, size: int, params: CostParams) -> tuple[int, int]:
        from repro.mm.dispatch import choose_mm_split

        if self.p1 is not None:
            sp = math.isqrt(size)
            require(
                self.p1 >= 1 and sp % self.p1 == 0,
                ParameterError,
                f"p1={self.p1} must divide the grid side {sp}",
            )
            return self.p1, (sp // self.p1) ** 2
        return choose_mm_split(self.n, self.k, size, params=params, m=self.m)

    def modeled_cost(self, size: int, params: CostParams) -> Cost:
        from repro.mm.cost_model import mm3d_cost

        p1, p2 = self._split(size, params)
        return mm3d_cost(self.n, self.k, p1, p2, m=self.m)

    def pricing_key(self):
        return (
            "mm",
            self.m,
            self.n,
            self.k,
            self.p1,
            self.sizes,
            _operand_key(self.A),
            _operand_key(self.X),
        )

    def _staging_targets(self, grid: ProcessorGrid, params: CostParams):
        sp = math.isqrt(grid.size)
        grid2d = grid.reshape((sp, sp))
        layout = CyclicLayout(sp, sp)
        for M in (self.A, self.X):
            if isinstance(M, DistMatrix):
                yield M, grid2d, layout

    def execute(self, cluster, grid: ProcessorGrid) -> Execution:
        from repro.mm.mm3d import mm3d

        sp = math.isqrt(grid.size)
        grid2d = grid.reshape((sp, sp))
        layout = CyclicLayout(sp, sp)
        Ad = _place(cluster, self.A, grid2d, layout, (self.m, self.n), "cluster.stage_A")
        Xd = _place(cluster, self.X, grid2d, layout, (self.n, self.k), "cluster.stage_X")
        p1, _ = self._split(grid.size, cluster.params)
        B = mm3d(Ad, Xd, p1, scale=self.scale).to_global()
        residual = None
        if self.verify:
            residual = relative_residual(
                self.scale * _as_global(self.A), _as_global(self.X), B
            )
        return Execution(value=B, algorithm=f"mm3d(p1={p1})", residual=residual)


@dataclass(kw_only=True, eq=False, slots=True)
class InvRequest(Request):
    """Invert a lower-triangular matrix — fully, or its ``n0`` diagonal
    blocks only (the Diagonal-Inverter / selective-inversion preparation)."""

    L: object
    n0: int | None = None
    k_hint: int = 1
    base_n: int = 8
    verify: bool = False
    n: int = field(init=False)

    def __post_init__(self) -> None:
        self.kind = "inv" if self.n0 is None else "diag_inv"
        n, n2 = _shape_of(self.L)
        require(n == n2, ShapeError, "L must be square")
        self.n = n
        require(
            self.n0 is None or (self.n0 >= 1 and n % self.n0 == 0),
            ParameterError,
            f"n0={self.n0} must divide n={n}",
        )

    def _natural_sizes(self, capacity: int) -> list[int]:
        if self.n0 is None:
            # rec_tri_inv runs on a square grid.
            return _square_sizes(capacity)
        return _pow2_sizes(capacity)

    def choice_for(self, size: int) -> TuningChoice:
        """Diagonal-inverter grid choice scoped to the subgrid (paper VIII)."""
        choice = tuned_parameters(self.n, max(self.k_hint, 1), size)
        if self.n0 is not None and self.n0 != choice.n0:
            choice = TuningChoice(
                regime=choice.regime,
                p1=choice.p1,
                p2=choice.p2,
                n0=self.n0,
                r1=choice.r1,
                r2=choice.r2,
            )
        return choice

    def modeled_cost(self, size: int, params: CostParams) -> Cost:
        if self.n0 is None:
            from repro.inversion.cost_model import rec_tri_inv_cost

            sp = math.isqrt(size)
            return rec_tri_inv_cost(self.n, sp, 1)
        from repro.trsm.cost_model import iterative_parts

        c = self.choice_for(size)
        return iterative_parts(self.n, max(self.k_hint, 1), c.n0, c.p1, c.p2).inversion

    def pricing_key(self):
        return (
            "inv",
            self.n,
            self.n0,
            self.k_hint,
            self.base_n,
            self.sizes,
            _operand_key(self.L),
        )

    def _staging_targets(self, grid: ProcessorGrid, params: CostParams):
        if not isinstance(self.L, DistMatrix):
            return
        if self.n0 is None:
            sp = math.isqrt(grid.size)
            yield self.L, grid.reshape((sp, sp)), CyclicLayout(sp, sp)
        else:
            c = self.choice_for(grid.size)
            grid3d = grid.reshape((c.p1, c.p1, c.p2))
            yield self.L, grid3d.plane(2, 0), CyclicLayout(c.p1, c.p1)

    def execute(self, cluster, grid: ProcessorGrid) -> Execution:
        machine = cluster.machine
        n = self.n
        if self.n0 is None:
            from repro.inversion.rec_tri_inv import rec_tri_inv

            sp = math.isqrt(grid.size)
            grid2d = grid.reshape((sp, sp))
            layout = CyclicLayout(sp, sp)
            Ld = _place(cluster, self.L, grid2d, layout, (n, n), "cluster.stage_L")
            Linv = rec_tri_inv(Ld, base_n=self.base_n).to_global()
            residual = None
            if self.verify:
                residual = float(
                    np.linalg.norm(_as_global(self.L) @ Linv - np.eye(n))
                    / math.sqrt(n)
                )
            return Execution(value=Linv, algorithm="rec_tri_inv", residual=residual)

        from repro.trsm.diagonal_inverter import diagonal_inverter

        choice = self.choice_for(grid.size)
        grid3d = grid.reshape((choice.p1, choice.p1, choice.p2))
        Ld = _place(
            cluster,
            self.L,
            grid3d.plane(2, 0),
            CyclicLayout(choice.p1, choice.p1),
            (n, n),
            "cluster.stage_L",
        )
        with machine.phase("inversion"):
            Ltilde = diagonal_inverter(
                Ld, choice.n0, pool=grid3d.ranks(), base_n=self.base_n
            ).to_global()
        return Execution(value=Ltilde, algorithm="diagonal_inverter", choice=choice)


@dataclass(kw_only=True, eq=False, slots=True)
class PreparedSolveRequest(Request):
    """Apply a :class:`~repro.trsm.prepared.PreparedTrsm`'s inverse to a new
    right-hand-side batch: solve + update phases only (Section II-C3).

    ``L``/``Ltilde`` optionally name *cluster-hosted* copies of the factor
    and its prepared inverse (:meth:`~repro.api.cluster.Cluster.host`).
    When given, each placement stages them onto the assigned subgrid at
    the exact migration charge — and the operand cache amortizes that
    charge across a stream of solves against the same factor, which is
    the serve workload this request type exists for.  When omitted the
    factor travels as the solver's own state (free placement), exactly
    the pre-cache behavior.
    """

    prepared: object
    B: object
    L: object | None = None
    Ltilde: object | None = None
    verify: bool = True
    n: int = field(init=False)
    k: int = field(init=False)

    def __post_init__(self) -> None:
        self.kind = "prepared_solve"
        self.n = int(self.prepared.n)
        k = _shape_of(self.B)[1]
        require(
            _shape_of(self.B)[0] == self.n,
            ShapeError,
            f"B has {_shape_of(self.B)[0]} rows, L is {self.n} x {self.n}",
        )
        self.k = k
        for name, M in (("L", self.L), ("Ltilde", self.Ltilde)):
            require(
                M is None or _shape_of(M) == (self.n, self.n),
                ShapeError,
                f"hosted {name} must be {self.n} x {self.n}, got {_shape_of(M) if M is not None else None}",
            )

    def choice_for(self, size: int) -> TuningChoice:
        """The prepared choice on its native size; re-tuned (same ``n0`` —
        the block inverses are for that size) on any other subgrid."""
        prepared = self.prepared
        if size == prepared.p:
            return prepared.choice
        choice = tuned_parameters(self.n, max(self.k, 1), size)
        if choice.n0 != prepared.choice.n0:
            choice = TuningChoice(
                regime=choice.regime,
                p1=choice.p1,
                p2=choice.p2,
                n0=prepared.choice.n0,
                r1=choice.r1,
                r2=choice.r2,
            )
        return choice

    def modeled_cost(self, size: int, params: CostParams) -> Cost:
        from repro.trsm.cost_model import iterative_parts

        c = self.choice_for(size)
        parts = iterative_parts(self.n, self.k, c.n0, c.p1, c.p2)
        return parts.solve + parts.update

    def pricing_key(self):
        # the prepared solver prices through its TuningChoice; distinct
        # PreparedTrsm objects stay distinct (id), shared ones share
        return (
            "prepared_solve",
            id(self.prepared),
            self.n,
            self.k,
            self.sizes,
            _operand_key(self.L),
            _operand_key(self.Ltilde),
            _operand_key(self.B),
        )

    def _staging_targets(self, grid: ProcessorGrid, params: CostParams):
        from repro.trsm.iterative import _RowCyclicColBlocked

        c = self.choice_for(grid.size)
        grid3d = grid.reshape((c.p1, c.p1, c.p2))
        plane_L = grid3d.plane(2, 0)
        lay_L = CyclicLayout(c.p1, c.p1)
        for M in (self.L, self.Ltilde):
            if isinstance(M, DistMatrix):
                yield M, plane_L, lay_L
        if isinstance(self.B, DistMatrix):
            yield self.B, grid3d.plane(1, 0), _RowCyclicColBlocked(c.p1, c.p2)

    def execute(self, cluster, grid: ProcessorGrid) -> Execution:
        from repro.trsm.iterative import _RowCyclicColBlocked, it_inv_trsm

        machine = cluster.machine
        prepared = self.prepared
        n, k = self.n, self.k
        choice = self.choice_for(grid.size)
        grid3d = grid.reshape((choice.p1, choice.p1, choice.p2))
        plane_L = grid3d.plane(2, 0)
        lay_L = CyclicLayout(choice.p1, choice.p1)
        # Hosted factor/inverse handles migrate (cache-amortized across the
        # stream); otherwise they are the solver's own state — placement is
        # free, exactly as before.
        if self.L is not None:
            Ld = _place(cluster, self.L, plane_L, lay_L, (n, n), "cluster.stage_L")
        else:
            Ld = DistMatrix.from_global(machine, plane_L, lay_L, prepared.L)
        if self.Ltilde is not None:
            Ltilde = _place(
                cluster, self.Ltilde, plane_L, lay_L, (n, n), "cluster.stage_Ltilde"
            )
        else:
            Ltilde = DistMatrix.from_global(
                machine, plane_L, lay_L, prepared._Ltilde_global
            )
        Bd = _place(
            cluster,
            self.B,
            grid3d.plane(1, 0),
            _RowCyclicColBlocked(choice.p1, choice.p2),
            (n, k),
            "cluster.stage_B",
        )
        X = it_inv_trsm(
            machine, grid3d, Ld, Bd, n0=choice.n0, base_n=prepared.base_n,
            Ltilde=Ltilde,
        ).to_global()
        residual = None
        if self.verify:
            B2 = _as_global(self.B).reshape(n, k)
            residual = relative_residual(prepared.L, X, B2)
            require(
                bool(residual < 1e-8) or not np.all(np.isfinite(B2)),
                ShapeError,
                f"prepared solve verification failed (residual {residual:.3e})",
            )
        return Execution(
            value=X, algorithm="it_inv_trsm(prepared)", residual=residual, choice=choice
        )


def validate_request(req: object) -> Request:
    """Typed-submission guard for :meth:`Cluster.submit`."""
    require(
        isinstance(req, Request),
        ParameterError,
        f"submit() takes a Request (TrsmRequest, MMRequest, InvRequest, "
        f"PreparedSolveRequest), got {type(req).__name__}",
    )
    return req
