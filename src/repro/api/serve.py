"""Synthetic request streams: the serve-traffic workload generator.

Shared by ``python -m repro serve`` and ``benchmarks/bench_serve.py``: a
seeded Poisson arrival process over mixed-size TRSM problems, replayed
through a :class:`~repro.api.cluster.Cluster`.  With ``resident=True``
(the default) the operands are hosted on the cluster's data plane first,
so every placement pays — and the scheduler prices — the exact
:mod:`repro.dist.routing` migration onto the assigned subgrid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.cluster import Cluster, ClusterOutcome
from repro.api.requests import PreparedSolveRequest, TrsmRequest
from repro.machine.cost import CostParams
from repro.machine.validate import ParameterError, require
from repro.sched.scheduler import Schedule, Scheduler
from repro.util.randmat import random_dense, random_lower_triangular


@dataclass(frozen=True, slots=True)
class StreamRequest:
    """One synthetic solve in the stream: shape plus arrival time.

    ``priority``/``deadline``/``tenant`` are the online-serving fields
    (see :mod:`repro.api.online`); their defaults reproduce the offline
    streams bit for bit.
    """

    n: int
    k: int
    arrival: float
    seed: int
    priority: int = 0
    deadline: float | None = None
    tenant: str = "default"


def _pow2_choices(lo: int, hi: int) -> list[int]:
    out = []
    v = 1
    while v <= hi:
        if v >= lo:
            out.append(v)
        v *= 2
    require(bool(out), ParameterError, f"no power of two in [{lo}, {hi}]")
    return out


def poisson_stream(
    count: int,
    rate: float = 0.0,
    n_range: tuple[int, int] = (64, 256),
    k_range: tuple[int, int] = (8, 64),
    seed: int = 0,
) -> list[StreamRequest]:
    """A seeded stream of ``count`` mixed (n, k) solve requests.

    Arrivals are a Poisson process with ``rate`` requests per simulated
    second (``rate = 0`` puts the whole queue at ``t = 0`` — the burst
    workload the makespan comparison uses).  ``n`` and ``k`` are drawn
    uniformly from the powers of two inside their ranges, so every tuned
    block size divides ``n``.

    The arrival process itself lives in
    :func:`repro.api.online.arrivals.poisson_arrivals` (alongside the
    heavy-tailed and diurnal generators this function's superset,
    :func:`~repro.api.online.arrivals.synthetic_stream`, selects from);
    delegating through the shared generator keeps this stream
    bit-identical to its pre-refactor draws.
    """
    from repro.api.online.arrivals import poisson_arrivals

    require(count >= 1, ParameterError, "need at least one request")
    rng = np.random.default_rng(seed)
    ns = _pow2_choices(*n_range)
    ks = _pow2_choices(*k_range)
    arrivals = (
        poisson_arrivals(count, rate, rng=rng)
        if rate > 0.0
        else np.zeros(count)
    )
    return [
        StreamRequest(
            n=int(rng.choice(ns)),
            k=int(rng.choice(ks)),
            arrival=float(arrivals[i]),
            seed=seed + 17 * i,
        )
        for i in range(count)
    ]


def replay(
    stream: list[StreamRequest],
    p: int,
    params: CostParams | None = None,
    resident: bool = True,
    verify: bool = True,
    policy=None,
    cache: bool = True,
    shared_operands: bool = False,
    pricing_cache: bool = True,
    backend=None,
) -> ClusterOutcome:
    """Submit a stream to a fresh Cluster and run it to completion.

    ``resident=True`` hosts every operand on the data plane first, so each
    placement is charged the exact migration plan; ``resident=False``
    passes globals (free Require-clause placement) — useful to isolate the
    scheduling gain from the migration cost.  ``policy`` selects the
    packing rule (``"lpt"``/``"backfill"``/``"optimal"``/``"horizon"``;
    see :mod:`repro.sched.policies`) and ``cache=False`` disables the
    staged-copy operand cache — the gap report runs every policy uncached
    so the comparison is apples-to-apples with the (cache-incompatible)
    pre-planning policies.

    ``shared_operands=True`` hosts **one** ``(L, B)`` pair per distinct
    ``(n, k)`` shape (seeded by the shape's first stream entry) and lets
    every same-shape request reference it — the serve-scale regime where
    the operand cache, the routing-plan cache and the pricing memo all
    amortize across the stream.  ``pricing_cache=False`` re-derives every
    scheduler price (the pre-memo behavior, for parity benches).

    ``backend`` selects the execution backend (``None``/``"sim"``/``"mpi"``
    or a :class:`~repro.backend.Backend` instance; see :mod:`repro.backend`)
    — values are bit-identical across backends, a real backend adds
    measured wall-clock transport alongside the model.
    """
    cluster = Cluster(
        p,
        params=params,
        cache=cache,
        policy=policy,
        pricing_cache=pricing_cache,
        backend=backend,
    )
    shared: dict[tuple[int, int], tuple] = {}
    for s in stream:
        if resident and shared_operands:
            pair = shared.get((s.n, s.k))
            if pair is None:
                L = cluster.host(random_lower_triangular(s.n, seed=s.seed))
                B = cluster.host(random_dense(s.n, s.k, seed=s.seed + 1))
                pair = shared[(s.n, s.k)] = (L, B)
            L, B = pair
        else:
            L = random_lower_triangular(s.n, seed=s.seed)
            B = random_dense(s.n, s.k, seed=s.seed + 1)
            if resident:
                L, B = cluster.host(L), cluster.host(B)
        cluster.submit(
            TrsmRequest(
                L=L,
                B=B,
                verify=verify,
                arrival=s.arrival,
                priority=s.priority,
                deadline=s.deadline,
                tenant=s.tenant,
            )
        )
    return cluster.run()


def schedule_stream(
    stream: list[StreamRequest],
    p: int,
    params: CostParams | None = None,
    policy=None,
    cache: bool = True,
    pricing_cache: bool = True,
) -> Schedule:
    """Pack a stream onto the subgrid pool **without executing it**.

    The scheduling-only counterpart of :func:`replay`: operands are hosted
    once per distinct ``(n, k)`` shape (as ``shared_operands`` replay
    does), the queue is priced and packed exactly as ``Cluster.run``
    would, and the resulting :class:`~repro.sched.scheduler.Schedule` is
    returned with the pool drained — no solve runs, no block moves.  This
    is the scheduler+routing hot path in isolation, which is what the
    serve-scale throughput bench measures and what capacity planning
    ("how would this day of traffic pack?") actually needs.
    """
    cluster = Cluster(
        p, params=params, cache=cache, policy=policy, pricing_cache=pricing_cache
    )
    shared: dict[tuple[int, int], tuple] = {}
    requests = []
    for s in stream:
        pair = shared.get((s.n, s.k))
        if pair is None:
            L = cluster.host(random_lower_triangular(s.n, seed=s.seed))
            B = cluster.host(random_dense(s.n, s.k, seed=s.seed + 1))
            pair = shared[(s.n, s.k)] = (L, B)
        L, B = pair
        requests.append(
            TrsmRequest(
                L=L,
                B=B,
                verify=False,
                arrival=s.arrival,
                priority=s.priority,
                deadline=s.deadline,
                tenant=s.tenant,
            )
        )
    return Scheduler(
        cluster.pool,
        cluster.params,
        cache=cluster.opcache,
        policy=cluster.policy,
        pricing_cache=pricing_cache,
    ).schedule(requests)


def replay_mixed(
    p: int,
    params: CostParams | None = None,
    policy=None,
    cache: bool = False,
    smalls: int = 10,
    n_small: int = 64,
    k_small: int = 8,
    n_big: int = 256,
    k_big: int = 32,
    stagger: float = 2.0e-5,
    big_arrival: float = 5e-6,
    verify: bool = False,
    seed: int = 0,
    backend=None,
) -> ClusterOutcome:
    """The mixed small/large serving scenario backfilling exists for.

    A stream of small solves pinned to quarter subgrids keeps the pool
    busy (the first four arrive at t = 0, the rest every ``stagger``
    seconds), and one large solve pinned to the full grid arrives just
    after the pool fills.  Greedy LPT keeps placing arriving smalls in
    the freed blocks, so the large solve — which needs *all* blocks free
    at once — starves behind the stream; conservative backfilling
    reserves its earliest start and only admits smalls that finish by
    the reservation, so the pool drains and the large solve runs.  This
    is the paper's selective-inversion serving mix (small preconditioner
    applications interleaved with occasional large solves), and the
    stream ``benchmarks/bench_serve.py`` gates the backfill-vs-LPT win
    on.
    """
    require(smalls >= 5, ParameterError, "the mixed stream needs >= 5 smalls")
    cluster = Cluster(p, params=params, cache=cache, policy=policy, backend=backend)
    for i in range(smalls):
        arrival = 0.0 if i < 4 else (i - 3) * stagger
        L = random_lower_triangular(n_small, seed=seed + 100 + i)
        B = random_dense(n_small, k_small, seed=seed + 200 + i)
        cluster.submit(
            TrsmRequest(
                L=cluster.host(L),
                B=cluster.host(B),
                verify=verify,
                arrival=arrival,
                sizes=(p // 4,),
            )
        )
    Lb = random_lower_triangular(n_big, seed=seed + 1)
    Bb = random_dense(n_big, k_big, seed=seed + 2)
    cluster.submit(
        TrsmRequest(
            L=cluster.host(Lb),
            B=cluster.host(Bb),
            verify=verify,
            arrival=big_arrival,
            sizes=(p,),
        )
    )
    return cluster.run()


def replay_prepared(
    prepared,
    count: int,
    p: int,
    k: int = 8,
    rate: float = 0.0,
    params: CostParams | None = None,
    seed: int = 0,
    cache: bool = True,
    size: int | None = None,
    verify: bool = True,
    policy=None,
    backend=None,
) -> ClusterOutcome:
    """A stream of solves against one hosted prepared factor.

    The serve workload the operand cache exists for (Raghavan's
    selective-inversion preconditioner application): ``prepared`` (a
    :class:`~repro.trsm.prepared.PreparedTrsm`) has inverted the factor
    once; here its ``L`` and ``Ltilde`` are hosted on a fresh
    ``cache``-configured Cluster and ``count`` right-hand-side batches are
    replayed through :class:`~repro.api.PreparedSolveRequest`.  Every
    placement stages the factor pair onto its subgrid — at the full
    migration charge the first time a subgrid hosts them, and from the
    staged-copy cache on repeat tenancies.  ``size`` pins every placement
    to one subgrid size (deterministic placements for parity runs);
    ``rate`` as in :func:`poisson_stream`.
    """
    require(count >= 1, ParameterError, "need at least one request")
    rng = np.random.default_rng(seed)
    arrivals = (
        np.cumsum(rng.exponential(1.0 / rate, size=count))
        if rate > 0.0
        else np.zeros(count)
    )
    cluster = Cluster(p, params=params, cache=cache, policy=policy, backend=backend)
    Lh = cluster.host(prepared.L)
    Lth = cluster.host(prepared.Ltilde)
    for i in range(count):
        cluster.submit(
            PreparedSolveRequest(
                prepared=prepared,
                B=random_dense(prepared.n, k, seed=seed + 31 * i + 1),
                L=Lh,
                Ltilde=Lth,
                verify=verify,
                arrival=float(arrivals[i]),
                sizes=None if size is None else (size,),
            )
        )
    return cluster.run()
